// resloc_campaign -- run a named Monte-Carlo parameter sweep end to end.
//
//   resloc_campaign --list
//   resloc_campaign --sweep grid --threads 8 --json report.json --csv report.csv
//   resloc_campaign --sweep smoke --seed 7 --trials 2
//
// Each named sweep is a declarative SweepSpec over the scenario registry and
// the localization pipeline; the CampaignRunner fans its trials out across
// worker threads with deterministic per-trial RNG substreams, so the JSON and
// CSV aggregates are byte-identical for a given --seed at any --threads value
// (wall-clock timing goes to stdout only, never into the reports).
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "acoustics/environment.hpp"
#include "acoustics/units.hpp"
#include "eval/aggregate.hpp"
#include "eval/report.hpp"
#include "fault/fault_plan.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "ranging/ranging_service.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"
#include "sim/scenario_registry.hpp"

using resloc::pipeline::MeasurementSource;
using resloc::pipeline::Solver;
using resloc::runner::CampaignResult;
using resloc::runner::CampaignRunner;
using resloc::runner::RunnerOptions;
using resloc::runner::SweepSpec;

namespace {

struct NamedSweep {
  std::string description;
  SweepSpec spec;
};

SweepSpec synthetic_base(const std::string& name) {
  SweepSpec spec;
  spec.name = name;
  spec.base.source = MeasurementSource::kSyntheticGaussian;
  return spec;
}

// The built-in sweep catalog. Trial counts are defaults; --trials overrides.
std::map<std::string, NamedSweep> sweep_catalog() {
  std::map<std::string, NamedSweep> catalog;

  {  // Tiny 2x2 sweep for CI smoke runs: 4 cells, 1 trial each.
    SweepSpec spec = synthetic_base("smoke");
    spec.trials_per_cell = 1;
    spec.axes.node_counts = {16, 25};
    spec.axes.noise_sigmas = {0.33, 1.0};
    spec.axes.anchor_counts = {6};
    catalog["smoke"] = {"2x2 smoke grid (4 multilateration trials, sub-second)", spec};
  }
  {  // The default workhorse: error vs node count x sigma x anchor count.
    SweepSpec spec = synthetic_base("grid");
    spec.trials_per_cell = 10;
    spec.axes.node_counts = {25, 49};
    spec.axes.noise_sigmas = {0.2, 0.33, 0.5};
    spec.axes.anchor_counts = {10, 13};
    catalog["grid"] = {"multilateration error vs nodes x sigma x anchors (12 cells, 120 trials)",
                       spec};
  }
  {  // Figure 13/14-flavored: how anchor density gates placement rate.
    SweepSpec spec = synthetic_base("anchors");
    spec.trials_per_cell = 10;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.noise_sigmas = {0.33};
    spec.axes.anchor_counts = {4, 6, 8, 13, 20};
    catalog["anchors"] = {"placement rate vs anchor count on the grass grid (50 trials)", spec};
  }
  {  // Error vs noise sigma, the Section 4.1.3 sensitivity axis.
    SweepSpec spec = synthetic_base("noise");
    spec.trials_per_cell = 15;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.noise_sigmas = {0.1, 0.2, 0.33, 0.5, 1.0, 2.0};
    spec.axes.anchor_counts = {13};
    catalog["noise"] = {"multilateration error vs noise sigma (6 cells, 90 trials)", spec};
  }
  {  // Mote-failure resilience across two geometries.
    SweepSpec spec = synthetic_base("dropout");
    spec.trials_per_cell = 10;
    spec.axes.scenarios = {"offset_grid", "town"};
    spec.axes.noise_sigmas = {0.33};
    spec.axes.anchor_counts = {13};
    spec.axes.drop_rates = {0.0, 0.1, 0.2, 0.3};
    catalog["dropout"] = {"error/placement vs node drop rate, grid + town (80 trials)", spec};
  }
  {  // Solver shootout including the (costlier) centralized LSS. The
     // synthetic source already measures every in-range pair, so no
     // augmentation axis: it would be a no-op here.
    SweepSpec spec = synthetic_base("solvers");
    spec.trials_per_cell = 5;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.noise_sigmas = {0.33, 1.0};
    spec.axes.anchor_counts = {13};
    catalog["solvers"] = {"multilateration vs centralized LSS, dense synthetic (20 trials)",
                          spec};
  }
  {  // The large-scale tier: campus_500 and city_1000 end to end, n x solver.
     // Viable because the LSS soft constraint's active set is found by
     // spatial-hash neighbor query (~O(n) per objective evaluation, see
     // BENCH_lss.json) instead of the former O(n^2) all-pairs scan.
    SweepSpec spec = synthetic_base("scale");
    spec.trials_per_cell = 2;
    spec.axes.scenarios = {"campus_500", "city_1000"};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.noise_sigmas = {0.33};
    spec.axes.anchor_counts = {40};
    // 40 anchors cover a fraction of a 390 x 290 m field: progressive
    // promotion (Section 4.1.1's modification) is what lets multilateration
    // reach the interior.
    spec.base.multilateration.progressive = true;
    // Random init cannot unfold 10^3 nodes; DV-hop seeds a coarse absolute
    // configuration that one LSS descent (3 perturbation rounds) refines to
    // sub-meter error. (independent_inits / target_stress_per_edge govern
    // localize_lss's multi-attempt loop and do not apply to seeded solves.)
    spec.base.lss_init = resloc::pipeline::LssInit::kDvHopSeeded;
    spec.base.lss.restarts.rounds = 3;
    spec.base.lss.gd.max_iterations = 2500;
    spec.base.lss.init_box_m = 400.0;
    catalog["scale"] = {"large-scale tier: {campus_500, city_1000} x {multilat, lss} (8 trials)",
                       spec};
  }
  {  // Small-n cut of the scale axes for CI: seconds, not minutes, and the
     // 1-vs-8-thread byte-identity check runs on exactly these cells.
    SweepSpec spec = synthetic_base("scale_smoke");
    spec.trials_per_cell = 1;
    spec.axes.scenarios = {"uniform_n"};
    spec.axes.node_counts = {64, 100};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.noise_sigmas = {0.33};
    spec.axes.anchor_counts = {16};
    spec.base.multilateration.progressive = true;
    spec.base.lss_init = resloc::pipeline::LssInit::kDvHopSeeded;
    spec.base.lss.restarts.rounds = 3;
    spec.base.lss.init_box_m = 130.0;  // uniform_n at n=100 spans ~120 m
    catalog["scale_smoke"] = {"node_counts x solver smoke cut of 'scale' (4 trials, CI)", spec};
  }
  {  // The full acoustic ranging stack at the large-scale tier: the same
     // {campus_500, city_1000} x solver grid as 'scale', but every trial runs
     // the complete Section 3 campaign (chirps, accumulation, filtering,
     // bidirectional consistency) instead of the Gaussian shortcut. Viable
     // because measurement acquisition is grid-culled (O(n + in-range pairs)
     // per round, O(1) shadowing memory, see BENCH_campaign.json) -- the seed
     // front end scanned rounds x n^2 pairs and held an n^2 shadowing matrix.
    SweepSpec spec;
    spec.name = "acoustic_scale";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 2;
    spec.axes.scenarios = {"campus_500", "city_1000"};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.anchor_counts = {40};
    // Each scenario runs on its canonical terrain (campus_500 on grass,
    // city_1000 on urban), and the robust pre-filters ship on at this tier:
    // urban echo tails at n=1000 are exactly what the consistency vote + MAD
    // trim exist for. The classic default-off path is untouched -- every
    // golden-pinned sweep still runs with both filters off
    // (--robust-filters off restores it here for A/B runs).
    spec.axes.environments = {"scenario"};
    spec.base.campaign.filter.consistency_vote = true;
    spec.base.campaign.filter.mad_reject = true;
    spec.base.multilateration.progressive = true;
    spec.base.lss_init = resloc::pipeline::LssInit::kDvHopSeeded;
    spec.base.lss.restarts.rounds = 3;
    spec.base.lss.gd.max_iterations = 2500;
    spec.base.lss.init_box_m = 400.0;
    catalog["acoustic_scale"] = {
        "full acoustic campaign at scale: {campus_500, city_1000} x {multilat, lss} (8 trials)",
        spec};
  }
  {  // Small-n cut of the acoustic scale axes for CI: the 1-vs-N-thread
     // byte-identity checks (runner threads and intra-campaign
     // --campaign-threads) run on exactly these cells.
    SweepSpec spec;
    spec.name = "acoustic_scale_smoke";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 1;
    spec.axes.scenarios = {"uniform_n"};
    spec.axes.node_counts = {64, 100};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.anchor_counts = {16};
    spec.base.multilateration.progressive = true;
    spec.base.lss_init = resloc::pipeline::LssInit::kDvHopSeeded;
    spec.base.lss.restarts.rounds = 3;
    spec.base.lss.init_box_m = 130.0;  // uniform_n at n=100 spans ~120 m
    catalog["acoustic_scale_smoke"] = {
        "node_counts x solver smoke cut of 'acoustic_scale' (4 trials, CI)", spec};
  }
  {  // The full Section 3 service swept across terrains and hardware: every
     // trial runs the complete acoustic campaign (chirp patterns, 4-bit
     // accumulation, T-of-k detection, silence verification, filtering,
     // bidirectional consistency) instead of the Gaussian shortcut.
    SweepSpec spec;
    spec.name = "acoustic";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 2;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.node_counts = {25};
    spec.axes.anchor_counts = {8};
    spec.axes.environments = {"grass", "pavement", "urban"};
    spec.axes.unit_models = {"calibrated", "degraded"};
    catalog["acoustic"] = {
        "full acoustic ranging campaign vs terrain x unit quality (6 cells, 12 trials)", spec};
  }
  {  // Detector operating-point sweep: the Section 3.6 calibration question
     // "how many chirps and how high a threshold" as a 2-D cell grid.
    SweepSpec spec;
    spec.name = "ranging";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 2;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.node_counts = {16};
    spec.axes.anchor_counts = {6};
    spec.axes.chirp_counts = {5, 10, 15};
    spec.axes.detection_thresholds = {1, 2, 4};
    catalog["ranging"] = {
        "acoustic detector operating point: chirps k x threshold T (9 cells, 18 trials)", spec};
  }
  {  // Detector-mode shootout: the same campaign through all three arrival
     // detectors (hardware tone-detector model, Goertzel software scan, NCC
     // matched filter), crossed with terrain and the pattern's (k, T)
     // operating point. The axis where the NCC detector's ~5.5 dB extra
     // processing gain and first-arrival peak picking show up as campaign
     // error and placement differences.
    SweepSpec spec;
    spec.name = "detectors";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 2;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.node_counts = {16};
    spec.axes.anchor_counts = {6};
    spec.axes.environments = {"grass", "urban"};
    spec.axes.chirp_counts = {5, 10};
    spec.axes.detection_thresholds = {2, 4};
    spec.axes.detectors = {"hardware", "goertzel", "ncc"};
    catalog["detectors"] = {
        "detector mode x terrain x chirps k x threshold T (24 cells, 48 trials)", spec};
  }
  {  // Three-cell cut of 'detectors' for CI: one cell per detector mode, and
     // the 1-vs-8-thread byte-identity check runs on exactly these cells.
    SweepSpec spec;
    spec.name = "detectors_smoke";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 1;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.node_counts = {16};
    spec.axes.anchor_counts = {6};
    spec.axes.detectors = {"hardware", "goertzel", "ncc"};
    catalog["detectors_smoke"] = {"one cell per detector mode (3 trials, CI)", spec};
  }
  {  // Resilience sweep: the full acoustic campaign under injected faults,
     // fault kind x intensity x solver. Coverage (placement over ALL
     // attempted trials), degraded-fix rate, and the failure-reason taxonomy
     // are the headline aggregates; degraded multilateration fixes are
     // enabled so a 2-anchor node reports a flagged estimate instead of
     // nothing, and one bounded retry absorbs transient trial failures.
    SweepSpec spec;
    spec.name = "resilience";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 2;
    spec.max_trial_retries = 1;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.node_counts = {25};
    spec.axes.anchor_counts = {8};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.fault_kinds = resloc::fault::fault_kind_names();
    spec.axes.fault_intensities = {0.5, 1.0, 2.0};
    spec.base.multilateration.allow_degraded = true;
    catalog["resilience"] = {
        "acoustic campaign under fault injection: kind x intensity x solver (54 cells)", spec};
  }
  {  // Four-kind cut of 'resilience' for CI: the 1-vs-8-thread byte-identity
     // check under active fault injection runs on exactly these cells.
    SweepSpec spec;
    spec.name = "resilience_smoke";
    spec.base.source = MeasurementSource::kAcousticRanging;
    spec.trials_per_cell = 1;
    spec.max_trial_retries = 1;
    spec.axes.scenarios = {"grass_grid"};
    spec.axes.node_counts = {16};
    spec.axes.anchor_counts = {6};
    spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
    spec.axes.fault_kinds = {"none", "node_crash", "corrupt_distance", "all"};
    spec.base.multilateration.allow_degraded = true;
    catalog["resilience_smoke"] = {
        "solver x {none, node_crash, corrupt_distance, all} faults (8 trials, CI)", spec};
  }
  return catalog;
}

void print_usage() {
  std::puts(
      "usage: resloc_campaign [--sweep NAME] [--threads N] [--seed S]\n"
      "                       [--campaign-threads N] [--trials K] [--retries R]\n"
      "                       [--json PATH] [--csv PATH]\n"
      "                       [--trace PATH] [--metrics PATH]\n"
      "                       [--robust-filters on|off] [--list]\n"
      "\n"
      "  --sweep NAME   named sweep to run (default: grid)\n"
      "  --threads N    worker threads (default: hardware concurrency)\n"
      "  --seed S       master seed; aggregates are byte-identical per seed\n"
      "                 at any thread count (default: 1)\n"
      "  --campaign-threads N\n"
      "                 worker threads inside each acoustic ranging campaign\n"
      "                 (the per-trial measurement loop); byte-identical\n"
      "                 aggregates at any value (default: 1)\n"
      "  --trials K     override the sweep's trials-per-cell\n"
      "  --retries R    override the sweep's bounded per-trial retries (a\n"
      "                 failed trial reruns on a fresh deterministic\n"
      "                 substream up to R times; default: sweep-specific,\n"
      "                 0 for most sweeps, 1 for the resilience sweeps)\n"
      "  --json PATH    write the deterministic JSON aggregate report\n"
      "  --csv PATH     write the deterministic per-cell CSV table\n"
      "  --trace PATH   record telemetry spans and write a Chrome trace-event\n"
      "                 JSON file (open in chrome://tracing or Perfetto);\n"
      "                 never changes the JSON/CSV aggregate bytes\n"
      "  --metrics PATH write the telemetry metrics report (JSON) and print\n"
      "                 its summary; counter values are deterministic per\n"
      "                 seed, durations are wall clock\n"
      "  --robust-filters on|off\n"
      "                 force the Section 3.5 robust pre-filters (consistency\n"
      "                 vote + MAD rejection) on or off, overriding the\n"
      "                 sweep's default (on for acoustic_scale, off elsewhere)\n"
      "  --list         list available sweeps and scenarios, then exit");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  // Digits only: strtoull would silently wrap "-1" to 2^64-1.
  if (*s == '\0') return false;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return *end == '\0' && errno != ERANGE;  // reject silent overflow clamping
}

}  // namespace

int main(int argc, char** argv) {
  std::string sweep_name = "grid";
  std::string json_path;
  std::string csv_path;
  std::string trace_path;
  std::string metrics_path;
  std::uint64_t seed = 1;
  std::uint64_t threads = 0;
  std::uint64_t campaign_threads = 0;
  std::uint64_t trials_override = 0;
  std::uint64_t retries = 0;
  bool retries_set = false;
  int robust_filters = -1;  // -1 = sweep default, 0 = off, 1 = on
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--sweep") {
      sweep_name = need_value("--sweep");
    } else if (arg == "--json") {
      json_path = need_value("--json");
    } else if (arg == "--csv") {
      csv_path = need_value("--csv");
    } else if (arg == "--trace") {
      trace_path = need_value("--trace");
    } else if (arg == "--metrics") {
      metrics_path = need_value("--metrics");
    } else if (arg == "--robust-filters") {
      const std::string value = need_value("--robust-filters");
      if (value == "on") {
        robust_filters = 1;
      } else if (value == "off") {
        robust_filters = 0;
      } else {
        std::fprintf(stderr, "error: --robust-filters expects 'on' or 'off'\n");
        return 2;
      }
    } else if (arg == "--seed") {
      if (!parse_u64(need_value("--seed"), seed)) {
        std::fprintf(stderr, "error: --seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!parse_u64(need_value("--threads"), threads) || threads > 4096) {
        std::fprintf(stderr, "error: --threads expects an integer in [0, 4096]\n");
        return 2;
      }
    } else if (arg == "--campaign-threads") {
      if (!parse_u64(need_value("--campaign-threads"), campaign_threads) ||
          campaign_threads > 4096) {
        std::fprintf(stderr, "error: --campaign-threads expects an integer in [0, 4096]\n");
        return 2;
      }
    } else if (arg == "--trials") {
      if (!parse_u64(need_value("--trials"), trials_override) || trials_override == 0 ||
          trials_override > 1000000) {
        std::fprintf(stderr, "error: --trials expects an integer in [1, 1000000]\n");
        return 2;
      }
    } else if (arg == "--retries") {
      if (!parse_u64(need_value("--retries"), retries) || retries > 100) {
        std::fprintf(stderr, "error: --retries expects an integer in [0, 100]\n");
        return 2;
      }
      retries_set = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  auto catalog = sweep_catalog();
  if (list) {
    std::puts("sweeps:");
    for (const auto& [name, sweep] : catalog) {
      std::printf("  %-10s %s\n", name.c_str(), sweep.description.c_str());
    }
    std::puts("\nscenarios:");
    for (const auto& name : resloc::sim::scenario_names()) {
      std::printf("  %s\n", name.c_str());
    }
    std::puts("\nenvironments (acoustic axis; plus \"scenario\" = each scenario's site):");
    for (const auto& name : resloc::acoustics::environment_names()) {
      std::printf("  %s\n", name.c_str());
    }
    std::puts("\nunit models (acoustic axis):");
    for (const auto& name : resloc::acoustics::unit_model_names()) {
      std::printf("  %s\n", name.c_str());
    }
    std::puts("\ndetector modes (acoustic axis):");
    for (const auto mode : {resloc::ranging::DetectorMode::kHardware,
                            resloc::ranging::DetectorMode::kGoertzel,
                            resloc::ranging::DetectorMode::kMatchedFilter}) {
      std::printf("  %s\n", resloc::ranging::detector_mode_name(mode).c_str());
    }
    return 0;
  }

  const auto it = catalog.find(sweep_name);
  if (it == catalog.end()) {
    std::fprintf(stderr, "error: unknown sweep '%s' (--list shows the catalog)\n",
                 sweep_name.c_str());
    return 2;
  }

  SweepSpec spec = it->second.spec;
  spec.seed = seed;
  if (trials_override != 0) spec.trials_per_cell = static_cast<std::size_t>(trials_override);
  if (retries_set) spec.max_trial_retries = static_cast<std::size_t>(retries);
  if (campaign_threads != 0) {
    // Intra-trial parallelism of the acoustic measurement loop; a no-op for
    // synthetic sweeps. Determinism is unconditional (every (round, source)
    // turn draws from its own counter-indexed substream), so this dial only
    // changes wall time, never report bytes -- CI cmp-enforces that.
    spec.base.campaign.threads = static_cast<int>(campaign_threads);
  }
  if (robust_filters != -1) {
    spec.base.campaign.filter.consistency_vote = robust_filters == 1;
    spec.base.campaign.filter.mad_reject = robust_filters == 1;
  }

  // Telemetry: counters + stage totals for --metrics, individual span events
  // only when a trace is requested (they are the memory-heavy part). Enabling
  // either never changes the aggregate bytes -- CI cmp-enforces that too.
  if (!trace_path.empty() || !metrics_path.empty()) {
    resloc::obs::set_enabled(true);
    resloc::obs::set_capture_spans(!trace_path.empty());
  }

  const CampaignRunner runner(RunnerOptions{static_cast<unsigned>(threads)});
  const CampaignResult result = runner.run(spec);

  std::size_t ok = 0;
  std::size_t total_retries = 0;
  for (const auto& t : result.trials) {
    ok += t.ok ? 1u : 0u;
    total_retries += t.attempts > 0 ? t.attempts - 1 : 0;
  }
  std::printf("sweep '%s': %zu cells, %zu trials (%zu ok), seed %llu, %u threads, %.2f s\n",
              spec.name.c_str(), result.cells.size(), result.trials.size(), ok,
              static_cast<unsigned long long>(result.seed), result.threads_used,
              result.wall_time_s);
  if (spec.max_trial_retries > 0) {
    std::printf("retries: %zu used (budget %zu per trial)\n", total_retries,
                spec.max_trial_retries);
  }
  std::printf("\n");

  if (ok < result.trials.size()) {
    // Failure-reason taxonomy breakdown: which stage the failed trials died
    // in (see eval::FailureReason), then each distinct message once, so a
    // fully failed campaign is diagnosable from the console.
    std::size_t by_reason[resloc::eval::kFailureReasonCount] = {};
    for (const auto& t : result.trials) {
      if (!t.ok) ++by_reason[static_cast<std::size_t>(t.failure)];
    }
    std::fprintf(stderr, "warning: %zu of %zu trials failed (by stage:",
                 result.trials.size() - ok, result.trials.size());
    for (std::size_t r = 0; r < resloc::eval::kFailureReasonCount; ++r) {
      if (by_reason[r] == 0) continue;
      std::fprintf(stderr, " %s=%zu",
                   resloc::eval::failure_reason_name(
                       static_cast<resloc::eval::FailureReason>(r)),
                   by_reason[r]);
    }
    std::fprintf(stderr, "):\n");
    std::set<std::string> reasons;
    for (const auto& t : result.trials) {
      if (!t.ok && reasons.insert(t.error).second) {
        std::fprintf(stderr, "  cell %zu: %s\n", t.cell_index, t.error.c_str());
        if (!t.error_spans.empty()) {
          // The failing thread's last telemetry spans (recorded with --trace):
          // what the trial was executing when it died, oldest first.
          const std::size_t show = std::min<std::size_t>(t.error_spans.size(), 8);
          std::fprintf(stderr, "    last %zu spans before the failure:\n", show);
          for (std::size_t s = t.error_spans.size() - show; s < t.error_spans.size(); ++s) {
            std::fprintf(stderr, "      %s\n", t.error_spans[s].c_str());
          }
        }
        if (reasons.size() >= 5) break;
      }
    }
  }

  if (!result.cells.empty()) {
    std::vector<std::string> header;
    for (const auto& [axis, value] : result.cells.front().axes) header.push_back(axis);
    header.insert(header.end(),
                  {"trials", "mean_err_m", "p95_err_m", "placement", "mean_stress"});
    resloc::eval::Table table(header);
    for (const auto& cell : result.cells) {
      std::vector<std::string> row;
      for (const auto& [axis, value] : cell.axes) row.push_back(value);
      const auto& g = cell.aggregate;
      row.push_back(std::to_string(g.trials));
      row.push_back(resloc::eval::fmt(g.mean_error_m));
      row.push_back(resloc::eval::fmt(g.p95_error_m));
      row.push_back(resloc::eval::fmt(g.mean_placement_rate));
      row.push_back(std::isnan(g.mean_stress) ? "-" : resloc::eval::fmt(g.mean_stress));
      table.add_row(row);
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  // Per-sweep stage budget: where the campaign's trial time went, summed over
  // all trials. Wall clock (the one legitimately non-deterministic per-trial
  // quantity), so it prints here and never enters the JSON/CSV aggregates.
  {
    double measure_s = 0.0, solve_s = 0.0, eval_s = 0.0, trial_s = 0.0;
    for (const auto& t : result.trials) {
      measure_s += t.measure_wall_s;
      solve_s += t.solve_wall_s;
      eval_s += t.eval_wall_s;
      trial_s += t.wall_time_s;
    }
    const double other_s = std::max(0.0, trial_s - measure_s - solve_s - eval_s);
    const auto share = [&](double s) {
      return trial_s > 0.0 ? resloc::eval::fmt(100.0 * s / trial_s) + "%" : std::string("-");
    };
    resloc::eval::Table budget({"stage", "total_s", "share"});
    budget.add_row({"measure", resloc::eval::fmt(measure_s), share(measure_s)});
    budget.add_row({"solve", resloc::eval::fmt(solve_s), share(solve_s)});
    budget.add_row({"eval", resloc::eval::fmt(eval_s), share(eval_s)});
    budget.add_row({"other", resloc::eval::fmt(other_s), share(other_s)});
    budget.add_row({"trial total", resloc::eval::fmt(trial_s), trial_s > 0.0 ? "100%" : "-"});
    std::printf("\nstage budget (wall clock, all trials; diagnostic only):\n");
    std::fputs(budget.to_string().c_str(), stdout);
  }

  bool io_ok = true;
  if (!json_path.empty()) {
    io_ok &= resloc::eval::write_text_file(json_path, result.to_json());
    std::printf("\njson report: %s\n", json_path.c_str());
  }
  if (!csv_path.empty()) {
    io_ok &= resloc::eval::write_text_file(csv_path, result.to_csv());
    std::printf("csv report: %s\n", csv_path.c_str());
  }

  if (!trace_path.empty() || !metrics_path.empty()) {
    const resloc::obs::TelemetrySnapshot snap = resloc::obs::snapshot();
    if (!trace_path.empty()) {
      const std::string trace = resloc::obs::to_chrome_trace_json(snap);
      std::string trace_error;
      if (!resloc::obs::validate_chrome_trace(trace, &trace_error)) {
        // A trace that fails its own schema check is a telemetry bug, not a
        // campaign failure -- fail loudly so CI catches it.
        std::fprintf(stderr, "error: emitted trace failed validation: %s\n",
                     trace_error.c_str());
        return 1;
      }
      io_ok &= resloc::eval::write_text_file(trace_path, trace);
      std::size_t events = 0;
      for (const auto& t : snap.threads) events += t.events.size();
      std::printf("trace (%zu spans%s): %s\n", events,
                  snap.dropped_spans > 0 ? ", some dropped past the per-thread cap" : "",
                  trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      io_ok &= resloc::eval::write_text_file(metrics_path, resloc::obs::metrics_report_json(snap));
      std::printf("metrics report: %s\n", metrics_path.c_str());
    }
    std::printf("\n%s", resloc::obs::metrics_report_text(snap).c_str());
  }

  if (!io_ok) {
    std::fprintf(stderr, "error: failed to write one or more report files\n");
    return 1;
  }
  return 0;
}
