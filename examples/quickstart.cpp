// Quickstart: localize a sensor network through the LocalizationPipeline.
//
// The happy path in one object: configure a pipeline (measurement source +
// solver + evaluation), hand it a deployment, and read back per-node position
// estimates and error metrics. Here: the paper's 7x7 offset grid, synthetic
// Gaussian range measurements, centralized LSS with the minimum-spacing soft
// constraint.
#include <cstdio>

#include "pipeline/localization_pipeline.hpp"
#include "sim/deployments.hpp"

int main() {
  using namespace resloc;

  // A 7x7 offset grid, 9 m spacing -- the paper's field layout.
  const core::Deployment deployment = sim::offset_grid();

  // Synthetic noisy distances (as an acoustic ranging campaign would
  // produce), solved by centralized least-squares scaling.
  pipeline::PipelineConfig config;
  config.source = pipeline::MeasurementSource::kSyntheticGaussian;
  config.solver = pipeline::Solver::kCentralizedLss;
  config.noise = {/*sigma_m=*/0.33, /*max_range_m=*/22.0};
  config.lss.min_spacing_m = 9.0;  // deployment knowledge: nodes are >= 9 m apart

  const pipeline::LocalizationPipeline pipe(config);
  math::Rng rng(2024);
  const pipeline::PipelineRun run = pipe.run(deployment, rng);

  // Per-node localization error (estimates are best-fit aligned to ground
  // truth before scoring; LSS output is a relative map).
  for (std::size_t id = 0; id < run.report.node_errors.size(); ++id) {
    if (run.report.node_errors[id].has_value()) {
      std::printf("node %2zu: error %5.2f m\n", id, *run.report.node_errors[id]);
    } else {
      std::printf("node %2zu: not localized\n", id);
    }
  }
  std::printf("localized %zu/%zu nodes, average error %.2f m (stress %.1f)\n",
              run.report.localized, run.report.total_nodes, run.report.average_error_m,
              run.stress);
  return run.report.average_error_m < 1.0 ? 0 : 1;
}
