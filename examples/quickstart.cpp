// Quickstart: localize a sensor network from noisy pairwise distances.
//
// The 20-line happy path: build a deployment, synthesize noisy range
// measurements (as an acoustic ranging service would produce), run
// centralized LSS with the minimum-spacing soft constraint, and evaluate.
#include <cstdio>

#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

int main() {
  using namespace resloc;

  // A 7x7 offset grid, 9 m spacing -- the paper's field layout.
  const core::Deployment deployment = sim::offset_grid();

  // Noisy distance measurements for every pair within acoustic range.
  math::Rng rng(2024);
  const core::MeasurementSet measurements =
      sim::gaussian_measurements(deployment, {.sigma_m = 0.33, .max_range_m = 22.0}, rng);

  // Centralized least-squares-scaling localization with the soft constraint.
  core::LssOptions options;
  options.min_spacing_m = 9.0;  // deployment knowledge: nodes are >= 9 m apart
  const core::LssResult result = core::localize_lss(measurements, options, rng);

  // LSS output is a relative map; align to ground truth to score it.
  const auto report =
      eval::evaluate_localization(result.positions, deployment.positions, /*align_first=*/true);
  std::printf("localized %zu/%zu nodes, average error %.2f m (stress %.1f)\n", report.localized,
              report.total_nodes, report.average_error_m, result.stress);
  return report.average_error_m < 1.0 ? 0 : 1;
}
