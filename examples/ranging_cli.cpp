// Ranging walkthrough: one source/receiver pair swept across distances and
// environments, with the detection internals printed -- what the tone
// detector accumulates, where detect-signal fires, and what the TDoA
// arithmetic concludes.
#include <cstdio>

#include "ranging/ranging_service.hpp"
#include "sim/scenarios.hpp"

int main() {
  using namespace resloc;
  std::puts("== acoustic ranging walkthrough ==");

  for (const bool grass : {true, false}) {
    auto config = grass ? sim::grass_refined_ranging() : sim::urban_refined_ranging();
    const ranging::RangingService service(config);
    std::printf("\n--- environment: %s (T=%d, k=%d of %d) ---\n",
                config.environment.name.c_str(), config.detection.threshold,
                config.detection.min_detections, config.detection.window);

    math::Rng rng(42);
    for (double distance : {5.0, 10.0, 15.0, 20.0}) {
      const auto attempt = service.measure_with_diagnostics(
          distance, acoustics::SpeakerUnit{}, acoustics::MicUnit{}, rng);
      if (!attempt.distance_m) {
        std::printf("d=%5.1f m : no detection (out of range or too noisy)\n", distance);
        continue;
      }
      // Visualize the accumulated counters around the detection.
      const int idx = attempt.detection_index;
      std::printf("d=%5.1f m : detected at sample %4d -> %.2f m (error %+.2f m)\n", distance,
                  idx, *attempt.distance_m, *attempt.distance_m - distance);
      std::printf("            counters near onset: ");
      for (int i = std::max(0, idx - 6); i < idx + 10 && i < static_cast<int>(attempt.accumulated.size());
           ++i) {
        std::printf("%x", attempt.accumulated[static_cast<std::size_t>(i)]);
      }
      std::printf("  (rejected candidates: %d)\n", attempt.rejected_detections);
    }
  }

  std::puts("\ncounters are 4-bit accumulations over 10 chirps; detection needs the\n"
            "count to reach T in k of m consecutive samples, preceded by silence.");
  return 0;
}
