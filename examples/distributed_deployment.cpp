// Distributed deployment: scalable self-localization for large networks.
//
// Each node builds a local map (LSS over its neighborhood), estimates rigid
// transforms to its neighbors' maps via the closed-form method, and the
// network aligns itself by flooding the root's coordinate frame -- first with
// the graph-driven reference implementation, then as an actual message
// protocol over the discrete-event radio simulator with drifting clocks.
#include <cstdio>

#include "core/alignment_protocol.hpp"
#include "core/distributed_lss.hpp"
#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

int main() {
  using namespace resloc;
  std::puts("== distributed localization over a 59-node town deployment ==\n");

  const auto town = sim::town_blocks_59();
  math::Rng rng(611);
  const auto measurements = sim::gaussian_measurements(town, {}, rng);
  std::printf("deployment: %zu nodes, %zu measured pairs\n", town.size(),
              measurements.edge_count());

  core::DistributedLssOptions options;
  options.local_lss.min_spacing_m = 9.0;
  options.local_lss.independent_inits = 8;
  options.local_lss.gd.max_iterations = 2500;
  options.local_lss.target_stress_per_edge = 0.5;
  options.method = core::TransformMethod::kClosedForm;  // mote-friendly
  const core::NodeId root = 0;

  // Graph-driven: the algorithm, free of radio effects.
  const auto graph_run = core::localize_distributed(measurements, root, options, rng);
  const auto graph_rep =
      eval::evaluate_localization(graph_run.result.positions, town.positions, true);
  std::printf("\n[graph-driven]  localized %zu/%zu, average error %.2f m\n", graph_rep.localized,
              graph_rep.total_nodes, graph_rep.average_error_m);

  // Event-driven: local maps exchanged and the origin/axes flooded over the
  // simulated radio (drifting clocks, delivery jitter).
  net::RadioParams radio;
  radio.range_m = 50.0;
  const auto protocol = core::run_alignment_protocol(graph_run.maps, root, town.positions,
                                                     options, radio, /*seed=*/99);
  const auto protocol_rep =
      eval::evaluate_localization(protocol.result.positions, town.positions, true);
  std::printf("[event-driven]  localized %zu/%zu, average error %.2f m\n",
              protocol_rep.localized, protocol_rep.total_nodes, protocol_rep.average_error_m);
  std::printf("[event-driven]  %zu map broadcasts + %zu alignment broadcasts, %zu deliveries\n",
              protocol.map_broadcasts, protocol.align_broadcasts, protocol.messages_delivered);

  // Compare against the centralized solution on the same data.
  core::LssOptions central;
  central.min_spacing_m = 9.0;
  central.independent_inits = 16;
  central.gd.max_iterations = 6000;
  central.target_stress_per_edge = 0.5;
  math::Rng crng(12);
  const auto central_run = core::localize_lss(measurements, central, crng);
  const auto central_rep =
      eval::evaluate_localization(central_run.positions, town.positions, true);
  std::printf("\n[centralized]   average error %.2f m -- the distributed algorithm trades\n"
              "accuracy for per-node computation and two local exchanges + one flood.\n",
              central_rep.average_error_m);
  return protocol_rep.localized > town.positions.size() / 2 ? 0 : 1;
}
