// Outdoor field survey: the paper's motivating scenario, end to end.
//
// A 46-node network on a grassy field self-localizes with no surveying, no
// GPS, and no anchors: acoustic TDoA ranging (chirp accumulation + pattern
// check), statistical filtering, bidirectional consistency checking, and
// centralized LSS with the minimum-spacing soft constraint. Per-stage
// diagnostics show what each layer of the stack contributes.
#include <cstdio>

#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"

int main() {
  using namespace resloc;
  std::puts("== outdoor field survey: 46 motes, grass, no anchors ==\n");

  // Stage 1: the acoustic ranging campaign (3 rounds, every node chirps).
  const auto scenario = sim::grass_grid_scenario(/*seed=*/20260611, /*rounds=*/3);
  const auto raw = eval::summarize_ranging_errors(scenario.data.raw_errors());
  std::printf("[ranging]   %zu raw estimates over %zu directed pairs\n", raw.count,
              scenario.data.raw.directed_pair_count());
  std::printf("[ranging]   median |error| %.2f m, %zu estimates off by >1 m\n", raw.median_abs_m,
              raw.underestimates_beyond_1m + raw.overestimates_beyond_1m);

  // Stage 2: filtering + consistency checking.
  std::size_t bidirectional = 0;
  for (const auto& p : scenario.data.filtered) {
    if (p.bidirectional) ++bidirectional;
  }
  std::printf("[filtering] %zu symmetric pairs kept (%zu bidirectionally confirmed)\n",
              scenario.data.filtered.size(), bidirectional);
  const auto violations = ranging::find_triangle_violations(scenario.data.filtered, 0.05);
  const auto cleaned = ranging::drop_triangle_offenders(scenario.data.filtered, 0.05, 2);
  std::printf("[filtering] %zu triangle-inequality violations flagged, %zu edges dropped\n",
              violations.size(), scenario.data.filtered.size() - cleaned.size());
  core::MeasurementSet measurements(scenario.deployment.size());
  measurements.set_node_count(scenario.deployment.size());
  for (const auto& p : cleaned) {
    // Bidirectionally confirmed edges earn full confidence; unidirectional
    // survivors are kept (data is scarce) but down-weighted.
    measurements.add(p.a, p.b, p.distance_m, p.bidirectional ? 1.0 : 0.3);
  }

  // Stage 3: centralized LSS with the 9 m minimum-spacing soft constraint.
  core::LssOptions options;
  options.min_spacing_m = 9.0;
  options.constraint_weight = 10.0;
  options.gd.max_iterations = 6000;
  options.independent_inits = 16;
  options.target_stress_per_edge = 0.75;
  math::Rng rng(7);
  const auto result = core::localize_lss(measurements, options, rng);
  std::printf("[localize]  stress %.1f after %d iterations\n", result.stress, result.iterations);

  // Stage 4: evaluation against the surveyed ground truth.
  const auto report = eval::evaluate_localization(result.positions,
                                                  scenario.deployment.positions, true);
  std::printf("[evaluate]  average error %.2f m over %zu nodes (max %.2f m)\n",
              report.average_error_m, report.localized, report.max_error_m);
  std::printf("[evaluate]  average without the worst 5 nodes: %.2f m\n",
              report.average_without_worst(5));
  std::puts("\nThe network located itself to within a couple of meters per node\n"
            "using nothing but sound, radio, and least squares scaling.");
  return report.average_error_m < 5.0 ? 0 : 1;
}
