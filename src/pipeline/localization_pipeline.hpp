// One-stop facade over the full localization stack: measurement acquisition
// (acoustic ranging campaign or the paper's synthetic Gaussian model), an
// optional augmentation pass, one of the three localization solvers
// (multilateration, centralized LSS, distributed LSS), and evaluation.
//
// This is the surface the examples and future batching/sharding work build
// on: scenario in, per-node position estimates plus an eval report out. Each
// stage remains individually accessible (measure() / run_on_measurements())
// so callers can cache or replace any step.
#pragma once

#include <cstddef>
#include <limits>

#include "core/distributed_lss.hpp"
#include "core/dv_hop.hpp"
#include "core/lss.hpp"
#include "core/multilateration.hpp"
#include "core/types.hpp"
#include "eval/metrics.hpp"
#include "math/rng.hpp"
#include "sim/field_experiment.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenarios.hpp"

namespace resloc::pipeline {

/// How the pipeline obtains its distance measurements.
enum class MeasurementSource {
  /// Full acoustic ranging campaign (Section 3): every node chirps in turn,
  /// estimates are filtered and symmetrized into the measurement set.
  kAcousticRanging,
  /// The paper's synthetic model (Sections 4.1.3/4.2.2): true distance plus
  /// N(0, sigma) noise for every pair within range.
  kSyntheticGaussian,
};

/// Which localization algorithm consumes the measurement set.
enum class Solver {
  kMultilateration,  ///< Section 4.1; needs anchors, output frame is absolute
  kCentralizedLss,   ///< Section 4.2; relative frame, aligned before scoring
  kDistributedLss,   ///< Section 4.3; root-relative frame, aligned before scoring
};

/// How the centralized LSS solver is initialized.
enum class LssInit {
  /// The paper's scheme: independent random configurations plus perturbation
  /// restarts. Works to ~100 nodes; beyond that, gradient descent cannot
  /// repair the global topology of a random start and the solve lands in a
  /// folded minimum regardless of budget.
  kRandom,
  /// Seed from the DV-hop baseline (Section 2's related work, already in
  /// core/): anchors flood hop counts, every node gets a coarse absolute
  /// estimate (~5 m at city_1000 scale), and a single LSS descent refines it
  /// (~0.3 m). The initializer that makes 500-1000-node fields solvable;
  /// falls back to kRandom when the deployment has no anchors.
  kDvHopSeeded,
};

/// Full pipeline configuration. The defaults reproduce the paper's grass-grid
/// campaign followed by centralized LSS.
struct PipelineConfig {
  MeasurementSource source = MeasurementSource::kAcousticRanging;
  Solver solver = Solver::kCentralizedLss;

  /// Ranging-campaign settings (kAcousticRanging only). Defaults to the
  /// grass-field campaign of Section 3.6 / Figure 5.
  sim::FieldExperimentConfig campaign = sim::grass_campaign_config();

  /// Synthetic noise model (kSyntheticGaussian, and the augmentation pass).
  sim::GaussianNoiseModel noise;

  /// Fill in synthetic measurements for in-range pairs the campaign missed
  /// (the Figure 15 / Figure 25 augmentation). `max_augmented` bounds how
  /// many are added; 0 = unbounded.
  bool augment_missing = false;
  std::size_t max_augmented = 0;

  /// Per-solver options; only the selected solver's block is read.
  core::MultilaterationOptions multilateration;
  core::LssOptions lss;
  core::DistributedLssOptions distributed;
  /// Root node whose frame the distributed alignment propagates from.
  core::NodeId distributed_root = 0;

  /// Centralized-LSS initialization strategy (see LssInit). kDvHopSeeded is
  /// what the large-scale sweeps use; the default reproduces the paper.
  LssInit lss_init = LssInit::kRandom;
  /// DV-hop settings for the kDvHopSeeded initializer.
  core::DvHopOptions dv_hop;
};

/// Everything one pipeline invocation produced.
struct PipelineRun {
  /// The measurement set the solver consumed (after filtering/augmentation).
  core::MeasurementSet measurements;
  /// Edges contributed by the augmentation pass (0 unless augment_missing).
  std::size_t augmented_edges = 0;
  /// Node pairs the acoustic campaign never simulated because they lie beyond
  /// its range cutoff (kAcousticRanging only; 0 for the synthetic source).
  /// Nonzero values explain sparse measurement sets on large fields.
  std::size_t skipped_pairs = 0;
  /// Mean |detection offset| of the campaign's raw estimates, in detector
  /// samples (kAcousticRanging only; 0 for the synthetic source). The
  /// per-trial detector-accuracy diagnostic the `detectors` sweep reports:
  /// ~1 for the NCC matched filter on clean fields, tens to hundreds when a
  /// detector latches echoes instead of first arrivals.
  double mean_abs_detection_offset_samples = 0.0;
  /// Per-node position estimates; nullopt = the solver could not place the
  /// node (no measurements, unreachable from the root, too few anchors, ...).
  core::LocalizationResult estimates;
  /// Final stress E of the centralized LSS solve. NaN for the other two
  /// solvers: multilateration minimizes per node, and distributed LSS has no
  /// single global stress (each local map minimizes its own).
  double stress = std::numeric_limits<double>::quiet_NaN();
  /// Error metrics against ground truth. Relative-frame solvers are best-fit
  /// aligned first (Section 4.2.2); multilateration is compared directly and
  /// anchors are excluded from its scoring.
  eval::LocalizationReport report;

  /// Wall-clock stage budget, seconds: measurement acquisition (campaign or
  /// synthetic + augmentation), solver, and evaluation/alignment. Always
  /// populated, telemetry enabled or not. NON-DETERMINISTIC -- wall time
  /// varies run to run, so these never enter golden aggregates; they feed the
  /// diagnostic stage-budget table and the failure reports only.
  double measure_wall_s = 0.0;
  double solve_wall_s = 0.0;
  double eval_wall_s = 0.0;
};

/// Facade wiring RangingService -> Multilateration / Lss / DistributedLss.
///
/// Thread safety: run(), measure(), and run_on_measurements() are const and
/// read only the immutable config; the solver stack below them keeps no
/// mutable global state (audited for the experiment runner: the only statics
/// in src/ are factory functions and the mutex-guarded scenario registry).
/// One pipeline instance may therefore be shared across threads, provided
/// each concurrent call uses its own Rng. Orthogonally,
/// `config.campaign.threads` parallelizes *inside* one acoustic measurement
/// campaign (the (round, source) turns, each on its own counter-indexed RNG
/// substream); both levels are byte-deterministic, so they compose freely
/// with the trial-level runner.
class LocalizationPipeline {
 public:
  LocalizationPipeline() : LocalizationPipeline(PipelineConfig{}) {}
  explicit LocalizationPipeline(PipelineConfig config);

  /// Runs the full pipeline on a deployment: measure, solve, evaluate.
  PipelineRun run(const core::Deployment& deployment, resloc::math::Rng& rng) const;

  /// Measurement acquisition only (campaign or synthetic, plus augmentation).
  /// `skipped_pairs`, when given, receives the campaign's out-of-range pair
  /// count (see PipelineRun::skipped_pairs); `mean_abs_detection_offset`
  /// likewise receives the campaign's mean |detection offset| in samples
  /// (see PipelineRun::mean_abs_detection_offset_samples).
  core::MeasurementSet measure(const core::Deployment& deployment, resloc::math::Rng& rng,
                               std::size_t* augmented_edges = nullptr,
                               std::size_t* skipped_pairs = nullptr,
                               double* mean_abs_detection_offset = nullptr) const;

  /// Solve + evaluate over a caller-provided measurement set (e.g. replayed
  /// field data). The deployment supplies ground truth and anchor positions.
  PipelineRun run_on_measurements(const core::Deployment& deployment,
                                  core::MeasurementSet measurements,
                                  resloc::math::Rng& rng) const;

  const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
};

}  // namespace resloc::pipeline
