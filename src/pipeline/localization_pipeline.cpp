#include "pipeline/localization_pipeline.hpp"

#include <utility>

namespace resloc::pipeline {

LocalizationPipeline::LocalizationPipeline(PipelineConfig config) : config_(std::move(config)) {}

core::MeasurementSet LocalizationPipeline::measure(const core::Deployment& deployment,
                                                   resloc::math::Rng& rng,
                                                   std::size_t* augmented_edges,
                                                   std::size_t* skipped_pairs) const {
  core::MeasurementSet measurements;
  std::size_t skipped = 0;
  switch (config_.source) {
    case MeasurementSource::kAcousticRanging: {
      const sim::FieldExperimentData data =
          sim::run_field_experiment(deployment, config_.campaign, rng);
      measurements = data.to_measurement_set(deployment.size());
      skipped = data.skipped_pairs;
      break;
    }
    case MeasurementSource::kSyntheticGaussian:
      measurements = sim::gaussian_measurements(deployment, config_.noise, rng);
      break;
  }
  measurements.set_node_count(deployment.size());
  if (skipped_pairs != nullptr) {
    *skipped_pairs = skipped;
  }

  std::size_t added = 0;
  if (config_.augment_missing) {
    added = sim::augment_with_gaussian(measurements, deployment, config_.noise, rng,
                                       config_.max_augmented);
  }
  if (augmented_edges != nullptr) {
    *augmented_edges = added;
  }
  return measurements;
}

PipelineRun LocalizationPipeline::run(const core::Deployment& deployment,
                                      resloc::math::Rng& rng) const {
  std::size_t augmented = 0;
  std::size_t skipped = 0;
  core::MeasurementSet measurements = measure(deployment, rng, &augmented, &skipped);
  PipelineRun out = run_on_measurements(deployment, std::move(measurements), rng);
  out.augmented_edges = augmented;
  out.skipped_pairs = skipped;
  return out;
}

PipelineRun LocalizationPipeline::run_on_measurements(const core::Deployment& deployment,
                                                      core::MeasurementSet measurements,
                                                      resloc::math::Rng& rng) const {
  PipelineRun out;
  out.measurements = std::move(measurements);
  out.measurements.set_node_count(deployment.size());

  bool align_for_eval = true;
  std::vector<core::NodeId> exclude;

  switch (config_.solver) {
    case Solver::kMultilateration: {
      out.estimates = core::localize_by_multilateration(deployment, out.measurements,
                                                        config_.multilateration, rng);
      // Multilateration output is absolute; anchors know their position and
      // are not scored (the paper reports non-anchor error only).
      align_for_eval = false;
      exclude = deployment.anchors;
      break;
    }
    case Solver::kCentralizedLss: {
      const core::LssResult lss = core::localize_lss(out.measurements, config_.lss, rng);
      out.stress = lss.stress;
      std::vector<bool> has_measurement(deployment.size(), false);
      for (const core::DistanceEdge& edge : out.measurements.edges()) {
        if (edge.i < has_measurement.size()) has_measurement[edge.i] = true;
        if (edge.j < has_measurement.size()) has_measurement[edge.j] = true;
      }
      out.estimates.positions.assign(deployment.size(), std::nullopt);
      for (std::size_t id = 0; id < deployment.size(); ++id) {
        // Nodes with no measurement are only touched by the soft constraint;
        // their coordinates are meaningless, so report them unlocalized.
        if (id < lss.positions.size() && has_measurement[id]) {
          out.estimates.positions[id] = lss.positions[id];
        }
      }
      break;
    }
    case Solver::kDistributedLss: {
      const core::DistributedLssResult dist = core::localize_distributed(
          out.measurements, config_.distributed_root, config_.distributed, rng);
      out.estimates = dist.result;
      out.estimates.positions.resize(deployment.size());
      break;
    }
  }

  out.report = eval::evaluate_localization(out.estimates.positions, deployment.positions,
                                           align_for_eval, exclude);
  return out;
}

}  // namespace resloc::pipeline
