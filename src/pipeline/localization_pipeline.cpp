#include "pipeline/localization_pipeline.hpp"

#include <chrono>
#include <utility>

#include "obs/telemetry.hpp"

namespace resloc::pipeline {

namespace {

/// Seconds elapsed since `start`, for the always-on stage walls. Plain
/// std::chrono rather than the obs clock: the stage budget must work without
/// telemetry enabled, and it is diagnostic-only (never in golden output).
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

LocalizationPipeline::LocalizationPipeline(PipelineConfig config) : config_(std::move(config)) {}

core::MeasurementSet LocalizationPipeline::measure(const core::Deployment& deployment,
                                                   resloc::math::Rng& rng,
                                                   std::size_t* augmented_edges,
                                                   std::size_t* skipped_pairs,
                                                   double* mean_abs_detection_offset) const {
  RESLOC_SPAN("pipeline/measure");
  core::MeasurementSet measurements;
  std::size_t skipped = 0;
  double offset_samples = 0.0;
  switch (config_.source) {
    case MeasurementSource::kAcousticRanging: {
      const sim::FieldExperimentData data =
          sim::run_field_experiment(deployment, config_.campaign, rng);
      measurements = data.to_measurement_set(deployment.size());
      skipped = data.skipped_pairs;
      offset_samples = data.mean_abs_detection_offset_samples();
      break;
    }
    case MeasurementSource::kSyntheticGaussian:
      measurements = sim::gaussian_measurements(deployment, config_.noise, rng);
      break;
  }
  measurements.set_node_count(deployment.size());
  if (skipped_pairs != nullptr) {
    *skipped_pairs = skipped;
  }
  if (mean_abs_detection_offset != nullptr) {
    *mean_abs_detection_offset = offset_samples;
  }

  std::size_t added = 0;
  if (config_.augment_missing) {
    added = sim::augment_with_gaussian(measurements, deployment, config_.noise, rng,
                                       config_.max_augmented);
  }
  if (augmented_edges != nullptr) {
    *augmented_edges = added;
  }
  return measurements;
}

PipelineRun LocalizationPipeline::run(const core::Deployment& deployment,
                                      resloc::math::Rng& rng) const {
  std::size_t augmented = 0;
  std::size_t skipped = 0;
  double offset_samples = 0.0;
  const auto measure_start = std::chrono::steady_clock::now();
  core::MeasurementSet measurements =
      measure(deployment, rng, &augmented, &skipped, &offset_samples);
  const double measure_wall_s = seconds_since(measure_start);
  PipelineRun out = run_on_measurements(deployment, std::move(measurements), rng);
  out.measure_wall_s = measure_wall_s;
  out.augmented_edges = augmented;
  out.skipped_pairs = skipped;
  out.mean_abs_detection_offset_samples = offset_samples;
  return out;
}

PipelineRun LocalizationPipeline::run_on_measurements(const core::Deployment& deployment,
                                                      core::MeasurementSet measurements,
                                                      resloc::math::Rng& rng) const {
  PipelineRun out;
  out.measurements = std::move(measurements);
  out.measurements.set_node_count(deployment.size());

  bool align_for_eval = true;
  bool degrade_placed = false;
  std::vector<core::NodeId> exclude;

  const auto solve_start = std::chrono::steady_clock::now();
  {
    RESLOC_SPAN("pipeline/solve");
    switch (config_.solver) {
      case Solver::kMultilateration: {
        out.estimates = core::localize_by_multilateration(deployment, out.measurements,
                                                          config_.multilateration, rng);
        // Multilateration output is absolute; anchors know their position and
        // are not scored (the paper reports non-anchor error only).
        align_for_eval = false;
        exclude = deployment.anchors;
        break;
      }
      case Solver::kCentralizedLss: {
        core::LssResult lss;
        if (config_.lss_init == LssInit::kDvHopSeeded && !deployment.anchors.empty()) {
          // Coarse absolute positions by DV-hop, refined by one LSS descent.
          // Nodes DV-hop could not place (unreachable from every anchor) fall
          // back to a random draw in the init box.
          const core::DvHopResult dv =
              core::localize_dv_hop(deployment, out.measurements, config_.dv_hop, rng);
          std::vector<resloc::math::Vec2> initial(deployment.size());
          for (std::size_t id = 0; id < deployment.size(); ++id) {
            if (id < dv.result.positions.size() && dv.result.positions[id].has_value()) {
              initial[id] = *dv.result.positions[id];
            } else {
              initial[id] = resloc::math::Vec2{rng.uniform(0.0, config_.lss.init_box_m),
                                               rng.uniform(0.0, config_.lss.init_box_m)};
            }
          }
          lss = core::localize_lss_from(out.measurements, std::move(initial), config_.lss, rng);
        } else {
          lss = core::localize_lss(out.measurements, config_.lss, rng);
        }
        out.stress = lss.stress;
        // A solve that hit non-finite stress stopped at the last finite
        // configuration: positions exist but carry low confidence.
        degrade_placed = lss.non_finite;
        std::vector<bool> has_measurement(deployment.size(), false);
        for (const core::DistanceEdge& edge : out.measurements.edges()) {
          if (edge.i < has_measurement.size()) has_measurement[edge.i] = true;
          if (edge.j < has_measurement.size()) has_measurement[edge.j] = true;
        }
        out.estimates.positions.assign(deployment.size(), std::nullopt);
        for (std::size_t id = 0; id < deployment.size(); ++id) {
          // Nodes with no measurement are only touched by the soft constraint;
          // their coordinates are meaningless, so report them unlocalized.
          if (id < lss.positions.size() && has_measurement[id]) {
            out.estimates.positions[id] = lss.positions[id];
          }
        }
        break;
      }
      case Solver::kDistributedLss: {
        const core::DistributedLssResult dist = core::localize_distributed(
            out.measurements, config_.distributed_root, config_.distributed, rng);
        out.estimates = dist.result;
        out.estimates.positions.resize(deployment.size());
        break;
      }
    }
  }
  out.solve_wall_s = seconds_since(solve_start);

  // Normalize per-node status to the positions. Multilateration fills its
  // own (including kDegraded under-constrained fixes); the LSS solvers
  // predate the status contract and leave it empty, so derive it here --
  // with every placed node demoted to kDegraded when the solve itself was
  // flagged (non-finite stress).
  if (out.estimates.status.size() != out.estimates.positions.size()) {
    out.estimates.status.assign(out.estimates.positions.size(),
                                core::LocalizationStatus::kUnlocalized);
    for (std::size_t id = 0; id < out.estimates.positions.size(); ++id) {
      if (out.estimates.positions[id].has_value()) {
        out.estimates.status[id] = degrade_placed ? core::LocalizationStatus::kDegraded
                                                  : core::LocalizationStatus::kOk;
      }
    }
  }

  const auto eval_start = std::chrono::steady_clock::now();
  {
    RESLOC_SPAN("pipeline/eval");
    out.report = eval::evaluate_localization(out.estimates.positions, deployment.positions,
                                             align_for_eval, exclude);
  }
  out.eval_wall_s = seconds_since(eval_start);
  return out;
}

}  // namespace resloc::pipeline
