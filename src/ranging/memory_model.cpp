#include "ranging/memory_model.hpp"

#include <cmath>

namespace resloc::ranging {

namespace {
std::size_t samples_for_range(double max_range_m, double sample_rate_hz,
                              double speed_of_sound_mps) {
  return static_cast<std::size_t>(
      std::ceil(max_range_m / speed_of_sound_mps * sample_rate_hz));
}
}  // namespace

std::size_t hardware_detector_buffer_bytes(double max_range_m, double sample_rate_hz,
                                           double speed_of_sound_mps) {
  const std::size_t samples = samples_for_range(max_range_m, sample_rate_hz, speed_of_sound_mps);
  return (samples + 1) / 2;  // 4 bits per offset
}

std::size_t software_detector_buffer_bytes(double max_range_m, double sample_rate_hz,
                                           double speed_of_sound_mps,
                                           std::size_t bits_per_sample) {
  const std::size_t samples = samples_for_range(max_range_m, sample_rate_hz, speed_of_sound_mps);
  return (samples * bits_per_sample + 7) / 8;
}

double hardware_detector_max_range_m(std::size_t budget_bytes, double sample_rate_hz,
                                     double speed_of_sound_mps) {
  const double samples = static_cast<double>(budget_bytes) * 2.0;  // 4 bits each
  return samples / sample_rate_hz * speed_of_sound_mps;
}

}  // namespace resloc::ranging
