// Directional measurement storage plus the consistency checks of Section 3.5.
//
// The table keeps every raw directional estimate (from -> to may differ from
// to -> from). Consistency checking then:
//   - discards bidirectional pairs whose two filtered estimates disagree
//     beyond a tolerance ("bidirectional range estimates between a pair of
//     nodes are discarded if they are inconsistent"),
//   - flags triples violating the triangle inequality ("if three nodes have
//     measurements to each other, we use the triangle inequality to identify
//     inconsistent one"); the paper cautions that no check can tell *which*
//     measurement is wrong, so triangle violations are reported rather than
//     silently dropped.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ranging/statistical_filter.hpp"

namespace resloc::ranging {

using NodeId = std::uint32_t;

/// A filtered symmetric pair estimate.
struct PairEstimate {
  NodeId a = 0;
  NodeId b = 0;  ///< a < b always
  double distance_m = 0.0;
  bool bidirectional = false;  ///< both directions measured and consistent
};

/// A triangle-inequality violation among three filtered pair estimates.
struct TriangleViolation {
  NodeId a = 0, b = 0, c = 0;
  double ab = 0.0, bc = 0.0, ca = 0.0;
};

/// Raw directional measurement store.
class MeasurementTable {
 public:
  /// Records one raw estimate of the distance from `from` to `to`.
  void add(NodeId from, NodeId to, double distance_m);

  /// All raw estimates for the direction from -> to (empty if none).
  const std::vector<double>& directional(NodeId from, NodeId to) const;

  /// Filtered estimate for the direction from -> to. `stats`, when given,
  /// receives the robust-rejection diagnostics of the underlying
  /// filter_measurements call.
  std::optional<double> filtered(NodeId from, NodeId to, const FilterPolicy& policy,
                                 FilterStats* stats = nullptr) const;

  /// Number of directed pairs with at least one measurement.
  std::size_t directed_pair_count() const { return table_.size(); }

  /// Total raw measurements stored.
  std::size_t measurement_count() const { return total_; }

  /// Distinct node ids seen.
  std::vector<NodeId> nodes() const;

  /// Symmetric pair estimates: for each unordered pair with at least one
  /// direction measured, filter both directions. If both exist and differ by
  /// more than `bidirectional_tolerance_m`, the pair is *discarded*. If both
  /// exist and agree, the estimate is their average and marked bidirectional.
  /// One-direction pairs pass through (the paper keeps them: "sometimes it
  /// may be beneficial to retain suspicious measurements due to the scarcity
  /// of available data").
  std::vector<PairEstimate> symmetric_estimates(const FilterPolicy& policy,
                                                double bidirectional_tolerance_m) const;

  /// Subset of symmetric_estimates with bidirectional confirmation only
  /// (the Figure 7 filter).
  std::vector<PairEstimate> bidirectional_only(const FilterPolicy& policy,
                                               double bidirectional_tolerance_m) const;

  /// Table-wide robust-filter accounting under `policy`: how many raw
  /// measurements the vote and the MAD stage rejected, and how many directed
  /// pairs ended with no consensus at all. This is what makes a filtering
  /// policy diagnosable on a real campaign -- "the vote silenced 40% of the
  /// 22-30 m links" is visible here, not inferable from the estimate list.
  struct RobustReport {
    std::size_t measurements = 0;         ///< raw measurements considered
    std::size_t vote_rejected = 0;        ///< dropped by the consistency vote
    std::size_t mad_rejected = 0;         ///< dropped by MAD rejection
    std::size_t directed_pairs = 0;       ///< directed pairs examined
    std::size_t pairs_without_consensus = 0;  ///< pairs the vote nulled
  };
  RobustReport robust_report(const FilterPolicy& policy) const;

 private:
  std::map<std::pair<NodeId, NodeId>, std::vector<double>> table_;
  std::size_t total_ = 0;
};

/// Scans all triples among the given pair estimates and returns the triangle-
/// inequality violations at the given relative tolerance.
std::vector<TriangleViolation> find_triangle_violations(const std::vector<PairEstimate>& pairs,
                                                        double tolerance = 0.05);

/// Removes the pair estimates that participate in at least `min_violations`
/// triangle violations. Conservative by design: a measurement seen
/// inconsistent with several independent triangles is likely the bad one.
std::vector<PairEstimate> drop_triangle_offenders(std::vector<PairEstimate> pairs,
                                                  double tolerance = 0.05,
                                                  int min_violations = 2);

}  // namespace resloc::ranging
