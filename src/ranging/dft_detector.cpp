#include "ranging/dft_detector.hpp"

#include <cassert>
#include <cmath>

#include "math/constants.hpp"

namespace resloc::ranging {

int nearest_bin(double tone_frequency_hz, double sample_rate_hz, std::size_t window) {
  return static_cast<int>(
      std::lround(tone_frequency_hz / sample_rate_hz * static_cast<double>(window)));
}

double direct_bin_power(const double* samples, std::size_t count, std::size_t window, int bin,
                        std::size_t phase0) {
  double re = 0.0, im = 0.0;
  const double step = 2.0 * resloc::math::kPi * static_cast<double>(bin) /
                      static_cast<double>(window);
  for (std::size_t i = 0; i < count; ++i) {
    const double angle = step * static_cast<double>((phase0 + i) % window);
    re += samples[i] * std::cos(angle);
    im -= samples[i] * std::sin(angle);
  }
  return re * re + im * im;
}

DirectDftFilter::DirectDftFilter(std::size_t window, int bin)
    : samples_(window, 0.0), bin_(bin) {
  assert(window > 0);
}

double DirectDftFilter::step(double sample) {
  const double old = samples_[n_];
  samples_[n_] = sample;
  energy_ += sample * sample - old * old;
  n_ = (n_ + 1) % samples_.size();
  // Recompute the bin from scratch: O(window) multiplies per sample. Sample t
  // lives at ring position t mod window, so the storage index doubles as the
  // twiddle phase -- the same convention the sliding filter uses, making the
  // two comparable term by term.
  return direct_bin_power(samples_.data(), samples_.size(), samples_.size(), bin_);
}

void DirectDftFilter::reset() {
  samples_.assign(samples_.size(), 0.0);
  n_ = 0;
  energy_ = 0.0;
}

GoertzelSlidingFilter::GoertzelSlidingFilter(std::size_t window, int bin)
    : samples_(window, 0.0), cos_(window), sin_(window), bin_(bin) {
  assert(window > 0);
  for (std::size_t i = 0; i < window; ++i) {
    const double angle = 2.0 * resloc::math::kPi * static_cast<double>(bin) *
                         static_cast<double>(i) / static_cast<double>(window);
    cos_[i] = std::cos(angle);
    sin_[i] = std::sin(angle);
  }
}

double GoertzelSlidingFilter::step(double sample) {
  const double old = samples_[n_];
  const double delta = sample - old;
  samples_[n_] = sample;
  // One complex multiply-accumulate: the new sample and the one it evicts sit
  // a whole window apart, so they share the twiddle factor at index n_.
  re_ += delta * cos_[n_];
  im_ -= delta * sin_[n_];
  energy_ += sample * sample - old * old;
  n_ = (n_ + 1) % samples_.size();
  if (++steps_since_resync_ >= kResyncPeriod) resync();
  return re_ * re_ + im_ * im_;
}

void GoertzelSlidingFilter::resync() {
  // Exact recomputation of the incremental sums; kills accumulated rounding
  // (and the energy sum's catastrophic-cancellation residue) so the filter
  // tracks DirectDftFilter to ~1e-12 indefinitely.
  re_ = 0.0;
  im_ = 0.0;
  energy_ = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    re_ += samples_[i] * cos_[i];
    im_ -= samples_[i] * sin_[i];
    energy_ += samples_[i] * samples_[i];
  }
  steps_since_resync_ = 0;
}

void GoertzelSlidingFilter::reset() {
  samples_.assign(samples_.size(), 0.0);
  n_ = 0;
  steps_since_resync_ = 0;
  re_ = im_ = energy_ = 0.0;
}

GoertzelToneDetector::GoertzelToneDetector(double tone_frequency_hz, double sample_rate_hz,
                                           std::size_t window, double noise_scale)
    : filter_(window, nearest_bin(tone_frequency_hz, sample_rate_hz, window)),
      noise_scale_(noise_scale) {}

double GoertzelToneDetector::step(double sample) {
  const double band_power = filter_.step(sample);
  // Same automatic noise estimate as DftToneDetector: Parseval window energy
  // scaled by the correlation margin, plus the tiny absolute floor against
  // cancellation residue on an all-zero window.
  constexpr double kNumericFloor = 1e-6;
  return band_power - noise_scale_ * filter_.window_energy() - kNumericFloor;
}

void GoertzelToneDetector::run_block(const double* x, std::size_t n, double* metric) {
  for (std::size_t i = 0; i < n; ++i) metric[i] = step(x[i]);
}

void GoertzelToneDetector::reset() { filter_.reset(); }

void SlidingDftFilter::reset() {
  samples_.fill(0.0);
  n_ = 0;
  k_ = 0;
  re4_ = im4_ = re6_ = im6_ = 0.0;
  energy_ = 0.0;
}

BandPowers SlidingDftFilter::filter(double sample) {
  // Figure 9: "sample -= samples[n], samples[n] += sample" -- i.e. compute
  // the delta against the value leaving the window and store the new value.
  const double old = samples_[n_];
  const double delta = sample - old;
  samples_[n_] = sample;
  energy_ += sample * sample - old * old;

  switch (n_ % 4) {
    case 0: re4_ += delta; break;
    case 1: im4_ += delta; break;
    case 2: re4_ -= delta; break;
    default: im4_ -= delta; break;
  }
  switch (k_) {
    case 0: re6_ += 2.0 * delta; break;
    case 1: re6_ += delta; im6_ += delta; break;
    case 2: re6_ -= delta; im6_ += delta; break;
    case 3: re6_ -= 2.0 * delta; break;
    case 4: re6_ -= delta; im6_ -= delta; break;
    default: re6_ += delta; im6_ -= delta; break;
  }

  n_ = (n_ + 1) % kWindow;
  k_ = (k_ + 1) % 6;

  return {re4_ * re4_ + im4_ * im4_, (re6_ * re6_ + 3.0 * im6_ * im6_) / 2.0};
}

DftToneDetector::DftToneDetector(int band, double noise_scale)
    : band_(band), noise_scale_(noise_scale) {
  assert(band == 4 || band == 6);
}

double DftToneDetector::step(double sample) {
  const BandPowers powers = filter_.filter(sample);
  // The Figure 9 scaling makes band_fs6 carry twice the power of band_fs4
  // for equivalent tones; normalize so one noise estimate fits both.
  const double band_power = band_ == 4 ? powers.band_fs4 : powers.band_fs6 / 2.0;
  // Parseval: the window's total energy equals the mean DFT bin power, which
  // is the automatic noise estimate the paper describes. The tiny absolute
  // floor keeps sliding-update cancellation residue from reading as a
  // positive detection on an all-zero window.
  constexpr double kNumericFloor = 1e-6;
  return band_power - noise_scale_ * filter_.window_energy() - kNumericFloor;
}

std::vector<double> DftToneDetector::run(const std::vector<double>& waveform) {
  std::vector<double> metric;
  run_into(waveform, metric);
  return metric;
}

void DftToneDetector::run_into(const std::vector<double>& waveform,
                               std::vector<double>& metric) {
  metric.clear();
  metric.reserve(waveform.size());
  for (double s : waveform) metric.push_back(step(s));
}

int DftToneDetector::count_detections(const std::vector<double>& metric, int min_run,
                                      int merge_gap) {
  // A detection region opens when a run of `min_run` positive samples occurs
  // outside any region, and closes after more than `merge_gap` consecutive
  // non-positive samples; shorter gaps merge runs into one detection.
  int detections = 0;
  int run = 0;
  int silence = 0;
  bool in_region = false;
  for (double m : metric) {
    if (m > 0.0) {
      ++run;
      silence = 0;
      if (!in_region && run >= min_run) {
        in_region = true;
        ++detections;
      }
    } else {
      run = 0;
      ++silence;
      if (in_region && silence > merge_gap) in_region = false;
    }
  }
  return detections;
}

void DftToneDetector::reset() { filter_.reset(); }

}  // namespace resloc::ranging
