#include "ranging/dft_detector.hpp"

#include <cassert>

namespace resloc::ranging {

void SlidingDftFilter::reset() {
  samples_.fill(0.0);
  n_ = 0;
  k_ = 0;
  re4_ = im4_ = re6_ = im6_ = 0.0;
  energy_ = 0.0;
}

BandPowers SlidingDftFilter::filter(double sample) {
  // Figure 9: "sample -= samples[n], samples[n] += sample" -- i.e. compute
  // the delta against the value leaving the window and store the new value.
  const double old = samples_[n_];
  const double delta = sample - old;
  samples_[n_] = sample;
  energy_ += sample * sample - old * old;

  switch (n_ % 4) {
    case 0: re4_ += delta; break;
    case 1: im4_ += delta; break;
    case 2: re4_ -= delta; break;
    default: im4_ -= delta; break;
  }
  switch (k_) {
    case 0: re6_ += 2.0 * delta; break;
    case 1: re6_ += delta; im6_ += delta; break;
    case 2: re6_ -= delta; im6_ += delta; break;
    case 3: re6_ -= 2.0 * delta; break;
    case 4: re6_ -= delta; im6_ -= delta; break;
    default: re6_ += delta; im6_ -= delta; break;
  }

  n_ = (n_ + 1) % kWindow;
  k_ = (k_ + 1) % 6;

  return {re4_ * re4_ + im4_ * im4_, (re6_ * re6_ + 3.0 * im6_ * im6_) / 2.0};
}

DftToneDetector::DftToneDetector(int band, double noise_scale)
    : band_(band), noise_scale_(noise_scale) {
  assert(band == 4 || band == 6);
}

double DftToneDetector::step(double sample) {
  const BandPowers powers = filter_.filter(sample);
  // The Figure 9 scaling makes band_fs6 carry twice the power of band_fs4
  // for equivalent tones; normalize so one noise estimate fits both.
  const double band_power = band_ == 4 ? powers.band_fs4 : powers.band_fs6 / 2.0;
  // Parseval: the window's total energy equals the mean DFT bin power, which
  // is the automatic noise estimate the paper describes. The tiny absolute
  // floor keeps sliding-update cancellation residue from reading as a
  // positive detection on an all-zero window.
  constexpr double kNumericFloor = 1e-6;
  return band_power - noise_scale_ * filter_.window_energy() - kNumericFloor;
}

std::vector<double> DftToneDetector::run(const std::vector<double>& waveform) {
  std::vector<double> metric;
  metric.reserve(waveform.size());
  for (double s : waveform) metric.push_back(step(s));
  return metric;
}

int DftToneDetector::count_detections(const std::vector<double>& metric, int min_run,
                                      int merge_gap) {
  // A detection region opens when a run of `min_run` positive samples occurs
  // outside any region, and closes after more than `merge_gap` consecutive
  // non-positive samples; shorter gaps merge runs into one detection.
  int detections = 0;
  int run = 0;
  int silence = 0;
  bool in_region = false;
  for (double m : metric) {
    if (m > 0.0) {
      ++run;
      silence = 0;
      if (!in_region && run >= min_run) {
        in_region = true;
        ++detections;
      }
    } else {
      run = 0;
      ++silence;
      if (in_region && silence > merge_gap) in_region = false;
    }
  }
  return detections;
}

void DftToneDetector::reset() { filter_.reset(); }

}  // namespace resloc::ranging
