#include "ranging/signal_detection.hpp"

#include <algorithm>
#include <cassert>

#include "math/simd_dispatch.hpp"

#if RESLOC_X86_SIMD
#include <immintrin.h>
#endif

namespace resloc::ranging {

namespace {

#if RESLOC_X86_SIMD

/// AVX-512 saturating 4-bit counter update: 64 counters per iteration. The
/// fired mask and the < 15 saturation test are byte-mask compares, the
/// update one masked packed-byte add.
__attribute__((target("avx512f,avx512bw")))
void accumulate_fired_avx512(std::uint8_t* s, const std::uint8_t* fired, std::size_t n) {
  const __m512i one = _mm512_set1_epi8(1);
  const __m512i fifteen = _mm512_set1_epi8(15);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i sv = _mm512_loadu_si512(s + i);
    const __mmask64 hit =
        _mm512_test_epi8_mask(_mm512_loadu_si512(fired + i), _mm512_set1_epi8(-1)) &
        _mm512_cmplt_epu8_mask(sv, fifteen);
    _mm512_storeu_si512(s + i, _mm512_mask_add_epi8(sv, hit, sv, one));
  }
  for (; i < n; ++i) {
    s[i] += static_cast<std::uint8_t>((fired[i] != 0) & (s[i] < 15));
  }
}

/// AVX-512 fused bernoulli-compare + counter update: eight u64 threshold
/// compares assemble one 64-bit byte mask, then the same masked add.
__attribute__((target("avx512f,avx512bw")))
void accumulate_bernoulli_avx512(std::uint8_t* s, const std::uint64_t* bits,
                                 const std::uint64_t* thresholds, std::size_t n) {
  const __m512i one = _mm512_set1_epi8(1);
  const __m512i fifteen = _mm512_set1_epi8(15);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t hit_bits = 0;
    for (int k = 0; k < 8; ++k) {
      const __mmask8 lt =
          _mm512_cmplt_epu64_mask(_mm512_loadu_si512(bits + i + 8 * k),
                                  _mm512_loadu_si512(thresholds + i + 8 * k));
      hit_bits |= static_cast<std::uint64_t>(lt) << (8 * k);
    }
    const __m512i sv = _mm512_loadu_si512(s + i);
    const __mmask64 hit = hit_bits & _mm512_cmplt_epu8_mask(sv, fifteen);
    _mm512_storeu_si512(s + i, _mm512_mask_add_epi8(sv, hit, sv, one));
  }
  for (; i < n; ++i) {
    s[i] += static_cast<std::uint8_t>((bits[i] < thresholds[i]) & (s[i] < 15));
  }
}

#endif  // RESLOC_X86_SIMD

/// Saturating 4-bit counter update for a whole chirp window: one byte add
/// per sample, no branches.
void accumulate_fired(std::uint8_t* s, const std::uint8_t* fired, std::size_t n) {
#if RESLOC_X86_SIMD
  if (resloc::math::cpu_has_avx512_kernels()) {
    accumulate_fired_avx512(s, fired, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    s[i] += static_cast<std::uint8_t>((fired[i] != 0) & (s[i] < 15));
  }
}

/// Fused bernoulli-compare + saturating counter update.
void accumulate_bernoulli(std::uint8_t* s, const std::uint64_t* bits,
                          const std::uint64_t* thresholds, std::size_t n) {
#if RESLOC_X86_SIMD
  if (resloc::math::cpu_has_avx512_kernels()) {
    accumulate_bernoulli_avx512(s, bits, thresholds, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    s[i] += static_cast<std::uint8_t>((bits[i] < thresholds[i]) & (s[i] < 15));
  }
}

}  // namespace

SignalAccumulator::SignalAccumulator(std::size_t num_samples) : samples_(num_samples, 0) {}

void SignalAccumulator::reset(std::size_t num_samples) {
  samples_.assign(num_samples, 0);
  chirps_ = 0;
}

void SignalAccumulator::record_chirp(const std::vector<bool>& detector_output) {
  assert(detector_output.size() == samples_.size());
  if (chirps_ >= kMaxChirps) return;  // 4-bit counters are full
  ++chirps_;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (detector_output[i] && samples_[i] < 15) ++samples_[i];
  }
}

void SignalAccumulator::record_chirp_block(const std::uint8_t* fired, std::size_t n) {
  assert(n == samples_.size());
  if (chirps_ >= kMaxChirps) return;  // 4-bit counters are full
  ++chirps_;
  accumulate_fired(samples_.data(), fired, n);
}

void SignalAccumulator::record_chirp_bernoulli(resloc::math::Rng& rng,
                                               const std::uint64_t* thresholds,
                                               std::uint64_t* bits_scratch) {
  const std::size_t n = samples_.size();
  // The scalar reference draws one bernoulli per sample regardless of whether
  // the counters are full; keep that draw order so RNG streams stay aligned.
  rng.fill_uniform_bits_block(bits_scratch, n);
  if (chirps_ >= kMaxChirps) return;
  ++chirps_;
  accumulate_bernoulli(samples_.data(), bits_scratch, thresholds, n);
}

int detect_signal(const std::vector<std::uint8_t>& samples, const DetectionParams& params) {
  return detect_signal(samples, params, 0);
}

int detect_signal(const std::vector<std::uint8_t>& samples, const DetectionParams& params,
                  int start_index) {
  const int n = static_cast<int>(samples.size());
  const int m = params.window;
  if (m <= 0 || start_index < 0 || start_index + m > n) return -1;

  const auto qualifies = [&](int i) { return samples[static_cast<std::size_t>(i)] >= params.threshold; };

  // Prime the sliding count over the first window [start_index, start_index + m).
  int count = 0;
  for (int i = start_index; i < start_index + m; ++i) {
    if (qualifies(i)) ++count;
  }
  if (count >= params.min_detections && qualifies(start_index)) return start_index;

  // Slide: window [start, start + m).
  for (int start = start_index + 1; start + m <= n; ++start) {
    if (qualifies(start - 1)) --count;
    if (qualifies(start + m - 1)) ++count;
    if (count >= params.min_detections && qualifies(start)) return start;
  }
  return -1;
}

SignalScanner::SignalScanner(const std::vector<std::uint8_t>& samples,
                             const DetectionParams& params)
    : samples_(samples), params_(params) {}

int SignalScanner::next() {
  const int n = static_cast<int>(samples_.size());
  const int m = params_.window;
  if (m <= 0) return -1;

  const auto qualifies = [&](int i) {
    return samples_[static_cast<std::size_t>(i)] >= params_.threshold;
  };

  // Invariant: whenever primed_, count_ is the number of qualifying samples
  // in [start_, start_ + m). The count is primed once and slid one position
  // per examined window -- including across next() boundaries, which is what
  // makes the whole rejection loop O(n) instead of O(window * rejections).
  while (start_ + m <= n) {
    if (!primed_) {
      count_ = 0;
      for (int i = start_; i < start_ + m; ++i) {
        if (qualifies(i)) ++count_;
      }
      primed_ = true;
    }
    const bool hit = count_ >= params_.min_detections && qualifies(start_);
    if (start_ + 1 + m <= n) {  // slide to [start_ + 1, start_ + 1 + m)
      if (qualifies(start_)) --count_;
      if (qualifies(start_ + m)) ++count_;
    }
    const int found = start_;
    ++start_;
    if (hit) return found;
  }
  return -1;
}

bool verify_preceding_silence(const std::vector<std::uint8_t>& samples, int index, int gap,
                              int threshold, int max_noisy) {
  if (index < 0) return false;
  const int start = std::max(0, index - gap);
  int noisy = 0;
  for (int i = start; i < index; ++i) {
    if (samples[static_cast<std::size_t>(i)] >= threshold) ++noisy;
  }
  return noisy <= max_noisy;
}

}  // namespace resloc::ranging
