#include "ranging/signal_detection.hpp"

#include <algorithm>
#include <cassert>

namespace resloc::ranging {

SignalAccumulator::SignalAccumulator(std::size_t num_samples) : samples_(num_samples, 0) {}

void SignalAccumulator::reset(std::size_t num_samples) {
  samples_.assign(num_samples, 0);
  chirps_ = 0;
}

void SignalAccumulator::record_chirp(const std::vector<bool>& detector_output) {
  assert(detector_output.size() == samples_.size());
  if (chirps_ >= kMaxChirps) return;  // 4-bit counters are full
  ++chirps_;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (detector_output[i] && samples_[i] < 15) ++samples_[i];
  }
}

int detect_signal(const std::vector<std::uint8_t>& samples, const DetectionParams& params) {
  return detect_signal(samples, params, 0);
}

int detect_signal(const std::vector<std::uint8_t>& samples, const DetectionParams& params,
                  int start_index) {
  const int n = static_cast<int>(samples.size());
  const int m = params.window;
  if (m <= 0 || start_index < 0 || start_index + m > n) return -1;

  const auto qualifies = [&](int i) { return samples[static_cast<std::size_t>(i)] >= params.threshold; };

  // Prime the sliding count over the first window [start_index, start_index + m).
  int count = 0;
  for (int i = start_index; i < start_index + m; ++i) {
    if (qualifies(i)) ++count;
  }
  if (count >= params.min_detections && qualifies(start_index)) return start_index;

  // Slide: window [start, start + m).
  for (int start = start_index + 1; start + m <= n; ++start) {
    if (qualifies(start - 1)) --count;
    if (qualifies(start + m - 1)) ++count;
    if (count >= params.min_detections && qualifies(start)) return start;
  }
  return -1;
}

bool verify_preceding_silence(const std::vector<std::uint8_t>& samples, int index, int gap,
                              int threshold, int max_noisy) {
  if (index < 0) return false;
  const int start = std::max(0, index - gap);
  int noisy = 0;
  for (int i = start; i < index; ++i) {
    if (samples[static_cast<std::size_t>(i)] >= threshold) ++noisy;
  }
  return noisy <= max_noisy;
}

}  // namespace resloc::ranging
