// Matched-filter chirp detection by normalized cross-correlation (NCC).
//
// The Section 3.7 software path runs a 36-sample single-bin DFT and thresholds
// against a Parseval noise estimate -- cheap, but its short window integrates
// only ~28% of an 8 ms chirp and its detection statistic says nothing about
// *where* within a firing run the chirp actually started. This detector
// correlates the raw sampled window against the full-length chirp template of
// acoustics::WaveformSynthesizer (the same sin/cos tables synthesis uses) and
// normalizes by the local signal energy, giving:
//   - ~10*log10(128/36) = 5.5 dB more processing gain than the Goertzel
//     window, so weak direct arrivals are still seen when only their echo
//     clears the tone detector's threshold;
//   - an amplitude-invariant statistic in [0, 1] (1 = pure in-band tone,
//     noise floor ~ sqrt(2/L)), so one threshold serves every SNR;
//   - a peak whose *position* is the chirp onset: NCC rises as
//     sqrt(overlap fraction) while the template slides into the chirp and
//     falls once it slides past, so the leftmost local maximum above the
//     threshold is the group-delay-compensated first arrival. Thresholding
//     the rising edge instead would fire up to L*(1 - threshold^2) samples
//     early -- the reason this detector marks picked peaks, not crossings.
//
// Because the chirp is a constant-frequency tone, the correlation against the
// quadrature pair (sin, cos) collapses to prefix sums of x[k]*sin(w*k),
// x[k]*cos(w*k) and x[k]^2: O(n) for the whole window regardless of template
// length, against O(n*L) for a naive matched filter.
//
// Output protocol: detected onsets are marked as short plateaus in the same
// per-sample boolean series the hardware and Goertzel detectors emit, so the
// 4-bit accumulation + (T, k, m) detect-signal machinery downstream is shared
// by all three modes unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "acoustics/signal_synth.hpp"

namespace resloc::ranging {

/// Batch NCC chirp detector over one sampled window. Holds only reusable
/// prefix-sum buffers; all tone knowledge comes from the template view passed
/// per call, so one instance serves any (frequency, rate) and a campaign
/// scratch keeps exactly one.
class MatchedFilterNcc {
 public:
  /// Detection threshold on the NCC statistic. Unit noise alone sits near
  /// sqrt(2/L) ~ 0.125 for L = 128; a clean tone reaches ~1. 0.45 means
  /// "~20% of the window energy is coherent with the template", which an
  /// SNR of about -6 dB already provides -- comfortably below the software
  /// tone detector's operating point, which is the margin that lets NCC
  /// recover direct arrivals whose echoes alone trip the Goertzel path.
  static constexpr double kDefaultThreshold = 0.45;

  /// Samples marked per picked peak. Must be >= the detect-signal
  /// min_detections in use (the campaign default k = 6) so a plateau alone
  /// satisfies the window-density test after accumulation.
  static constexpr int kDefaultPeakPlateau = 8;

  explicit MatchedFilterNcc(double threshold = kDefaultThreshold,
                            int peak_plateau = kDefaultPeakPlateau);

  /// Scans `x[0, n)` for chirp onsets by NCC against `tpl` (template length
  /// `chirp_samples`; `tpl` must cover at least n samples) and sets a
  /// `peak_plateau`-sample run in `marks` at every picked onset. `marks` is
  /// resized to n; previous contents are discarded.
  void detect_into(const double* x, std::size_t n, std::size_t chirp_samples,
                   const acoustics::ToneTemplateView& tpl, std::vector<bool>& marks);

  /// detect_into over a contiguous 0/1 mark buffer (the block-DSP `fired`
  /// lane, length n, caller-allocated). Identical scan, peak picking, and
  /// plateau marking as the vector<bool> form -- the two share one core.
  void detect_into(const double* x, std::size_t n, std::size_t chirp_samples,
                   const acoustics::ToneTemplateView& tpl, std::uint8_t* marks);

  /// NCC series of the last detect_into call: ncc()[i] is the statistic for
  /// the window [i, i + chirp_samples). Exposed for the accuracy harness.
  const std::vector<double>& ncc() const { return ncc_; }

  /// Picked onset offsets of the last detect_into call (before plateau
  /// rasterization), in ascending order.
  const std::vector<std::size_t>& peaks() const { return peaks_; }

  double threshold() const { return threshold_; }
  int peak_plateau() const { return peak_plateau_; }

 private:
  /// Fills ncc_ and peaks_ for one window; returns false when the window is
  /// shorter than the template (no scan possible).
  bool scan(const double* x, std::size_t n, std::size_t chirp_samples,
            const acoustics::ToneTemplateView& tpl);

  double threshold_;
  int peak_plateau_;
  std::vector<std::size_t> peaks_;
  // Prefix sums over the window: sum x*sin, sum x*cos, sum x^2 (size n + 1).
  std::vector<double> prefix_sin_;
  std::vector<double> prefix_cos_;
  std::vector<double> prefix_energy_;
  std::vector<double> ncc_;
};

}  // namespace resloc::ranging
