// RAM footprint model of the ranging service (Section 3.6.2 and 3.7).
//
// Hardware-detector variant: 4 bits per buffer offset (up to 15 accumulated
// chirps); "for 15 samples at distances up to 20 m, the service uses less
// than 500 bytes of RAM". Software (DFT) variant: raw sample sums instead of
// 1-bit detector outputs; "to achieve a maximum range of 20 m, a 2 kB buffer
// is required with a sampling rate of 16 kHz".
#pragma once

#include <cstddef>

namespace resloc::ranging {

/// Buffer bytes for the hardware tone-detector service: one 4-bit counter per
/// sampling offset covering max_range_m of acoustic travel time.
std::size_t hardware_detector_buffer_bytes(double max_range_m, double sample_rate_hz = 16000.0,
                                           double speed_of_sound_mps = 340.0);

/// Buffer bytes for the software (DFT) detector: `bits_per_sample` of raw
/// accumulated signal per offset (the paper's 2 kB at 20 m / 16 kHz
/// corresponds to ~17 bits; we default to 16-bit accumulators).
std::size_t software_detector_buffer_bytes(double max_range_m, double sample_rate_hz = 16000.0,
                                           double speed_of_sound_mps = 340.0,
                                           std::size_t bits_per_sample = 16);

/// Maximum measurable range given a RAM budget for the hardware-detector
/// layout (inverse of hardware_detector_buffer_bytes). The MICA2's 4 kB total
/// RAM is the backdrop: [17]'s earlier service "fills all available buffer
/// space ... only to achieve a maximum range of less than 16 m".
double hardware_detector_max_range_m(std::size_t budget_bytes, double sample_rate_hz = 16000.0,
                                     double speed_of_sound_mps = 340.0);

}  // namespace resloc::ranging
