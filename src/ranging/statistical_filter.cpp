#include "ranging/statistical_filter.hpp"

#include <algorithm>
#include <cmath>

#include "math/stats.hpp"

namespace resloc::ranging {

namespace {

/// 1.4826 * MAD estimates sigma under Gaussian noise (1 / Phi^-1(3/4)).
constexpr double kMadToSigma = 1.4826;

/// Consistency vote on a *sorted* measurement list: keeps the inlier run of
/// the best-supported candidate, or empties the list when no candidate
/// reaches min_votes. Two pointers over the sorted values count each
/// candidate's inliers in O(n); the strict > comparison keeps the first
/// (smallest) best candidate, making the winner -- and therefore the output
/// -- independent of the caller's input order.
void consistency_vote(std::vector<double>& sorted, double tolerance_m,
                      std::size_t min_votes, bool* vote_failed) {
  const std::size_t n = sorted.size();
  std::size_t best_begin = 0;
  std::size_t best_count = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (sorted[i] - sorted[lo] > tolerance_m) ++lo;
    if (hi < i + 1) hi = i + 1;
    while (hi < n && sorted[hi] - sorted[i] <= tolerance_m) ++hi;
    if (hi - lo > best_count) {
      best_count = hi - lo;
      best_begin = lo;
    }
  }
  if (best_count < min_votes) {
    *vote_failed = true;
    sorted.clear();
    return;
  }
  sorted.erase(sorted.begin() + static_cast<std::ptrdiff_t>(best_begin + best_count),
               sorted.end());
  sorted.erase(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(best_begin));
}

/// MAD rejection on >= 3 samples: drops values beyond threshold robust
/// sigmas from the median. Keeps everything when the spread estimate would
/// be degenerate.
void mad_reject(std::vector<double>& values, double threshold, double floor_m) {
  if (values.size() < 3) return;
  const double center = *resloc::math::median(std::vector<double>(values));
  const double spread = *resloc::math::mad(values);
  const double sigma = std::max(kMadToSigma * spread, floor_m);
  values.erase(std::remove_if(values.begin(), values.end(),
                              [&](double x) { return std::abs(x - center) > threshold * sigma; }),
               values.end());
}

}  // namespace

std::optional<double> filter_measurements(std::vector<double> measurements,
                                          const FilterPolicy& policy, FilterStats* stats) {
  if (stats != nullptr) *stats = FilterStats{};
  // Scrub non-finite values first: a NaN in std::sort's comparator is UB and
  // a NaN median poisons the edge silently. Scrubbing precedes the
  // max_samples cut so corruption cannot crowd out real measurements.
  const std::size_t raw_count = measurements.size();
  measurements.erase(
      std::remove_if(measurements.begin(), measurements.end(),
                     [](double x) { return !std::isfinite(x); }),
      measurements.end());
  if (stats != nullptr) stats->non_finite_dropped = raw_count - measurements.size();
  if (measurements.empty()) return std::nullopt;
  if (policy.max_samples > 0 && measurements.size() > policy.max_samples) {
    measurements.resize(policy.max_samples);
  }
  if (stats != nullptr) stats->input = measurements.size();

  // The robust pre-filters work on sorted values: the vote needs the order,
  // and every downstream estimator (median, binned mode) is permutation-
  // invariant, so sorting costs nothing in fidelity and buys determinism
  // regardless of the order measurements arrived in.
  bool vote_failed = false;
  if (policy.consistency_vote) {
    std::sort(measurements.begin(), measurements.end());
    consistency_vote(measurements, policy.consistency_tolerance_m,
                     policy.consistency_min_votes, &vote_failed);
  }
  if (stats != nullptr) {
    stats->after_vote = measurements.size();
    stats->vote_failed = vote_failed;
  }
  if (measurements.empty()) return std::nullopt;

  if (policy.mad_reject) {
    mad_reject(measurements, policy.mad_threshold, policy.mad_floor_m);
  }
  if (stats != nullptr) stats->after_mad = measurements.size();
  if (measurements.empty()) return std::nullopt;

  FilterKind kind = policy.kind;
  if (kind == FilterKind::kAuto) {
    kind = measurements.size() >= policy.mode_min_samples ? FilterKind::kMode
                                                          : FilterKind::kMedian;
  }
  switch (kind) {
    case FilterKind::kMode:
      return resloc::math::binned_mode(measurements, policy.mode_bin_width_m);
    case FilterKind::kMedian:
    default:
      return resloc::math::median(std::move(measurements));
  }
}

}  // namespace resloc::ranging
