#include "ranging/statistical_filter.hpp"

#include "math/stats.hpp"

namespace resloc::ranging {

std::optional<double> filter_measurements(std::vector<double> measurements,
                                          const FilterPolicy& policy) {
  if (measurements.empty()) return std::nullopt;
  if (policy.max_samples > 0 && measurements.size() > policy.max_samples) {
    measurements.resize(policy.max_samples);
  }

  FilterKind kind = policy.kind;
  if (kind == FilterKind::kAuto) {
    kind = measurements.size() >= policy.mode_min_samples ? FilterKind::kMode
                                                          : FilterKind::kMedian;
  }
  switch (kind) {
    case FilterKind::kMode:
      return resloc::math::binned_mode(measurements, policy.mode_bin_width_m);
    case FilterKind::kMedian:
    default:
      return resloc::math::median(std::move(measurements));
  }
}

}  // namespace resloc::ranging
