#include "ranging/measurement_table.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "math/geometry.hpp"

namespace resloc::ranging {

namespace {
const std::vector<double> kEmpty;

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

void MeasurementTable::add(NodeId from, NodeId to, double distance_m) {
  table_[{from, to}].push_back(distance_m);
  ++total_;
}

const std::vector<double>& MeasurementTable::directional(NodeId from, NodeId to) const {
  const auto it = table_.find({from, to});
  return it == table_.end() ? kEmpty : it->second;
}

std::optional<double> MeasurementTable::filtered(NodeId from, NodeId to,
                                                 const FilterPolicy& policy,
                                                 FilterStats* stats) const {
  const auto& raw = directional(from, to);
  if (raw.empty()) {
    if (stats != nullptr) *stats = FilterStats{};
    return std::nullopt;
  }
  return filter_measurements(raw, policy, stats);
}

MeasurementTable::RobustReport MeasurementTable::robust_report(
    const FilterPolicy& policy) const {
  RobustReport report;
  for (const auto& [key, raw] : table_) {
    FilterStats stats;
    filter_measurements(raw, policy, &stats);
    report.measurements += stats.input;
    report.vote_rejected += stats.input - stats.after_vote;
    report.mad_rejected += stats.after_vote - stats.after_mad;
    ++report.directed_pairs;
    if (stats.vote_failed) ++report.pairs_without_consensus;
  }
  return report;
}

std::vector<NodeId> MeasurementTable::nodes() const {
  std::set<NodeId> ids;
  for (const auto& [key, _] : table_) {
    ids.insert(key.first);
    ids.insert(key.second);
  }
  return {ids.begin(), ids.end()};
}

std::vector<PairEstimate> MeasurementTable::symmetric_estimates(
    const FilterPolicy& policy, double bidirectional_tolerance_m) const {
  // Sorted-unique vector instead of a std::set: same iteration order, one
  // reserved allocation instead of a node per pair (this runs once per
  // campaign over every measured pair).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(table_.size());
  for (const auto& [key, _] : table_) pairs.push_back(ordered(key.first, key.second));
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<PairEstimate> out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    const auto forward = filtered(a, b, policy);
    const auto backward = filtered(b, a, policy);
    PairEstimate estimate;
    estimate.a = a;
    estimate.b = b;
    if (forward && backward) {
      if (std::abs(*forward - *backward) > bidirectional_tolerance_m) continue;  // discard
      estimate.distance_m = 0.5 * (*forward + *backward);
      estimate.bidirectional = true;
    } else if (forward) {
      estimate.distance_m = *forward;
    } else if (backward) {
      estimate.distance_m = *backward;
    } else {
      continue;
    }
    out.push_back(estimate);
  }
  return out;
}

std::vector<PairEstimate> MeasurementTable::bidirectional_only(
    const FilterPolicy& policy, double bidirectional_tolerance_m) const {
  auto all = symmetric_estimates(policy, bidirectional_tolerance_m);
  all.erase(std::remove_if(all.begin(), all.end(),
                           [](const PairEstimate& p) { return !p.bidirectional; }),
            all.end());
  return all;
}

std::vector<TriangleViolation> find_triangle_violations(const std::vector<PairEstimate>& pairs,
                                                        double tolerance) {
  std::map<std::pair<NodeId, NodeId>, double> dist;
  std::set<NodeId> node_set;
  for (const auto& p : pairs) {
    dist[{p.a, p.b}] = p.distance_m;
    node_set.insert(p.a);
    node_set.insert(p.b);
  }
  const std::vector<NodeId> nodes(node_set.begin(), node_set.end());

  std::vector<TriangleViolation> violations;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const auto ij = dist.find(ordered(nodes[i], nodes[j]));
      if (ij == dist.end()) continue;
      for (std::size_t k = j + 1; k < nodes.size(); ++k) {
        const auto jk = dist.find(ordered(nodes[j], nodes[k]));
        if (jk == dist.end()) continue;
        const auto ki = dist.find(ordered(nodes[k], nodes[i]));
        if (ki == dist.end()) continue;
        if (!resloc::math::satisfies_triangle_inequality(ij->second, jk->second, ki->second,
                                                         tolerance)) {
          violations.push_back(
              {nodes[i], nodes[j], nodes[k], ij->second, jk->second, ki->second});
        }
      }
    }
  }
  return violations;
}

std::vector<PairEstimate> drop_triangle_offenders(std::vector<PairEstimate> pairs,
                                                  double tolerance, int min_violations) {
  const auto violations = find_triangle_violations(pairs, tolerance);
  std::map<std::pair<NodeId, NodeId>, int> offence_count;
  for (const auto& v : violations) {
    // The longest side is the offender candidate in each violating triple:
    // an overestimate breaks the inequality as the long side, while an
    // underestimate makes one of the *other* sides look too long.
    const double longest = std::max({v.ab, v.bc, v.ca});
    if (longest == v.ab) ++offence_count[{std::min(v.a, v.b), std::max(v.a, v.b)}];
    if (longest == v.bc) ++offence_count[{std::min(v.b, v.c), std::max(v.b, v.c)}];
    if (longest == v.ca) ++offence_count[{std::min(v.c, v.a), std::max(v.c, v.a)}];
  }
  pairs.erase(std::remove_if(pairs.begin(), pairs.end(),
                             [&](const PairEstimate& p) {
                               const auto it = offence_count.find({p.a, p.b});
                               return it != offence_count.end() && it->second >= min_violations;
                             }),
              pairs.end());
  return pairs;
}

}  // namespace resloc::ranging
