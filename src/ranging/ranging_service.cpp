#include "ranging/ranging_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "math/constants.hpp"
#include "obs/telemetry.hpp"
#include "ranging/dft_detector.hpp"

namespace resloc::ranging {

namespace {

/// Resolves the configured front end, honouring the legacy software_detector
/// alias, and rejects out-of-range enum values loudly.
DetectorMode resolve_detector_mode(const RangingConfig& config) {
  switch (config.detector_mode) {
    case DetectorMode::kHardware:
      return config.software_detector ? DetectorMode::kGoertzel : DetectorMode::kHardware;
    case DetectorMode::kGoertzel:
    case DetectorMode::kMatchedFilter:
      return config.detector_mode;
  }
  throw std::invalid_argument(
      "RangingConfig.detector_mode holds unknown DetectorMode value " +
      std::to_string(static_cast<int>(config.detector_mode)) +
      " (known: hardware, goertzel, ncc)");
}
/// Baseline detection: the raw tone detector's first sustained firing -- one
/// chirp, counts are 0/1, and a short 3-of-4 debounce stands in for the
/// hardware detector's own output latching.
constexpr DetectionParams kBaselineDetection{/*threshold=*/1, /*window=*/4,
                                             /*min_detections=*/3};

/// Software-detector mode: tone amplitude over the unit-variance sample noise
/// that reproduces an interval's SNR (tone power A^2/2 against sigma^2 = 1).
double amplitude_from_snr_db(double snr_db) {
  return std::sqrt(2.0 * std::pow(10.0, snr_db / 10.0));
}

/// Wide-band noise burst: the sample noise floor rises by ~12 dB for its
/// duration. Unlike the hardware detector's fixed false-positive bump, the
/// DFT path's Parseval noise estimate tracks the elevated floor, so bursts
/// mostly mask marginal tones rather than injecting detections -- the
/// robustness Section 3.7 buys at the price of raw sampling.
constexpr double kBurstNoiseSigma = 4.0;

/// Faulty microphone: a persistent in-band self-oscillation leak at borderline
/// amplitude, the software-path analogue of the hardware model's elevated
/// false-positive rate (Section 3.4, source 3/7).
constexpr double kFaultyMicLeakAmplitude = 1.0;
}  // namespace

DetectorMode detector_mode_by_name(const std::string& name) {
  if (name == "hardware") return DetectorMode::kHardware;
  if (name == "goertzel") return DetectorMode::kGoertzel;
  if (name == "ncc") return DetectorMode::kMatchedFilter;
  throw std::invalid_argument("unknown detector mode '" + name +
                              "' (known: hardware, goertzel, ncc)");
}

std::string detector_mode_name(DetectorMode mode) {
  switch (mode) {
    case DetectorMode::kHardware: return "hardware";
    case DetectorMode::kGoertzel: return "goertzel";
    case DetectorMode::kMatchedFilter: return "ncc";
  }
  return "unknown";
}

RangingService::RangingService(RangingConfig config)
    : config_(std::move(config)),
      window_samples_(window_samples_for_range(config_.max_window_range_m,
                                               config_.pattern.chirp_duration_s, config_.tdoa)),
      mode_(resolve_detector_mode(config_)),
      detector_(config_.environment, config_.tdoa.sample_rate_hz) {}

std::optional<double> RangingService::measure(double true_distance_m,
                                              const acoustics::SpeakerUnit& speaker,
                                              const acoustics::MicUnit& mic,
                                              resloc::math::Rng& rng) const {
  RangingScratch scratch;
  return measure(true_distance_m, speaker, mic, rng, scratch);
}

std::optional<double> RangingService::measure(double true_distance_m,
                                              const acoustics::SpeakerUnit& speaker,
                                              const acoustics::MicUnit& mic,
                                              resloc::math::Rng& rng,
                                              RangingScratch& scratch) const {
  return measure_impl(true_distance_m, speaker, mic, rng, scratch, /*link=*/nullptr,
                      /*want_accumulated=*/false)
      .distance_m;
}

std::optional<double> RangingService::measure(double true_distance_m,
                                              const acoustics::SpeakerUnit& speaker,
                                              const acoustics::MicUnit& mic,
                                              resloc::math::Rng& rng, RangingScratch& scratch,
                                              const acoustics::LinkResponse& link) const {
  return measure_impl(true_distance_m, speaker, mic, rng, scratch, &link,
                      /*want_accumulated=*/false)
      .distance_m;
}

RangingAttempt RangingService::measure_with_diagnostics(double true_distance_m,
                                                        const acoustics::SpeakerUnit& speaker,
                                                        const acoustics::MicUnit& mic,
                                                        resloc::math::Rng& rng) const {
  RangingScratch scratch;
  return measure_impl(true_distance_m, speaker, mic, rng, scratch, /*link=*/nullptr,
                      /*want_accumulated=*/true);
}

RangingAttempt RangingService::measure_impl(double true_distance_m,
                                            const acoustics::SpeakerUnit& speaker,
                                            const acoustics::MicUnit& mic,
                                            resloc::math::Rng& rng, RangingScratch& scratch,
                                            const acoustics::LinkResponse* link,
                                            bool want_accumulated) const {
  // The per-pair acoustic-physics budget (~110 us/measure at survey density
  // on the per-sample reference path) is the wall ROADMAP item 1 targets; the
  // sub-stage spans below attribute it to the block kernels so regressions
  // land on a named stage instead of "measure got slower".
  RESLOC_SPAN("ranging/measure");
  obs::add(obs::Counter::kMeasureCalls);
  RangingAttempt attempt;

  acoustics::ChirpPattern pattern = config_.pattern;
  if (config_.baseline) pattern.num_chirps = 1;

  {
    RESLOC_SPAN("ranging/synthesis/schedule");
    acoustics::chirp_start_times_into(pattern, rng, scratch.starts);
    scratch.emissions.clear();
    scratch.emissions.reserve(scratch.starts.size());
    for (double s : scratch.starts) {
      scratch.emissions.push_back({s, pattern.chirp_duration_s});
    }
  }

  const double window_duration_s =
      static_cast<double>(window_samples_) / config_.tdoa.sample_rate_hz;
  const double calibration_bias_s =
      config_.tdoa.delta_const_true_s - config_.tdoa.delta_const_calibrated_s;

  // The distance-dependent channel response: supplied by the campaign's
  // per-trial cache, or computed here once per measure (the per-chirp
  // receive_into used to redo the log10 spreading term for every window).
  const acoustics::LinkResponse link_local =
      link != nullptr ? *link : acoustics::link_response(true_distance_m, config_.environment);

  const bool block = config_.block_dsp;
  if (block) scratch.dsp.resize(window_samples_);

  // Accumulate the binary detector output over all chirps, each window
  // aligned by the radio sync of that chirp. Echoes from *earlier* chirps
  // fall into later windows naturally because every emission is visible to
  // every window.
  if (block) {
    // Zeroing the 4-bit counters is an O(window) accumulator pass.
    RESLOC_SPAN("ranging/detection/accumulate");
    scratch.accumulator.reset(window_samples_);
  } else {
    scratch.accumulator.reset(window_samples_);
  }
  for (const acoustics::Emission& emission : scratch.emissions) {
    obs::add(obs::Counter::kChirpWindows);
    {
      // The channel stage of one exchange: the receiver-side onset estimate
      // (true start shifted by the calibration bias plus the per-exchange
      // clock-sync jitter) and the window's link rasterization.
      RESLOC_SPAN("ranging/channel");
      const double sync_error_s =
          calibration_bias_s + rng.gaussian(0.0, config_.tdoa.sync_jitter_s);
      const double window_start_s = emission.start_s - sync_error_s;
      acoustics::receive_into(scratch.received, scratch.emissions, window_start_s,
                              window_duration_s, link_local, speaker, mic,
                              config_.environment, config_.channel_jitter, rng);
    }
    switch (mode_) {
      case DetectorMode::kGoertzel:
        if (block) software_sample_window_block(mic, rng, scratch);
        else software_sample_window(mic, rng, scratch);
        break;
      case DetectorMode::kMatchedFilter:
        if (block) ncc_sample_window_block(mic, rng, scratch);
        else ncc_sample_window(mic, rng, scratch);
        break;
      case DetectorMode::kHardware: {
        if (block) {
          // Deterministic threshold rasterization, then the fused draw +
          // accumulate: together they consume exactly the one-uniform-per-
          // sample stream the per-sample reference draws.
          {
            RESLOC_SPAN("ranging/detection/probability");
            detector_.fire_thresholds_block(scratch.received, window_samples_, mic,
                                            scratch.detector,
                                            scratch.dsp.fire_threshold.data());
          }
          RESLOC_SPAN("ranging/detection/accumulate");
          scratch.accumulator.record_chirp_bernoulli(rng, scratch.dsp.fire_threshold.data(),
                                                     scratch.dsp.uniform_bits.data());
        } else {
          RESLOC_SPAN("ranging/detection");
          detector_.sample_window_into(scratch.received, window_samples_, mic, rng,
                                       scratch.detector, scratch.detector_output);
        }
        break;
      }
    }
    if (block) {
      if (mode_ != DetectorMode::kHardware) {
        // The sampled-audio block paths leave the binary series in
        // scratch.dsp.fired; fold it into the 4-bit counters. (The hardware
        // block path accumulated inside record_chirp_bernoulli above.)
        RESLOC_SPAN("ranging/detection/accumulate");
        scratch.accumulator.record_chirp_block(scratch.dsp.fired.data(), window_samples_);
      }
    } else {
      // Folding the chirp's binary output into the 4-bit accumulator is an
      // O(window) pass per chirp -- detection-stage work, same as the scan.
      RESLOC_SPAN("ranging/detection");
      scratch.accumulator.record_chirp(scratch.detector_output);
    }
  }

  const DetectionParams detection = config_.baseline ? kBaselineDetection : config_.detection;
  const std::vector<std::uint8_t>& samples = scratch.accumulator.samples();

  // One resumable pass over the accumulated counters: the scanner keeps its
  // sliding window count across pattern-verification rejections, so the whole
  // rejection loop is O(n) instead of restarting detect_signal after every
  // rejected candidate (O(window * rejections)).
  const auto scan = [&]() {
    SignalScanner scanner(samples, detection);
    int index = scanner.next();
    if (!config_.baseline && config_.verify_pattern) {
      while (index >= 0 &&
             !verify_preceding_silence(samples, index, config_.silence_gap_samples,
                                       detection.threshold, config_.silence_max_noisy)) {
        ++attempt.rejected_detections;
        index = scanner.next();
      }
    }
    return index;
  };
  int index;
  if (block) {
    RESLOC_SPAN("ranging/detection/scan");
    index = scan();
  } else {
    RESLOC_SPAN("ranging/detection");
    index = scan();
  }

  if (index >= 0) {
    attempt.detection_index = index;
    attempt.distance_m = distance_from_detection_index(index, config_.tdoa);
    obs::add(obs::Counter::kMeasureDetections);
  }
  if (want_accumulated) attempt.accumulated = samples;
  return attempt;
}

void RangingService::prepare_goertzel(RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  const double fs = config_.tdoa.sample_rate_hz;

  // Tone table sin(2*pi*f*i/fs) and the Goertzel detector, cached in the
  // scratch under the (frequency, sample rate, noise scale) they were built
  // for; rebuilt only if the scratch migrates to a differently-tuned service.
  // The table's absolute phase is irrelevant to the single-bin power.
  const double frequency_hz = config_.pattern.tone_frequency_hz;
  const bool retuned =
      scratch.tone_frequency_hz != frequency_hz || scratch.sample_rate_hz != fs;
  if (retuned || scratch.tone_table.size() != n) {
    scratch.tone_table.resize(n);
    const double step = 2.0 * resloc::math::kPi * frequency_hz / fs;
    for (std::size_t i = 0; i < n; ++i) {
      scratch.tone_table[i] = std::sin(step * static_cast<double>(i));
    }
  }
  if (retuned || !scratch.goertzel || scratch.noise_scale != config_.software_noise_scale) {
    scratch.goertzel.emplace(frequency_hz, fs, SlidingDftFilter::kWindow,
                             config_.software_noise_scale);
    scratch.tone_frequency_hz = frequency_hz;
    scratch.sample_rate_hz = fs;
    scratch.noise_scale = config_.software_noise_scale;
  } else {
    scratch.goertzel->reset();
  }
}

void RangingService::prepare_ncc(RangingScratch& scratch) const {
  // The scanner is cached under its tuning like the Goertzel detector above;
  // its prefix-sum buffers are reused across pairs.
  if (!scratch.ncc || scratch.ncc->threshold() != config_.ncc_threshold ||
      scratch.ncc->peak_plateau() != config_.ncc_peak_plateau) {
    scratch.ncc.emplace(config_.ncc_threshold, config_.ncc_peak_plateau);
  }
}

void RangingService::software_sample_window(const acoustics::MicUnit& mic,
                                            resloc::math::Rng& rng,
                                            RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  prepare_goertzel(scratch);

  {
    RESLOC_SPAN("ranging/synthesis");
    rasterize_window_envelope(mic, scratch);
  }

  // Synthesize and filter in one pass: each sample is the tone envelope on
  // the cached table plus Gaussian noise, and the binary series is the sign
  // of the noise-subtracted Goertzel metric. The metric at step i covers
  // samples (i - kWindow, i], so it is shifted left by the half-window group
  // delay to line onsets up with the hardware detector's per-sample
  // convention; the residual latency is within the actuation-jitter budget.
  // Synthesis and filtering are one fused per-sample loop on this path (the
  // RNG draw order pins them together), so the span charges the pair to the
  // detection stage -- the Goertzel recurrence dominates the loop body.
  RESLOC_SPAN("ranging/detection");
  GoertzelToneDetector& detector = *scratch.goertzel;
  constexpr std::size_t kGroupDelay = SlidingDftFilter::kWindow / 2;
  scratch.detector_output.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = scratch.detector.burst[i] != 0 ? kBurstNoiseSigma : 1.0;
    const double sample =
        scratch.amplitude[i] * scratch.tone_table[i] + rng.gaussian(0.0, sigma);
    const bool fired = detector.step(sample) > 0.0;
    if (fired && i >= kGroupDelay) scratch.detector_output[i - kGroupDelay] = true;
  }
}

void RangingService::software_sample_window_block(const acoustics::MicUnit& mic,
                                                  resloc::math::Rng& rng,
                                                  RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  prepare_goertzel(scratch);

  // The reference path's fused synthesize-and-filter loop, decomposed into
  // staged block kernels over contiguous buffers: envelope rasterization,
  // standard-normal noise fill, tone + noise mix, Goertzel metric, group-
  // delay-compensated thresholding. The RNG stream is identical because the
  // fused loop drew its gaussians in sample order too, and
  // gaussian(0, sigma) == sigma * gaussian(0, 1) bit for bit.
  {
    RESLOC_SPAN("ranging/synthesis/envelope");
    rasterize_window_envelope(mic, scratch);
  }
  {
    RESLOC_SPAN("ranging/synthesis/noise");
    rng.fill_gaussian_block(scratch.dsp.noise.data(), n);
  }
  {
    RESLOC_SPAN("ranging/synthesis/tone");
    scratch.audio.resize(n);
    acoustics::mix_tone_noise_block(scratch.amplitude.data(), scratch.tone_table.data(),
                                    scratch.dsp.noise.data(), scratch.detector.burst.data(),
                                    kBurstNoiseSigma, scratch.audio.data(), n);
  }
  RESLOC_SPAN("ranging/detection/goertzel");
  scratch.goertzel->run_block(scratch.audio.data(), n, scratch.dsp.metric.data());
  constexpr std::size_t kGroupDelay = SlidingDftFilter::kWindow / 2;
  const std::size_t live = n > kGroupDelay ? n - kGroupDelay : 0;
  std::uint8_t* fired = scratch.dsp.fired.data();
  const double* metric = scratch.dsp.metric.data();
  for (std::size_t j = 0; j < live; ++j) {
    fired[j] = static_cast<std::uint8_t>(metric[j + kGroupDelay] > 0.0);
  }
  std::fill(fired + live, fired + n, std::uint8_t{0});
}

void RangingService::ncc_sample_window(const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                                       RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  const double fs = config_.tdoa.sample_rate_hz;
  const double frequency_hz = config_.pattern.tone_frequency_hz;

  {
    RESLOC_SPAN("ranging/synthesis");
    rasterize_window_envelope(mic, scratch);
  }

  // The chirp template -- the same cached sin/cos tables the synthesis engine
  // uses -- extended to cover the whole window, because the NCC prefix sums
  // are phased by absolute sample index. Fetch once per window; nothing below
  // touches the synthesizer again, so the view stays valid.
  const acoustics::ToneTemplateView tpl = scratch.synth.tone_template_view(fs, frequency_hz, n);

  // Synthesize the sampled audio. Same per-sample arithmetic and RNG draw
  // order as the Goertzel path's fused loop (one gaussian per sample), so
  // switching detector modes never shifts any other draw in the campaign.
  {
    RESLOC_SPAN("ranging/synthesis");
    scratch.audio.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double sigma = scratch.detector.burst[i] != 0 ? kBurstNoiseSigma : 1.0;
      scratch.audio[i] = scratch.amplitude[i] * tpl.sin_t[i] + rng.gaussian(0.0, sigma);
    }
  }

  // Correlate and mark picked onsets.
  prepare_ncc(scratch);
  const auto chirp_samples =
      static_cast<std::size_t>(std::llround(config_.pattern.chirp_duration_s * fs));
  {
    RESLOC_SPAN("ranging/detection");
    scratch.ncc->detect_into(scratch.audio.data(), n, chirp_samples, tpl,
                             scratch.detector_output);
  }
}

void RangingService::ncc_sample_window_block(const acoustics::MicUnit& mic,
                                             resloc::math::Rng& rng,
                                             RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  const double fs = config_.tdoa.sample_rate_hz;
  const double frequency_hz = config_.pattern.tone_frequency_hz;

  {
    RESLOC_SPAN("ranging/synthesis/envelope");
    rasterize_window_envelope(mic, scratch);
  }

  const acoustics::ToneTemplateView tpl = scratch.synth.tone_template_view(fs, frequency_hz, n);

  // Same decomposition as the block Goertzel path: noise fill then tone mix,
  // drawing the identical one-gaussian-per-sample stream the reference
  // path's fused synthesis loop draws.
  {
    RESLOC_SPAN("ranging/synthesis/noise");
    rng.fill_gaussian_block(scratch.dsp.noise.data(), n);
  }
  {
    RESLOC_SPAN("ranging/synthesis/tone");
    scratch.audio.resize(n);
    acoustics::mix_tone_noise_block(scratch.amplitude.data(), tpl.sin_t,
                                    scratch.dsp.noise.data(), scratch.detector.burst.data(),
                                    kBurstNoiseSigma, scratch.audio.data(), n);
  }

  prepare_ncc(scratch);
  const auto chirp_samples =
      static_cast<std::size_t>(std::llround(config_.pattern.chirp_duration_s * fs));
  {
    RESLOC_SPAN("ranging/detection/ncc");
    scratch.ncc->detect_into(scratch.audio.data(), n, chirp_samples, tpl,
                             scratch.dsp.fired.data());
  }
}

void RangingService::rasterize_window_envelope(const acoustics::MicUnit& mic,
                                               RangingScratch& scratch) const {
  // Rasterize the audible intervals into a per-sample tone envelope (and the
  // bursts into a noise-floor flag) via the same exact contiguous spans the
  // hardware model uses, so all paths share one interval->sample convention.
  const std::size_t n = window_samples_;
  const double dt = 1.0 / config_.tdoa.sample_rate_hz;
  const acoustics::ReceivedWindow& window = scratch.received;
  scratch.amplitude.assign(n, mic.faulty ? kFaultyMicLeakAmplitude : 0.0);
  for (const acoustics::SignalInterval& s : window.signals) {
    const double amp = amplitude_from_snr_db(s.snr_db);
    const acoustics::SampleSpan span =
        acoustics::interval_sample_span(window.start_s, dt, n, s.start_s, s.end_s);
    for (std::size_t i = span.lo; i < span.hi; ++i) {
      scratch.amplitude[i] = std::max(scratch.amplitude[i], amp);
    }
  }
  scratch.detector.burst.assign(n, 0);
  for (const acoustics::NoiseBurst& b : window.bursts) {
    const acoustics::SampleSpan span =
        acoustics::interval_sample_span(window.start_s, dt, n, b.start_s, b.end_s);
    std::fill(scratch.detector.burst.begin() + static_cast<std::ptrdiff_t>(span.lo),
              scratch.detector.burst.begin() + static_cast<std::ptrdiff_t>(span.hi),
              std::uint8_t{1});
  }
}

}  // namespace resloc::ranging
