#include "ranging/ranging_service.hpp"

#include <utility>

namespace resloc::ranging {

namespace {
/// Baseline detection: the raw tone detector's first sustained firing -- one
/// chirp, counts are 0/1, and a short 3-of-4 debounce stands in for the
/// hardware detector's own output latching.
constexpr DetectionParams kBaselineDetection{/*threshold=*/1, /*window=*/4,
                                             /*min_detections=*/3};
}  // namespace

RangingService::RangingService(RangingConfig config)
    : config_(std::move(config)),
      window_samples_(window_samples_for_range(config_.max_window_range_m,
                                               config_.pattern.chirp_duration_s, config_.tdoa)),
      detector_(config_.environment, config_.tdoa.sample_rate_hz) {}

std::optional<double> RangingService::measure(double true_distance_m,
                                              const acoustics::SpeakerUnit& speaker,
                                              const acoustics::MicUnit& mic,
                                              resloc::math::Rng& rng) const {
  return measure_with_diagnostics(true_distance_m, speaker, mic, rng).distance_m;
}

RangingAttempt RangingService::measure_with_diagnostics(double true_distance_m,
                                                        const acoustics::SpeakerUnit& speaker,
                                                        const acoustics::MicUnit& mic,
                                                        resloc::math::Rng& rng) const {
  RangingAttempt attempt;

  acoustics::ChirpPattern pattern = config_.pattern;
  if (config_.baseline) pattern.num_chirps = 1;

  const std::vector<double> starts = acoustics::chirp_start_times(pattern, rng);
  std::vector<acoustics::Emission> emissions;
  emissions.reserve(starts.size());
  for (double s : starts) emissions.push_back({s, pattern.chirp_duration_s});

  const double window_duration_s =
      static_cast<double>(window_samples_) / config_.tdoa.sample_rate_hz;
  const double calibration_bias_s =
      config_.tdoa.delta_const_true_s - config_.tdoa.delta_const_calibrated_s;

  // Accumulate the binary detector output over all chirps, each window
  // aligned by the radio sync of that chirp. Echoes from *earlier* chirps
  // fall into later windows naturally because every emission is visible to
  // every window.
  SignalAccumulator accumulator(window_samples_);
  for (const acoustics::Emission& emission : emissions) {
    // Receiver-side estimate of the chirp onset: true start shifted by the
    // calibration bias plus the per-exchange clock-sync jitter.
    const double sync_error_s =
        calibration_bias_s + rng.gaussian(0.0, config_.tdoa.sync_jitter_s);
    const double window_start_s = emission.start_s - sync_error_s;

    const acoustics::ReceivedWindow received =
        acoustics::receive(emissions, window_start_s, window_duration_s, true_distance_m,
                           speaker, mic, config_.environment, config_.channel_jitter, rng);
    const std::vector<bool> detector_output =
        detector_.sample_window(received, window_samples_, mic, rng);
    accumulator.record_chirp(detector_output);
  }

  const DetectionParams detection = config_.baseline ? kBaselineDetection : config_.detection;
  const std::vector<std::uint8_t>& samples = accumulator.samples();

  int index = detect_signal(samples, detection, 0);
  if (!config_.baseline && config_.verify_pattern) {
    while (index >= 0 &&
           !verify_preceding_silence(samples, index, config_.silence_gap_samples,
                                     detection.threshold, config_.silence_max_noisy)) {
      ++attempt.rejected_detections;
      index = detect_signal(samples, detection, index + 1);
    }
  }

  if (index >= 0) {
    attempt.detection_index = index;
    attempt.distance_m = distance_from_detection_index(index, config_.tdoa);
  }
  attempt.accumulated = samples;
  return attempt;
}

}  // namespace resloc::ranging
