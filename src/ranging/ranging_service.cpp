#include "ranging/ranging_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "math/constants.hpp"
#include "obs/telemetry.hpp"
#include "ranging/dft_detector.hpp"

namespace resloc::ranging {

namespace {

/// Resolves the configured front end, honouring the legacy software_detector
/// alias, and rejects out-of-range enum values loudly.
DetectorMode resolve_detector_mode(const RangingConfig& config) {
  switch (config.detector_mode) {
    case DetectorMode::kHardware:
      return config.software_detector ? DetectorMode::kGoertzel : DetectorMode::kHardware;
    case DetectorMode::kGoertzel:
    case DetectorMode::kMatchedFilter:
      return config.detector_mode;
  }
  throw std::invalid_argument(
      "RangingConfig.detector_mode holds unknown DetectorMode value " +
      std::to_string(static_cast<int>(config.detector_mode)) +
      " (known: hardware, goertzel, ncc)");
}
/// Baseline detection: the raw tone detector's first sustained firing -- one
/// chirp, counts are 0/1, and a short 3-of-4 debounce stands in for the
/// hardware detector's own output latching.
constexpr DetectionParams kBaselineDetection{/*threshold=*/1, /*window=*/4,
                                             /*min_detections=*/3};

/// Software-detector mode: tone amplitude over the unit-variance sample noise
/// that reproduces an interval's SNR (tone power A^2/2 against sigma^2 = 1).
double amplitude_from_snr_db(double snr_db) {
  return std::sqrt(2.0 * std::pow(10.0, snr_db / 10.0));
}

/// Wide-band noise burst: the sample noise floor rises by ~12 dB for its
/// duration. Unlike the hardware detector's fixed false-positive bump, the
/// DFT path's Parseval noise estimate tracks the elevated floor, so bursts
/// mostly mask marginal tones rather than injecting detections -- the
/// robustness Section 3.7 buys at the price of raw sampling.
constexpr double kBurstNoiseSigma = 4.0;

/// Faulty microphone: a persistent in-band self-oscillation leak at borderline
/// amplitude, the software-path analogue of the hardware model's elevated
/// false-positive rate (Section 3.4, source 3/7).
constexpr double kFaultyMicLeakAmplitude = 1.0;
}  // namespace

DetectorMode detector_mode_by_name(const std::string& name) {
  if (name == "hardware") return DetectorMode::kHardware;
  if (name == "goertzel") return DetectorMode::kGoertzel;
  if (name == "ncc") return DetectorMode::kMatchedFilter;
  throw std::invalid_argument("unknown detector mode '" + name +
                              "' (known: hardware, goertzel, ncc)");
}

std::string detector_mode_name(DetectorMode mode) {
  switch (mode) {
    case DetectorMode::kHardware: return "hardware";
    case DetectorMode::kGoertzel: return "goertzel";
    case DetectorMode::kMatchedFilter: return "ncc";
  }
  return "unknown";
}

RangingService::RangingService(RangingConfig config)
    : config_(std::move(config)),
      window_samples_(window_samples_for_range(config_.max_window_range_m,
                                               config_.pattern.chirp_duration_s, config_.tdoa)),
      mode_(resolve_detector_mode(config_)),
      detector_(config_.environment, config_.tdoa.sample_rate_hz) {}

std::optional<double> RangingService::measure(double true_distance_m,
                                              const acoustics::SpeakerUnit& speaker,
                                              const acoustics::MicUnit& mic,
                                              resloc::math::Rng& rng) const {
  RangingScratch scratch;
  return measure(true_distance_m, speaker, mic, rng, scratch);
}

std::optional<double> RangingService::measure(double true_distance_m,
                                              const acoustics::SpeakerUnit& speaker,
                                              const acoustics::MicUnit& mic,
                                              resloc::math::Rng& rng,
                                              RangingScratch& scratch) const {
  return measure_impl(true_distance_m, speaker, mic, rng, scratch,
                      /*want_accumulated=*/false)
      .distance_m;
}

RangingAttempt RangingService::measure_with_diagnostics(double true_distance_m,
                                                        const acoustics::SpeakerUnit& speaker,
                                                        const acoustics::MicUnit& mic,
                                                        resloc::math::Rng& rng) const {
  RangingScratch scratch;
  return measure_impl(true_distance_m, speaker, mic, rng, scratch, /*want_accumulated=*/true);
}

RangingAttempt RangingService::measure_impl(double true_distance_m,
                                            const acoustics::SpeakerUnit& speaker,
                                            const acoustics::MicUnit& mic,
                                            resloc::math::Rng& rng, RangingScratch& scratch,
                                            bool want_accumulated) const {
  // The per-pair acoustic-physics budget (~110 us/measure at survey density)
  // is the wall ROADMAP item 1 targets; the sub-stage spans below attribute
  // it to synthesis / channel / detection so the block-DSP refactor starts
  // from a measured stage budget instead of a hypothesis.
  RESLOC_SPAN("ranging/measure");
  obs::add(obs::Counter::kMeasureCalls);
  RangingAttempt attempt;

  acoustics::ChirpPattern pattern = config_.pattern;
  if (config_.baseline) pattern.num_chirps = 1;

  acoustics::chirp_start_times_into(pattern, rng, scratch.starts);
  scratch.emissions.clear();
  scratch.emissions.reserve(scratch.starts.size());
  for (double s : scratch.starts) scratch.emissions.push_back({s, pattern.chirp_duration_s});

  const double window_duration_s =
      static_cast<double>(window_samples_) / config_.tdoa.sample_rate_hz;
  const double calibration_bias_s =
      config_.tdoa.delta_const_true_s - config_.tdoa.delta_const_calibrated_s;

  // Accumulate the binary detector output over all chirps, each window
  // aligned by the radio sync of that chirp. Echoes from *earlier* chirps
  // fall into later windows naturally because every emission is visible to
  // every window.
  scratch.accumulator.reset(window_samples_);
  for (const acoustics::Emission& emission : scratch.emissions) {
    // Receiver-side estimate of the chirp onset: true start shifted by the
    // calibration bias plus the per-exchange clock-sync jitter.
    const double sync_error_s =
        calibration_bias_s + rng.gaussian(0.0, config_.tdoa.sync_jitter_s);
    const double window_start_s = emission.start_s - sync_error_s;

    obs::add(obs::Counter::kChirpWindows);
    {
      RESLOC_SPAN("ranging/channel");
      acoustics::receive_into(scratch.received, scratch.emissions, window_start_s,
                              window_duration_s, true_distance_m, speaker, mic,
                              config_.environment, config_.channel_jitter, rng);
    }
    switch (mode_) {
      case DetectorMode::kGoertzel:
        software_sample_window(mic, rng, scratch);
        break;
      case DetectorMode::kMatchedFilter:
        ncc_sample_window(mic, rng, scratch);
        break;
      case DetectorMode::kHardware: {
        RESLOC_SPAN("ranging/detection");
        detector_.sample_window_into(scratch.received, window_samples_, mic, rng,
                                     scratch.detector, scratch.detector_output);
        break;
      }
    }
    {
      // Folding the chirp's binary output into the 4-bit accumulator is an
      // O(window) pass per chirp -- detection-stage work, same as the scan.
      RESLOC_SPAN("ranging/detection");
      scratch.accumulator.record_chirp(scratch.detector_output);
    }
  }

  const DetectionParams detection = config_.baseline ? kBaselineDetection : config_.detection;
  const std::vector<std::uint8_t>& samples = scratch.accumulator.samples();

  RESLOC_SPAN("ranging/detection");
  int index = detect_signal(samples, detection, 0);
  if (!config_.baseline && config_.verify_pattern) {
    while (index >= 0 &&
           !verify_preceding_silence(samples, index, config_.silence_gap_samples,
                                     detection.threshold, config_.silence_max_noisy)) {
      ++attempt.rejected_detections;
      index = detect_signal(samples, detection, index + 1);
    }
  }

  if (index >= 0) {
    attempt.detection_index = index;
    attempt.distance_m = distance_from_detection_index(index, config_.tdoa);
    obs::add(obs::Counter::kMeasureDetections);
  }
  if (want_accumulated) attempt.accumulated = samples;
  return attempt;
}

void RangingService::software_sample_window(const acoustics::MicUnit& mic,
                                            resloc::math::Rng& rng,
                                            RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  const double fs = config_.tdoa.sample_rate_hz;

  // Tone table sin(2*pi*f*i/fs) and the Goertzel detector, cached in the
  // scratch under the (frequency, sample rate, noise scale) they were built
  // for; rebuilt only if the scratch migrates to a differently-tuned service.
  // The table's absolute phase is irrelevant to the single-bin power.
  const double frequency_hz = config_.pattern.tone_frequency_hz;
  const bool retuned =
      scratch.tone_frequency_hz != frequency_hz || scratch.sample_rate_hz != fs;
  if (retuned || scratch.tone_table.size() != n) {
    scratch.tone_table.resize(n);
    const double step = 2.0 * resloc::math::kPi * frequency_hz / fs;
    for (std::size_t i = 0; i < n; ++i) {
      scratch.tone_table[i] = std::sin(step * static_cast<double>(i));
    }
  }
  if (retuned || !scratch.goertzel || scratch.noise_scale != config_.software_noise_scale) {
    scratch.goertzel.emplace(frequency_hz, fs, SlidingDftFilter::kWindow,
                             config_.software_noise_scale);
    scratch.tone_frequency_hz = frequency_hz;
    scratch.sample_rate_hz = fs;
    scratch.noise_scale = config_.software_noise_scale;
  } else {
    scratch.goertzel->reset();
  }

  rasterize_window_envelope(mic, scratch);

  // Synthesize and filter in one pass: each sample is the tone envelope on
  // the cached table plus Gaussian noise, and the binary series is the sign
  // of the noise-subtracted Goertzel metric. The metric at step i covers
  // samples (i - kWindow, i], so it is shifted left by the half-window group
  // delay to line onsets up with the hardware detector's per-sample
  // convention; the residual latency is within the actuation-jitter budget.
  // Synthesis and filtering are one fused per-sample loop on this path (the
  // RNG draw order pins them together), so the span charges the pair to the
  // detection stage -- the Goertzel recurrence dominates the loop body.
  RESLOC_SPAN("ranging/detection");
  GoertzelToneDetector& detector = *scratch.goertzel;
  constexpr std::size_t kGroupDelay = SlidingDftFilter::kWindow / 2;
  scratch.detector_output.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = scratch.detector.burst[i] != 0 ? kBurstNoiseSigma : 1.0;
    const double sample =
        scratch.amplitude[i] * scratch.tone_table[i] + rng.gaussian(0.0, sigma);
    const bool fired = detector.step(sample) > 0.0;
    if (fired && i >= kGroupDelay) scratch.detector_output[i - kGroupDelay] = true;
  }
}

void RangingService::ncc_sample_window(const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                                       RangingScratch& scratch) const {
  const std::size_t n = window_samples_;
  const double fs = config_.tdoa.sample_rate_hz;
  const double frequency_hz = config_.pattern.tone_frequency_hz;

  rasterize_window_envelope(mic, scratch);

  // The chirp template -- the same cached sin/cos tables the synthesis engine
  // uses -- extended to cover the whole window, because the NCC prefix sums
  // are phased by absolute sample index. Fetch once per window; nothing below
  // touches the synthesizer again, so the view stays valid.
  const acoustics::ToneTemplateView tpl = scratch.synth.tone_template_view(fs, frequency_hz, n);

  // Synthesize the sampled audio. Same per-sample arithmetic and RNG draw
  // order as the Goertzel path's fused loop (one gaussian per sample), so
  // switching detector modes never shifts any other draw in the campaign.
  {
    RESLOC_SPAN("ranging/synthesis");
    scratch.audio.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double sigma = scratch.detector.burst[i] != 0 ? kBurstNoiseSigma : 1.0;
      scratch.audio[i] = scratch.amplitude[i] * tpl.sin_t[i] + rng.gaussian(0.0, sigma);
    }
  }

  // Correlate and mark picked onsets. The scanner is cached under its tuning
  // like the Goertzel detector above; its buffers are reused across pairs.
  if (!scratch.ncc || scratch.ncc->threshold() != config_.ncc_threshold ||
      scratch.ncc->peak_plateau() != config_.ncc_peak_plateau) {
    scratch.ncc.emplace(config_.ncc_threshold, config_.ncc_peak_plateau);
  }
  const auto chirp_samples =
      static_cast<std::size_t>(std::llround(config_.pattern.chirp_duration_s * fs));
  {
    RESLOC_SPAN("ranging/detection");
    scratch.ncc->detect_into(scratch.audio.data(), n, chirp_samples, tpl,
                             scratch.detector_output);
  }
}

void RangingService::rasterize_window_envelope(const acoustics::MicUnit& mic,
                                               RangingScratch& scratch) const {
  // Rasterize the audible intervals into a per-sample tone envelope (and the
  // bursts into a noise-floor flag), the same bracketed sweep the hardware
  // model uses so all paths share the interval->sample cost profile.
  RESLOC_SPAN("ranging/synthesis");
  const std::size_t n = window_samples_;
  const double dt = 1.0 / config_.tdoa.sample_rate_hz;
  const acoustics::ReceivedWindow& window = scratch.received;
  scratch.amplitude.assign(n, mic.faulty ? kFaultyMicLeakAmplitude : 0.0);
  for (const acoustics::SignalInterval& s : window.signals) {
    const double amp = amplitude_from_snr_db(s.snr_db);
    acoustics::for_each_sample_in_interval(
        window.start_s, dt, n, s.start_s, s.end_s, [&](std::size_t i) {
          scratch.amplitude[i] = std::max(scratch.amplitude[i], amp);
        });
  }
  scratch.detector.burst.assign(n, 0);
  for (const acoustics::NoiseBurst& b : window.bursts) {
    acoustics::for_each_sample_in_interval(
        window.start_s, dt, n, b.start_s, b.end_s,
        [&](std::size_t i) { scratch.detector.burst[i] = 1; });
  }
}

}  // namespace resloc::ranging
