#include "ranging/matched_filter.hpp"

#include <algorithm>
#include <cmath>

namespace resloc::ranging {

MatchedFilterNcc::MatchedFilterNcc(double threshold, int peak_plateau)
    : threshold_(threshold), peak_plateau_(std::max(1, peak_plateau)) {}

void MatchedFilterNcc::detect_into(const double* x, std::size_t n, std::size_t chirp_samples,
                                   const acoustics::ToneTemplateView& tpl,
                                   std::vector<bool>& marks) {
  marks.assign(n, false);
  if (!scan(x, n, chirp_samples, tpl)) return;
  for (std::size_t i : peaks_) {
    const std::size_t end = std::min(n, i + static_cast<std::size_t>(peak_plateau_));
    for (std::size_t j = i; j < end; ++j) marks[j] = true;
  }
}

void MatchedFilterNcc::detect_into(const double* x, std::size_t n, std::size_t chirp_samples,
                                   const acoustics::ToneTemplateView& tpl,
                                   std::uint8_t* marks) {
  std::fill(marks, marks + n, std::uint8_t{0});
  if (!scan(x, n, chirp_samples, tpl)) return;
  for (std::size_t i : peaks_) {
    const std::size_t end = std::min(n, i + static_cast<std::size_t>(peak_plateau_));
    std::fill(marks + i, marks + end, std::uint8_t{1});
  }
}

bool MatchedFilterNcc::scan(const double* x, std::size_t n, std::size_t chirp_samples,
                            const acoustics::ToneTemplateView& tpl) {
  peaks_.clear();
  const std::size_t L = std::max<std::size_t>(1, chirp_samples);
  if (n < L || tpl.length < n) {
    ncc_.clear();
    return false;
  }

  // Prefix sums of x*sin(w*k), x*cos(w*k), x^2 over the absolute sample index
  // k. The quadrature pair makes the correlation phase-free: the window
  // [i, i + L) correlates against the template at *any* starting phase with
  // magnitude sqrt(ds^2 + dc^2), so no per-offset phase rotation is needed
  // and the whole scan is O(n) independent of L.
  prefix_sin_.resize(n + 1);
  prefix_cos_.resize(n + 1);
  prefix_energy_.resize(n + 1);
  prefix_sin_[0] = prefix_cos_[0] = prefix_energy_[0] = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    prefix_sin_[k + 1] = prefix_sin_[k] + x[k] * tpl.sin_t[k];
    prefix_cos_[k + 1] = prefix_cos_[k] + x[k] * tpl.cos_t[k];
    prefix_energy_[k + 1] = prefix_energy_[k] + x[k] * x[k];
  }

  // NCC[i] for the forward window [i, i + L): correlation magnitude over the
  // geometric mean of window energy and template energy (L/2 for a unit
  // tone). Forward indexing is the group-delay compensation -- the statistic
  // for offset i describes a chirp *starting* at i, so a picked peak needs no
  // half-window shift.
  const std::size_t m = n - L + 1;
  ncc_.resize(m);
  const double template_energy = static_cast<double>(L) / 2.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double ds = prefix_sin_[i + L] - prefix_sin_[i];
    const double dc = prefix_cos_[i + L] - prefix_cos_[i];
    const double energy = prefix_energy_[i + L] - prefix_energy_[i];
    ncc_[i] = energy > 0.0 ? std::sqrt((ds * ds + dc * dc) / (energy * template_energy)) : 0.0;
  }

  // Peak picking with non-maximum suppression. NCC rises as sqrt(overlap)
  // while the template slides into a chirp, so the rising edge crosses the
  // threshold up to L*(1 - threshold^2) samples before the true onset, and
  // sample noise decorates that edge with micro-maxima. A candidate is kept
  // only if it dominates its +-L/2 neighborhood (leftmost wins exact ties),
  // which suppresses the precursors while keeping echoes at lags beyond L/2
  // as their own peaks (downstream accumulation + silence verification deal
  // with those). Local maxima above the threshold are rare, so the
  // neighborhood check runs on a handful of candidates, not on every offset.
  const std::size_t radius = L / 2;
  for (std::size_t i = 0; i < m; ++i) {
    if (ncc_[i] < threshold_) continue;
    if (i > 0 && ncc_[i] <= ncc_[i - 1]) continue;            // leftmost of any plateau
    if (i + 1 < m && ncc_[i] < ncc_[i + 1]) continue;         // not a local max
    const std::size_t lo = i > radius ? i - radius : 0;
    const std::size_t hi = std::min(m, i + radius + 1);
    bool dominant = true;
    for (std::size_t j = lo; j < i && dominant; ++j) dominant = ncc_[j] < ncc_[i];
    for (std::size_t j = i + 1; j < hi && dominant; ++j) dominant = ncc_[j] <= ncc_[i];
    if (!dominant) continue;
    peaks_.push_back(i);
  }
  return true;
}

}  // namespace resloc::ranging
