#include "ranging/deployment_constraints.hpp"

#include <algorithm>
#include <cmath>

namespace resloc::ranging {

DistancePrior::DistancePrior(std::vector<double> plausible, double tolerance_m)
    : plausible_(std::move(plausible)), tolerance_m_(tolerance_m) {
  std::sort(plausible_.begin(), plausible_.end());
}

DistancePrior DistancePrior::from_deployment(const resloc::core::Deployment& deployment,
                                             double max_range_m, double tolerance_m) {
  std::vector<double> distances;
  for (std::size_t i = 0; i < deployment.size(); ++i) {
    for (std::size_t j = i + 1; j < deployment.size(); ++j) {
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d <= max_range_m) distances.push_back(d);
    }
  }
  std::sort(distances.begin(), distances.end());
  // Deduplicate at the tolerance scale: a regular grid has only a handful of
  // distinct spacings.
  std::vector<double> unique;
  for (double d : distances) {
    if (unique.empty() || d - unique.back() > tolerance_m * 0.5) unique.push_back(d);
  }
  return DistancePrior(std::move(unique), tolerance_m);
}

std::optional<double> DistancePrior::nearest_plausible(double measured_m) const {
  if (plausible_.empty()) return std::nullopt;
  const auto it = std::lower_bound(plausible_.begin(), plausible_.end(), measured_m);
  double best = 1e300;
  std::optional<double> nearest;
  if (it != plausible_.end() && std::abs(*it - measured_m) < best) {
    best = std::abs(*it - measured_m);
    nearest = *it;
  }
  if (it != plausible_.begin() && std::abs(*(it - 1) - measured_m) < best) {
    best = std::abs(*(it - 1) - measured_m);
    nearest = *(it - 1);
  }
  if (!nearest || best > tolerance_m_) return std::nullopt;
  return nearest;
}

std::vector<PairEstimate> apply_distance_prior(std::vector<PairEstimate> pairs,
                                               const DistancePrior& prior, PriorAction action) {
  std::vector<PairEstimate> out;
  out.reserve(pairs.size());
  for (PairEstimate& pair : pairs) {
    const auto snapped = prior.nearest_plausible(pair.distance_m);
    if (!snapped) continue;  // inconsistent with deployment knowledge
    if (action == PriorAction::kSnap) pair.distance_m = *snapped;
    out.push_back(pair);
  }
  return out;
}

}  // namespace resloc::ranging
