// Software tone detection for platforms without a hardware tone detector
// (Section 3.7 / Figure 9: the XSM signal detection routine).
//
// A sliding-window DFT over the last 36 samples tracks the amplitude of two
// beacon bands at fs/4 and fs/6. These frequencies are chosen so the complex
// roots of unity are (0, +/-1, +/-2, +/- the sqrt(3) absorbed into the output
// scaling), avoiding multiplications on the mote. The wrapper subtracts an
// automatic noise estimate -- the average power across all DFT bins, obtained
// from the window's total energy via Parseval -- so that a positive output
// indicates a tone (the paper: "isolate the amplitude of noise and subtract
// it from the DFT output; a positive result indicates detection of a tone").
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace resloc::ranging {

/// Band powers produced by one filter step, matching Figure 9's return value
/// [(re4^2 + im4^2), (re6^2 + 3*im6^2)/2].
struct BandPowers {
  double band_fs4 = 0.0;  ///< power around sample_rate / 4
  double band_fs6 = 0.0;  ///< power around sample_rate / 6
};

/// Verbatim implementation of the Figure 9 sliding-DFT filter.
class SlidingDftFilter {
 public:
  static constexpr std::size_t kWindow = 36;  // divisible by both 4 and 6

  SlidingDftFilter() { reset(); }

  /// Resets to the all-zero window (init() in Figure 9).
  void reset();

  /// Consumes one raw sample and returns the two band powers (filter() in
  /// Figure 9).
  BandPowers filter(double sample);

  /// Sum of squared samples in the current window; by Parseval this equals
  /// the mean DFT bin power, used as the automatic noise estimate.
  double window_energy() const { return energy_; }

 private:
  std::array<double, kWindow> samples_{};
  std::size_t n_ = 0;  // index mod 36 (and mod 4 derived from it)
  std::size_t k_ = 0;  // index mod 6
  double re4_ = 0.0, im4_ = 0.0;
  double re6_ = 0.0, im6_ = 0.0;
  double energy_ = 0.0;
};

/// Noise-subtracting tone detector built on the sliding DFT.
class DftToneDetector {
 public:
  /// `band` selects which Figure 9 band carries the beacon: 4 for fs/4,
  /// 6 for fs/6. `noise_scale` multiplies the Parseval noise estimate before
  /// subtraction; higher values demand more dominant tones. For white noise
  /// the expected band power roughly equals the window energy, but adjacent
  /// sliding-window outputs are strongly correlated, so a margin of ~6x is
  /// needed to keep noise excursions from forming detection-length runs.
  DftToneDetector(int band = 4, double noise_scale = 6.0);

  /// Feeds one sample; returns the noise-subtracted detection metric
  /// (positive indicates a tone).
  double step(double sample);

  /// Convenience: runs the detector over a whole waveform and returns the
  /// per-sample metric series.
  std::vector<double> run(const std::vector<double>& waveform);

  /// Counts distinct detections in a metric series: a detection is a run of
  /// at least `min_run` consecutive samples with metric > 0; runs separated
  /// by fewer than `merge_gap` samples are merged. The default min_run of 16
  /// (1 ms at 16 kHz, well under the 8 ms chirp) suppresses short
  /// noise-excursion runs.
  static int count_detections(const std::vector<double>& metric, int min_run = 16,
                              int merge_gap = 16);

  void reset();

 private:
  SlidingDftFilter filter_;
  int band_;
  double noise_scale_;
};

}  // namespace resloc::ranging
