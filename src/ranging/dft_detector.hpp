// Software tone detection for platforms without a hardware tone detector
// (Section 3.7 / Figure 9: the XSM signal detection routine).
//
// A sliding-window DFT over the last 36 samples tracks the amplitude of two
// beacon bands at fs/4 and fs/6. These frequencies are chosen so the complex
// roots of unity are (0, +/-1, +/-2, +/- the sqrt(3) absorbed into the output
// scaling), avoiding multiplications on the mote. The wrapper subtracts an
// automatic noise estimate -- the average power across all DFT bins, obtained
// from the window's total energy via Parseval -- so that a positive output
// indicates a tone (the paper: "isolate the amplitude of noise and subtract
// it from the DFT output; a positive result indicates detection of a tone").
//
// Beyond the Figure 9 bands, this header provides the campaign hot path:
//   - DirectDftFilter: the O(window) per-sample reference that recomputes an
//     arbitrary single bin by explicit summation each step,
//   - GoertzelSlidingFilter: the O(1) per-sample single-bin recurrence (the
//     sliding form of the Goertzel filter) with periodic exact resync so its
//     output never drifts measurably from the direct sum,
//   - GoertzelToneDetector: the noise-subtracting wrapper over the fast path
//     for an arbitrary beacon frequency (the grass campaign chirps at
//     4.3 kHz, which is not one of the two multiplication-free bands).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace resloc::ranging {

/// Band powers produced by one filter step, matching Figure 9's return value
/// [(re4^2 + im4^2), (re6^2 + 3*im6^2)/2].
struct BandPowers {
  double band_fs4 = 0.0;  ///< power around sample_rate / 4
  double band_fs6 = 0.0;  ///< power around sample_rate / 6
};

/// Verbatim implementation of the Figure 9 sliding-DFT filter.
class SlidingDftFilter {
 public:
  static constexpr std::size_t kWindow = 36;  // divisible by both 4 and 6

  SlidingDftFilter() { reset(); }

  /// Resets to the all-zero window (init() in Figure 9).
  void reset();

  /// Consumes one raw sample and returns the two band powers (filter() in
  /// Figure 9).
  BandPowers filter(double sample);

  /// Sum of squared samples in the current window; by Parseval this equals
  /// the mean DFT bin power, used as the automatic noise estimate.
  double window_energy() const { return energy_; }

 private:
  std::array<double, kWindow> samples_{};
  std::size_t n_ = 0;  // index mod 36 (and mod 4 derived from it)
  std::size_t k_ = 0;  // index mod 6
  double re4_ = 0.0, im4_ = 0.0;
  double re6_ = 0.0, im6_ = 0.0;
  double energy_ = 0.0;
};

/// Nearest DFT bin of `window` samples at `sample_rate_hz` to a target tone
/// frequency (what a mote picks at compile time; exposed for tests/benches).
int nearest_bin(double tone_frequency_hz, double sample_rate_hz, std::size_t window);

/// Single-bin power |X_k|^2 of `count` samples by direct summation. `phase0`
/// offsets the twiddle index (used to keep the absolute-phase convention of
/// the sliding filters); the magnitude is phase-origin independent.
double direct_bin_power(const double* samples, std::size_t count, std::size_t window, int bin,
                        std::size_t phase0 = 0);

/// Reference sliding single-bin detector: recomputes the bin by direct
/// summation over its ring on EVERY step -- O(window) per sample. This is the
/// naive per-pair DFT cost the Goertzel recurrence replaces; it exists to be
/// benchmarked against and to pin the fast path's numerics.
class DirectDftFilter {
 public:
  explicit DirectDftFilter(std::size_t window = SlidingDftFilter::kWindow, int bin = 9);

  /// Consumes one sample and returns the current window's bin power.
  double step(double sample);

  /// Sum of squared samples in the current window (Parseval noise estimate).
  double window_energy() const { return energy_; }

  void reset();
  std::size_t window() const { return samples_.size(); }
  int bin() const { return bin_; }

 private:
  std::vector<double> samples_;  ///< ring buffer; index = absolute index mod N
  std::size_t n_ = 0;
  int bin_;
  double energy_ = 0.0;
};

/// Fast sliding single-bin filter: the Goertzel recurrence in its sliding
/// form. With the twiddle phase anchored to the absolute sample index, the
/// sample entering the window and the sample leaving it share one twiddle
/// factor, so each step is a single complex multiply-accumulate:
///     S += (x[t] - x[t-N]) * e^(-j*2*pi*bin*(t mod N)/N)
/// -- the generalization of the Figure 9 trick to bins whose roots of unity
/// are not 0/+-1/+-2. Floating-point drift from the incremental update is
/// bounded by an exact direct-sum resync every kResyncPeriod steps, keeping
/// the output within ~1e-12 of DirectDftFilter while staying O(1) amortized.
class GoertzelSlidingFilter {
 public:
  /// Steps between exact recomputations of the running sums.
  static constexpr std::size_t kResyncPeriod = 256;

  explicit GoertzelSlidingFilter(std::size_t window = SlidingDftFilter::kWindow, int bin = 9);

  /// Consumes one sample and returns the current window's bin power.
  double step(double sample);

  /// Sum of squared samples in the current window (Parseval noise estimate).
  double window_energy() const { return energy_; }

  void reset();
  std::size_t window() const { return samples_.size(); }
  int bin() const { return bin_; }

 private:
  void resync();

  std::vector<double> samples_;  ///< ring buffer; index = absolute index mod N
  std::vector<double> cos_;      ///< cos(2*pi*bin*i/N) for i in [0, N)
  std::vector<double> sin_;
  std::size_t n_ = 0;
  std::size_t steps_since_resync_ = 0;
  int bin_;
  double re_ = 0.0, im_ = 0.0;
  double energy_ = 0.0;
};

/// Noise-subtracting tone detector for an arbitrary beacon frequency, built
/// on the Goertzel sliding fast path. Drop-in analogue of DftToneDetector
/// for tones off the two multiplication-free Figure 9 bands.
class GoertzelToneDetector {
 public:
  explicit GoertzelToneDetector(double tone_frequency_hz = 4000.0,
                                double sample_rate_hz = 16000.0,
                                std::size_t window = SlidingDftFilter::kWindow,
                                double noise_scale = 6.0);

  /// Feeds one sample; returns the noise-subtracted detection metric
  /// (positive indicates a tone). The campaign's scalar reference path
  /// drives this sample-by-sample (RangingService::software_sample_window).
  double step(double sample);

  /// Block entry point: metric[i] = step(x[i]) for i in [0, n) -- the same
  /// sliding recurrence, resync cadence, and rounding as n scalar calls
  /// (it IS the scalar step, inlined into one loop over a contiguous
  /// buffer, which removes the per-sample cross-TU call the fused
  /// synthesize-and-filter loop paid).
  void run_block(const double* x, std::size_t n, double* metric);

  void reset();
  int bin() const { return filter_.bin(); }

 private:
  GoertzelSlidingFilter filter_;
  double noise_scale_;
};

/// Noise-subtracting tone detector built on the sliding DFT.
class DftToneDetector {
 public:
  /// `band` selects which Figure 9 band carries the beacon: 4 for fs/4,
  /// 6 for fs/6. `noise_scale` multiplies the Parseval noise estimate before
  /// subtraction; higher values demand more dominant tones. For white noise
  /// the expected band power roughly equals the window energy, but adjacent
  /// sliding-window outputs are strongly correlated, so a margin of ~6x is
  /// needed to keep noise excursions from forming detection-length runs.
  DftToneDetector(int band = 4, double noise_scale = 6.0);

  /// Feeds one sample; returns the noise-subtracted detection metric
  /// (positive indicates a tone).
  double step(double sample);

  /// Convenience: runs the detector over a whole waveform and returns the
  /// per-sample metric series.
  std::vector<double> run(const std::vector<double>& waveform);

  /// run() into a caller-owned buffer, reused across campaign pairs.
  void run_into(const std::vector<double>& waveform, std::vector<double>& metric);

  /// Counts distinct detections in a metric series: a detection is a run of
  /// at least `min_run` consecutive samples with metric > 0; runs separated
  /// by fewer than `merge_gap` samples are merged. The default min_run of 16
  /// (1 ms at 16 kHz, well under the 8 ms chirp) suppresses short
  /// noise-excursion runs.
  static int count_detections(const std::vector<double>& metric, int min_run = 16,
                              int merge_gap = 16);

  void reset();

 private:
  SlidingDftFilter filter_;
  int band_;
  double noise_scale_;
};

}  // namespace resloc::ranging
