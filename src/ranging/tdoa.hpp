// TDoA arithmetic (Section 3.1).
//
// The distance between source i and destination j is computed from quantities
// local to j:
//     d_ij = Vs * (t_detect - (t_recv - delta_xmit) - delta_const)
// where t_recv is the radio message arrival on j's clock, delta_xmit the
// (estimated) nondeterministic radio delay, and delta_const the calibrated
// constant lag between the radio message and the chirp plus sensing/actuation
// delays. With MAC-layer timestamping the sync error is microseconds; the
// dominant quantization is the 16 kHz detector sampling rate (~2.1 cm per
// sample at 340 m/s).
#pragma once

#include <cstddef>

namespace resloc::ranging {

/// Timing parameters of the ranging exchange.
struct TdoaParams {
  double speed_of_sound_mps = 340.0;
  /// Sampling rate of the tone detector polling loop.
  double sample_rate_hz = 16000.0;
  /// True constant delay between radio message and audible chirp onset
  /// (scheduled chirp lag + mean sensing/actuation delay).
  double delta_const_true_s = 0.030;
  /// The receiver's calibrated estimate of delta_const. A miscalibration of
  /// ~0.3-0.6 ms reproduces the paper's "constant offset of 10-20 cm ... added
  /// to every ranging measurement" without environment calibration.
  double delta_const_calibrated_s = 0.030;
  /// Std-dev of the residual clock-sync error after MAC timestamping.
  double sync_jitter_s = 5e-6;
};

/// Converts a detection sample index (relative to the radio-synchronized
/// window start, which the receiver places at its calibrated estimate of the
/// distance-zero chirp onset) into a distance estimate: d = Vs * index / fs.
/// Calibration bias (delta_const_true - delta_const_calibrated) and sync
/// jitter shift where the signal lands within the window; they are injected
/// by the channel simulation, not the decoder.
double distance_from_detection_index(int index, const TdoaParams& params);

/// Inverse of distance_from_detection_index: the sample index at which the
/// direct signal from `distance_m` away begins (floor; the detector can only
/// fire at whole sample ticks).
int detection_index_for_distance(double distance_m, const TdoaParams& params);

/// Number of window samples needed to observe distances up to `max_range_m`
/// plus a full chirp of `chirp_duration_s`.
std::size_t window_samples_for_range(double max_range_m, double chirp_duration_s,
                                     const TdoaParams& params);

}  // namespace resloc::ranging
