// The refined signal detection algorithm of Section 3.5 / Figure 3.
//
// record-signal: binary tone-detector outputs from several chirps are added
// into one buffer, aligned by the radio sync message, "in a manner which
// amplifies tone detections occurring in the same positions in multiple
// attempts". The buffer allocates 4 bits per offset, capping accumulation at
// 15 chirps (Section 3.6.2).
//
// detect-signal: threshold detection -- the accumulated count must reach T,
// and that must happen for at least k of m consecutive samples; the detected
// signal start is the first sample of the qualifying window.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"

namespace resloc::ranging {

/// Detection thresholds used by detect_signal. Defaults are the calibrated
/// values from the grass experiment (Section 3.6): sums from 10 chirps must
/// exceed T=2 in at least k=6 of m=32 consecutive samples.
struct DetectionParams {
  int threshold = 2;       ///< T: minimum accumulated count per sample
  int window = 32;         ///< m: consecutive-sample window length
  int min_detections = 6;  ///< k: qualifying samples required in the window
};

/// Accumulates binary tone-detector series across chirps (record-signal).
class SignalAccumulator {
 public:
  /// `num_samples` is the per-chirp sampling window length; RAM use is 4 bits
  /// per sample on the mote, modeled by capping counters at 15.
  explicit SignalAccumulator(std::size_t num_samples);

  /// Adds one chirp's binary detector output (must be num_samples long).
  void record_chirp(const std::vector<bool>& detector_output);

  /// record_chirp over a contiguous 0/1 buffer (the block-DSP `fired` lane).
  /// Same saturation and chirp-cap semantics as the vector<bool> form, with
  /// a branch-free accumulate the compiler can vectorize.
  void record_chirp_block(const std::uint8_t* fired, std::size_t n);

  /// Fused Bernoulli-draw + accumulate for the block hardware-detector path:
  /// draws num_samples uniform 53-bit variates from `rng` (always -- matching
  /// the scalar path, which consumes RNG even once the 4-bit counters are
  /// full) into `bits_scratch`, then accumulates fired[i] = bits[i] <
  /// thresholds[i]. Bit-equal to per-sample rng.bernoulli(p_i) followed by
  /// record_chirp, because bernoulli(p) is uniform_bits() < bernoulli_threshold(p).
  void record_chirp_bernoulli(resloc::math::Rng& rng, const std::uint64_t* thresholds,
                              std::uint64_t* bits_scratch);

  /// Zeroes the counters (and resizes to `num_samples`) so one accumulator
  /// can be reused across a campaign's pairs without reallocating.
  void reset(std::size_t num_samples);

  /// Accumulated counts, saturated at the 4-bit maximum.
  const std::vector<std::uint8_t>& samples() const { return samples_; }

  std::size_t size() const { return samples_.size(); }
  int chirps_recorded() const { return chirps_; }

  /// Hard cap from the 4-bit-per-offset buffer layout (Section 3.6.2).
  static constexpr int kMaxChirps = 15;

 private:
  std::vector<std::uint8_t> samples_;
  int chirps_ = 0;
};

/// detect-signal from Figure 3: returns the index of the first sample of the
/// first window of `params.window` consecutive samples containing at least
/// `params.min_detections` samples with accumulated count >= params.threshold,
/// where the window's first sample itself qualifies (it marks the signal
/// start). Returns -1 if no window qualifies.
///
/// (The paper's pseudocode is 1-indexed mote code; this is the 0-indexed
/// equivalent with the same sliding-count structure.)
int detect_signal(const std::vector<std::uint8_t>& samples, const DetectionParams& params);

/// detect_signal restricted to windows starting at or after `start_index`;
/// used to re-scan past a candidate rejected by pattern verification.
int detect_signal(const std::vector<std::uint8_t>& samples, const DetectionParams& params,
                  int start_index);

/// Resumable detect_signal: one pass over the accumulated buffer that yields
/// successive candidate indices without re-priming the sliding count. Each
/// next() call returns the same index the equivalent restart-based scan
/// `detect_signal(samples, params, prev + 1)` would -- window qualification
/// at a given start position depends only on the buffer, not on scan history
/// -- but the whole rejection loop costs O(n) total instead of
/// O(window * rejections). The referenced buffer must outlive the scanner
/// and stay unmodified between next() calls.
class SignalScanner {
 public:
  SignalScanner(const std::vector<std::uint8_t>& samples, const DetectionParams& params);

  /// Next candidate start index at or after the previous result + 1
  /// (first call: at or after 0), or -1 once exhausted.
  int next();

 private:
  const std::vector<std::uint8_t>& samples_;
  DetectionParams params_;
  int start_ = 0;   ///< next window start to examine
  int count_ = 0;   ///< qualifying samples in [start_, start_ + window)
  bool primed_ = false;
};

/// Pattern verification (Section 3.5): the emitted pattern is chirps preceded
/// by silence, so a genuine detection at `index` must be preceded by a quiet
/// gap. Returns true when the `gap` samples before `index` contain fewer than
/// `max_noisy` samples meeting the threshold. Detections failing this are
/// echo tails or noise (false detections "due to noise or echoes that are not
/// part of the pattern").
bool verify_preceding_silence(const std::vector<std::uint8_t>& samples, int index, int gap,
                              int threshold, int max_noisy);

}  // namespace resloc::ranging
