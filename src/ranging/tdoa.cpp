#include "ranging/tdoa.hpp"

#include <cmath>
#include <cstddef>

namespace resloc::ranging {

double distance_from_detection_index(int index, const TdoaParams& params) {
  // The receiver opens its sampling window at its best estimate of the chirp
  // onset instant for distance zero, so the detection offset converts
  // directly: d = Vs * t_detect. Calibration bias and sync jitter shift where
  // the true signal lands *within* the window (modeled by the simulator),
  // not how the index is decoded.
  return params.speed_of_sound_mps * static_cast<double>(index) / params.sample_rate_hz;
}

int detection_index_for_distance(double distance_m, const TdoaParams& params) {
  const double t = distance_m / params.speed_of_sound_mps;
  return static_cast<int>(std::floor(t * params.sample_rate_hz));
}

std::size_t window_samples_for_range(double max_range_m, double chirp_duration_s,
                                     const TdoaParams& params) {
  const double window_s = max_range_m / params.speed_of_sound_mps + chirp_duration_s;
  return static_cast<std::size_t>(std::ceil(window_s * params.sample_rate_hz));
}

}  // namespace resloc::ranging
