// The acoustic ranging service: end-to-end simulation of one ranging sequence
// between a source (speaker) and a receiver (microphone + tone detector).
//
// Two operating modes mirror the paper:
//   - baseline (Section 3.1/3.3): a single chirp; the receiver takes the
//     first tone-detector firing as the signal onset. Echoes of earlier
//     chirps and noise bursts produce the large under/over-estimates of
//     Figure 2.
//   - refined (Section 3.5): the pattern's chirps are accumulated into 4-bit
//     counters aligned by the radio sync message; threshold detection with
//     the (T, k, m) parameters finds the onset; optionally the preceding-
//     silence pattern check rejects echo tails.
//
// Timing errors injected per chirp: calibration bias (delta_const_true -
// delta_const_calibrated), clock-sync jitter after MAC timestamping, speaker
// actuation jitter, and the 16 kHz sampling quantization.
#pragma once

#include <optional>
#include <vector>

#include "acoustics/channel.hpp"
#include "acoustics/chirp_pattern.hpp"
#include "acoustics/environment.hpp"
#include "acoustics/tone_detector.hpp"
#include "acoustics/units.hpp"
#include "math/rng.hpp"
#include "ranging/signal_detection.hpp"
#include "ranging/tdoa.hpp"

namespace resloc::ranging {

/// Full configuration of the ranging service.
struct RangingConfig {
  acoustics::EnvironmentProfile environment = acoustics::EnvironmentProfile::grass();
  acoustics::ChirpPattern pattern;
  acoustics::ChannelJitter channel_jitter;
  DetectionParams detection;
  TdoaParams tdoa;

  /// Sampling window covers acoustic travel up to this range (default 40 m;
  /// determines the buffer size; Section 3.6.2 ties RAM to this).
  double max_window_range_m = 40.0;

  /// Baseline mode: one chirp, first-firing detection, no accumulation
  /// (default off = refined mode).
  bool baseline = false;

  /// Preceding-silence pattern verification (refined mode only; default on).
  /// A candidate onset is rejected when more than `silence_max_noisy`
  /// (default 2) of the `silence_gap_samples` (default 48, i.e. 3 ms at
  /// 16 kHz) samples before it meet the detection threshold.
  bool verify_pattern = true;
  int silence_gap_samples = 48;
  int silence_max_noisy = 2;
};

/// Diagnostic output of one measurement attempt.
struct RangingAttempt {
  std::optional<double> distance_m;      ///< estimate; nullopt = no detection
  int detection_index = -1;              ///< sample index of the detected onset
  int rejected_detections = 0;           ///< candidates failing the pattern check
  std::vector<std::uint8_t> accumulated; ///< post-accumulation counters
};

/// Simulates ranging sequences for one source/receiver pair.
class RangingService {
 public:
  explicit RangingService(RangingConfig config);

  /// Runs one full ranging sequence at the given true distance and returns
  /// the distance estimate (nullopt when no signal is detected).
  std::optional<double> measure(double true_distance_m, const acoustics::SpeakerUnit& speaker,
                                const acoustics::MicUnit& mic, resloc::math::Rng& rng) const;

  /// Like measure() but returns full diagnostics.
  RangingAttempt measure_with_diagnostics(double true_distance_m,
                                          const acoustics::SpeakerUnit& speaker,
                                          const acoustics::MicUnit& mic,
                                          resloc::math::Rng& rng) const;

  /// Number of samples in the per-chirp window.
  std::size_t window_samples() const { return window_samples_; }

  const RangingConfig& config() const { return config_; }

 private:
  RangingConfig config_;
  std::size_t window_samples_;
  acoustics::ToneDetectorModel detector_;
};

}  // namespace resloc::ranging
