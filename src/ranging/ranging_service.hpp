// The acoustic ranging service: end-to-end simulation of one ranging sequence
// between a source (speaker) and a receiver (microphone + tone detector).
//
// Two operating modes mirror the paper:
//   - baseline (Section 3.1/3.3): a single chirp; the receiver takes the
//     first tone-detector firing as the signal onset. Echoes of earlier
//     chirps and noise bursts produce the large under/over-estimates of
//     Figure 2.
//   - refined (Section 3.5): the pattern's chirps are accumulated into 4-bit
//     counters aligned by the radio sync message; threshold detection with
//     the (T, k, m) parameters finds the onset; optionally the preceding-
//     silence pattern check rejects echo tails.
//
// Timing errors injected per chirp: calibration bias (delta_const_true -
// delta_const_calibrated), clock-sync jitter after MAC timestamping, speaker
// actuation jitter, and the 16 kHz sampling quantization.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "acoustics/channel.hpp"
#include "acoustics/chirp_pattern.hpp"
#include "acoustics/dsp_scratch.hpp"
#include "acoustics/environment.hpp"
#include "acoustics/signal_synth.hpp"
#include "acoustics/tone_detector.hpp"
#include "acoustics/units.hpp"
#include "math/rng.hpp"
#include "ranging/dft_detector.hpp"
#include "ranging/matched_filter.hpp"
#include "ranging/signal_detection.hpp"
#include "ranging/tdoa.hpp"

namespace resloc::ranging {

/// Which front end turns the received window into the per-sample boolean
/// series the accumulation detector consumes. All modes share the chirp
/// pattern, 4-bit accumulation, (T, k, m) detection, and silence
/// verification; they differ only in how one chirp window becomes booleans.
enum class DetectorMode {
  /// Hardware tone-detector model (Sections 3.4/3.5): interval-level
  /// probabilistic firing as a function of SNR. No sampled audio.
  kHardware,
  /// Software Goertzel tone detector (Section 3.7): synthesized audio through
  /// a 36-sample single-bin sliding DFT with Parseval noise subtraction.
  kGoertzel,
  /// Matched-filter NCC detector: synthesized audio correlated against the
  /// full-length WaveformSynthesizer chirp template with group-delay-
  /// compensated peak picking (see matched_filter.hpp). ~5.5 dB more
  /// processing gain than the Goertzel window; recovers weak direct arrivals
  /// whose fixed-lag echoes would otherwise set the detection index.
  kMatchedFilter,
};

/// Detector mode from its sweep-axis name ("hardware", "goertzel", "ncc").
/// Throws std::invalid_argument naming the unknown value -- a mistyped
/// detector axis fails the trial loudly instead of silently running the
/// default front end.
DetectorMode detector_mode_by_name(const std::string& name);

/// Canonical axis/report name of a detector mode.
std::string detector_mode_name(DetectorMode mode);

/// Full configuration of the ranging service.
struct RangingConfig {
  acoustics::EnvironmentProfile environment = acoustics::EnvironmentProfile::grass();
  acoustics::ChirpPattern pattern;
  acoustics::ChannelJitter channel_jitter;
  DetectionParams detection;
  TdoaParams tdoa;

  /// Sampling window covers acoustic travel up to this range (default 40 m;
  /// determines the buffer size; Section 3.6.2 ties RAM to this).
  double max_window_range_m = 40.0;

  /// Baseline mode: one chirp, first-firing detection, no accumulation
  /// (default off = refined mode).
  bool baseline = false;

  /// Preceding-silence pattern verification (refined mode only; default on).
  /// A candidate onset is rejected when more than `silence_max_noisy`
  /// (default 2) of the `silence_gap_samples` (default 48, i.e. 3 ms at
  /// 16 kHz) samples before it meet the detection threshold.
  bool verify_pattern = true;
  int silence_gap_samples = 48;
  int silence_max_noisy = 2;

  /// Software tone detection (Section 3.7): platforms without a hardware
  /// tone detector (e.g. the XSM mote) sample the microphone directly and
  /// isolate the beacon band in software. When set, each chirp window is
  /// synthesized as sampled audio (tone amplitude from the received SNR plus
  /// unit-variance noise) and the binary series fed to the accumulation
  /// detector is the sign of GoertzelToneDetector's noise-subtracted metric,
  /// group-delay compensated. This prices every chirp of every pair at a
  /// per-sample single-bin DFT -- affordable only because of the Goertzel
  /// sliding recurrence and the cached tone tables (bench_ranging_goertzel
  /// measures the naive direct-DFT alternative at ~96x the cost).
  bool software_detector = false;
  /// Noise-subtraction margin of the software detector (see DftToneDetector).
  double software_noise_scale = 6.0;

  /// Detector front end (see DetectorMode). kHardware by default; the legacy
  /// `software_detector` flag above is an alias for kGoertzel and still
  /// selects it when this field is left at kHardware, so existing configs
  /// and their RNG byte-streams are unchanged.
  DetectorMode detector_mode = DetectorMode::kHardware;

  /// NCC detection threshold (kMatchedFilter only; see MatchedFilterNcc).
  double ncc_threshold = MatchedFilterNcc::kDefaultThreshold;
  /// Samples marked per picked NCC peak; must be >= detection.min_detections
  /// for a lone plateau to satisfy the window-density test.
  int ncc_peak_plateau = MatchedFilterNcc::kDefaultPeakPlateau;

  /// Block-DSP measure path (default). Each chirp window runs as staged block
  /// kernels over contiguous DspScratch buffers -- threshold rasterization +
  /// lane-split Bernoulli draws (hardware), or envelope/noise/tone synthesis
  /// blocks feeding a block Goertzel or NCC scan (sampled-audio modes) --
  /// instead of the detector-owned per-sample loops. Draws the identical RNG
  /// stream in the identical order and produces bit-equal estimates; set to
  /// false to run the retained per-sample reference path (the equivalence
  /// tests in test_dsp_kernels.cpp diff the two).
  bool block_dsp = true;
};

/// Diagnostic output of one measurement attempt.
struct RangingAttempt {
  std::optional<double> distance_m;      ///< estimate; nullopt = no detection
  int detection_index = -1;              ///< sample index of the detected onset
  int rejected_detections = 0;           ///< candidates failing the pattern check
  std::vector<std::uint8_t> accumulated; ///< post-accumulation counters
};

/// Reusable working buffers for measure(). A campaign loop keeps one per
/// worker thread and passes it to every pair, so the per-sequence vectors
/// (emission schedule, received window, detector output, 4-bit counters) are
/// allocated once instead of once per pair -- the same buffer reuse the mote
/// firmware's fixed RAM layout implies (Section 3.6.2).
struct RangingScratch {
  std::vector<double> starts;
  std::vector<acoustics::Emission> emissions;
  acoustics::ReceivedWindow received;
  acoustics::DetectorScratch detector;
  std::vector<bool> detector_output;
  SignalAccumulator accumulator{0};
  /// Software-detector mode only: per-sample tone amplitudes, the cached tone
  /// table sin(2*pi*f*i/fs), and the Goertzel detector itself. The table and
  /// detector are keyed by the (frequency, sample rate, noise scale) they were
  /// built for, so a scratch migrating between differently-tuned services
  /// rebuilds them instead of silently filtering the wrong band; within one
  /// service they are built once and reused across every pair.
  std::vector<double> amplitude;
  std::vector<double> tone_table;
  double tone_frequency_hz = 0.0;
  double sample_rate_hz = 0.0;
  double noise_scale = 0.0;
  std::optional<GoertzelToneDetector> goertzel;
  /// Matched-filter mode only: the synthesized window audio, the NCC scanner
  /// (keyed by its threshold/plateau like the Goertzel cache above), and the
  /// template source. The synthesizer is the same engine the synthesis path
  /// uses, so detection correlates against literally the cached chirp tables.
  std::vector<double> audio;
  std::optional<MatchedFilterNcc> ncc;
  acoustics::WaveformSynthesizer synth;
  /// Block-DSP mode only: the contiguous kernel buffers (see dsp_scratch.hpp).
  acoustics::DspScratch dsp;
};

/// Simulates ranging sequences for one source/receiver pair.
class RangingService {
 public:
  /// Throws std::invalid_argument (naming the offending value) when
  /// config.detector_mode is not a known DetectorMode -- an out-of-range
  /// enum from a miswired cast or config merge must not silently fall back
  /// to the hardware front end.
  explicit RangingService(RangingConfig config);

  /// Runs one full ranging sequence at the given true distance and returns
  /// the distance estimate (nullopt when no signal is detected).
  std::optional<double> measure(double true_distance_m, const acoustics::SpeakerUnit& speaker,
                                const acoustics::MicUnit& mic, resloc::math::Rng& rng) const;

  /// measure() reusing caller-owned buffers; result and RNG consumption are
  /// identical to the allocating overload.
  std::optional<double> measure(double true_distance_m, const acoustics::SpeakerUnit& speaker,
                                const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                                RangingScratch& scratch) const;

  /// measure() with the distance-dependent channel response precomputed
  /// (usually by a sim::ChannelResponseCache). `link` must equal
  /// acoustics::link_response(true_distance_m, config().environment); the
  /// result and RNG consumption are then bit-identical to the other
  /// overloads, which compute the same response inline.
  std::optional<double> measure(double true_distance_m, const acoustics::SpeakerUnit& speaker,
                                const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                                RangingScratch& scratch,
                                const acoustics::LinkResponse& link) const;

  /// Like measure() but returns full diagnostics.
  RangingAttempt measure_with_diagnostics(double true_distance_m,
                                          const acoustics::SpeakerUnit& speaker,
                                          const acoustics::MicUnit& mic,
                                          resloc::math::Rng& rng) const;

  /// Number of samples in the per-chirp window.
  std::size_t window_samples() const { return window_samples_; }

  /// The detector front end actually in use (config.detector_mode with the
  /// legacy software_detector alias resolved).
  DetectorMode detector_mode() const { return mode_; }

  const RangingConfig& config() const { return config_; }

 private:
  RangingAttempt measure_impl(double true_distance_m, const acoustics::SpeakerUnit& speaker,
                              const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                              RangingScratch& scratch, const acoustics::LinkResponse* link,
                              bool want_accumulated) const;

  /// Section 3.7 path, per-sample reference: synthesizes the window's sampled
  /// audio and runs the Goertzel detector in one fused loop; fills
  /// scratch.detector_output like the hardware path.
  void software_sample_window(const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                              RangingScratch& scratch) const;

  /// Block form of software_sample_window: envelope -> noise -> tone-mix ->
  /// Goertzel blocks over scratch.dsp, bit-equal output into scratch.dsp.fired.
  void software_sample_window_block(const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                                    RangingScratch& scratch) const;

  /// Matched-filter path, per-sample reference: synthesizes the window's
  /// sampled audio (same RNG draw order as the Goertzel path) and marks
  /// NCC-picked chirp onsets.
  void ncc_sample_window(const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                         RangingScratch& scratch) const;

  /// Block form of ncc_sample_window, bit-equal marks into scratch.dsp.fired.
  void ncc_sample_window_block(const acoustics::MicUnit& mic, resloc::math::Rng& rng,
                               RangingScratch& scratch) const;

  /// Builds or retunes the scratch's cached tone table + Goertzel detector
  /// for this service and resets the detector for a fresh window.
  void prepare_goertzel(RangingScratch& scratch) const;

  /// Builds or retunes the scratch's cached NCC scanner for this service.
  void prepare_ncc(RangingScratch& scratch) const;

  /// Shared by both sampled-audio paths: rasterizes the window's signal
  /// intervals into scratch.amplitude and its noise bursts into
  /// scratch.detector.burst. Consumes no randomness. Callers wrap it in the
  /// synthesis span of their path ("ranging/synthesis" on the per-sample
  /// reference, "ranging/synthesis/envelope" on the block path).
  void rasterize_window_envelope(const acoustics::MicUnit& mic, RangingScratch& scratch) const;

  RangingConfig config_;
  std::size_t window_samples_;
  DetectorMode mode_;
  acoustics::ToneDetectorModel detector_;
};

}  // namespace resloc::ranging
