// Statistical filtering of repeated range measurements (Section 3.5).
//
// "Assuming that the errors are not correlated, we make multiple distance
// measurements for a pair of nodes and apply statistical filtering ...
// Depending on the number of measurements, we take the median or mode value
// of the measurements, which limits the effect of outliers. The mode
// operation is more resistant ... but it needs more measurements to be
// effective."
#pragma once

#include <optional>
#include <vector>

namespace resloc::ranging {

/// Which robust estimate to apply to a pair's repeated measurements.
enum class FilterKind {
  kMedian,
  kMode,
  /// The paper's adaptive policy: mode when enough measurements are
  /// available to make it meaningful, median otherwise.
  kAuto,
};

/// Statistical filter configuration.
struct FilterPolicy {
  FilterKind kind = FilterKind::kAuto;
  /// Bin width (meters) used by the mode estimate; chirp-quantization noise
  /// is a few cm, so decimeter bins group true-distance detections.
  double mode_bin_width_m = 0.25;
  /// Minimum sample count before kAuto switches from median to mode.
  std::size_t mode_min_samples = 7;
  /// Cap on how many measurements are used (earliest first); the paper's
  /// Figure 4 uses "median filtering of up to five measurements".
  std::size_t max_samples = 0;  ///< 0 = use all

  // --- Robust pre-filters. Both default OFF: the plain median/mode path and
  // --- every existing golden byte-stream are untouched unless a config opts
  // --- in. When enabled they run before the median/mode estimate, in the
  // --- order vote -> MAD (reject what never repeats, then trim the tails of
  // --- what did).

  /// RANSAC-style consistency vote across the pair's repeated measurements
  /// (rounds): every measurement is a candidate, votes are the measurements
  /// within `consistency_tolerance_m` of it, and the candidate with the most
  /// votes wins (exact ties break toward the smallest value, so the outcome
  /// is independent of input order). Only the winner's inliers reach the
  /// estimator. If even the winner has fewer than `consistency_min_votes`
  /// votes, the pair has no self-consistent distance at all -- echo-dominated
  /// long links produce exactly this signature, because the pattern's random
  /// inter-chirp delays decorrelate echo detections across rounds -- and the
  /// filter returns std::nullopt rather than averaging garbage (the Section
  /// 3.5 "discard inconsistent" rule applied within one direction).
  bool consistency_vote = false;
  double consistency_tolerance_m = 0.5;
  /// Minimum votes (including the candidate itself) for a usable consensus;
  /// 1 accepts lone measurements (vote becomes a no-op on singletons).
  std::size_t consistency_min_votes = 2;

  /// MAD-based outlier rejection: measurements farther than
  /// `mad_threshold` robust sigmas from the median are dropped, where the
  /// robust sigma is 1.4826 * MAD floored at `mad_floor_m` (sample
  /// quantization is ~2 cm, so exact-duplicate lists have MAD 0 and need the
  /// floor to keep near-duplicates). Applied only to lists of >= 3; with
  /// fewer there is no meaningful spread estimate.
  bool mad_reject = false;
  double mad_threshold = 3.5;
  double mad_floor_m = 0.05;
};

/// Where each measurement of one filter_measurements call went -- the
/// rejection diagnostics the campaign surfaces per detector mode.
struct FilterStats {
  std::size_t input = 0;       ///< considered (after the max_samples cut)
  std::size_t after_vote = 0;  ///< survivors of the consistency vote
  std::size_t after_mad = 0;   ///< survivors of MAD rejection
  bool vote_failed = false;    ///< no candidate reached consistency_min_votes
  /// NaN/inf inputs scrubbed before any stage ran. Always zero for real
  /// acoustic detections; injected corruption (fault layer) produces them,
  /// and they must never reach std::sort (NaN comparators are UB).
  std::size_t non_finite_dropped = 0;
};

/// Applies the policy to one pair's measurement list. Returns std::nullopt
/// when the list is empty or (with consistency_vote) when no consensus
/// exists. `stats`, when given, receives the per-stage rejection counts.
std::optional<double> filter_measurements(std::vector<double> measurements,
                                          const FilterPolicy& policy,
                                          FilterStats* stats = nullptr);

}  // namespace resloc::ranging
