// Statistical filtering of repeated range measurements (Section 3.5).
//
// "Assuming that the errors are not correlated, we make multiple distance
// measurements for a pair of nodes and apply statistical filtering ...
// Depending on the number of measurements, we take the median or mode value
// of the measurements, which limits the effect of outliers. The mode
// operation is more resistant ... but it needs more measurements to be
// effective."
#pragma once

#include <optional>
#include <vector>

namespace resloc::ranging {

/// Which robust estimate to apply to a pair's repeated measurements.
enum class FilterKind {
  kMedian,
  kMode,
  /// The paper's adaptive policy: mode when enough measurements are
  /// available to make it meaningful, median otherwise.
  kAuto,
};

/// Statistical filter configuration.
struct FilterPolicy {
  FilterKind kind = FilterKind::kAuto;
  /// Bin width (meters) used by the mode estimate; chirp-quantization noise
  /// is a few cm, so decimeter bins group true-distance detections.
  double mode_bin_width_m = 0.25;
  /// Minimum sample count before kAuto switches from median to mode.
  std::size_t mode_min_samples = 7;
  /// Cap on how many measurements are used (earliest first); the paper's
  /// Figure 4 uses "median filtering of up to five measurements".
  std::size_t max_samples = 0;  ///< 0 = use all
};

/// Applies the policy to one pair's measurement list. Returns std::nullopt
/// when the list is empty.
std::optional<double> filter_measurements(std::vector<double> measurements,
                                          const FilterPolicy& policy);

}  // namespace resloc::ranging
