// Deployment-constraint filtering (Section 3.5.1).
//
// "Some sensor network deployments offer additional information about sensor
// placement. ... On a regular grid deployment, a set of possible inter-node
// distances can be deduced from the size and shape of the grid configuration.
// These data provide additional constraints that consistent ranging
// measurements should satisfy." The paper leaves this as planned work; this
// module implements it: measurements are checked against (and optionally
// snapped to) the finite set of plausible inter-node distances.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "ranging/measurement_table.hpp"

namespace resloc::ranging {

/// A deployment-derived distance prior: the finite set of plausible
/// inter-node distances plus a tolerance.
class DistancePrior {
 public:
  /// `plausible` is the sorted-or-not list of admissible distances;
  /// `tolerance_m` is the acceptance half-width around each.
  DistancePrior(std::vector<double> plausible, double tolerance_m);

  /// Builds the prior from a regular grid: every distinct inter-node
  /// distance of `deployment` up to `max_range_m` (deduplicated at the
  /// tolerance scale). This is the paper's "deduced from the size and shape
  /// of the grid configuration".
  static DistancePrior from_deployment(const resloc::core::Deployment& deployment,
                                       double max_range_m, double tolerance_m);

  /// The nearest plausible distance, if any lies within the tolerance.
  std::optional<double> nearest_plausible(double measured_m) const;

  /// True iff the measurement is within tolerance of some plausible distance.
  bool is_consistent(double measured_m) const { return nearest_plausible(measured_m).has_value(); }

  const std::vector<double>& plausible_distances() const { return plausible_; }
  double tolerance_m() const { return tolerance_m_; }

 private:
  std::vector<double> plausible_;  // sorted
  double tolerance_m_;
};

/// Filtering policy for applying a prior to pair estimates.
enum class PriorAction {
  kReject,  ///< drop measurements inconsistent with the prior
  kSnap,    ///< replace consistent measurements by the plausible distance;
            ///< drop inconsistent ones
};

/// Applies the prior to a set of symmetric pair estimates.
std::vector<PairEstimate> apply_distance_prior(std::vector<PairEstimate> pairs,
                                               const DistancePrior& prior, PriorAction action);

}  // namespace resloc::ranging
