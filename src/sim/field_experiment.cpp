#include "sim/field_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "fault/fault_injector.hpp"
#include "math/grid_pairs.hpp"
#include "obs/telemetry.hpp"
#include "sim/channel_cache.hpp"

namespace resloc::sim {

using resloc::core::MeasurementSet;
using resloc::core::NodeId;

namespace {

/// Fork tags separating the campaign's two substream families. Shadowing
/// substreams are indexed by unordered pair (i * n + j, i < j) and
/// measurement substreams by turn (round * n + source); the index spaces
/// overlap, so each family forks from its own tagged base to keep a pair's
/// shadowing decorrelated from a turn's measurement noise.
constexpr std::uint64_t kShadowingStreamTag = 0x5AD0;
constexpr std::uint64_t kMeasurementStreamTag = 0x3EA5;
/// Base fork handed to the fault injector; it derives per-kind, per-key
/// substreams internally (see fault/fault_injector.hpp).
constexpr std::uint64_t kFaultStreamTag = 0xFA17;

/// The link's symmetric shadowing draw, recomputed on demand from its own
/// substream: same value in both directions and every round, O(1) memory.
double link_shadowing_db(const resloc::math::Rng& shadow_base, NodeId a, NodeId b,
                         std::size_t n, double stddev_db) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  resloc::math::Rng stream =
      shadow_base.fork(static_cast<std::uint64_t>(lo) * n + hi);
  return stream.gaussian(0.0, stddev_db);
}

/// One successful estimate, staged per (round, source) turn so threaded and
/// sequential runs aggregate in the same order.
struct TurnEstimate {
  NodeId receiver = 0;
  double true_distance_m = 0.0;
  double measured_m = 0.0;
};

}  // namespace

MeasurementSet FieldExperimentData::to_measurement_set(std::size_t node_count) const {
  MeasurementSet set(node_count);
  set.reserve(filtered.size());
  for (const auto& pair : filtered) {
    set.add(pair.a, pair.b, pair.distance_m, /*weight=*/1.0);
  }
  return set;
}

std::vector<double> FieldExperimentData::raw_errors() const {
  std::vector<double> errors;
  errors.reserve(samples.size());
  for (const auto& s : samples) errors.push_back(s.measured_m - s.true_distance_m);
  return errors;
}

double FieldExperimentData::mean_abs_detection_offset_samples() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& s : samples) {
    // Injected NaN corruption yields a non-finite offset; one poisoned
    // sample must not turn the whole campaign diagnostic into NaN.
    if (!std::isfinite(s.detection_offset_samples)) continue;
    sum += std::abs(s.detection_offset_samples);
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

FieldExperimentData run_field_experiment(const resloc::core::Deployment& deployment,
                                         const FieldExperimentConfig& config,
                                         resloc::math::Rng& rng) {
  FieldExperimentData data;
  const std::size_t n = deployment.size();

  // Each node's physical units are drawn once for the whole campaign.
  std::vector<resloc::acoustics::SpeakerUnit> speakers;
  std::vector<resloc::acoustics::MicUnit> mics;
  speakers.reserve(n);
  mics.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    speakers.push_back(config.units.sample_speaker(config.nominal_speaker_db, rng));
    mics.push_back(config.units.sample_mic(rng));
  }

  const resloc::ranging::RangingService service(config.ranging);

  // Substream bases, forked off the post-unit state: every draw below is
  // indexed by what it is for (pair, turn), never by when it happens.
  const resloc::math::Rng shadow_base = rng.fork(kShadowingStreamTag);
  const resloc::math::Rng measurement_base = rng.fork(kMeasurementStreamTag);

  // Fault injector on its own tagged fork. fork() is const and never
  // advances `rng`, and an inert plan draws nothing, so a fault-free
  // campaign's byte-stream is unchanged by this line existing.
  const resloc::fault::FaultInjector injector(config.faults, rng.fork(kFaultStreamTag), n,
                                              config.rounds);

  // Faulty-mic injection reuses the campaign's physical fault model: a
  // forced-faulty mic suffers the same persistent wide-band noise (spurious
  // detections + leakage) a unit-model-drawn faulty mic does.
  if (injector.active()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (injector.mic_faulty(static_cast<NodeId>(i))) mics[i].faulty = true;
    }
  }

  // Front end: the in-range pair set and the skip count. The grid path finds
  // both in O(n + in-range pairs); the dense reference path replicates the
  // seed's O(n^2) structure (full shadowing matrix filled from the same
  // per-pair substreams, so the two paths stay byte-equal).
  const std::size_t total_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  resloc::math::GridPairEnumerator pairs;
  std::vector<double> shadowing;  // dense path only
  if (config.dense_pair_scan) {
    shadowing.assign(n * n, 0.0);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = static_cast<NodeId>(i + 1); j < n; ++j) {
        const double s =
            link_shadowing_db(shadow_base, i, j, n, config.link_shadowing_stddev_db);
        shadowing[i * n + j] = s;
        shadowing[j * n + i] = s;
        if (resloc::math::distance(deployment.positions[i], deployment.positions[j]) >
            config.simulate_within_m) {
          ++data.skipped_pairs;
        }
      }
    }
  } else {
    pairs.build(deployment.positions.data(), n, config.simulate_within_m,
                /*include_equal=*/true);
    data.skipped_pairs = total_pairs - pairs.pair_count();
  }

  // Measurement turns: each (round, source) is one task on its own
  // substream, staging its estimates into its own slot. Thread workers pull
  // turns from a shared cursor; the slot layout makes aggregation order (and
  // therefore the output bytes) independent of the schedule.
  const std::size_t num_turns =
      config.rounds > 0 ? static_cast<std::size_t>(config.rounds) * n : 0;
  std::vector<std::vector<TurnEstimate>> turns(num_turns);

  const auto run_turn = [&](std::size_t turn, resloc::ranging::RangingScratch& scratch,
                            ChannelResponseCache& channel_cache) {
    obs::add(obs::Counter::kCampaignTurns);
    const auto source = static_cast<NodeId>(turn % n);
    const int round = static_cast<int>(turn / n);
    // A crashed or sleeping source skips its whole turn (it cannot chirp).
    if (injector.active() && !injector.node_available(source, round)) return;
    resloc::math::Rng stream = measurement_base.fork(turn);  // == round * n + source
    std::vector<TurnEstimate>& out = turns[turn];
    const auto attempt = [&](NodeId receiver, double true_d) {
      if (injector.active()) {
        // A down receiver hears nothing; a missed chirp is a per-attempt
        // detection dropout. Both consume only injector substream draws, so
        // the turn stream's draw sequence for surviving attempts is the
        // same at any thread count.
        if (!injector.node_available(receiver, round)) return;
        if (injector.chirp_missed(round, source, receiver)) return;
        if (injector.detector_stuck(receiver)) {
          // Stuck detector: latches the same bogus arrival every time, so
          // its reported distance is constant per node -- self-consistent
          // across rounds (it sails through the consistency vote) but wrong,
          // which is exactly what the bidirectional check is for.
          out.push_back({receiver, true_d, injector.stuck_distance_m(receiver)});
          return;
        }
      }
      // Shadowing is applied as a reduction of the effective source level.
      resloc::acoustics::SpeakerUnit speaker = speakers[source];
      speaker.output_db +=
          config.dense_pair_scan
              ? shadowing[source * n + receiver]
              : link_shadowing_db(shadow_base, source, receiver, n,
                                  config.link_shadowing_stddev_db);
      // The distance-dependent channel response comes from the per-worker
      // cache: every round revisits the same link distances, so the log10
      // spreading term is paid once per distinct distance per trial. The
      // cache only ever returns bitwise-exact matches, so estimates are
      // byte-identical to the uncached path.
      const acoustics::LinkResponse& link = channel_cache.lookup(true_d);
      const auto estimate =
          service.measure(true_d, speaker, mics[receiver], stream, scratch, link);
      if (estimate) {
        double measured = *estimate;
        if (injector.active()) {
          measured = injector.corrupt_distance(round, source, receiver, measured);
        }
        out.push_back({receiver, true_d, measured});
      }
    };
    if (config.dense_pair_scan) {
      for (NodeId receiver = 0; receiver < n; ++receiver) {
        if (receiver == source) continue;
        const double true_d =
            resloc::math::distance(deployment.positions[source], deployment.positions[receiver]);
        if (true_d > config.simulate_within_m) continue;
        attempt(receiver, true_d);
      }
    } else {
      pairs.for_each_neighbor(source, [&](std::size_t receiver, double true_d) {
        attempt(static_cast<NodeId>(receiver), true_d);
      });
    }
  };

  const std::size_t threads = std::min<std::size_t>(
      config.threads > 1 ? static_cast<std::size_t>(config.threads) : 1,
      std::max<std::size_t>(num_turns, 1));
  if (threads <= 1) {
    // One scratch serves every pair: the per-sequence buffers are sized by
    // the service's window and reused across the whole campaign. The channel
    // cache lives next to it and dies with the trial (its invalidation
    // point -- trials may perturb the environment).
    resloc::ranging::RangingScratch scratch;
    ChannelResponseCache channel_cache(config.ranging.environment);
    for (std::size_t turn = 0; turn < num_turns; ++turn)
      run_turn(turn, scratch, channel_cache);
  } else {
    std::atomic<std::size_t> cursor{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto worker = [&]() {
      resloc::ranging::RangingScratch scratch;
      ChannelResponseCache channel_cache(config.ranging.environment);
      try {
        for (;;) {
          const std::size_t turn = cursor.fetch_add(1, std::memory_order_relaxed);
          if (turn >= num_turns) return;
          run_turn(turn, scratch, channel_cache);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Sequential aggregation in turn order: identical to the historical
  // round -> source -> ascending-receiver insertion order.
  std::size_t estimate_count = 0;
  for (const auto& turn : turns) estimate_count += turn.size();
  data.samples.reserve(estimate_count);
  const double samples_per_meter =
      config.ranging.tdoa.sample_rate_hz / config.ranging.tdoa.speed_of_sound_mps;
  for (std::size_t turn = 0; turn < num_turns; ++turn) {
    const auto source = static_cast<NodeId>(turn % n);
    for (const TurnEstimate& e : turns[turn]) {
      data.raw.add(source, e.receiver, e.measured_m);
      data.samples.push_back({source, e.receiver, e.true_distance_m, e.measured_m,
                              (e.measured_m - e.true_distance_m) * samples_per_meter});
    }
  }

  {
    RESLOC_SPAN("ranging/filtering");
    data.filtered =
        data.raw.symmetric_estimates(config.filter, config.bidirectional_tolerance_m);
  }
  obs::add(obs::Counter::kFilteredPairs, data.filtered.size());
  return data;
}

}  // namespace resloc::sim
