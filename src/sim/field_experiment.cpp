#include "sim/field_experiment.hpp"

namespace resloc::sim {

using resloc::core::MeasurementSet;
using resloc::core::NodeId;

MeasurementSet FieldExperimentData::to_measurement_set(std::size_t node_count) const {
  MeasurementSet set(node_count);
  for (const auto& pair : filtered) {
    set.add(pair.a, pair.b, pair.distance_m, /*weight=*/1.0);
  }
  return set;
}

std::vector<double> FieldExperimentData::raw_errors() const {
  std::vector<double> errors;
  errors.reserve(samples.size());
  for (const auto& s : samples) errors.push_back(s.measured_m - s.true_distance_m);
  return errors;
}

FieldExperimentData run_field_experiment(const resloc::core::Deployment& deployment,
                                         const FieldExperimentConfig& config,
                                         resloc::math::Rng& rng) {
  FieldExperimentData data;
  const std::size_t n = deployment.size();

  // Each node's physical units are drawn once for the whole campaign.
  std::vector<resloc::acoustics::SpeakerUnit> speakers;
  std::vector<resloc::acoustics::MicUnit> mics;
  speakers.reserve(n);
  mics.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    speakers.push_back(config.units.sample_speaker(config.nominal_speaker_db, rng));
    mics.push_back(config.units.sample_mic(rng));
  }

  const resloc::ranging::RangingService service(config.ranging);

  // Symmetric per-link shadowing, drawn once per campaign: the acoustic path
  // i<->j is the same grass in both directions. Pairs beyond the simulation
  // range are counted here (once per unordered pair, not per round) so the
  // campaign's sparseness is attributable.
  std::vector<double> shadowing(n * n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = static_cast<NodeId>(i + 1); j < n; ++j) {
      const double s = rng.gaussian(0.0, config.link_shadowing_stddev_db);
      shadowing[i * n + j] = s;
      shadowing[j * n + i] = s;
      if (resloc::math::distance(deployment.positions[i], deployment.positions[j]) >
          config.simulate_within_m) {
        ++data.skipped_pairs;
      }
    }
  }

  // One scratch serves every pair: the per-sequence buffers are sized by the
  // service's window and reused across the whole campaign.
  resloc::ranging::RangingScratch scratch;
  for (int round = 0; round < config.rounds; ++round) {
    for (NodeId source = 0; source < n; ++source) {
      for (NodeId receiver = 0; receiver < n; ++receiver) {
        if (receiver == source) continue;
        const double true_d =
            resloc::math::distance(deployment.positions[source], deployment.positions[receiver]);
        if (true_d > config.simulate_within_m) continue;

        // Shadowing is applied as a reduction of the effective source level.
        resloc::acoustics::SpeakerUnit speaker = speakers[source];
        speaker.output_db += shadowing[source * n + receiver];

        const auto estimate = service.measure(true_d, speaker, mics[receiver], rng, scratch);
        if (!estimate) continue;
        data.raw.add(source, receiver, *estimate);
        data.samples.push_back({source, receiver, true_d, *estimate});
      }
    }
  }

  data.filtered =
      data.raw.symmetric_estimates(config.filter, config.bidirectional_tolerance_m);
  return data;
}

}  // namespace resloc::sim
