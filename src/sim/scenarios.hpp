// Named scenario builders: one canned configuration per paper experiment,
// shared by the benches, examples, and integration tests so every consumer
// reproduces the same setting.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "sim/field_experiment.hpp"

namespace resloc::sim {

/// Refined ranging service configured for the grass field campaign
/// (Section 3.6: 8 ms chirps at 4.3 kHz, 10 chirps accumulated, T=2,
/// k=6 of m=32, 16 kHz sampling).
resloc::ranging::RangingConfig grass_refined_ranging();

/// Baseline (single-chirp, first-firing) service in the urban environment of
/// Section 3.3.
resloc::ranging::RangingConfig urban_baseline_ranging();

/// Refined service recalibrated for the noisy urban site: "a high threshold
/// is advantageous in noisy environments to limit false positives"
/// (Section 3.6) -- frequent city noise bursts would otherwise accumulate
/// past the quiet-field T=2 threshold.
resloc::ranging::RangingConfig urban_refined_ranging();

/// Grass-grid campaign config (refined service, loudspeakers, 3 rounds,
/// median filtering) -- the data behind Figures 6-8, 13-14, 17-18, 24.
FieldExperimentConfig grass_campaign_config(int rounds = 3);

/// Urban campaign config (baseline service) -- Figures 2 and 4.
FieldExperimentConfig urban_baseline_campaign_config(int rounds = 1);

/// The grass-grid scenario: deployment + completed ranging campaign.
struct GrassGridScenario {
  resloc::core::Deployment deployment;
  FieldExperimentData data;
  resloc::core::MeasurementSet measurements;
};

/// Runs the 46-node grass-grid campaign (49-position offset grid with 3
/// failed motes) with the refined service. Deterministic per seed.
GrassGridScenario grass_grid_scenario(std::uint64_t seed, int rounds = 3);

/// Designates `count` random anchors on a scenario deployment (the paper
/// randomly chose 13 of 46 grid nodes). Any previous anchor set is replaced;
/// picks are distinct; `count` is clamped to the node count.
void assign_random_anchors(resloc::core::Deployment& deployment, std::size_t count,
                           std::uint64_t seed);

}  // namespace resloc::sim
