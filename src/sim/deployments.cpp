#include "sim/deployments.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resloc::sim {

using resloc::core::Deployment;
using resloc::core::NodeId;
using resloc::math::Vec2;

Deployment offset_grid(std::size_t columns, std::size_t rows, double column_spacing_m,
                       double row_spacing_m, double offset_m) {
  Deployment d;
  d.positions.reserve(columns * rows);
  for (std::size_t c = 0; c < columns; ++c) {
    const double x = static_cast<double>(c) * column_spacing_m;
    const double y0 = (c % 2 == 0) ? offset_m : 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      d.positions.push_back(Vec2{x, y0 + static_cast<double>(r) * row_spacing_m});
    }
  }
  return d;
}

Deployment offset_grid_with_failures(std::size_t drop_count, resloc::math::Rng& rng) {
  Deployment d = offset_grid();
  drop_random_nodes(d, drop_count, rng);
  return d;
}

Deployment random_uniform(std::size_t count, double width_m, double height_m,
                          double min_spacing_m, resloc::math::Rng& rng) {
  Deployment d;
  d.positions.reserve(count);
  const double min_sq = min_spacing_m * min_spacing_m;
  int attempts = 0;
  while (d.positions.size() < count && attempts < 100000) {
    ++attempts;
    const Vec2 candidate{rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)};
    bool ok = true;
    for (const Vec2& p : d.positions) {
      if (resloc::math::distance_sq(candidate, p) < min_sq) {
        ok = false;
        break;
      }
    }
    if (ok) d.positions.push_back(candidate);
  }
  return d;
}

Deployment town_blocks_59() {
  // Streets of a 3 x 2 grid of ~19 m city blocks; nodes sit along street
  // edges roughly every 9.5 m with small deterministic jitter, honoring the
  // >= 9 m minimum node spacing the paper's soft constraint assumes
  // ("we penalized pairs of nodes with unknown distance when they were
  // assigned coordinates which made them closer than 9 m"). The layout spans
  // about 57 x 38 m. With the 22 m ranging cutoff this yields ~480 measured
  // pairs -- sparser than the paper's quoted 945, which cannot coexist with a
  // 9 m minimum spacing for 59 nodes; the 9 m guarantee is the constraint
  // the experiment depends on, so it wins (see DESIGN.md).
  Deployment d;
  resloc::math::Rng rng(0x70776e5f626c6bULL);  // fixed: the layout is part of the scenario

  const double block = 19.0;  // 4 x 3 grid of blocks: town spans 76 x 57 m
  const auto jitter = [&rng]() { return rng.uniform(-0.35, 0.35); };

  // Vertical streets at x = 0, 19, 38, 57, 76; nodes every 9.5 m, y in [0, 57].
  for (int sx = 0; sx <= 4; ++sx) {
    const double x = block * sx;
    for (int k = 0; k <= 6; ++k) {
      d.positions.push_back(Vec2{x + jitter(), 9.5 * k + jitter()});
    }
  }
  // Horizontal streets at y = 0, 19, 38, 57: mid-block nodes between the
  // corner nodes already placed by the vertical streets.
  for (int sy = 0; sy <= 3; ++sy) {
    const double y = block * sy;
    for (const double x : {9.5, 28.5, 47.5, 66.5}) {
      d.positions.push_back(Vec2{x + jitter(), y + jitter()});
    }
  }
  // Courtyard nodes inside eight of the twelve blocks (sensor networks do
  // not only follow streets); block centers stay >= 9 m from street nodes.
  for (const Vec2 center : {Vec2{9.5, 9.5}, Vec2{47.5, 9.5}, Vec2{28.5, 28.5}, Vec2{66.5, 28.5},
                            Vec2{9.5, 47.5}, Vec2{47.5, 47.5}, Vec2{28.5, 9.5},
                            Vec2{66.5, 47.5}}) {
    d.positions.push_back(center + Vec2{jitter(), jitter()});
  }

  // 35 + 16 + 8 = 59 exactly.
  while (d.positions.size() > 59) d.positions.pop_back();
  return d;
}

Deployment parking_lot_15() {
  Deployment d;
  // 25 x 25 m lot; 5 loudspeaker-fitted anchor boards around the edge and 10
  // plain nodes inside (matches the Figure 12 setting: 15 nodes, 5 anchors,
  // one-way measurements from anchors).
  d.positions = {
      Vec2{0.0, 0.0},   Vec2{25.0, 0.0},  Vec2{25.0, 22.0}, Vec2{0.0, 22.0},  Vec2{12.0, 11.0},
      Vec2{5.5, 4.0},   Vec2{18.0, 3.5},  Vec2{21.5, 9.0},  Vec2{16.0, 14.5}, Vec2{8.0, 16.0},
      Vec2{2.5, 10.0},  Vec2{12.5, 5.5},  Vec2{6.0, 9.5},   Vec2{19.5, 18.5}, Vec2{11.0, 20.0},
  };
  d.anchors = {0, 1, 2, 3, 4};
  return d;
}

void drop_random_nodes(Deployment& deployment, std::size_t drop_count,
                       resloc::math::Rng& rng) {
  if (drop_count == 0 || deployment.positions.empty()) return;

  std::vector<bool> droppable(deployment.positions.size(), true);
  for (NodeId anchor : deployment.anchors) {
    if (anchor >= droppable.size()) {
      throw std::out_of_range("drop_random_nodes: anchor id out of range");
    }
    droppable[anchor] = false;
  }
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < droppable.size(); ++i) {
    if (droppable[i]) candidates.push_back(i);
  }

  std::vector<bool> dead(deployment.positions.size(), false);
  for (std::size_t pick : rng.sample_indices(candidates.size(),
                                             std::min(drop_count, candidates.size()))) {
    dead[candidates[pick]] = true;
  }

  // Compact positions and remap anchor ids to the survivors' new indices.
  std::vector<NodeId> new_id(deployment.positions.size(), 0);
  std::vector<resloc::math::Vec2> kept;
  kept.reserve(deployment.positions.size());
  for (std::size_t i = 0; i < deployment.positions.size(); ++i) {
    if (dead[i]) continue;
    new_id[i] = static_cast<NodeId>(kept.size());
    kept.push_back(deployment.positions[i]);
  }
  for (NodeId& anchor : deployment.anchors) anchor = new_id[anchor];
  deployment.positions = std::move(kept);
}

void choose_random_anchors(Deployment& deployment, std::size_t count, resloc::math::Rng& rng) {
  deployment.anchors.clear();
  for (std::size_t idx : rng.sample_indices(deployment.positions.size(),
                                            std::min(count, deployment.positions.size()))) {
    deployment.anchors.push_back(static_cast<NodeId>(idx));
  }
  std::sort(deployment.anchors.begin(), deployment.anchors.end());
}

}  // namespace resloc::sim
