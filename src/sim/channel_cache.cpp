#include "sim/channel_cache.hpp"

#include <cmath>
#include <cstring>

#include "obs/telemetry.hpp"

namespace resloc::sim {

namespace {

/// SplitMix64 finalizer: the avalanche stage spreads the quantized cell index
/// across the table.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Distance-cell key: 1 mm cells. Distances within one cell share a hash and
/// resolve by the exact-distance compare + linear probe; the quantization
/// only exists so near-identical distances (both directions of a link, grid
/// symmetries) land in predictable cells.
std::uint64_t cell_of(double distance_m) {
  return static_cast<std::uint64_t>(std::llround(distance_m * 1000.0));
}

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Probes before giving up and evicting the home slot. Collisions beyond this
/// mean the table is saturated; eviction keeps lookups O(1) either way.
constexpr std::size_t kMaxProbe = 8;

}  // namespace

ChannelResponseCache::ChannelResponseCache(const acoustics::EnvironmentProfile& env,
                                           std::size_t capacity)
    : env_(env), table_(round_up_pow2(capacity < 2 ? 2 : capacity)), mask_(table_.size() - 1) {}

const acoustics::LinkResponse& ChannelResponseCache::lookup(double distance_m) {
  const std::size_t home = static_cast<std::size_t>(mix64(cell_of(distance_m))) & mask_;
  std::size_t slot = home;
  for (std::size_t probe = 0; probe < kMaxProbe; ++probe, slot = (slot + 1) & mask_) {
    Entry& e = table_[slot];
    if (!e.occupied) {
      ++misses_;
      obs::add(obs::Counter::kChannelCacheMisses);
      e.occupied = true;
      e.distance_m = distance_m;
      e.link = acoustics::link_response(distance_m, env_);
      return e.link;
    }
    // Bitwise equality, not ==: the key must reproduce the exact double the
    // response was computed from (and -0.0 vs 0.0 must not alias).
    if (std::memcmp(&e.distance_m, &distance_m, sizeof(double)) == 0) {
      ++hits_;
      obs::add(obs::Counter::kChannelCacheHits);
      return e.link;
    }
  }
  // Saturated neighborhood: recompute into the home slot.
  ++misses_;
  obs::add(obs::Counter::kChannelCacheMisses);
  Entry& e = table_[home];
  e.occupied = true;
  e.distance_m = distance_m;
  e.link = acoustics::link_response(distance_m, env_);
  return e.link;
}

}  // namespace resloc::sim
