// Deployment generators for the paper's experiment geometries.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "math/rng.hpp"

namespace resloc::sim {

/// The 7x7 offset grid of Figure 5: columns 9 m apart; nodes within a column
/// 9 m apart; alternate columns vertically offset by 4.5 m, making
/// nearest-neighbor spacings 9 m (in-column) and ~10 m (cross-column).
/// Coordinates land on multiples of (9, 4.5), matching the node ids quoted in
/// the paper's discussion ((0,4.5), (18,13.5), (27,36), ...).
resloc::core::Deployment offset_grid(std::size_t columns = 7, std::size_t rows = 7,
                                     double column_spacing_m = 9.0, double row_spacing_m = 9.0,
                                     double offset_m = 4.5);

/// Offset grid with `drop_count` randomly removed nodes (field experiments
/// ran with 46/47 of the 49 grid positions; some motes fail to report).
resloc::core::Deployment offset_grid_with_failures(std::size_t drop_count,
                                                   resloc::math::Rng& rng);

/// Uniform random deployment over a width x height field with a minimum
/// spacing (rejection sampling).
resloc::core::Deployment random_uniform(std::size_t count, double width_m, double height_m,
                                        double min_spacing_m, resloc::math::Rng& rng);

/// The 59 "plausible node positions in a map of a few city blocks in a small
/// town" (Figures 20-22): nodes along the street edges of a 3x2 block grid,
/// deterministic jitter. Constructed so the number of node pairs closer than
/// 22 m is near the paper's 945.
resloc::core::Deployment town_blocks_59();

/// The 15-node parking-lot deployment of Figure 12 (25 x 25 m), first 5 ids
/// are the anchors (the 5 loudspeaker-fitted boards).
resloc::core::Deployment parking_lot_15();

/// Selects `min(count, node count)` distinct random anchors among the
/// deployment's nodes (in place, replacing any previous anchor set).
void choose_random_anchors(resloc::core::Deployment& deployment, std::size_t count,
                           resloc::math::Rng& rng);

/// Removes `drop_count` random non-anchor nodes (mote failures) and remaps
/// the surviving anchor ids to the compacted positions. Throws
/// std::out_of_range if an anchor id exceeds the node count.
void drop_random_nodes(resloc::core::Deployment& deployment, std::size_t drop_count,
                       resloc::math::Rng& rng);

}  // namespace resloc::sim
