#include "sim/scenarios.hpp"

#include "sim/deployments.hpp"

namespace resloc::sim {

using resloc::acoustics::EnvironmentProfile;

resloc::ranging::RangingConfig grass_refined_ranging() {
  resloc::ranging::RangingConfig config;
  config.environment = EnvironmentProfile::grass();
  config.pattern.num_chirps = 10;
  config.pattern.chirp_duration_s = 0.008;
  config.pattern.tone_frequency_hz = 4300.0;
  config.detection = {/*threshold=*/2, /*window=*/32, /*min_detections=*/6};
  config.baseline = false;
  config.verify_pattern = true;
  // The grass service's buffer covers 22 m of acoustic travel -- the paper's
  // observed maximum measurable range there (Figure 13 uses a 22 m cutoff),
  // and the basis of its <500-byte RAM budget.
  config.max_window_range_m = 22.0;
  return config;
}

resloc::ranging::RangingConfig urban_baseline_ranging() {
  resloc::ranging::RangingConfig config;
  config.environment = EnvironmentProfile::urban();
  config.pattern.num_chirps = 1;
  config.pattern.chirp_duration_s = 0.008;
  config.baseline = true;
  config.max_window_range_m = 40.0;
  return config;
}

resloc::ranging::RangingConfig urban_refined_ranging() {
  resloc::ranging::RangingConfig config = grass_refined_ranging();
  config.environment = EnvironmentProfile::urban();
  config.max_window_range_m = 35.0;
  // Urban calibration: higher accumulation threshold and denser window
  // requirement to reject the frequent wide-band noise bursts.
  config.detection = {/*threshold=*/4, /*window=*/32, /*min_detections=*/10};
  return config;
}

FieldExperimentConfig grass_campaign_config(int rounds) {
  FieldExperimentConfig config;
  config.ranging = grass_refined_ranging();
  config.rounds = rounds;
  config.filter.kind = resloc::ranging::FilterKind::kAuto;
  config.bidirectional_tolerance_m = 1.0;
  config.simulate_within_m = 30.0;
  return config;
}

FieldExperimentConfig urban_baseline_campaign_config(int rounds) {
  FieldExperimentConfig config;
  config.ranging = urban_baseline_ranging();
  config.rounds = rounds;
  config.filter.kind = resloc::ranging::FilterKind::kMedian;
  config.bidirectional_tolerance_m = 1.0;
  config.simulate_within_m = 38.0;
  return config;
}

GrassGridScenario grass_grid_scenario(std::uint64_t seed, int rounds) {
  resloc::math::Rng rng(seed);
  GrassGridScenario scenario;
  scenario.deployment = offset_grid_with_failures(/*drop_count=*/3, rng);
  scenario.data = run_field_experiment(scenario.deployment, grass_campaign_config(rounds), rng);
  scenario.measurements = scenario.data.to_measurement_set(scenario.deployment.size());
  return scenario;
}

void assign_random_anchors(resloc::core::Deployment& deployment, std::size_t count,
                           std::uint64_t seed) {
  resloc::math::Rng rng(seed);
  // choose_random_anchors clamps count to the node count, clears any previous
  // anchor set, and samples without replacement -- oversized requests and
  // repeated calls are safe rather than trusted to the caller.
  choose_random_anchors(deployment, count, rng);
}

}  // namespace resloc::sim
