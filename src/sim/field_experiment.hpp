// Field-experiment emulator: runs the full acoustic ranging stack over a
// deployment the way the paper's campaigns did -- every node takes a turn as
// the chirping source while all others listen, for several rounds -- and
// produces both the raw directional estimates and the filtered symmetric
// measurement set the localization algorithms consume.
//
// This is the substitute for the paper's physical experiments (60-node urban
// baseline, 46-node grass grid): per-node speaker/microphone units are drawn
// once, so hardware faults correlate across a node's measurements, exactly
// the structure the consistency checks exploit.
//
// Scaling (the measurement-acquisition front end): in-range pairs are found
// by spatial-grid culling (math::GridPairEnumerator) in O(n + in-range
// pairs) instead of the seed's rounds x n x n scan, and every random draw
// comes from a counter-based substream -- per-link shadowing from
// fork(i * n + j) of a shadowing base, each (round, source) turn's
// measurement noise from fork(round * n + source) of a measurement base --
// so no draw depends on enumeration order or on any other turn's draw
// count. That makes the campaign embarrassingly parallel: `threads` shards
// the (round, source) turns across workers with byte-identical output at
// any thread count. `dense_pair_scan` keeps the seed's O(n^2) structure
// (full shadowing matrix + all-pairs receiver scan) as the bit-equal
// reference path for equivalence tests and benches.
#pragma once

#include <vector>

#include "acoustics/units.hpp"
#include "core/types.hpp"
#include "fault/fault_plan.hpp"
#include "math/rng.hpp"
#include "ranging/measurement_table.hpp"
#include "ranging/ranging_service.hpp"

namespace resloc::sim {

/// Campaign configuration.
struct FieldExperimentConfig {
  resloc::ranging::RangingConfig ranging;
  resloc::acoustics::UnitVariationModel units;
  double nominal_speaker_db = resloc::acoustics::kLoudspeakerDb;
  /// Measurement rounds; each round, every node emits one chirp sequence.
  int rounds = 3;
  /// Statistical filter applied per directed pair before symmetrization.
  resloc::ranging::FilterPolicy filter;
  /// Bidirectional agreement tolerance (Section 3.5 consistency check).
  double bidirectional_tolerance_m = 1.0;
  /// Pairs farther apart than this are not simulated at all (outside any
  /// plausible acoustic or radio range; keeps the campaign tractable).
  double simulate_within_m = 45.0;

  /// Per-link shadowing: each unordered pair draws a constant excess
  /// attenuation from N(0, this) dB once per campaign, applied symmetrically
  /// in both directions. Models the paper's geographically varying
  /// conditions ("taller than average grass absorbing the signal more",
  /// bushes, ground undulation) that silence mid-range links and make real
  /// field data much sparser than line-of-sight physics predicts. Drawn
  /// on demand from the pair's own substream -- O(1) memory, identical
  /// value every time the link is used.
  double link_shadowing_stddev_db = 5.0;

  /// Worker threads for the measurement loop; <= 1 runs sequentially. Each
  /// (round, source) turn is an independent task on its own RNG substream
  /// with its own RangingScratch, and results are aggregated in turn order,
  /// so the campaign output is byte-identical at any thread count.
  int threads = 1;

  /// Fault-injection plan for the campaign (acoustic-layer faults: node
  /// availability, forced-faulty mics, stuck detectors, missed chirps,
  /// corrupted distances; the radio-layer fields apply where a net::Network
  /// is built, via fault::apply_to_radio). The default plan is inert: the
  /// injector base is forked without advancing `rng` and no fault substream
  /// is ever drawn, so a fault-free campaign is byte-identical to one built
  /// before this field existed.
  resloc::fault::FaultPlan faults;

  /// Reference path: replicate the seed implementation's O(n^2) structure
  /// (precomputed n x n shadowing matrix, all-pairs receiver scan per turn)
  /// instead of the spatial-grid front end. Output is byte-equal to the
  /// grid path; exists for equivalence tests and as the honest perf
  /// baseline in bench_campaign_scale.
  bool dense_pair_scan = false;
};

/// One raw directional estimate with its ground truth (diagnostics only).
struct RangingSample {
  resloc::core::NodeId source = 0;
  resloc::core::NodeId receiver = 0;
  double true_distance_m = 0.0;
  double measured_m = 0.0;
  /// Detection-offset diagnostic: (measured - true) converted to detector
  /// samples via fs / v_sound (~2.1 cm per sample at the paper's 16 kHz /
  /// 340 m/s). This is the detector-accuracy currency of the bench and the
  /// offset harness: +160 here means the detector latched an arrival 160
  /// samples (10 ms) after the true one -- the fixed-echo signature.
  double detection_offset_samples = 0.0;
};

/// Campaign output.
struct FieldExperimentData {
  resloc::ranging::MeasurementTable raw;
  std::vector<RangingSample> samples;      ///< every successful raw estimate
  std::vector<resloc::ranging::PairEstimate> filtered;  ///< after filter + bidirectional check

  /// Unordered pairs that were never simulated because their true distance
  /// exceeds `simulate_within_m` (outside any plausible acoustic or radio
  /// range). Surfaced -- rather than silently dropped -- so a sparse campaign
  /// on a large field is diagnosable: a low edge count with a high skip count
  /// is geometry, not detector failure.
  std::size_t skipped_pairs = 0;

  /// Converts the filtered estimates into the localization input format.
  resloc::core::MeasurementSet to_measurement_set(std::size_t node_count) const;

  /// Raw estimate errors (measured - true) for histogram benches.
  std::vector<double> raw_errors() const;

  /// Mean |detection_offset_samples| over all raw estimates (0 when none):
  /// the campaign-level detector accuracy figure the `detectors` sweep and
  /// bench_detector_accuracy report per detector mode.
  double mean_abs_detection_offset_samples() const;
};

/// Runs the campaign. Units are sampled per node from `config.units` using
/// `rng`; the same units serve every pair involving that node. The unit
/// draws are the only randomness consumed from `rng` itself -- all campaign
/// randomness (shadowing, timing jitter, detector noise) comes from
/// counter-based substreams forked off `rng`'s post-unit state, so the
/// byte-stream is independent of pair enumeration order and thread count.
FieldExperimentData run_field_experiment(const resloc::core::Deployment& deployment,
                                         const FieldExperimentConfig& config,
                                         resloc::math::Rng& rng);

}  // namespace resloc::sim
