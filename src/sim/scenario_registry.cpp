#include "sim/scenario_registry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "sim/deployments.hpp"

namespace resloc::sim {

using resloc::core::Deployment;
using resloc::core::NodeId;

namespace {

// Uniform random field that *guarantees* the requested node count: the
// rejection sampler under it gives up silently when the field saturates, and
// a 600-node "city_1000" would poison every aggregate labeled n=1000.
Deployment checked_random_uniform(const char* scenario, std::size_t count, double width_m,
                                  double height_m, double min_spacing_m,
                                  resloc::math::Rng& rng) {
  Deployment d = random_uniform(count, width_m, height_m, min_spacing_m, rng);
  if (d.positions.size() != count) {
    throw std::invalid_argument(std::string("scenario '") + scenario + "' saturated at " +
                                std::to_string(d.positions.size()) + " of " +
                                std::to_string(count) +
                                " nodes; lower node_count or the minimum spacing");
  }
  return d;
}

// Near-square offset grid with exactly `node_count` positions (row-major
// trim of the last column), or the canonical 7x7 when node_count is 0.
Deployment sized_offset_grid(std::size_t node_count) {
  if (node_count == 0) return offset_grid();
  const auto rows = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(node_count)))));
  const std::size_t columns = (node_count + rows - 1) / rows;
  Deployment d = offset_grid(columns, rows);
  d.positions.resize(node_count);
  return d;
}

/// A registered scenario: how to build it, and which terrain it sits on.
struct ScenarioEntry {
  ScenarioBuilder builder;
  std::string environment;  ///< "" = no canonical site
};

std::map<std::string, ScenarioEntry> make_builtins() {
  std::map<std::string, ScenarioEntry> m;
  m["offset_grid"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                        Deployment d = sized_offset_grid(p.node_count);
                        drop_random_nodes(d, p.drop_count, rng);
                        return d;
                      },
                      "grass"};
  m["grass_grid"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                       // The field campaign's grid: 49 positions, 3 failed
                       // motes by default.
                       Deployment d = sized_offset_grid(p.node_count);
                       drop_random_nodes(d, p.drop_count == 0 ? 3 : p.drop_count, rng);
                       return d;
                     },
                     "grass"};
  // Fixed-geometry scenarios reject a node_count they cannot honor rather
  // than silently running their native size under a mislabeled sweep axis.
  m["town"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                 if (p.node_count != 0 && p.node_count != 59) {
                   throw std::invalid_argument("scenario 'town' has a fixed 59-node layout");
                 }
                 Deployment d = town_blocks_59();
                 drop_random_nodes(d, p.drop_count, rng);
                 return d;
               },
               "urban"};
  m["parking_lot"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                        if (p.node_count != 0 && p.node_count != 15) {
                          throw std::invalid_argument(
                              "scenario 'parking_lot' has a fixed 15-node layout");
                        }
                        Deployment d = parking_lot_15();
                        drop_random_nodes(d, p.drop_count, rng);  // anchors survive
                        return d;
                      },
                      "pavement"};
  m["random_uniform"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                           const std::size_t count = p.node_count == 0 ? 49 : p.node_count;
                           Deployment d = random_uniform(count, p.field_width_m,
                                                         p.field_height_m, p.min_spacing_m, rng);
                           drop_random_nodes(d, p.drop_count, rng);
                           return d;
                         },
                         ""};
  // The 60-node urban survey of Figures 2/4: distances recorded out to ~30 m
  // over a 70 x 55 m site.
  m["urban_60"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                     const std::size_t count = p.node_count == 0 ? 60 : p.node_count;
                     Deployment d = random_uniform(count, 70.0, 55.0, 6.0, rng);
                     drop_random_nodes(d, p.drop_count, rng);
                     return d;
                   },
                   "urban"};
  // Sparse wooded patch: the strongest-absorption terrain of Section 3.6 --
  // acoustic links die fast, so campaigns here are deliberately edge-starved.
  m["wooded_patch"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                         const std::size_t count = p.node_count == 0 ? 30 : p.node_count;
                         Deployment d = random_uniform(count, 60.0, 60.0, 8.0, rng);
                         drop_random_nodes(d, p.drop_count, rng);
                         return d;
                       },
                       "wooded"};

  // --- Large-scale workloads (the ROADMAP's production-scale axis). The
  // paper stops at ~60 nodes; these keep its ~8-9 m spacing regime and the
  // 22 m synthetic ranging cutoff meaningful while growing n by 10-20x.
  // Field areas hold the packing fraction near 0.25 so the rejection sampler
  // stays fast and cannot saturate. ---

  // Campus-sized deployment: 500 nodes over ~8 hectares of open ground
  // (~154 m^2 per node -> ~10 in-range neighbors at the 22 m cutoff).
  m["campus_500"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                       const std::size_t count = p.node_count == 0 ? 500 : p.node_count;
                       Deployment d =
                           checked_random_uniform("campus_500", count, 320.0, 240.0, 7.0, rng);
                       drop_random_nodes(d, p.drop_count, rng);
                       return d;
                     },
                     "grass"};
  // City-district deployment: 1000 nodes over ~11 hectares of urban terrain,
  // denser than the campus (~113 m^2 per node, ~13 in-range neighbors).
  m["city_1000"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                      const std::size_t count = p.node_count == 0 ? 1000 : p.node_count;
                      Deployment d =
                          checked_random_uniform("city_1000", count, 390.0, 290.0, 6.0, rng);
                      drop_random_nodes(d, p.drop_count, rng);
                      return d;
                    },
                    "urban"};
  // Density-invariant uniform field for node-count sweeps: the square side
  // grows with sqrt(n) so each node keeps ~144 m^2 regardless of n -- a
  // node_counts axis over this scenario varies scale, not crowding.
  m["uniform_n"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                      const std::size_t count = p.node_count == 0 ? 100 : p.node_count;
                      const double side =
                          12.0 * std::sqrt(static_cast<double>(count));
                      Deployment d =
                          checked_random_uniform("uniform_n", count, side, side, 6.0, rng);
                      drop_random_nodes(d, p.drop_count, rng);
                      return d;
                    },
                    ""};
  return m;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, ScenarioEntry>& registry() {
  static std::map<std::string, ScenarioEntry> r = make_builtins();
  return r;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool has_scenario(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().count(name) != 0;
}

Deployment build_scenario(const std::string& name, const ScenarioParams& params,
                          resloc::math::Rng& rng) {
  ScenarioBuilder builder;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(name);
    if (it == registry().end()) {
      throw std::out_of_range("unknown scenario: " + name);
    }
    builder = it->second.builder;  // copy so the build runs outside the lock
  }
  return builder(params, rng);
}

std::string scenario_environment(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  return it == registry().end() ? std::string() : it->second.environment;
}

void register_scenario(const std::string& name, ScenarioBuilder builder,
                       const std::string& environment) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = {std::move(builder), environment};
}

}  // namespace resloc::sim
