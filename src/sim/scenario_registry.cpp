#include "sim/scenario_registry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "sim/deployments.hpp"

namespace resloc::sim {

using resloc::core::Deployment;
using resloc::core::NodeId;

namespace {

// Near-square offset grid with exactly `node_count` positions (row-major
// trim of the last column), or the canonical 7x7 when node_count is 0.
Deployment sized_offset_grid(std::size_t node_count) {
  if (node_count == 0) return offset_grid();
  const auto rows = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(node_count)))));
  const std::size_t columns = (node_count + rows - 1) / rows;
  Deployment d = offset_grid(columns, rows);
  d.positions.resize(node_count);
  return d;
}

/// A registered scenario: how to build it, and which terrain it sits on.
struct ScenarioEntry {
  ScenarioBuilder builder;
  std::string environment;  ///< "" = no canonical site
};

std::map<std::string, ScenarioEntry> make_builtins() {
  std::map<std::string, ScenarioEntry> m;
  m["offset_grid"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                        Deployment d = sized_offset_grid(p.node_count);
                        drop_random_nodes(d, p.drop_count, rng);
                        return d;
                      },
                      "grass"};
  m["grass_grid"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                       // The field campaign's grid: 49 positions, 3 failed
                       // motes by default.
                       Deployment d = sized_offset_grid(p.node_count);
                       drop_random_nodes(d, p.drop_count == 0 ? 3 : p.drop_count, rng);
                       return d;
                     },
                     "grass"};
  // Fixed-geometry scenarios reject a node_count they cannot honor rather
  // than silently running their native size under a mislabeled sweep axis.
  m["town"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                 if (p.node_count != 0 && p.node_count != 59) {
                   throw std::invalid_argument("scenario 'town' has a fixed 59-node layout");
                 }
                 Deployment d = town_blocks_59();
                 drop_random_nodes(d, p.drop_count, rng);
                 return d;
               },
               "urban"};
  m["parking_lot"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                        if (p.node_count != 0 && p.node_count != 15) {
                          throw std::invalid_argument(
                              "scenario 'parking_lot' has a fixed 15-node layout");
                        }
                        Deployment d = parking_lot_15();
                        drop_random_nodes(d, p.drop_count, rng);  // anchors survive
                        return d;
                      },
                      "pavement"};
  m["random_uniform"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                           const std::size_t count = p.node_count == 0 ? 49 : p.node_count;
                           Deployment d = random_uniform(count, p.field_width_m,
                                                         p.field_height_m, p.min_spacing_m, rng);
                           drop_random_nodes(d, p.drop_count, rng);
                           return d;
                         },
                         ""};
  // The 60-node urban survey of Figures 2/4: distances recorded out to ~30 m
  // over a 70 x 55 m site.
  m["urban_60"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                     const std::size_t count = p.node_count == 0 ? 60 : p.node_count;
                     Deployment d = random_uniform(count, 70.0, 55.0, 6.0, rng);
                     drop_random_nodes(d, p.drop_count, rng);
                     return d;
                   },
                   "urban"};
  // Sparse wooded patch: the strongest-absorption terrain of Section 3.6 --
  // acoustic links die fast, so campaigns here are deliberately edge-starved.
  m["wooded_patch"] = {[](const ScenarioParams& p, resloc::math::Rng& rng) {
                         const std::size_t count = p.node_count == 0 ? 30 : p.node_count;
                         Deployment d = random_uniform(count, 60.0, 60.0, 8.0, rng);
                         drop_random_nodes(d, p.drop_count, rng);
                         return d;
                       },
                       "wooded"};
  return m;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, ScenarioEntry>& registry() {
  static std::map<std::string, ScenarioEntry> r = make_builtins();
  return r;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool has_scenario(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().count(name) != 0;
}

Deployment build_scenario(const std::string& name, const ScenarioParams& params,
                          resloc::math::Rng& rng) {
  ScenarioBuilder builder;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(name);
    if (it == registry().end()) {
      throw std::out_of_range("unknown scenario: " + name);
    }
    builder = it->second.builder;  // copy so the build runs outside the lock
  }
  return builder(params, rng);
}

std::string scenario_environment(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  return it == registry().end() ? std::string() : it->second.environment;
}

void register_scenario(const std::string& name, ScenarioBuilder builder,
                       const std::string& environment) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = {std::move(builder), environment};
}

}  // namespace resloc::sim
