// String-keyed scenario registry over the deployment builders.
//
// The experiment runner (src/runner) sweeps scenarios by name, so the canned
// geometries need a uniform, parameterizable entry point: name + params + rng
// in, deployment out. Built-in scenarios cover every geometry the paper uses;
// register_scenario() lets future workloads plug in without touching the
// runner. Lookup is guarded by a mutex so worker threads may build
// deployments concurrently; registration should still happen up front, before
// a campaign starts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "math/rng.hpp"

namespace resloc::sim {

/// Knobs a scenario builder may honor. A zero/default value means "use the
/// scenario's canonical setting" (e.g. the 49-position grass grid).
struct ScenarioParams {
  /// Target node count; 0 keeps the scenario's native size. Grid scenarios
  /// choose a near-square layout, random_uniform places exactly this many.
  std::size_t node_count = 0;
  /// Nodes randomly removed after construction (mote failures). Anchors, if
  /// the scenario defines any, are never dropped.
  std::size_t drop_count = 0;
  /// Field dimensions for the random_uniform scenario.
  double field_width_m = 70.0;
  double field_height_m = 70.0;
  /// Minimum pairwise spacing for the random_uniform scenario.
  double min_spacing_m = 9.0;
};

/// Builds a deployment for the given parameters. Must be deterministic in
/// (params, rng state) and safe to call from multiple threads at once.
using ScenarioBuilder =
    std::function<resloc::core::Deployment(const ScenarioParams&, resloc::math::Rng&)>;

/// Registered scenario names, sorted. Built-ins:
///   "offset_grid"    -- the Figure 5 offset grid (native 49 positions)
///   "grass_grid"     -- offset grid with 3 failed motes (native 46 nodes)
///   "town"           -- the 59-node small-town layout of Figures 20-22
///   "parking_lot"    -- the 15-node / 5-anchor lot of Figure 12
///   "random_uniform" -- uniform random field with minimum spacing
///   "urban_60"       -- the 60-node urban survey site of Figures 2/4
///                       (random 70 x 55 m, 6 m minimum spacing)
///   "wooded_patch"   -- 30 nodes over a 60 x 60 m wooded area (native size;
///                       the strongest-absorption terrain of Section 3.6)
///   "campus_500"     -- 500 nodes over 320 x 240 m of grass (large scale)
///   "city_1000"      -- 1000 nodes over 390 x 290 m of urban terrain
///   "uniform_n"      -- parameterized uniform field whose side grows with
///                       sqrt(node_count) (constant density; for node_counts
///                       sweeps). Native size 100.
/// The three large-scale scenarios throw std::invalid_argument instead of
/// silently under-filling when the requested count cannot fit the field.
std::vector<std::string> scenario_names();

bool has_scenario(const std::string& name);

/// Builds `name` with `params`, drawing randomness from `rng`. Throws
/// std::out_of_range for an unknown name (has_scenario() to probe).
resloc::core::Deployment build_scenario(const std::string& name, const ScenarioParams& params,
                                        resloc::math::Rng& rng);

/// Canonical acoustic environment of a scenario's site (a name accepted by
/// acoustics::environment_by_name), or "" when the scenario does not pin one.
/// The runner's environment axis value "scenario" resolves through this, so
/// a mixed-terrain sweep ranges each deployment on its own ground.
std::string scenario_environment(const std::string& name);

/// Adds (or replaces) a scenario. Call before campaigns start; the builder
/// itself must be thread-safe. `environment` optionally pins the scenario's
/// canonical terrain (see scenario_environment).
void register_scenario(const std::string& name, ScenarioBuilder builder,
                       const std::string& environment = "");

}  // namespace resloc::sim
