// Channel-response cache for campaign measurement loops.
//
// Every measure() needs the distance-dependent channel response -- spreading
// loss (a log10), excess attenuation, travel time (acoustics::LinkResponse).
// A campaign asks for the same link distances over and over: every round
// revisits every in-range pair, and both directions of a link share one
// distance. This cache memoizes link_response() per distance so the log10 is
// paid once per distinct link instead of once per measure.
//
// Correctness contract: the cache NEVER changes values. Entries are keyed by
// a quantized distance cell for hashing but store the exact distance double;
// a lookup returns a cached response only when the stored distance compares
// bitwise-equal to the query, otherwise it recomputes (and caches) the exact
// response. A hash collision or table-full eviction therefore costs time,
// never accuracy -- cached and uncached campaigns are byte-identical.
//
// Lifetime contract: a cache is bound to one EnvironmentProfile (the caller
// constructs it per trial, which is also the invalidation point -- trials may
// perturb the environment) and is owned by one worker thread, next to its
// RangingScratch. It is reused across every round and turn of the trial.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "acoustics/channel.hpp"
#include "acoustics/environment.hpp"

namespace resloc::sim {

class ChannelResponseCache {
 public:
  /// `capacity` is rounded up to a power of two; the table never grows, so
  /// pathological distance sets degrade to evictions, not allocation.
  explicit ChannelResponseCache(const acoustics::EnvironmentProfile& env,
                                std::size_t capacity = 2048);

  /// The channel response for `distance_m`, from cache when an exact-distance
  /// entry exists, recomputed (and inserted) otherwise. The returned
  /// reference is valid until the next lookup() call.
  const acoustics::LinkResponse& lookup(double distance_m);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  struct Entry {
    bool occupied = false;
    double distance_m = 0.0;  ///< exact key; bitwise compare on lookup
    acoustics::LinkResponse link;
  };

  const acoustics::EnvironmentProfile& env_;
  std::vector<Entry> table_;
  std::size_t mask_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace resloc::sim
