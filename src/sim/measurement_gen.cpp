#include "sim/measurement_gen.hpp"

#include <algorithm>

namespace resloc::sim {

using resloc::core::Deployment;
using resloc::core::MeasurementSet;
using resloc::core::NodeId;

MeasurementSet perfect_measurements(const Deployment& deployment, double max_range_m) {
  MeasurementSet set(deployment.size());
  for (NodeId i = 0; i < deployment.size(); ++i) {
    for (NodeId j = i + 1; j < deployment.size(); ++j) {
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d < max_range_m) set.add(i, j, d);
    }
  }
  return set;
}

MeasurementSet gaussian_measurements(const Deployment& deployment,
                                     const GaussianNoiseModel& noise, resloc::math::Rng& rng) {
  MeasurementSet set(deployment.size());
  for (NodeId i = 0; i < deployment.size(); ++i) {
    for (NodeId j = i + 1; j < deployment.size(); ++j) {
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d >= noise.max_range_m) continue;
      set.add(i, j, std::max(0.05, d + rng.gaussian(0.0, noise.sigma_m)));
    }
  }
  return set;
}

std::size_t augment_with_gaussian(MeasurementSet& measurements, const Deployment& deployment,
                                  const GaussianNoiseModel& noise, resloc::math::Rng& rng,
                                  std::size_t max_added) {
  measurements.set_node_count(deployment.size());
  std::vector<std::pair<NodeId, NodeId>> candidates;
  for (NodeId i = 0; i < deployment.size(); ++i) {
    for (NodeId j = i + 1; j < deployment.size(); ++j) {
      if (measurements.has(i, j)) continue;
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d < noise.max_range_m) candidates.emplace_back(i, j);
    }
  }
  rng.shuffle(candidates);
  std::size_t added = 0;
  for (const auto& [i, j] : candidates) {
    if (max_added > 0 && added >= max_added) break;
    const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
    measurements.add(i, j, std::max(0.05, d + rng.gaussian(0.0, noise.sigma_m)));
    ++added;
  }
  return added;
}

MeasurementSet subsample_edges(const MeasurementSet& measurements, std::size_t count,
                               resloc::math::Rng& rng) {
  MeasurementSet out(measurements.node_count());
  auto edges = measurements.edges();
  rng.shuffle(edges);
  if (edges.size() > count) edges.resize(count);
  for (const auto& e : edges) out.add(e.i, e.j, e.distance_m, e.weight);
  return out;
}

void inject_outliers(MeasurementSet& measurements, double fraction, double magnitude_sigma_m,
                     resloc::math::Rng& rng) {
  const auto edges = measurements.edges();  // copy: add() mutates storage
  for (const auto& e : edges) {
    if (!rng.bernoulli(fraction)) continue;
    const double corrupted =
        std::max(0.3, e.distance_m + rng.gaussian(0.0, magnitude_sigma_m));
    measurements.add(e.i, e.j, corrupted, e.weight);
  }
}

}  // namespace resloc::sim
