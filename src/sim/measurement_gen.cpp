#include "sim/measurement_gen.hpp"

#include <algorithm>

#include "math/grid_pairs.hpp"

namespace resloc::sim {

using resloc::core::Deployment;
using resloc::core::MeasurementSet;
using resloc::core::NodeId;

namespace {

/// Shared front end: the in-range pairs (strict `distance < max_range_m`,
/// every generator's historical comparison) found by spatial-grid culling and
/// replayed in the dense scan's (i, j) order -- so generators drawing RNG per
/// pair stay byte-identical to their former O(n^2) loops.
resloc::math::GridPairEnumerator in_range_pairs(const Deployment& deployment,
                                                double max_range_m) {
  resloc::math::GridPairEnumerator pairs;
  pairs.build(deployment.positions.data(), deployment.size(), max_range_m,
              /*include_equal=*/false);
  return pairs;
}

}  // namespace

MeasurementSet perfect_measurements(const Deployment& deployment, double max_range_m) {
  const auto pairs = in_range_pairs(deployment, max_range_m);
  MeasurementSet set(deployment.size());
  set.reserve(pairs.pair_count());
  pairs.for_each_pair([&](std::size_t i, std::size_t j, double d) {
    set.add(static_cast<NodeId>(i), static_cast<NodeId>(j), d);
  });
  return set;
}

MeasurementSet gaussian_measurements(const Deployment& deployment,
                                     const GaussianNoiseModel& noise, resloc::math::Rng& rng) {
  const auto pairs = in_range_pairs(deployment, noise.max_range_m);
  MeasurementSet set(deployment.size());
  set.reserve(pairs.pair_count());
  pairs.for_each_pair([&](std::size_t i, std::size_t j, double d) {
    set.add(static_cast<NodeId>(i), static_cast<NodeId>(j),
            std::max(0.05, d + rng.gaussian(0.0, noise.sigma_m)));
  });
  return set;
}

std::size_t augment_with_gaussian(MeasurementSet& measurements, const Deployment& deployment,
                                  const GaussianNoiseModel& noise, resloc::math::Rng& rng,
                                  std::size_t max_added) {
  measurements.set_node_count(deployment.size());
  // The candidate carries its distance: the former implementation computed
  // math::distance twice per added pair (once to filter, again after the
  // shuffle). The cached value is bit-identical, so the draws are unchanged.
  struct Candidate {
    NodeId i = 0;
    NodeId j = 0;
    double distance_m = 0.0;
  };
  const auto pairs = in_range_pairs(deployment, noise.max_range_m);
  std::vector<Candidate> candidates;
  candidates.reserve(pairs.pair_count());
  pairs.for_each_pair([&](std::size_t i, std::size_t j, double d) {
    const auto a = static_cast<NodeId>(i);
    const auto b = static_cast<NodeId>(j);
    if (!measurements.has(a, b)) candidates.push_back({a, b, d});
  });
  rng.shuffle(candidates);
  std::size_t added = 0;
  for (const Candidate& c : candidates) {
    if (max_added > 0 && added >= max_added) break;
    measurements.add(c.i, c.j, std::max(0.05, c.distance_m + rng.gaussian(0.0, noise.sigma_m)));
    ++added;
  }
  return added;
}

MeasurementSet subsample_edges(const MeasurementSet& measurements, std::size_t count,
                               resloc::math::Rng& rng) {
  MeasurementSet out(measurements.node_count());
  auto edges = measurements.edges();
  rng.shuffle(edges);
  if (edges.size() > count) edges.resize(count);
  for (const auto& e : edges) out.add(e.i, e.j, e.distance_m, e.weight);
  return out;
}

void inject_outliers(MeasurementSet& measurements, double fraction, double magnitude_sigma_m,
                     resloc::math::Rng& rng) {
  const auto edges = measurements.edges();  // copy: add() mutates storage
  for (const auto& e : edges) {
    if (!rng.bernoulli(fraction)) continue;
    const double corrupted =
        std::max(0.3, e.distance_m + rng.gaussian(0.0, magnitude_sigma_m));
    measurements.add(e.i, e.j, corrupted, e.weight);
  }
}

}  // namespace resloc::sim
