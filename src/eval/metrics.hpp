// Localization evaluation metrics.
//
// The paper reports the "average localization error (i.e., the average of the
// distances between actual node positions and the corresponding estimated
// positions)". For relative-frame algorithms (LSS, distributed LSS) the
// computed coordinates are first "translated, rotated and flipped to achieve
// a best-fit match with the actual node coordinates" (Section 4.2.2);
// multilateration results are absolute and compared directly.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "math/vec2.hpp"

namespace resloc::eval {

/// Per-run localization error report.
struct LocalizationReport {
  std::size_t total_nodes = 0;
  std::size_t localized = 0;
  double average_error_m = 0.0;
  double max_error_m = 0.0;
  double median_error_m = 0.0;
  std::vector<double> per_node_errors;             ///< localized nodes only
  std::vector<std::optional<double>> node_errors;  ///< indexed by node id

  double localized_fraction() const {
    return total_nodes == 0 ? 0.0
                            : static_cast<double>(localized) / static_cast<double>(total_nodes);
  }

  /// Average error excluding the k largest per-node errors (the paper quotes
  /// "without the largest 5 errors, the average improves to 1.5m").
  double average_without_worst(std::size_t k) const;
};

/// Evaluates estimated against actual positions. When `align_first` is true
/// the estimates are best-fit aligned (translation + rotation + reflection)
/// over the localized subset before errors are measured. `exclude` lists node
/// ids ignored entirely (e.g. anchors, or nodes with no measurements).
LocalizationReport evaluate_localization(
    const std::vector<std::optional<resloc::math::Vec2>>& estimated,
    const std::vector<resloc::math::Vec2>& actual, bool align_first,
    const std::vector<resloc::core::NodeId>& exclude = {});

/// Convenience overload for algorithms returning positions for all nodes.
LocalizationReport evaluate_localization(const std::vector<resloc::math::Vec2>& estimated,
                                         const std::vector<resloc::math::Vec2>& actual,
                                         bool align_first,
                                         const std::vector<resloc::core::NodeId>& exclude = {});

/// Ranging-error summary over raw (measured - true) error samples.
struct RangingErrorReport {
  std::size_t count = 0;
  double mean_m = 0.0;
  double median_abs_m = 0.0;       ///< median of |error|
  double stddev_m = 0.0;
  double within_30cm_fraction = 0.0;
  double within_1m_fraction = 0.0;
  double max_abs_m = 0.0;
  std::size_t underestimates_beyond_1m = 0;
  std::size_t overestimates_beyond_1m = 0;
};

RangingErrorReport summarize_ranging_errors(const std::vector<double>& errors);

}  // namespace resloc::eval
