// Campaign aggregation: per-trial outcomes folded into per-cell summary
// statistics, with deterministic CSV and JSON emitters.
//
// A "cell" is one point of a parameter sweep's cross product; the experiment
// runner executes `trials` repetitions per cell and this layer reduces them
// to the statistics the paper's figures plot (mean/median/p95 localization
// error, placement rate, stress). Emitters are byte-deterministic for a given
// input: doubles are printed with a fixed %.12g format, cells in index order,
// and wall-clock timing is kept out of the serialized aggregates (it is the
// one per-trial quantity that legitimately varies run to run, so including
// it would break the same-seed byte-identity guarantee the runner's tests
// enforce).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace resloc::eval {

/// Why a trial failed -- the stage that threw. A taxonomy rather than a
/// string so the runner can count per-reason (obs counters, CLI breakdown)
/// and tests can assert on classification.
enum class FailureReason : std::uint8_t {
  kNone = 0,             ///< the trial completed
  kScenarioBuild,        ///< scenario lookup / deployment sampling threw
  kConfig,               ///< sweep-cell -> pipeline config mapping threw
  kMeasurement,          ///< measurement acquisition (campaign) threw
  kSolver,               ///< solver or evaluation threw
  kNonStdException,      ///< something not derived from std::exception
};

/// Stable report name ("none", "scenario_build", "config", "measurement",
/// "solver", "non_std_exception").
const char* failure_reason_name(FailureReason reason);

/// Number of FailureReason values (for per-reason count arrays).
inline constexpr std::size_t kFailureReasonCount = 6;

/// Reduced result of one trial (one pipeline run on one sampled deployment).
struct TrialOutcome {
  std::size_t cell_index = 0;    ///< which sweep cell the trial belongs to
  std::size_t trial_index = 0;   ///< repetition index within the cell
  bool ok = false;               ///< false: scenario build or solve failed
  std::size_t total_nodes = 0;   ///< scored nodes (non-anchors for multilat)
  std::size_t localized = 0;
  /// Nodes placed with a degraded-confidence fix (LocalizationStatus::
  /// kDegraded): under-constrained multilateration, non-finite LSS solves.
  std::size_t degraded = 0;
  /// Pipeline attempts consumed: 1 for a first-try success, 1 + retries
  /// otherwise (bounded by SweepSpec::max_trial_retries).
  std::size_t attempts = 1;
  /// Failure classification when !ok (kNone for completed trials).
  FailureReason failure = FailureReason::kNone;
  double placement_rate = 0.0;   ///< localized / total
  double average_error_m = 0.0;
  double median_error_m = 0.0;
  double max_error_m = 0.0;
  double stress = 0.0;           ///< NaN for solvers without a global stress
  std::size_t measured_edges = 0;
  std::size_t augmented_edges = 0;
  /// Pairs the acoustic campaign skipped as beyond its range cutoff (0 for
  /// synthetic sources). Lets sparse-campaign cells be told apart from
  /// detector failures in the aggregates.
  std::size_t skipped_pairs = 0;
  double wall_time_s = 0.0;      ///< excluded from deterministic emitters
  /// Per-stage wall-clock split of wall_time_s (measure / solve / eval, from
  /// PipelineRun). Diagnostics only, excluded from the emitters like
  /// wall_time_s: wall clocks are the non-deterministic per-trial quantities.
  double measure_wall_s = 0.0;
  double solve_wall_s = 0.0;
  double eval_wall_s = 0.0;
  /// What went wrong when !ok (e.g. "unknown scenario: ..."). Diagnostics
  /// only; not part of the serialized aggregates.
  std::string error;
  /// The failing thread's most recent telemetry spans at the point of
  /// failure, newest last (empty when telemetry is off or the trial passed).
  /// Post-hoc debugging context for the error report; never serialized.
  std::vector<std::string> error_spans;
};

/// Summary statistics over one cell's trials. Error statistics are computed
/// over the trials that localized at least one node; placement/edge
/// statistics over all ok trials. Statistics with no contributing trials are
/// NaN (serialized as null in JSON, "nan" in CSV) -- absent, not zero.
struct CellAggregate {
  std::size_t trials = 0;          ///< trials attempted
  std::size_t ok_trials = 0;       ///< trials that ran to completion
  std::size_t failed_trials = 0;   ///< trials - ok_trials (explicit, not derived)
  std::size_t scored_trials = 0;   ///< ok trials with >= 1 localized node
  /// Coverage: mean placement rate over ALL attempted trials, with failed
  /// trials contributing 0 -- the resilience headline. Unlike
  /// mean_placement_rate (ok trials only), a cell where every trial crashes
  /// scores 0 coverage, not NaN-absent; NaN only when the cell has no trials.
  double mean_coverage = 0.0;
  /// Mean fraction of scored nodes whose fix was degraded, over ok trials
  /// (NaN when none completed).
  double mean_degraded_rate = 0.0;
  double mean_error_m = 0.0;       ///< mean over trial average errors
  double median_error_m = 0.0;     ///< median over trial average errors
  double p95_error_m = 0.0;        ///< 95th percentile of trial average errors
  double max_error_m = 0.0;        ///< worst single-node error in the cell
  double mean_placement_rate = 0.0;
  double mean_stress = 0.0;        ///< over trials with finite stress; NaN if none
  double mean_measured_edges = 0.0;
  double mean_augmented_edges = 0.0;
  double mean_skipped_pairs = 0.0;
  double total_wall_time_s = 0.0;  ///< excluded from deterministic emitters
  /// Per-stage sums of the trials' wall-clock splits. Diagnostics only,
  /// excluded from the emitters (see TrialOutcome::measure_wall_s).
  double total_measure_wall_s = 0.0;
  double total_solve_wall_s = 0.0;
  double total_eval_wall_s = 0.0;
};

/// One sweep cell: its axis coordinates (name -> value, in axis order) and
/// the aggregate over its trials.
struct CellResult {
  std::vector<std::pair<std::string, std::string>> axes;
  CellAggregate aggregate;
};

/// Folds one cell's trial outcomes into summary statistics. The range form
/// lets callers aggregate a contiguous slice (e.g. one cell of a cell-major
/// campaign) without copying.
CellAggregate aggregate_trials(const TrialOutcome* begin, const TrialOutcome* end);
CellAggregate aggregate_trials(const std::vector<TrialOutcome>& trials);

/// Deterministic double formatting shared by the emitters (%.12g; NaN -> "nan").
std::string format_value(double value);

/// Serializes a campaign to pretty-printed JSON. Deterministic: same cells in,
/// same bytes out. `sweep_name` and `seed` identify the campaign.
std::string campaign_to_json(const std::string& sweep_name, std::uint64_t seed,
                             const std::vector<CellResult>& cells);

/// Serializes the per-cell table to CSV (one row per cell, axis columns
/// first). Deterministic like the JSON emitter.
std::string campaign_to_csv(const std::vector<CellResult>& cells);

/// Writes `content` to `path` (best effort; returns false on I/O error).
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace resloc::eval
