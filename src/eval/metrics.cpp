#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "math/procrustes.hpp"
#include "math/stats.hpp"

namespace resloc::eval {

using resloc::core::NodeId;
using resloc::math::Vec2;

double LocalizationReport::average_without_worst(std::size_t k) const {
  if (per_node_errors.size() <= k) return 0.0;
  std::vector<double> sorted = per_node_errors;
  std::sort(sorted.begin(), sorted.end());
  sorted.resize(sorted.size() - k);
  return resloc::math::mean(sorted);
}

LocalizationReport evaluate_localization(const std::vector<std::optional<Vec2>>& estimated,
                                         const std::vector<Vec2>& actual, bool align_first,
                                         const std::vector<NodeId>& exclude) {
  LocalizationReport report;
  const std::size_t n = std::min(estimated.size(), actual.size());
  std::vector<bool> excluded(n, false);
  for (NodeId id : exclude) {
    if (id < n) excluded[id] = true;
  }

  std::vector<std::size_t> ids;
  std::vector<Vec2> est;
  std::vector<Vec2> act;
  for (std::size_t i = 0; i < n; ++i) {
    if (excluded[i]) continue;
    ++report.total_nodes;
    if (!estimated[i].has_value()) continue;
    ids.push_back(i);
    est.push_back(*estimated[i]);
    act.push_back(actual[i]);
  }
  report.localized = ids.size();
  report.node_errors.assign(n, std::nullopt);
  if (ids.empty()) return report;

  if (align_first) {
    const auto fit = resloc::math::fit_rigid(est, act, /*allow_reflection=*/true);
    if (fit.valid) {
      for (Vec2& p : est) p = fit.transform.apply(p);
    }
  }

  for (std::size_t k = 0; k < ids.size(); ++k) {
    const double err = resloc::math::distance(est[k], act[k]);
    report.per_node_errors.push_back(err);
    report.node_errors[ids[k]] = err;
  }
  report.average_error_m = resloc::math::mean(report.per_node_errors);
  report.max_error_m = *resloc::math::max_value(report.per_node_errors);
  report.median_error_m = *resloc::math::median(report.per_node_errors);
  return report;
}

LocalizationReport evaluate_localization(const std::vector<Vec2>& estimated,
                                         const std::vector<Vec2>& actual, bool align_first,
                                         const std::vector<NodeId>& exclude) {
  std::vector<std::optional<Vec2>> wrapped;
  wrapped.reserve(estimated.size());
  for (const Vec2& p : estimated) wrapped.emplace_back(p);
  return evaluate_localization(wrapped, actual, align_first, exclude);
}

RangingErrorReport summarize_ranging_errors(const std::vector<double>& errors) {
  RangingErrorReport report;
  report.count = errors.size();
  if (errors.empty()) return report;

  report.mean_m = resloc::math::mean(errors);
  report.stddev_m = resloc::math::stddev(errors);
  std::vector<double> abs_errors;
  abs_errors.reserve(errors.size());
  for (double e : errors) abs_errors.push_back(std::abs(e));
  report.median_abs_m = *resloc::math::median(abs_errors);
  report.max_abs_m = *resloc::math::max_value(abs_errors);
  report.within_30cm_fraction = resloc::math::fraction_within(errors, 0.30);
  report.within_1m_fraction = resloc::math::fraction_within(errors, 1.0);
  for (double e : errors) {
    if (e < -1.0) ++report.underestimates_beyond_1m;
    if (e > 1.0) ++report.overestimates_beyond_1m;
  }
  return report;
}

}  // namespace resloc::eval
