#include "eval/aggregate.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "math/stats.hpp"

namespace resloc::eval {

namespace {

// JSON string escaping for the small character set our labels may contain.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

// The resilience statistics (failed_trials, coverage, degraded rate) are
// emitted only for campaigns that sweep a fault axis: appending columns to
// every serialization would break byte-identity of the fault-free goldens,
// and for those campaigns the new fields are degenerate anyway (0 failures,
// coverage == placement rate, 0 degraded).
bool has_fault_axes(const std::vector<CellResult>& cells) {
  if (cells.empty()) return false;
  for (const auto& [name, value] : cells.front().axes) {
    if (name == "fault_kind") return true;
  }
  return false;
}

}  // namespace

const char* failure_reason_name(FailureReason reason) {
  switch (reason) {
    case FailureReason::kNone: return "none";
    case FailureReason::kScenarioBuild: return "scenario_build";
    case FailureReason::kConfig: return "config";
    case FailureReason::kMeasurement: return "measurement";
    case FailureReason::kSolver: return "solver";
    case FailureReason::kNonStdException: return "non_std_exception";
  }
  return "unknown";
}

std::string format_value(double value) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

CellAggregate aggregate_trials(const std::vector<TrialOutcome>& trials) {
  return aggregate_trials(trials.data(), trials.data() + trials.size());
}

CellAggregate aggregate_trials(const TrialOutcome* begin, const TrialOutcome* end) {
  CellAggregate agg;
  agg.trials = static_cast<std::size_t>(end - begin);

  std::vector<double> avg_errors;       // one per scored trial
  std::vector<double> stresses;         // finite stresses only
  double placement_sum = 0.0;
  double degraded_rate_sum = 0.0;
  double edges_sum = 0.0;
  double augmented_sum = 0.0;
  double skipped_sum = 0.0;
  double worst = 0.0;

  for (const TrialOutcome* it = begin; it != end; ++it) {
    const TrialOutcome& t = *it;
    agg.total_wall_time_s += t.wall_time_s;
    agg.total_measure_wall_s += t.measure_wall_s;
    agg.total_solve_wall_s += t.solve_wall_s;
    agg.total_eval_wall_s += t.eval_wall_s;
    if (!t.ok) continue;
    ++agg.ok_trials;
    placement_sum += t.placement_rate;
    degraded_rate_sum += t.total_nodes > 0 ? static_cast<double>(t.degraded) /
                                                 static_cast<double>(t.total_nodes)
                                           : 0.0;
    edges_sum += static_cast<double>(t.measured_edges);
    augmented_sum += static_cast<double>(t.augmented_edges);
    skipped_sum += static_cast<double>(t.skipped_pairs);
    if (t.localized == 0) continue;
    ++agg.scored_trials;
    avg_errors.push_back(t.average_error_m);
    if (t.max_error_m > worst) worst = t.max_error_m;
    if (std::isfinite(t.stress)) stresses.push_back(t.stress);
  }

  agg.failed_trials = agg.trials - agg.ok_trials;
  // Coverage averages over every attempted trial, failed ones scoring 0: a
  // cell where everything crashed covers nothing (0), which is different
  // from "no data" (NaN, only when the cell has no trials at all).
  agg.mean_coverage = agg.trials > 0
                          ? placement_sum / static_cast<double>(agg.trials)
                          : std::numeric_limits<double>::quiet_NaN();

  if (agg.ok_trials > 0) {
    agg.mean_degraded_rate = degraded_rate_sum / static_cast<double>(agg.ok_trials);
  } else {
    agg.mean_degraded_rate = std::numeric_limits<double>::quiet_NaN();
  }
  if (agg.ok_trials > 0) {
    const auto n = static_cast<double>(agg.ok_trials);
    agg.mean_placement_rate = placement_sum / n;
    agg.mean_measured_edges = edges_sum / n;
    agg.mean_augmented_edges = augmented_sum / n;
    agg.mean_skipped_pairs = skipped_sum / n;
  } else {
    // No trial ran to completion: these statistics are absent, not zero.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    agg.mean_placement_rate = nan;
    agg.mean_measured_edges = nan;
    agg.mean_augmented_edges = nan;
    agg.mean_skipped_pairs = nan;
  }
  if (!avg_errors.empty()) {
    agg.mean_error_m = resloc::math::mean(avg_errors);
    agg.median_error_m = resloc::math::median(avg_errors).value_or(0.0);
    agg.p95_error_m = resloc::math::percentile(avg_errors, 95.0).value_or(0.0);
    agg.max_error_m = worst;
  } else {
    // No trial localized anything: error statistics are absent, not zero --
    // a 0 here would read as perfect localization in a plotted report.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    agg.mean_error_m = nan;
    agg.median_error_m = nan;
    agg.p95_error_m = nan;
    agg.max_error_m = nan;
  }
  agg.mean_stress = stresses.empty() ? std::numeric_limits<double>::quiet_NaN()
                                     : resloc::math::mean(stresses);
  return agg;
}

std::string campaign_to_json(const std::string& sweep_name, std::uint64_t seed,
                             const std::vector<CellResult>& cells) {
  const bool resilience_fields = has_fault_axes(cells);
  std::string out;
  out += "{\n";
  out += "  \"sweep\": \"" + escape_json(sweep_name) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\n      \"axes\": {";
    for (std::size_t a = 0; a < cell.axes.size(); ++a) {
      if (a != 0) out += ", ";
      out += "\"" + escape_json(cell.axes[a].first) + "\": \"" +
             escape_json(cell.axes[a].second) + "\"";
    }
    out += "},\n";
    const CellAggregate& g = cell.aggregate;
    // NaN and infinity are not valid JSON; absent statistics (no scored
    // trials, solvers without a global stress) and diverged solves are
    // emitted as null.
    const auto number = [](double v) {
      return std::isfinite(v) ? format_value(v) : std::string("null");
    };
    out += "      \"trials\": " + std::to_string(g.trials) + ",\n";
    out += "      \"ok_trials\": " + std::to_string(g.ok_trials) + ",\n";
    out += "      \"scored_trials\": " + std::to_string(g.scored_trials) + ",\n";
    out += "      \"mean_error_m\": " + number(g.mean_error_m) + ",\n";
    out += "      \"median_error_m\": " + number(g.median_error_m) + ",\n";
    out += "      \"p95_error_m\": " + number(g.p95_error_m) + ",\n";
    out += "      \"max_error_m\": " + number(g.max_error_m) + ",\n";
    out += "      \"mean_placement_rate\": " + number(g.mean_placement_rate) + ",\n";
    if (resilience_fields) {
      out += "      \"failed_trials\": " + std::to_string(g.failed_trials) + ",\n";
      out += "      \"mean_coverage\": " + number(g.mean_coverage) + ",\n";
      out += "      \"mean_degraded_rate\": " + number(g.mean_degraded_rate) + ",\n";
    }
    out += "      \"mean_stress\": " + number(g.mean_stress) + ",\n";
    out += "      \"mean_measured_edges\": " + number(g.mean_measured_edges) + ",\n";
    out += "      \"mean_augmented_edges\": " + number(g.mean_augmented_edges) + ",\n";
    out += "      \"mean_skipped_pairs\": " + number(g.mean_skipped_pairs) + "\n";
    out += "    }";
  }
  out += cells.empty() ? "],\n" : "\n  ],\n";
  out += "  \"cell_count\": " + std::to_string(cells.size()) + "\n";
  out += "}\n";
  return out;
}

std::string campaign_to_csv(const std::vector<CellResult>& cells) {
  const bool resilience_fields = has_fault_axes(cells);
  std::string out;
  // Header: axis names from the first cell (all cells of a sweep share them),
  // then the aggregate columns.
  if (!cells.empty()) {
    for (const auto& [name, value] : cells.front().axes) out += name + ",";
  }
  out +=
      "trials,ok_trials,scored_trials,mean_error_m,median_error_m,p95_error_m,"
      "max_error_m,mean_placement_rate,mean_stress,mean_measured_edges,"
      "mean_augmented_edges,mean_skipped_pairs";
  if (resilience_fields) out += ",failed_trials,mean_coverage,mean_degraded_rate";
  out += "\n";
  for (const CellResult& cell : cells) {
    for (const auto& [name, value] : cell.axes) out += value + ",";
    const CellAggregate& g = cell.aggregate;
    out += std::to_string(g.trials) + "," + std::to_string(g.ok_trials) + "," +
           std::to_string(g.scored_trials) + "," + format_value(g.mean_error_m) + "," +
           format_value(g.median_error_m) + "," + format_value(g.p95_error_m) + "," +
           format_value(g.max_error_m) + "," + format_value(g.mean_placement_rate) + "," +
           format_value(g.mean_stress) + "," + format_value(g.mean_measured_edges) + "," +
           format_value(g.mean_augmented_edges) + "," + format_value(g.mean_skipped_pairs);
    if (resilience_fields) {
      out += "," + std::to_string(g.failed_trials) + "," + format_value(g.mean_coverage) +
             "," + format_value(g.mean_degraded_rate);
    }
    out += "\n";
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace resloc::eval
