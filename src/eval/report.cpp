#include "eval/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace resloc::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::add_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  // Column widths.
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 2 * widths.size();
  for (std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

bool write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t c = 0; c < header.size(); ++c) {
    out << header[c] << (c + 1 == header.size() ? "\n" : ",");
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  }
  return static_cast<bool>(out);
}

std::string banner(const std::string& title) {
  std::string line(72, '=');
  return line + "\n" + title + "\n" + line + "\n";
}

std::string compare_line(const std::string& label, double paper_value, double measured_value,
                         const std::string& unit) {
  std::ostringstream os;
  os << "  " << label << ": paper " << fmt(paper_value, 3) << " " << unit << "  |  measured "
     << fmt(measured_value, 3) << " " << unit;
  return os.str();
}

}  // namespace resloc::eval
