// Plain-text reporting: fixed-width tables, key-value blocks, and CSV dumps
// used by the bench binaries to print each figure's data series next to the
// paper's reported values.
#pragma once

#include <string>
#include <vector>

namespace resloc::eval {

/// Simple fixed-width ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with the given precision.
  void add_row(const std::vector<double>& row, int precision = 3);

  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double value, int precision = 3);

/// Writes rows as CSV to `path` (best effort; returns false on I/O error).
bool write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

/// Prints a section banner used to delimit bench output.
std::string banner(const std::string& title);

/// One-line comparison of a paper-reported value against ours.
std::string compare_line(const std::string& label, double paper_value, double measured_value,
                         const std::string& unit);

}  // namespace resloc::eval
