// Pipeline-wide telemetry: scoped spans, counters, and stage timing.
//
// The observability substrate every optimization PR leans on: before tearing
// down a wall like the ~110 us/pair acoustic-physics budget (ROADMAP item 1),
// the trace must say which named stage owns it. Three primitives:
//
//   - Spans: RAII scopes (RESLOC_SPAN("ranging/channel")) recorded into
//     per-thread buffers with no locking on the hot path. Every span feeds a
//     per-thread per-stage accumulator (count + total duration); when span
//     capture is on, the individual (start, end) events are additionally kept
//     (capped per thread) for the Chrome trace-event export.
//   - Counters: a fixed enum of cheap monotonically increasing tallies
//     (objective evaluations, chirp windows, constraint pairs, trials).
//     Counter totals are sums of per-thread cells, so for a deterministic
//     workload they are byte-identical at any thread count.
//   - Clock: a monotonic nanosecond source behind an injectable interface so
//     tests can drive spans with a manual clock and assert exact durations.
//     The production default upgrades to a calibrated invariant-TSC reader
//     on first enable (x86-64), cutting the per-span clock cost to a
//     fraction of a clock_gettime call.
//
// Determinism contract: telemetry never feeds back into the computation --
// enabling it cannot change a single output byte (locked by test_obs).
// Counter totals and span/stage *counts* are deterministic for a fixed
// (seed, workload); durations are wall-clock and therefore are NOT, which is
// why they live in the metrics report and the trace file, never in the
// golden-checked campaign aggregates.
//
// Cost model: everything is behind one global enable flag. Disabled, a span
// is a single relaxed atomic load and branch (bench_obs_overhead gates the
// end-to-end cost at < 2% of the survey-density campaign); enabled, a span
// is two clock reads plus two thread-local array updates (< 10%, same gate).
//
// Thread model: recording is lock-free (each thread appends to its own
// buffer; registration of a new thread takes the registry mutex once).
// snapshot()/reset() take the registry mutex and must not race live span
// recording -- call them between campaigns, after worker pools have joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace resloc::obs {

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// Monotonic nanosecond clock behind a virtual interface so tests can inject
/// a manual clock and make span durations deterministic.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  virtual std::uint64_t now_ns() const = 0;
};

/// The active clock (defaults to a std::chrono::steady_clock wrapper).
const ClockSource& clock_source();

/// Current time on the active clock -- the span hot path. Equivalent to
/// clock_source().now_ns() but skips the virtual dispatch when the active
/// clock is the calibrated TSC default (the common enabled-mode case), which
/// matters at two clock reads per span and ~34 spans per measure.
std::uint64_t now_ns();

/// Injects a clock; nullptr restores the default steady clock. The pointee
/// must outlive every span recorded under it. Test hook; not thread-safe
/// against concurrent span recording.
void set_clock_source(const ClockSource* clock);

// ---------------------------------------------------------------------------
// Enable flags
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_capture_spans;
}  // namespace detail

/// Master switch. Off (the default): spans and counters are a single relaxed
/// load + branch and record nothing.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// Sub-switch for the trace-event buffer: when off, spans still feed the
/// per-stage totals and counters but individual events are not retained
/// (metrics without the memory cost of a full trace).
inline bool capture_spans() {
  return detail::g_capture_spans.load(std::memory_order_relaxed);
}
void set_capture_spans(bool on);

/// Per-thread cap on retained span events (default 1 << 20). Events past the
/// cap are dropped and counted, never silently lost.
void set_max_spans_per_thread(std::size_t cap);

// ---------------------------------------------------------------------------
// Counters (deterministic)
// ---------------------------------------------------------------------------

/// The fixed counter set. Fixed at compile time so the hot-path increment is
/// an index into a per-thread array, and so reports always enumerate the
/// same keys in the same order.
enum class Counter : std::uint32_t {
  kMeasureCalls = 0,     ///< RangingService::measure invocations
  kMeasureDetections,    ///< measure calls that produced a distance estimate
  kChirpWindows,         ///< per-chirp receive/detect windows processed
  kCampaignTurns,        ///< (round, source) turns of the measurement loop
  kFilteredPairs,        ///< symmetric pair estimates surviving the filters
  kGdEvaluations,        ///< objective evaluations inside math::minimize
  kGdIterations,         ///< accepted gradient-descent iterations
  kGdBacktracks,         ///< step halvings in the adaptive line search
  kGdRestartRounds,      ///< perturbation-restart rounds
  kLssEdgeTerms,         ///< measured-edge terms evaluated by the stress objective
  kLssConstraintPairs,   ///< active min-spacing constraint pairs evaluated
  kRunnerTrials,         ///< trials claimed from the runner's shared cursor
  kRunnerTrialFailures,  ///< trials that ended in an exception
  kChannelCacheHits,     ///< link responses served from sim::ChannelResponseCache
  kChannelCacheMisses,   ///< link responses recomputed (cold or evicted entry)
  kRunnerTrialRetries,   ///< bounded re-runs of failed trials (max_trial_retries)
  kTrialFailScenario,    ///< trial failures classified scenario_build
  kTrialFailConfig,      ///< trial failures classified config
  kTrialFailMeasurement, ///< trial failures classified measurement
  kTrialFailSolver,      ///< trial failures classified solver
  kTrialFailNonStd,      ///< trial failures from non-std exceptions
  kCount
};

/// Stable report key of a counter ("measure_calls", "gd_evaluations", ...).
const char* counter_name(Counter c);

/// Adds to a counter's calling-thread cell. No-op when telemetry is off.
void add(Counter c, std::uint64_t delta = 1);

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Interned span-name handle. Interning takes a mutex once per call site
/// (function-local static); recording is an array index.
using SpanId = std::uint32_t;

/// Registers `name` (idempotent: the same string yields the same id) and
/// returns its id. `name` should be a string literal; the registry stores a
/// copy either way.
SpanId intern_span(const char* name);

/// One recorded span occurrence (timestamps from the active clock).
struct SpanEvent {
  SpanId id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Per-stage accumulator: how many times a span ran and its total duration.
/// `count` is deterministic for a deterministic workload; `total_ns` is not.
struct StageTotal {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// RAII span. Construct with an interned id (use RESLOC_SPAN; it handles the
/// interning); the destructor records the event. When telemetry is disabled
/// at construction the scope is inert, whatever the flag does later.
class SpanScope {
 public:
  explicit SpanScope(SpanId id)
      : id_(id), active_(enabled()) {
    if (active_) start_ns_ = now_ns();
  }
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanId id_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

/// One thread's recorded telemetry. Thread indices are registration order --
/// stable within a run, not across runs (display only).
struct ThreadSnapshot {
  std::size_t thread_index = 0;
  std::vector<SpanEvent> events;         ///< retained trace events (may be capped)
  std::vector<StageTotal> stage_totals;  ///< indexed by SpanId (may be short)
  std::uint64_t dropped_spans = 0;       ///< events past the per-thread cap
};

/// Everything recorded since the last reset(). Buffers of exited threads are
/// retained, so collecting after a worker pool joins loses nothing.
struct TelemetrySnapshot {
  std::vector<std::string> span_names;      ///< indexed by SpanId
  std::vector<std::uint64_t> counters;      ///< indexed by Counter; summed over threads
  std::vector<StageTotal> stage_totals;     ///< indexed by SpanId; summed over threads
  std::vector<ThreadSnapshot> threads;
  std::uint64_t dropped_spans = 0;          ///< summed over threads

  /// Total duration of `name` across all threads (0 when never recorded).
  std::uint64_t stage_total_ns(const std::string& name) const;
  /// Occurrence count of `name` across all threads.
  std::uint64_t stage_count(const std::string& name) const;
  /// Counter total by enum.
  std::uint64_t counter(Counter c) const;
};

/// Copies out all per-thread buffers and the merged totals. Takes the
/// registry mutex; do not call concurrently with span recording.
TelemetrySnapshot snapshot();

/// Clears every thread buffer and counter cell (span-name interning is kept:
/// ids remain valid). Same thread-safety caveat as snapshot().
void reset();

/// The last `max_spans` completed spans recorded by the *calling* thread,
/// oldest first, formatted "name [start_ns..end_ns]". Post-hoc failure
/// context: a catch block attaches this to its error report to show what the
/// trial was doing when it died. Requires span capture; empty otherwise.
std::vector<std::string> recent_spans_this_thread(std::size_t max_spans);

}  // namespace resloc::obs

// Scoped span macro: interns the name once (function-local static), then
// opens a SpanScope for the rest of the enclosing block. Usable multiple
// times per scope (line-suffixed identifiers).
#define RESLOC_OBS_CONCAT_IMPL(a, b) a##b
#define RESLOC_OBS_CONCAT(a, b) RESLOC_OBS_CONCAT_IMPL(a, b)
#define RESLOC_SPAN(name)                                                      \
  static const ::resloc::obs::SpanId RESLOC_OBS_CONCAT(                        \
      resloc_span_id_, __LINE__) = ::resloc::obs::intern_span(name);           \
  const ::resloc::obs::SpanScope RESLOC_OBS_CONCAT(resloc_span_scope_,         \
                                                   __LINE__)(                  \
      RESLOC_OBS_CONCAT(resloc_span_id_, __LINE__))
