#include "obs/trace_export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace resloc::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string fmt_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Stage rows in name order: intern order depends on which call site runs
/// first (thread-scheduling dependent), so every report sorts by name to keep
/// the deterministic block byte-stable across thread counts.
std::vector<std::pair<std::string, StageTotal>> sorted_stages(
    const TelemetrySnapshot& snap) {
  std::vector<std::pair<std::string, StageTotal>> rows;
  for (std::size_t i = 0; i < snap.span_names.size(); ++i) {
    const StageTotal total =
        i < snap.stage_totals.size() ? snap.stage_totals[i] : StageTotal{};
    if (total.count == 0) continue;
    rows.emplace_back(snap.span_names[i], total);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return rows;
}

// --- Minimal JSON parser (validation only: structure, no number semantics
// --- beyond double parsing). Recursive descent over the RFC 8259 grammar,
// --- sufficient for the trace self-check without an external dependency.

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing characters after top-level value at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(std::string& error, const std::string& what) {
    error = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out, std::string& error) {
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, error);
    if (c == '[') return parse_array(out, error);
    if (c == '"') {
      out.type = JsonValue::kString;
      return parse_string(out.str, error);
    }
    if (c == 't' || c == 'f') return parse_literal(out, error);
    if (c == 'n') return parse_literal(out, error);
    return parse_number(out, error);
  }

  bool parse_literal(JsonValue& out, std::string& error) {
    const auto match = [&](const char* word) {
      const std::size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::kNull;
      return true;
    }
    return fail(error, "invalid literal");
  }

  bool parse_number(JsonValue& out, std::string& error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&]() {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) return fail(error, "invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail(error, "invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) return fail(error, "invalid number exponent");
    }
    out.type = JsonValue::kNumber;
    out.number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (text_[pos_] != '"') return fail(error, "expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail(error, "unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail(error, "truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return fail(error, "invalid \\u escape");
              }
            }
            pos_ += 4;
            out += '?';  // code point identity is irrelevant to validation
            break;
          }
          default: return fail(error, "unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail(error, "unescaped control character in string");
      } else {
        out += c;
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_array(JsonValue& out, std::string& error) {
    out.type = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item, error)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, std::string& error) {
    out.type = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail(error, "expected object key");
      }
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail(error, "expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_chrome_trace_json(const TelemetrySnapshot& snap) {
  // Timestamps relative to the earliest event keep the numbers readable and
  // sub-microsecond precision intact in the %.3f microsecond fields.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const ThreadSnapshot& t : snap.threads) {
    for (const SpanEvent& e : t.events) t0 = std::min(t0, e.start_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;

  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  for (const ThreadSnapshot& t : snap.threads) {
    for (const SpanEvent& e : t.events) {
      const std::string name =
          e.id < snap.span_names.size() ? snap.span_names[e.id] : "?";
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\": \"" + json_escape(name) +
             "\", \"cat\": \"resloc\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
             std::to_string(t.thread_index) +
             ", \"ts\": " + fmt_us(static_cast<double>(e.start_ns - t0) / 1000.0) +
             ", \"dur\": " + fmt_us(static_cast<double>(e.end_ns - e.start_ns) / 1000.0) +
             "}";
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string metrics_report_json(const TelemetrySnapshot& snap) {
  std::string out;
  out += "{\n  \"report\": \"resloc_metrics\",\n";

  // Deterministic block: integer tallies, byte-identical per (seed, workload)
  // at any thread count. Safe to diff and to golden-check.
  out += "  \"deterministic\": {\n    \"counters\": {";
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c) {
    out += (c == 0 ? "\n" : ",\n");
    out += "      \"" + std::string(counter_name(static_cast<Counter>(c))) +
           "\": " + std::to_string(c < snap.counters.size() ? snap.counters[c] : 0);
  }
  out += "\n    },\n    \"stage_counts\": {";
  const auto stages = sorted_stages(snap);
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "      \"" + json_escape(stages[i].first) +
           "\": " + std::to_string(stages[i].second.count);
  }
  out += stages.empty() ? "}\n  },\n" : "\n    }\n  },\n";

  // Non-deterministic block: wall-clock durations. Never diff these.
  out += "  \"non_deterministic\": {\n";
  out +=
      "    \"note\": \"wall-clock durations vary run to run; only the "
      "deterministic block above is byte-stable\",\n";
  out += "    \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& [name, total] = stages[i];
    const double total_ms = static_cast<double>(total.total_ns) / 1e6;
    const double mean_us =
        static_cast<double>(total.total_ns) / 1e3 / static_cast<double>(total.count);
    out += (i == 0 ? "\n" : ",\n");
    out += "      {\"name\": \"" + json_escape(name) +
           "\", \"count\": " + std::to_string(total.count) +
           ", \"total_ms\": " + fmt_ms(total_ms) + ", \"mean_us\": " + fmt_us(mean_us) +
           "}";
    }
  out += stages.empty() ? "],\n" : "\n    ],\n";
  out += "    \"threads\": [";
  bool first_thread = true;
  for (const ThreadSnapshot& t : snap.threads) {
    // Per-thread busy time by stage (sorted like the merged rows).
    std::map<std::string, StageTotal> rows;
    for (std::size_t s = 0; s < t.stage_totals.size() && s < snap.span_names.size(); ++s) {
      if (t.stage_totals[s].count > 0) rows[snap.span_names[s]] = t.stage_totals[s];
    }
    if (rows.empty()) continue;
    out += first_thread ? "\n" : ",\n";
    first_thread = false;
    out += "      {\"thread\": " + std::to_string(t.thread_index) + ", \"stages\": {";
    bool first_row = true;
    for (const auto& [name, total] : rows) {
      out += first_row ? "" : ", ";
      first_row = false;
      out += "\"" + json_escape(name) +
             "\": " + fmt_ms(static_cast<double>(total.total_ns) / 1e6);
    }
    out += "}}";
  }
  out += first_thread ? "],\n" : "\n    ],\n";
  out += "    \"dropped_spans\": " + std::to_string(snap.dropped_spans) + "\n";
  out += "  }\n}\n";
  return out;
}

std::string metrics_report_text(const TelemetrySnapshot& snap) {
  std::string out;
  char line[256];
  out += "telemetry stage totals (wall-clock durations are non-deterministic):\n";
  std::snprintf(line, sizeof(line), "  %-30s %12s %14s %12s\n", "stage", "count",
                "total_ms", "mean_us");
  out += line;
  for (const auto& [name, total] : sorted_stages(snap)) {
    std::snprintf(line, sizeof(line), "  %-30s %12llu %14.3f %12.3f\n", name.c_str(),
                  static_cast<unsigned long long>(total.count),
                  static_cast<double>(total.total_ns) / 1e6,
                  static_cast<double>(total.total_ns) / 1e3 /
                      static_cast<double>(total.count));
    out += line;
  }
  out += "telemetry counters (deterministic per seed at any thread count):\n";
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c) {
    std::snprintf(line, sizeof(line), "  %-30s %12llu\n",
                  counter_name(static_cast<Counter>(c)),
                  static_cast<unsigned long long>(
                      c < snap.counters.size() ? snap.counters[c] : 0));
    out += line;
  }
  if (snap.dropped_spans > 0) {
    std::snprintf(line, sizeof(line),
                  "  warning: %llu spans dropped past the per-thread cap\n",
                  static_cast<unsigned long long>(snap.dropped_spans));
    out += line;
  }
  return out;
}

bool validate_chrome_trace(const std::string& json, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  JsonValue root;
  std::string parse_error;
  JsonParser parser(json);
  if (!parser.parse(root, parse_error)) return fail("invalid JSON: " + parse_error);
  if (root.type != JsonValue::kObject) return fail("top-level value is not an object");
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::kArray) {
    return fail("missing traceEvents array");
  }

  struct Interval {
    double start = 0.0;
    double end = 0.0;
  };
  std::map<double, std::vector<Interval>> by_tid;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (e.type != JsonValue::kObject) return fail(at + " is not an object");
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* dur = e.find("dur");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (name == nullptr || name->type != JsonValue::kString || name->str.empty()) {
      return fail(at + " has no name");
    }
    if (ph == nullptr || ph->type != JsonValue::kString || ph->str != "X") {
      return fail(at + " is not a complete ('X') event");
    }
    if (ts == nullptr || ts->type != JsonValue::kNumber || ts->number < 0.0) {
      return fail(at + " has no non-negative ts");
    }
    if (dur == nullptr || dur->type != JsonValue::kNumber || dur->number < 0.0) {
      return fail(at + " has no non-negative dur");
    }
    if (pid == nullptr || pid->type != JsonValue::kNumber) return fail(at + " has no pid");
    if (tid == nullptr || tid->type != JsonValue::kNumber) return fail(at + " has no tid");
    by_tid[tid->number].push_back(Interval{ts->number, ts->number + dur->number});
  }

  // Nesting check per thread: sorted by (start asc, end desc) -- parents
  // first -- every span must either start after the enclosing span ends or
  // end within it. Partial overlap on one thread cannot come from call
  // nesting and means the trace is corrupt.
  for (auto& [tid, intervals] : by_tid) {
    std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.end > b.end;
    });
    std::vector<Interval> stack;
    for (const Interval& iv : intervals) {
      while (!stack.empty() && stack.back().end <= iv.start) stack.pop_back();
      if (!stack.empty() && iv.end > stack.back().end) {
        return fail("spans on tid " + std::to_string(static_cast<long long>(tid)) +
                    " partially overlap (not properly nested)");
      }
      stack.push_back(iv);
    }
  }
  return true;
}

}  // namespace resloc::obs
