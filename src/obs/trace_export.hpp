// Telemetry serialization: Chrome trace-event JSON (chrome://tracing and
// Perfetto load it directly), a metrics report (JSON + plain text), and a
// self-check validator for the emitted trace.
//
// Determinism split, stated explicitly in the report format: the
// "deterministic" block carries counters and span counts (byte-identical per
// seed at any thread count -- test_obs locks this); the "non_deterministic"
// block carries wall-clock durations and per-thread breakdowns, which vary
// run to run and must never be diffed or golden-checked.
#pragma once

#include <string>

#include "obs/telemetry.hpp"

namespace resloc::obs {

/// Serializes the snapshot's span events as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}): one complete ("ph": "X") event per span, pid 1,
/// tid = thread registration index, timestamps in microseconds relative to
/// the earliest event. Open in chrome://tracing or https://ui.perfetto.dev.
std::string to_chrome_trace_json(const TelemetrySnapshot& snap);

/// The metrics report as JSON: {"deterministic": {counters, stage counts},
/// "non_deterministic": {stage durations, per-thread busy time, dropped
/// spans}}. Counts are stable per (seed, workload); durations are wall clock.
std::string metrics_report_json(const TelemetrySnapshot& snap);

/// Human-readable metrics summary (fixed-width tables) for stdout.
std::string metrics_report_text(const TelemetrySnapshot& snap);

/// Validates a Chrome trace produced by to_chrome_trace_json: well-formed
/// JSON, a "traceEvents" array whose entries carry name/ph/ts/dur/pid/tid
/// with ph == "X" and non-negative timings, and -- per tid -- events that
/// nest properly (every pair of spans on a thread is either disjoint or
/// contained; partial overlap means a corrupted trace). Returns true when
/// valid; otherwise fills `error` (when given) with the first problem found.
bool validate_chrome_trace(const std::string& json, std::string* error = nullptr);

}  // namespace resloc::obs
