#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#include <x86intrin.h>
#define RESLOC_TSC_CLOCK 1
#else
#define RESLOC_TSC_CLOCK 0
#endif

namespace resloc::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_capture_spans{false};
}  // namespace detail

namespace {

class SteadyClock final : public ClockSource {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

const SteadyClock g_steady_clock;

#if RESLOC_TSC_CLOCK
/// Calibration of the invariant-TSC fast path: one rdtsc + one multiply per
/// read, about a quarter of a clock_gettime vdso call. With 30+ kernel-stage
/// spans per measure after the block-DSP split, the two clock reads per span
/// are most of the enabled-mode telemetry cost, so the read must be this
/// cheap for the < 10% enabled gate to survive a fast measure path. The
/// parameters live at namespace scope (written once, before g_tsc_active is
/// set) so now_ns() can inline the conversion without a virtual call.
struct TscParams {
  std::uint64_t base_ns = 0;
  std::uint64_t base_tsc = 0;
  double ns_per_tick = 0.0;
};
TscParams g_tsc_params;

/// True iff the *active* clock is the calibrated TSC default -- the
/// non-virtual fast path of now_ns(). Cleared whenever a clock is injected.
std::atomic<bool> g_tsc_active{false};

inline std::uint64_t tsc_now_ns() {
  return g_tsc_params.base_ns +
         static_cast<std::uint64_t>(
             static_cast<double>(__rdtsc() - g_tsc_params.base_tsc) *
             g_tsc_params.ns_per_tick);
}

/// ClockSource facade over the same parameters, so clock_source() keeps
/// returning an injectable-interface object that agrees with now_ns().
class TscClock final : public ClockSource {
 public:
  std::uint64_t now_ns() const override { return tsc_now_ns(); }
};

/// The calibrated TSC clock, or nullptr when the CPU lacks an invariant TSC
/// (where rdtsc would drift with frequency scaling). Calibrates against the
/// steady clock over a ~200 us window on first use -- a one-time cost paid
/// when telemetry is first enabled, never on a span.
const ClockSource* tsc_clock() {
  static const ClockSource* const clock = []() -> const ClockSource* {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_max(0x80000000u, nullptr) < 0x80000007u) return nullptr;
    __get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx);
    if ((edx & (1u << 8)) == 0) return nullptr;  // no invariant TSC
    const std::uint64_t t0 = g_steady_clock.now_ns();
    const std::uint64_t c0 = __rdtsc();
    std::uint64_t t1 = t0;
    while (t1 - t0 < 200'000) t1 = g_steady_clock.now_ns();
    const std::uint64_t c1 = __rdtsc();
    if (c1 <= c0) return nullptr;
    g_tsc_params.base_ns = t1;
    g_tsc_params.base_tsc = c1;
    g_tsc_params.ns_per_tick =
        static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
    static const TscClock tsc;
    return &tsc;
  }();
  return clock;
}
#else
std::atomic<bool> g_tsc_active{false};
std::uint64_t tsc_now_ns() { return 0; }
const ClockSource* tsc_clock() { return nullptr; }
#endif

/// The default clock: the TSC fast path where available, else steady_clock.
const ClockSource& default_clock() {
  const ClockSource* tsc = tsc_clock();
  return tsc != nullptr ? *tsc : g_steady_clock;
}

std::atomic<const ClockSource*> g_clock{&g_steady_clock};
std::atomic<bool> g_clock_injected{false};

std::atomic<std::size_t> g_max_spans_per_thread{std::size_t{1} << 20};

/// One thread's recording cell. Owned by the registry (so it survives the
/// thread's exit and snapshot() can still read it); the owning thread holds
/// only a raw pointer in a thread_local.
struct ThreadBuffer {
  std::size_t thread_index = 0;
  std::vector<SpanEvent> events;
  std::vector<StageTotal> stage_totals;
  std::uint64_t counters[static_cast<std::size_t>(Counter::kCount)] = {};
  std::uint64_t dropped_spans = 0;

  void record_span(SpanId id, std::uint64_t start_ns, std::uint64_t end_ns) {
    if (id >= stage_totals.size()) stage_totals.resize(id + 1);
    StageTotal& total = stage_totals[id];
    ++total.count;
    total.total_ns += end_ns - start_ns;
    if (capture_spans()) {
      if (events.size() < g_max_spans_per_thread.load(std::memory_order_relaxed)) {
        events.push_back(SpanEvent{id, start_ns, end_ns});
      } else {
        ++dropped_spans;
      }
    }
  }
};

/// Registry: span names + every thread buffer ever created. The mutex guards
/// registration and collection only; per-span recording touches nothing here.
struct Registry {
  std::mutex mutex;
  std::vector<std::string> span_names;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may record at exit
  return *r;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& buffer() {
  if (t_buffer == nullptr) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(std::make_unique<ThreadBuffer>());
    r.buffers.back()->thread_index = r.buffers.size() - 1;
    t_buffer = r.buffers.back().get();
  }
  return *t_buffer;
}

}  // namespace

const ClockSource& clock_source() { return *g_clock.load(std::memory_order_relaxed); }

std::uint64_t now_ns() {
  if (g_tsc_active.load(std::memory_order_relaxed)) return tsc_now_ns();
  return g_clock.load(std::memory_order_relaxed)->now_ns();
}

void set_clock_source(const ClockSource* clock) {
  g_clock_injected.store(clock != nullptr, std::memory_order_relaxed);
  g_tsc_active.store(clock == nullptr && tsc_clock() != nullptr,
                     std::memory_order_relaxed);
  g_clock.store(clock != nullptr ? clock : &default_clock(), std::memory_order_relaxed);
}

void set_enabled(bool on) {
  // Upgrade to the TSC fast path (calibrating it on the first enable) unless
  // a test clock is injected; the one-time calibration never lands on a span.
  if (on && !g_clock_injected.load(std::memory_order_relaxed)) {
    g_clock.store(&default_clock(), std::memory_order_relaxed);
    g_tsc_active.store(tsc_clock() != nullptr, std::memory_order_relaxed);
  }
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_capture_spans(bool on) {
  detail::g_capture_spans.store(on, std::memory_order_relaxed);
}

void set_max_spans_per_thread(std::size_t cap) {
  g_max_spans_per_thread.store(std::max<std::size_t>(cap, 1), std::memory_order_relaxed);
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kMeasureCalls: return "measure_calls";
    case Counter::kMeasureDetections: return "measure_detections";
    case Counter::kChirpWindows: return "chirp_windows";
    case Counter::kCampaignTurns: return "campaign_turns";
    case Counter::kFilteredPairs: return "filtered_pairs";
    case Counter::kGdEvaluations: return "gd_evaluations";
    case Counter::kGdIterations: return "gd_iterations";
    case Counter::kGdBacktracks: return "gd_backtracks";
    case Counter::kGdRestartRounds: return "gd_restart_rounds";
    case Counter::kLssEdgeTerms: return "lss_edge_terms";
    case Counter::kLssConstraintPairs: return "lss_constraint_pairs";
    case Counter::kRunnerTrials: return "runner_trials";
    case Counter::kRunnerTrialFailures: return "runner_trial_failures";
    case Counter::kChannelCacheHits: return "channel_cache_hits";
    case Counter::kChannelCacheMisses: return "channel_cache_misses";
    case Counter::kRunnerTrialRetries: return "runner_trial_retries";
    case Counter::kTrialFailScenario: return "trial_fail_scenario_build";
    case Counter::kTrialFailConfig: return "trial_fail_config";
    case Counter::kTrialFailMeasurement: return "trial_fail_measurement";
    case Counter::kTrialFailSolver: return "trial_fail_solver";
    case Counter::kTrialFailNonStd: return "trial_fail_non_std";
    case Counter::kCount: break;
  }
  return "unknown";
}

void add(Counter c, std::uint64_t delta) {
  if (!enabled()) return;
  buffer().counters[static_cast<std::size_t>(c)] += delta;
}

SpanId intern_span(const char* name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (std::size_t i = 0; i < r.span_names.size(); ++i) {
    if (r.span_names[i] == name) return static_cast<SpanId>(i);
  }
  r.span_names.emplace_back(name);
  return static_cast<SpanId>(r.span_names.size() - 1);
}

SpanScope::~SpanScope() {
  if (!active_) return;
  const std::uint64_t end_ns = now_ns();
  buffer().record_span(id_, start_ns_, end_ns);
}

std::uint64_t TelemetrySnapshot::stage_total_ns(const std::string& name) const {
  for (std::size_t i = 0; i < span_names.size() && i < stage_totals.size(); ++i) {
    if (span_names[i] == name) return stage_totals[i].total_ns;
  }
  return 0;
}

std::uint64_t TelemetrySnapshot::stage_count(const std::string& name) const {
  for (std::size_t i = 0; i < span_names.size() && i < stage_totals.size(); ++i) {
    if (span_names[i] == name) return stage_totals[i].count;
  }
  return 0;
}

std::uint64_t TelemetrySnapshot::counter(Counter c) const {
  const auto i = static_cast<std::size_t>(c);
  return i < counters.size() ? counters[i] : 0;
}

TelemetrySnapshot snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);

  TelemetrySnapshot snap;
  snap.span_names = r.span_names;
  snap.counters.assign(static_cast<std::size_t>(Counter::kCount), 0);
  snap.stage_totals.assign(r.span_names.size(), StageTotal{});
  snap.threads.reserve(r.buffers.size());

  for (const auto& buf : r.buffers) {
    ThreadSnapshot t;
    t.thread_index = buf->thread_index;
    t.events = buf->events;
    t.stage_totals = buf->stage_totals;
    t.dropped_spans = buf->dropped_spans;
    snap.dropped_spans += buf->dropped_spans;
    // Merge: integer sums, so the totals are independent of both thread
    // count and merge order for a deterministic workload.
    for (std::size_t c = 0; c < snap.counters.size(); ++c) {
      snap.counters[c] += buf->counters[c];
    }
    for (std::size_t s = 0; s < buf->stage_totals.size() && s < snap.stage_totals.size();
         ++s) {
      snap.stage_totals[s].count += buf->stage_totals[s].count;
      snap.stage_totals[s].total_ns += buf->stage_totals[s].total_ns;
    }
    snap.threads.push_back(std::move(t));
  }
  return snap;
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    buf->events.clear();
    buf->stage_totals.clear();
    buf->dropped_spans = 0;
    for (std::uint64_t& c : buf->counters) c = 0;
  }
}

std::vector<std::string> recent_spans_this_thread(std::size_t max_spans) {
  std::vector<std::string> out;
  if (t_buffer == nullptr) return out;
  // Span names are read under the registry mutex; the event list belongs to
  // the calling thread, so it needs no lock.
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const std::vector<SpanEvent>& events = t_buffer->events;
  const std::size_t n = std::min(max_spans, events.size());
  out.reserve(n);
  for (std::size_t i = events.size() - n; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    const std::string name = e.id < r.span_names.size() ? r.span_names[e.id] : "?";
    out.push_back(name + " [" + std::to_string(e.start_ns) + ".." +
                  std::to_string(e.end_ns) + "]");
  }
  return out;
}

}  // namespace resloc::obs
