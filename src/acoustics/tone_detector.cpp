#include "acoustics/tone_detector.hpp"

#include <algorithm>
#include <cmath>

#include "acoustics/propagation.hpp"

namespace resloc::acoustics {

namespace {
constexpr double kFaultyMicFalsePositiveRate = 0.15;
}

ToneDetectorModel::ToneDetectorModel(EnvironmentProfile env, double sample_rate_hz)
    : env_(std::move(env)), sample_rate_hz_(sample_rate_hz) {}

std::vector<bool> ToneDetectorModel::sample_window(const ReceivedWindow& window,
                                                   std::size_t num_samples, const MicUnit& mic,
                                                   resloc::math::Rng& rng) const {
  DetectorScratch scratch;
  std::vector<bool> out;
  sample_window_into(window, num_samples, mic, rng, scratch, out);
  return out;
}

void sample_bracket(double window_start_s, double dt, std::size_t num_samples, double start_s,
                    double end_s, std::size_t& lo, std::size_t& hi) {
  const double n = static_cast<double>(num_samples);
  const double lo_d = std::min(n, std::max(0.0, std::floor((start_s - window_start_s) / dt) - 1.0));
  const double hi_d = std::min(n, std::max(0.0, std::ceil((end_s - window_start_s) / dt) + 1.0));
  lo = static_cast<std::size_t>(lo_d);
  hi = static_cast<std::size_t>(hi_d);
}

void ToneDetectorModel::sample_window_into(const ReceivedWindow& window,
                                           std::size_t num_samples, const MicUnit& mic,
                                           resloc::math::Rng& rng, DetectorScratch& scratch,
                                           std::vector<bool>& out) const {
  const double dt = sample_period_s();
  scratch.best_snr.assign(num_samples, -1e9);
  scratch.tone.assign(num_samples, 0);
  scratch.burst.assign(num_samples, 0);

  // Rasterize each interval onto the few samples it can cover. The predicate
  // inside the bracket is the same t >= start && t < end comparison the naive
  // per-sample scan used, so the outputs match it bit for bit.
  for (const SignalInterval& s : window.signals) {
    for_each_sample_in_interval(window.start_s, dt, num_samples, s.start_s, s.end_s,
                                [&](std::size_t i) {
                                  scratch.tone[i] = 1;
                                  scratch.best_snr[i] = std::max(scratch.best_snr[i], s.snr_db);
                                });
  }
  for (const NoiseBurst& b : window.bursts) {
    for_each_sample_in_interval(window.start_s, dt, num_samples, b.start_s, b.end_s,
                                [&](std::size_t i) { scratch.burst[i] = 1; });
  }

  out.assign(num_samples, false);
  for (std::size_t i = 0; i < num_samples; ++i) {
    double p;
    if (scratch.tone[i] != 0) {
      p = detection_probability(scratch.best_snr[i]);
    } else {
      p = scratch.burst[i] != 0 ? env_.noise_burst_false_positive_rate
                                : env_.false_positive_rate;
      if (mic.faulty) p = std::max(p, kFaultyMicFalsePositiveRate);
    }
    out[i] = rng.bernoulli(p);
  }
}

}  // namespace resloc::acoustics
