#include "acoustics/tone_detector.hpp"

#include <algorithm>
#include <cmath>

#include "acoustics/propagation.hpp"

namespace resloc::acoustics {

namespace {
constexpr double kFaultyMicFalsePositiveRate = 0.15;
}

ToneDetectorModel::ToneDetectorModel(EnvironmentProfile env, double sample_rate_hz)
    : env_(std::move(env)), sample_rate_hz_(sample_rate_hz) {}

std::vector<bool> ToneDetectorModel::sample_window(const ReceivedWindow& window,
                                                   std::size_t num_samples, const MicUnit& mic,
                                                   resloc::math::Rng& rng) const {
  DetectorScratch scratch;
  std::vector<bool> out;
  sample_window_into(window, num_samples, mic, rng, scratch, out);
  return out;
}

void sample_bracket(double window_start_s, double dt, std::size_t num_samples, double start_s,
                    double end_s, std::size_t& lo, std::size_t& hi) {
  const double n = static_cast<double>(num_samples);
  const double lo_d = std::min(n, std::max(0.0, std::floor((start_s - window_start_s) / dt) - 1.0));
  const double hi_d = std::min(n, std::max(0.0, std::ceil((end_s - window_start_s) / dt) + 1.0));
  lo = static_cast<std::size_t>(lo_d);
  hi = static_cast<std::size_t>(hi_d);
}

SampleSpan interval_sample_span(double window_start_s, double dt, std::size_t num_samples,
                                double start_s, double end_s) {
  std::size_t lo = 0, hi = 0;
  sample_bracket(window_start_s, dt, num_samples, start_s, end_s, lo, hi);
  // Refine the conservative bracket to the exact predicate range. t(i) is
  // strictly increasing, so {i : t >= start && t < end} is contiguous; the
  // bracket has ~one sample of slack per side, so each loop runs a couple of
  // iterations at most. The comparisons are the exact ones the per-sample
  // predicate applied, evaluated on the identical t(i) expression.
  const auto t = [&](std::size_t i) {
    return window_start_s + static_cast<double>(i) * dt;
  };
  while (lo < hi && t(lo) < start_s) ++lo;
  while (hi > lo && t(hi - 1) >= end_s) --hi;
  return {lo, hi};
}

void ToneDetectorModel::sample_window_into(const ReceivedWindow& window,
                                           std::size_t num_samples, const MicUnit& mic,
                                           resloc::math::Rng& rng, DetectorScratch& scratch,
                                           std::vector<bool>& out) const {
  const double dt = sample_period_s();
  scratch.best_snr.assign(num_samples, -1e9);
  scratch.tone.assign(num_samples, 0);
  scratch.burst.assign(num_samples, 0);

  // Rasterize each interval onto its exact contiguous sample span -- the edge
  // refinement applies the same t >= start && t < end comparison the retired
  // per-sample scan used, so the outputs match it bit for bit.
  for (const SignalInterval& s : window.signals) {
    const SampleSpan span =
        interval_sample_span(window.start_s, dt, num_samples, s.start_s, s.end_s);
    for (std::size_t i = span.lo; i < span.hi; ++i) {
      scratch.tone[i] = 1;
      scratch.best_snr[i] = std::max(scratch.best_snr[i], s.snr_db);
    }
  }
  for (const NoiseBurst& b : window.bursts) {
    const SampleSpan span =
        interval_sample_span(window.start_s, dt, num_samples, b.start_s, b.end_s);
    std::fill(scratch.burst.begin() + static_cast<std::ptrdiff_t>(span.lo),
              scratch.burst.begin() + static_cast<std::ptrdiff_t>(span.hi), std::uint8_t{1});
  }

  out.assign(num_samples, false);
  for (std::size_t i = 0; i < num_samples; ++i) {
    double p;
    if (scratch.tone[i] != 0) {
      p = detection_probability(scratch.best_snr[i]);
    } else {
      p = scratch.burst[i] != 0 ? env_.noise_burst_false_positive_rate
                                : env_.false_positive_rate;
      if (mic.faulty) p = std::max(p, kFaultyMicFalsePositiveRate);
    }
    out[i] = rng.bernoulli(p);
  }
}

void ToneDetectorModel::fire_thresholds_block(const ReceivedWindow& window,
                                              std::size_t num_samples, const MicUnit& mic,
                                              DetectorScratch& scratch,
                                              std::uint64_t* thresholds) const {
  const double dt = sample_period_s();

  // Off-tone probabilities are per-window constants; a faulty mic's floor is
  // folded in before thresholding (threshold-of-max == max-of-thresholds,
  // the conversion is monotone).
  double base_rate = env_.false_positive_rate;
  double burst_rate = env_.noise_burst_false_positive_rate;
  if (mic.faulty) {
    base_rate = std::max(base_rate, kFaultyMicFalsePositiveRate);
    burst_rate = std::max(burst_rate, kFaultyMicFalsePositiveRate);
  }
  const std::uint64_t base_threshold = resloc::math::Rng::bernoulli_threshold(base_rate);
  const std::uint64_t burst_threshold = resloc::math::Rng::bernoulli_threshold(burst_rate);

  std::fill(thresholds, thresholds + num_samples, base_threshold);
  for (const NoiseBurst& b : window.bursts) {
    const SampleSpan span =
        interval_sample_span(window.start_s, dt, num_samples, b.start_s, b.end_s);
    std::fill(thresholds + span.lo, thresholds + span.hi, burst_threshold);
  }

  // Tone spans override the noise floors entirely (the scalar path branches
  // on tone-presence first), and overlapping tones combine by max. The
  // scalar path maxes SNRs then converts; converting per interval and maxing
  // thresholds is the same because detection_probability and
  // bernoulli_threshold are both monotone non-decreasing, so the max element
  // produces the same threshold either way. One detection_probability call
  // per interval instead of per covered sample.
  scratch.tone.assign(num_samples, 0);
  for (const SignalInterval& s : window.signals) {
    const std::uint64_t tone_threshold =
        resloc::math::Rng::bernoulli_threshold(detection_probability(s.snr_db));
    const SampleSpan span =
        interval_sample_span(window.start_s, dt, num_samples, s.start_s, s.end_s);
    for (std::size_t i = span.lo; i < span.hi; ++i) {
      if (scratch.tone[i] != 0) {
        thresholds[i] = std::max(thresholds[i], tone_threshold);
      } else {
        scratch.tone[i] = 1;
        thresholds[i] = tone_threshold;
      }
    }
  }
}

}  // namespace resloc::acoustics
