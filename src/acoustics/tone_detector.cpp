#include "acoustics/tone_detector.hpp"

#include <algorithm>

#include "acoustics/propagation.hpp"

namespace resloc::acoustics {

namespace {
constexpr double kFaultyMicFalsePositiveRate = 0.15;
}

ToneDetectorModel::ToneDetectorModel(EnvironmentProfile env, double sample_rate_hz)
    : env_(std::move(env)), sample_rate_hz_(sample_rate_hz) {}

std::vector<bool> ToneDetectorModel::sample_window(const ReceivedWindow& window,
                                                   std::size_t num_samples, const MicUnit& mic,
                                                   resloc::math::Rng& rng) const {
  std::vector<bool> out(num_samples, false);
  const double dt = sample_period_s();
  for (std::size_t i = 0; i < num_samples; ++i) {
    const double t = window.start_s + static_cast<double>(i) * dt;

    // Strongest tone component audible at t, if any.
    double best_snr = -1e9;
    bool tone_present = false;
    for (const SignalInterval& s : window.signals) {
      if (t >= s.start_s && t < s.end_s) {
        tone_present = true;
        best_snr = std::max(best_snr, s.snr_db);
      }
    }

    double p;
    if (tone_present) {
      p = detection_probability(best_snr);
    } else {
      p = env_.false_positive_rate;
      for (const NoiseBurst& b : window.bursts) {
        if (t >= b.start_s && t < b.end_s) {
          p = env_.noise_burst_false_positive_rate;
          break;
        }
      }
      if (mic.faulty) p = std::max(p, kFaultyMicFalsePositiveRate);
    }
    out[i] = rng.bernoulli(p);
  }
  return out;
}

}  // namespace resloc::acoustics
