// Hardware tone detector model.
//
// The MICA sensor board's phase-locked-loop tone detector outputs one bit per
// sample: "tone in the 4.0-4.5 kHz band present". The paper found it
// unreliable -- misses under attenuation, false positives from noise -- but
// with the crucial separation P[b(t)=1 | signal] >> P[b(t)=1 | no signal]
// (Section 3.5) that the accumulation detector exploits. This model samples
// that binary process from a ReceivedWindow.
#pragma once

#include <cstdint>
#include <vector>

#include "acoustics/channel.hpp"

namespace resloc::acoustics {

/// Reusable buffers for ToneDetectorModel::sample_window_into; keep one per
/// worker thread and reuse it across a campaign's pairs.
struct DetectorScratch {
  std::vector<double> best_snr;      ///< strongest audible tone per sample
  std::vector<std::uint8_t> tone;    ///< 1 = some tone interval covers the sample
  std::vector<std::uint8_t> burst;   ///< 1 = a noise burst covers the sample
};

/// Conservative sample-index bracket of [start_s, end_s) within a window of
/// `num_samples` starting at `window_start_s` with period `sample_period_s`:
/// one sample of slack on each side absorbs the division rounding, and the
/// exact edge refinement in interval_sample_span decides inside it. Shared by
/// the hardware detector model and the software (Goertzel) path so both
/// rasterize intervals identically.
void sample_bracket(double window_start_s, double sample_period_s, std::size_t num_samples,
                    double start_s, double end_s, std::size_t& lo, std::size_t& hi);

/// Contiguous index range [lo, hi) of the sample set the interval covers.
struct SampleSpan {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Block variant of interval rasterization: the exact index range of every
/// sample whose time t = window_start_s + i * sample_period_s satisfies
/// t >= start_s && t < end_s. Sample times are strictly increasing, so the
/// predicate selects a contiguous range; the bracket is refined at its two
/// edges with the same exact comparison the retired per-sample loop applied
/// at every index, which is why callers can fill [lo, hi) wholesale and
/// produce bit-identical rasterizations. All interval rasterization
/// (hardware detector model, software envelope) goes through here so the
/// paths cannot drift apart.
SampleSpan interval_sample_span(double window_start_s, double sample_period_s,
                                std::size_t num_samples, double start_s, double end_s);

/// Samples the binary tone-detector output over a received window.
class ToneDetectorModel {
 public:
  /// `sample_rate_hz` is the rate at which the microcontroller polls the
  /// detector (16 kHz in the paper's experiments).
  ToneDetectorModel(EnvironmentProfile env, double sample_rate_hz = 16000.0);

  /// Produces `num_samples` binary outputs starting at the window start.
  /// A faulty microphone suffers persistent elevated false positives
  /// (Section 3.4, source 3/7).
  std::vector<bool> sample_window(const ReceivedWindow& window, std::size_t num_samples,
                                  const MicUnit& mic, resloc::math::Rng& rng) const;

  /// sample_window() into caller-owned buffers: `out` receives the binary
  /// series, `scratch` absorbs the per-call working storage. Output (and RNG
  /// consumption) is bit-identical to sample_window(); the difference is the
  /// cost model -- intervals are rasterized onto the samples they can touch
  /// instead of every sample scanning every interval, and nothing allocates
  /// once the buffers have grown to the window size.
  void sample_window_into(const ReceivedWindow& window, std::size_t num_samples,
                          const MicUnit& mic, resloc::math::Rng& rng, DetectorScratch& scratch,
                          std::vector<bool>& out) const;

  /// Block entry point: the deterministic front half of sample_window_into.
  /// Writes the per-sample 53-bit Bernoulli thresholds (see
  /// math::Rng::bernoulli_threshold) into `thresholds[0, num_samples)`:
  /// base/burst false-positive rates fill whole interval spans, and tone
  /// spans take the per-interval detection-probability threshold (max over
  /// overlapping intervals -- threshold-of-probability is monotone in SNR, so
  /// max of thresholds equals the threshold of the scalar path's best-SNR
  /// max, bit for bit). Consumes no randomness; pair it with
  /// SignalAccumulator::record_chirp_bernoulli, which draws the identical
  /// one-uniform-per-sample stream the scalar path draws. Only scratch.tone
  /// is used as working storage.
  void fire_thresholds_block(const ReceivedWindow& window, std::size_t num_samples,
                             const MicUnit& mic, DetectorScratch& scratch,
                             std::uint64_t* thresholds) const;

  double sample_rate_hz() const { return sample_rate_hz_; }
  double sample_period_s() const { return 1.0 / sample_rate_hz_; }

 private:
  EnvironmentProfile env_;
  double sample_rate_hz_;
};

}  // namespace resloc::acoustics
