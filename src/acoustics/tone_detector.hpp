// Hardware tone detector model.
//
// The MICA sensor board's phase-locked-loop tone detector outputs one bit per
// sample: "tone in the 4.0-4.5 kHz band present". The paper found it
// unreliable -- misses under attenuation, false positives from noise -- but
// with the crucial separation P[b(t)=1 | signal] >> P[b(t)=1 | no signal]
// (Section 3.5) that the accumulation detector exploits. This model samples
// that binary process from a ReceivedWindow.
#pragma once

#include <vector>

#include "acoustics/channel.hpp"

namespace resloc::acoustics {

/// Samples the binary tone-detector output over a received window.
class ToneDetectorModel {
 public:
  /// `sample_rate_hz` is the rate at which the microcontroller polls the
  /// detector (16 kHz in the paper's experiments).
  ToneDetectorModel(EnvironmentProfile env, double sample_rate_hz = 16000.0);

  /// Produces `num_samples` binary outputs starting at the window start.
  /// A faulty microphone suffers persistent elevated false positives
  /// (Section 3.4, source 3/7).
  std::vector<bool> sample_window(const ReceivedWindow& window, std::size_t num_samples,
                                  const MicUnit& mic, resloc::math::Rng& rng) const;

  double sample_rate_hz() const { return sample_rate_hz_; }
  double sample_period_s() const { return 1.0 / sample_rate_hz_; }

 private:
  EnvironmentProfile env_;
  double sample_rate_hz_;
};

}  // namespace resloc::acoustics
