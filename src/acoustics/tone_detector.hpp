// Hardware tone detector model.
//
// The MICA sensor board's phase-locked-loop tone detector outputs one bit per
// sample: "tone in the 4.0-4.5 kHz band present". The paper found it
// unreliable -- misses under attenuation, false positives from noise -- but
// with the crucial separation P[b(t)=1 | signal] >> P[b(t)=1 | no signal]
// (Section 3.5) that the accumulation detector exploits. This model samples
// that binary process from a ReceivedWindow.
#pragma once

#include <cstdint>
#include <vector>

#include "acoustics/channel.hpp"

namespace resloc::acoustics {

/// Reusable buffers for ToneDetectorModel::sample_window_into; keep one per
/// worker thread and reuse it across a campaign's pairs.
struct DetectorScratch {
  std::vector<double> best_snr;      ///< strongest audible tone per sample
  std::vector<std::uint8_t> tone;    ///< 1 = some tone interval covers the sample
  std::vector<std::uint8_t> burst;   ///< 1 = a noise burst covers the sample
};

/// Conservative sample-index bracket of [start_s, end_s) within a window of
/// `num_samples` starting at `window_start_s` with period `sample_period_s`:
/// one sample of slack on each side absorbs the division rounding, and the
/// caller's exact per-sample predicate decides inside it. Shared by the
/// hardware detector model and the software (Goertzel) path so both rasterize
/// intervals identically.
void sample_bracket(double window_start_s, double sample_period_s, std::size_t num_samples,
                    double start_s, double end_s, std::size_t& lo, std::size_t& hi);

/// Invokes `fn(i)` for every sample index i whose time lies in [start_s,
/// end_s): brackets conservatively, then decides with the exact per-sample
/// predicate. All interval rasterization (hardware detector model, software
/// Goertzel path) goes through here so the paths cannot drift apart.
template <typename Fn>
void for_each_sample_in_interval(double window_start_s, double sample_period_s,
                                 std::size_t num_samples, double start_s, double end_s, Fn&& fn) {
  std::size_t lo = 0, hi = 0;
  sample_bracket(window_start_s, sample_period_s, num_samples, start_s, end_s, lo, hi);
  for (std::size_t i = lo; i < hi; ++i) {
    const double t = window_start_s + static_cast<double>(i) * sample_period_s;
    if (t >= start_s && t < end_s) fn(i);
  }
}

/// Samples the binary tone-detector output over a received window.
class ToneDetectorModel {
 public:
  /// `sample_rate_hz` is the rate at which the microcontroller polls the
  /// detector (16 kHz in the paper's experiments).
  ToneDetectorModel(EnvironmentProfile env, double sample_rate_hz = 16000.0);

  /// Produces `num_samples` binary outputs starting at the window start.
  /// A faulty microphone suffers persistent elevated false positives
  /// (Section 3.4, source 3/7).
  std::vector<bool> sample_window(const ReceivedWindow& window, std::size_t num_samples,
                                  const MicUnit& mic, resloc::math::Rng& rng) const;

  /// sample_window() into caller-owned buffers: `out` receives the binary
  /// series, `scratch` absorbs the per-call working storage. Output (and RNG
  /// consumption) is bit-identical to sample_window(); the difference is the
  /// cost model -- intervals are rasterized onto the samples they can touch
  /// instead of every sample scanning every interval, and nothing allocates
  /// once the buffers have grown to the window size.
  void sample_window_into(const ReceivedWindow& window, std::size_t num_samples,
                          const MicUnit& mic, resloc::math::Rng& rng, DetectorScratch& scratch,
                          std::vector<bool>& out) const;

  double sample_rate_hz() const { return sample_rate_hz_; }
  double sample_period_s() const { return 1.0 / sample_rate_hz_; }

 private:
  EnvironmentProfile env_;
  double sample_rate_hz_;
};

}  // namespace resloc::acoustics
