#include "acoustics/environment.hpp"

#include <stdexcept>

namespace resloc::acoustics {

std::vector<std::string> environment_names() {
  return {"grass", "pavement", "urban", "wooded"};
}

EnvironmentProfile environment_by_name(const std::string& name) {
  if (name == "grass") return EnvironmentProfile::grass();
  if (name == "pavement") return EnvironmentProfile::pavement();
  if (name == "urban") return EnvironmentProfile::urban();
  if (name == "wooded") return EnvironmentProfile::wooded();
  throw std::invalid_argument("unknown acoustic environment: " + name);
}

EnvironmentProfile EnvironmentProfile::grass() {
  EnvironmentProfile e;
  e.name = "grass";
  e.excess_attenuation_db_per_m = 0.9;
  e.noise_floor_db = 39.0;
  e.false_positive_rate = 0.012;
  e.echo_rate = 0.05;  // open field: echoes are rare
  e.echo_delay_mean_s = 0.03;
  e.echo_attenuation_db = 15.0;
  e.noise_burst_rate_hz = 0.08;  // occasional aircraft noise
  e.noise_burst_duration_s = 0.06;
  return e;
}

EnvironmentProfile EnvironmentProfile::pavement() {
  EnvironmentProfile e;
  e.name = "pavement";
  e.excess_attenuation_db_per_m = 0.12;
  e.noise_floor_db = 41.0;
  e.false_positive_rate = 0.008;
  e.echo_rate = 0.15;
  e.echo_delay_mean_s = 0.02;
  e.echo_attenuation_db = 14.0;
  e.noise_burst_rate_hz = 0.02;
  return e;
}

EnvironmentProfile EnvironmentProfile::urban() {
  EnvironmentProfile e;
  e.name = "urban";
  e.excess_attenuation_db_per_m = 0.25;
  e.noise_floor_db = 45.0;
  e.false_positive_rate = 0.02;
  e.echo_rate = 0.9;  // nearby buildings: echoes are particularly common
  e.echo_delay_mean_s = 0.025;
  e.echo_attenuation_db = 8.0;
  e.noise_burst_rate_hz = 1.2;  // city noise: frequent transients cause the
                                // Figure 2 early-firing underestimates
  e.noise_burst_duration_s = 0.08;
  return e;
}

EnvironmentProfile EnvironmentProfile::wooded() {
  EnvironmentProfile e;
  e.name = "wooded";
  e.excess_attenuation_db_per_m = 1.5;
  e.noise_floor_db = 40.0;
  e.false_positive_rate = 0.015;
  e.echo_rate = 0.4;  // scattered trees
  e.echo_delay_mean_s = 0.015;
  e.echo_attenuation_db = 10.0;
  e.noise_burst_rate_hz = 0.1;
  return e;
}

}  // namespace resloc::acoustics
