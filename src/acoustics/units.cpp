#include "acoustics/units.hpp"

namespace resloc::acoustics {

SpeakerUnit UnitVariationModel::sample_speaker(double nominal_db, resloc::math::Rng& rng) const {
  SpeakerUnit s;
  s.output_db = nominal_db + rng.gaussian(0.0, speaker_stddev_db);
  s.onset_delay_s = rng.gaussian(0.0, onset_delay_stddev_s);
  s.faulty = rng.bernoulli(fault_probability);
  return s;
}

MicUnit UnitVariationModel::sample_mic(resloc::math::Rng& rng) const {
  MicUnit m;
  m.sensitivity_db = rng.gaussian(0.0, mic_stddev_db);
  m.faulty = rng.bernoulli(fault_probability);
  return m;
}

}  // namespace resloc::acoustics
