#include "acoustics/units.hpp"

#include <stdexcept>

namespace resloc::acoustics {

SpeakerUnit UnitVariationModel::sample_speaker(double nominal_db, resloc::math::Rng& rng) const {
  SpeakerUnit s;
  s.output_db = nominal_db + rng.gaussian(0.0, speaker_stddev_db);
  s.onset_delay_s = rng.gaussian(0.0, onset_delay_stddev_s);
  s.faulty = rng.bernoulli(fault_probability);
  return s;
}

MicUnit UnitVariationModel::sample_mic(resloc::math::Rng& rng) const {
  MicUnit m;
  m.sensitivity_db = rng.gaussian(0.0, mic_stddev_db);
  m.faulty = rng.bernoulli(fault_probability);
  return m;
}

std::vector<std::string> unit_model_names() { return {"calibrated", "degraded", "nominal"}; }

UnitVariationModel unit_model_by_name(const std::string& name) {
  if (name == "calibrated") return UnitVariationModel{};
  if (name == "degraded") {
    UnitVariationModel m;
    m.speaker_stddev_db = 3.4;
    m.mic_stddev_db = 2.0;
    m.onset_delay_stddev_s = 0.0008;
    m.fault_probability = 0.08;
    return m;
  }
  if (name == "nominal") {
    UnitVariationModel m;
    m.speaker_stddev_db = 0.0;
    m.mic_stddev_db = 0.0;
    m.onset_delay_stddev_s = 0.0;
    m.fault_probability = 0.0;
    return m;
  }
  throw std::invalid_argument("unknown unit-variation model: " + name);
}

}  // namespace resloc::acoustics
