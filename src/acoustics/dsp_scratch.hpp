// Per-thread block-DSP arena.
//
// The block kernels of the measure path (threshold rasterization, uniform-bit
// generation, noise synthesis, Goertzel filtering, detector-output marking)
// all operate on contiguous per-window buffers. One DspScratch per worker
// thread owns every such buffer: grown once to the service's window size and
// reused for every chirp of every pair, so the steady-state hot loop touches
// no allocator (the same fixed-RAM discipline RangingScratch models for the
// mote firmware, Section 3.6.2).
//
// Ownership contract: a DspScratch is exclusively owned by one thread (it
// lives inside RangingScratch, which already has that contract). Kernels
// receive raw pointers into it and never resize; only resize() grows the
// buffers, and it is called once per measure before any kernel runs.
#pragma once

#include <cstdint>
#include <vector>

namespace resloc::acoustics {

struct DspScratch {
  /// Per-sample 53-bit Bernoulli thresholds (hardware-detector block path).
  std::vector<std::uint64_t> fire_threshold;
  /// Per-sample 53-bit uniform draws matched against fire_threshold.
  std::vector<std::uint64_t> uniform_bits;
  /// Per-sample standard normals (software/NCC synthesis noise).
  std::vector<double> noise;
  /// Per-sample Goertzel detection metric.
  std::vector<double> metric;
  /// Per-sample binary detector output (block form of the bool series).
  std::vector<std::uint8_t> fired;

  /// Grows every buffer to at least `num_samples`; never shrinks, so a
  /// campaign's steady state performs no allocation here.
  void resize(std::size_t num_samples) {
    if (fire_threshold.size() < num_samples) {
      fire_threshold.resize(num_samples);
      uniform_bits.resize(num_samples);
      noise.resize(num_samples);
      metric.resize(num_samples);
      fired.resize(num_samples);
    }
  }
};

}  // namespace resloc::acoustics
