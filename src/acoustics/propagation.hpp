// Acoustic propagation: received level, SNR, and the per-sample detection
// probability of the hardware tone detector as a function of SNR.
//
// The model is: spherical spreading from the 10 cm reference distance plus a
// linear excess-attenuation term (environment), giving a received level; SNR
// against the environment noise floor; and a logistic mapping from SNR to the
// probability that one 16 kHz sample of the phase-locked-loop tone detector
// reports "tone present". This reproduces the paper's observation that
// P[b(t)=1 | signal present] >> P[b(t)=1 | no signal] (Section 3.5) while
// degrading smoothly with distance, which yields the distance-dependent
// large-error behaviour of Figure 8.
#pragma once

#include "acoustics/environment.hpp"

namespace resloc::acoustics {

/// Received signal level (dB) at `distance_m` from a source emitting
/// `source_db` measured at the 10 cm reference distance.
double received_level_db(double source_db, double distance_m, const EnvironmentProfile& env);

/// SNR (dB) of the received signal over the environment's noise floor, with
/// `mic_sensitivity_db` applied to the received level.
double snr_db(double source_db, double distance_m, double mic_sensitivity_db,
              const EnvironmentProfile& env);

/// Per-sample probability that the hardware tone detector fires while a tone
/// with the given SNR is present. Logistic in SNR, saturating below 1 (the
/// detector "sometimes fails to recognize the presence of a signal" even at
/// close range, Section 3.5).
double detection_probability(double snr_db_value);

/// Distance at which the per-sample detection probability falls to `target`
/// (bisection over [0.1 m, 200 m]). Used by range calibration benches.
double range_for_detection_probability(double source_db, double mic_sensitivity_db,
                                       const EnvironmentProfile& env, double target);

}  // namespace resloc::acoustics
