// Raw waveform synthesis for the software (DFT) tone detector of Section 3.7.
//
// Platforms without a hardware tone detector (e.g. the XSM mote) sample the
// microphone directly; the sliding-DFT filter of Figure 9 then isolates the
// beacon band. To reproduce Figure 10 ("clean and noisy signals before and
// after applying the tone detection filter") we synthesize sampled audio:
// constant-frequency chirps plus Gaussian noise and optional off-band
// interference tones.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"

namespace resloc::acoustics {

/// Parameters of a synthesized audio capture.
struct WaveformSpec {
  double sample_rate_hz = 16000.0;
  double tone_frequency_hz = 4000.0;  ///< fs/4, one of the Figure 9 bands
  double tone_amplitude = 1000.0;     ///< matches the Figure 10 axis scale
  double noise_stddev = 0.0;          ///< additive white Gaussian noise
  double interference_frequency_hz = 0.0;  ///< 0 disables the interferer
  double interference_amplitude = 0.0;
};

/// A chirp to place in the waveform: [start_sample, start_sample + length).
struct ChirpPlacement {
  std::size_t start_sample = 0;
  std::size_t length = 128;  ///< 8 ms at 16 kHz
};

/// Synthesizes `num_samples` of audio containing the given chirps.
std::vector<double> synthesize_waveform(const WaveformSpec& spec,
                                        const std::vector<ChirpPlacement>& chirps,
                                        std::size_t num_samples, resloc::math::Rng& rng);

/// Evenly spaced chirp placements: `count` chirps of `length` samples
/// starting at `first_start`, separated by `period` samples.
std::vector<ChirpPlacement> periodic_chirps(std::size_t count, std::size_t first_start,
                                            std::size_t period, std::size_t length);

/// Block synthesis kernel of the sampled-audio paths:
///     out[i] = amplitude[i] * tone[i] + (burst[i] ? burst_noise_sigma : 1.0) * noise[i]
/// -- tone envelope on the cached tone table plus scaled standard-normal
/// noise, the same per-sample arithmetic the retired fused loops computed
/// interleaved with their RNG draws (gaussian(0, sigma) == sigma *
/// gaussian(0, 1) bit for bit). Branch-free and contiguous, so it
/// auto-vectorizes; the noise block comes from Rng::fill_gaussian_block.
void mix_tone_noise_block(const double* amplitude, const double* tone, const double* noise,
                          const std::uint8_t* burst, double burst_noise_sigma, double* out,
                          std::size_t n);

/// Read-only view of a cached chirp tone template: sin/cos of the tone phase
/// at absolute sample index i. The matched-filter detector correlates raw
/// windows against exactly these tables, so detection and synthesis share one
/// definition of "the chirp" (and one cache).
struct ToneTemplateView {
  const double* sin_t = nullptr;  ///< sin(2*pi*f*i/fs), i in [0, length)
  const double* cos_t = nullptr;
  std::size_t length = 0;
};

/// Reusable synthesis engine for per-pair campaign loops.
///
/// The free function above prices every chirp sample at one std::sin call and
/// every capture at a fresh allocation; across a campaign's pairs x rounds x
/// chirps that dominates the synthesis cost. This class removes both:
///   - chirp tone templates (sin/cos lookup tables) are computed once per
///     (sample rate, tone frequency) and reused for every placement via the
///     angle-addition identity -- two multiplies per sample, two std::sin
///     calls per chirp regardless of length;
///   - synthesize_into() writes into a caller-owned buffer, so a pair loop
///     reuses one allocation for every capture.
/// Not thread-safe; give each worker its own synthesizer (the templates are
/// small and rebuild in microseconds).
class WaveformSynthesizer {
 public:
  /// Like synthesize_waveform, but reusing `wave`'s storage and the cached
  /// templates. The output differs from the free function only by
  /// floating-point rounding of the tone samples (|delta| ~ 1 ulp).
  void synthesize_into(std::vector<double>& wave, const WaveformSpec& spec,
                       const std::vector<ChirpPlacement>& chirps, std::size_t num_samples,
                       resloc::math::Rng& rng);

  /// Allocating convenience wrapper over synthesize_into.
  std::vector<double> synthesize(const WaveformSpec& spec,
                                 const std::vector<ChirpPlacement>& chirps,
                                 std::size_t num_samples, resloc::math::Rng& rng);

  /// Cached (sample rate, frequency) tone templates currently held.
  std::size_t cached_templates() const { return templates_.size(); }

  /// The (rate, frequency) tone template extended to at least `length`
  /// samples, as a read-only view. The pointers are invalidated by any later
  /// call that creates or extends a template (same lifetime rule as
  /// std::vector iterators); campaign scratches re-fetch the view per window.
  ToneTemplateView tone_template_view(double sample_rate_hz, double frequency_hz,
                                      std::size_t length);

 private:
  struct ToneTemplate {
    double sample_rate_hz = 0.0;
    double frequency_hz = 0.0;
    std::vector<double> sin_t;  ///< sin(2*pi*f*i/fs), i in [0, length)
    std::vector<double> cos_t;
  };

  /// Returns the template for (rate, frequency), extended to at least
  /// `length` samples.
  const ToneTemplate& tone_template(double sample_rate_hz, double frequency_hz,
                                    std::size_t length);

  std::vector<ToneTemplate> templates_;
};

}  // namespace resloc::acoustics
