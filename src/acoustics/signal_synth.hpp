// Raw waveform synthesis for the software (DFT) tone detector of Section 3.7.
//
// Platforms without a hardware tone detector (e.g. the XSM mote) sample the
// microphone directly; the sliding-DFT filter of Figure 9 then isolates the
// beacon band. To reproduce Figure 10 ("clean and noisy signals before and
// after applying the tone detection filter") we synthesize sampled audio:
// constant-frequency chirps plus Gaussian noise and optional off-band
// interference tones.
#pragma once

#include <vector>

#include "math/rng.hpp"

namespace resloc::acoustics {

/// Parameters of a synthesized audio capture.
struct WaveformSpec {
  double sample_rate_hz = 16000.0;
  double tone_frequency_hz = 4000.0;  ///< fs/4, one of the Figure 9 bands
  double tone_amplitude = 1000.0;     ///< matches the Figure 10 axis scale
  double noise_stddev = 0.0;          ///< additive white Gaussian noise
  double interference_frequency_hz = 0.0;  ///< 0 disables the interferer
  double interference_amplitude = 0.0;
};

/// A chirp to place in the waveform: [start_sample, start_sample + length).
struct ChirpPlacement {
  std::size_t start_sample = 0;
  std::size_t length = 128;  ///< 8 ms at 16 kHz
};

/// Synthesizes `num_samples` of audio containing the given chirps.
std::vector<double> synthesize_waveform(const WaveformSpec& spec,
                                        const std::vector<ChirpPlacement>& chirps,
                                        std::size_t num_samples, resloc::math::Rng& rng);

/// Evenly spaced chirp placements: `count` chirps of `length` samples
/// starting at `first_start`, separated by `period` samples.
std::vector<ChirpPlacement> periodic_chirps(std::size_t count, std::size_t first_start,
                                            std::size_t period, std::size_t length);

}  // namespace resloc::acoustics
