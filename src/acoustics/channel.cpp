#include "acoustics/channel.hpp"

#include <algorithm>
#include <cmath>

#include "acoustics/propagation.hpp"

namespace resloc::acoustics {

ReceivedWindow receive(const std::vector<Emission>& emissions, double window_start_s,
                       double window_duration_s, double distance_m, const SpeakerUnit& speaker,
                       const MicUnit& mic, const EnvironmentProfile& env,
                       const ChannelJitter& jitter, resloc::math::Rng& rng) {
  ReceivedWindow window;
  receive_into(window, emissions, window_start_s, window_duration_s, distance_m, speaker, mic,
               env, jitter, rng);
  return window;
}

LinkResponse link_response(double distance_m, const EnvironmentProfile& env) {
  // The same constants and association order as propagation.hpp's
  // received_level_db, split at the distance-dependent seam.
  constexpr double kReferenceDistanceM = 0.1;
  const double d = std::max(distance_m, kReferenceDistanceM);
  LinkResponse link;
  link.distance_m = distance_m;
  link.spreading_db = 20.0 * std::log10(d / kReferenceDistanceM);
  link.excess_db = env.excess_attenuation_db_per_m * d;  // d, not distance_m:
  // received_level_db applies the excess term to the clamped distance too.
  link.travel_s = distance_m / env.speed_of_sound_mps;
  return link;
}

void receive_into(ReceivedWindow& window, const std::vector<Emission>& emissions,
                  double window_start_s, double window_duration_s, double distance_m,
                  const SpeakerUnit& speaker, const MicUnit& mic, const EnvironmentProfile& env,
                  const ChannelJitter& jitter, resloc::math::Rng& rng) {
  receive_into(window, emissions, window_start_s, window_duration_s,
               link_response(distance_m, env), speaker, mic, env, jitter, rng);
}

void receive_into(ReceivedWindow& window, const std::vector<Emission>& emissions,
                  double window_start_s, double window_duration_s, const LinkResponse& link,
                  const SpeakerUnit& speaker, const MicUnit& mic, const EnvironmentProfile& env,
                  const ChannelJitter& jitter, resloc::math::Rng& rng) {
  window.signals.clear();
  window.bursts.clear();
  window.start_s = window_start_s;
  window.duration_s = window_duration_s;
  const double window_end = window_start_s + window_duration_s;

  // Bit-identical recomposition of propagation.hpp's snr_db:
  //   received = (source - spreading) - excess; snr = (received + sens) - floor
  // with the cached spreading/excess terms standing in for the per-call
  // log10 and multiply.
  const double direct_snr =
      (((speaker.effective_db() - link.spreading_db) - link.excess_db) +
       mic.sensitivity_db) -
      env.noise_floor_db;
  const double travel_s = link.travel_s;

  for (const Emission& e : emissions) {
    // Direct path. The audible start carries the speaker's unit-specific
    // onset offset plus per-chirp power-up jitter (both relative to the
    // calibrated mean, hence possibly negative). The first `rampup_s` of the
    // chirp plays below full level while the speaker powers up.
    const double audible_start = e.start_s + travel_s + speaker.onset_delay_s +
                                 rng.gaussian(0.0, jitter.actuation_jitter_s);
    const double audible_end = e.start_s + travel_s + e.duration_s;
    const double ramp_end = std::min(audible_start + jitter.rampup_s, audible_end);
    if (audible_end > window_start_s && audible_start < window_end && audible_end > audible_start) {
      if (ramp_end > audible_start) {
        window.signals.push_back(
            {audible_start, ramp_end, direct_snr - jitter.rampup_penalty_db});
      }
      if (audible_end > ramp_end) {
        window.signals.push_back({ramp_end, audible_end, direct_snr});
      }
    }

    // Fixed reflector (deterministic, consumes no RNG): one echo per chirp at
    // a constant extra lag. Because the lag never varies, these echoes stay
    // aligned across accumulation windows -- unlike the random echoes below,
    // which the pattern's random inter-chirp delays decorrelate.
    if (env.fixed_echo_lag_s > 0.0) {
      const double echo_start = e.start_s + travel_s + env.fixed_echo_lag_s;
      const double echo_end = echo_start + e.duration_s;
      if (echo_end > window_start_s && echo_start < window_end) {
        window.signals.push_back(
            {echo_start, echo_end, direct_snr - env.fixed_echo_attenuation_db});
      }
    }

    // Echoes: a Poisson-ish number of delayed, attenuated copies. The delay
    // is redrawn per chirp, which is exactly why the paper's random inter-
    // chirp delays decorrelate echo positions across accumulation rounds.
    double remaining = env.echo_rate;
    while (remaining > 0.0 && rng.bernoulli(std::min(remaining, 1.0))) {
      remaining -= 1.0;
      const double delay = rng.exponential(1.0 / env.echo_delay_mean_s);
      const double echo_snr = direct_snr - env.echo_attenuation_db + rng.gaussian(0.0, 2.0);
      const double echo_start = e.start_s + travel_s + delay;
      const double echo_end = echo_start + e.duration_s;
      if (echo_end > window_start_s && echo_start < window_end) {
        window.signals.push_back({echo_start, echo_end, echo_snr});
      }
    }
  }

  // Transient wide-band noise bursts as a Poisson process over the window.
  if (env.noise_burst_rate_hz > 0.0) {
    double t = window_start_s + rng.exponential(env.noise_burst_rate_hz);
    while (t < window_end) {
      window.bursts.push_back({t, t + env.noise_burst_duration_s});
      t += rng.exponential(env.noise_burst_rate_hz);
    }
  }

  std::sort(window.signals.begin(), window.signals.end(),
            [](const SignalInterval& a, const SignalInterval& b) { return a.start_s < b.start_s; });
}

}  // namespace resloc::acoustics
