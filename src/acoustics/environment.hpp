// Acoustic environment profiles.
//
// The paper evaluates the ranging service in four kinds of terrain with very
// different acoustic behaviour (Sections 3.3 and 3.6): an urban site with
// buildings and echoes, a flat grassy field near an airport, a paved parking
// lot, and a wooded area. We model an environment by: ambient noise floor,
// excess attenuation on top of geometric spreading (grass and woods absorb
// strongly; pavement barely at all), echo statistics (multipath is common near
// buildings), and the rate of transient wide-band noise bursts (aircraft,
// footsteps, birds).
//
// Parameter calibration targets the paper's reported behaviour:
//   - stock 88 dB buzzer: detection range < 3 m on grass, ~10 m on pavement,
//   - 105 dB loudspeaker: ~20 m max / ~10 m reliable on grass; 35-50 m max /
//     ~25 m reliable on pavement (Section 3.6.2).
#pragma once

#include <string>
#include <vector>

namespace resloc::acoustics {

/// Static acoustic description of a deployment site.
struct EnvironmentProfile {
  std::string name;

  /// Speed of sound used both by physics and by the ranging arithmetic.
  double speed_of_sound_mps = 340.0;

  /// Attenuation in dB per meter in excess of spherical spreading
  /// (absorption by grass, foliage, ground effect).
  double excess_attenuation_db_per_m = 0.0;

  /// Ambient acoustic noise level in dB (same arbitrary reference as the
  /// speaker output level, which the paper quotes at 10 cm).
  double noise_floor_db = 40.0;

  /// Per-sample probability that the hardware tone detector fires with no
  /// tone present (background noise in the 4.0-4.5 kHz band).
  double false_positive_rate = 0.01;

  /// Expected number of audible echoes produced per chirp (multipath).
  double echo_rate = 0.0;

  /// Mean extra propagation delay of an echo relative to the direct path, in
  /// seconds (exponentially distributed).
  double echo_delay_mean_s = 0.02;

  /// Echo level reduction relative to the direct path, in dB.
  double echo_attenuation_db = 12.0;

  /// Deterministic fixed reflector: when positive, every chirp additionally
  /// produces one echo at exactly this extra delay (no randomness consumed).
  /// The paper's random inter-chirp delays decorrelate the Poisson echoes
  /// above across accumulation rounds, but a fixed nearby reflector (a wall,
  /// Section 3.3's urban courtyard) arrives at the same lag in every window
  /// and survives accumulation -- the echo the matched-filter detector and
  /// the robust measurement filters exist to reject. 0 disables (default; all
  /// built-in profiles leave it off, so campaign byte-streams are unchanged).
  double fixed_echo_lag_s = 0.0;

  /// Level of the fixed echo relative to the direct path, in dB (positive =
  /// quieter). Fixtures may set it negative to model a focusing reflector
  /// louder than a marginal direct arrival.
  double fixed_echo_attenuation_db = 6.0;

  /// Rate (events per second) of transient wide-band noise bursts that raise
  /// the detector's false-positive probability while active.
  double noise_burst_rate_hz = 0.0;

  /// Duration of a noise burst, in seconds.
  double noise_burst_duration_s = 0.05;

  /// False-positive probability while a noise burst is active.
  double noise_burst_false_positive_rate = 0.35;

  /// Flat grassy field, 10-15 cm grass (the paper's main 46-node experiment
  /// site, near an airport: occasional loud engine noise).
  static EnvironmentProfile grass();

  /// Paved parking lot; low attenuation, long range.
  static EnvironmentProfile pavement();

  /// Urban site with buildings, gravel, pavement; echo-rich (the 60-node
  /// baseline experiment of Section 3.3).
  static EnvironmentProfile urban();

  /// Wooded area with >20 cm grass and scattered trees; strongest absorption.
  static EnvironmentProfile wooded();
};

/// The four built-in profile names, sorted ("grass", "pavement", "urban",
/// "wooded") -- the value set of the experiment runner's environment axis.
std::vector<std::string> environment_names();

/// Profile factory by name. Throws std::invalid_argument for an unknown name
/// so a mistyped sweep axis fails the trial loudly instead of silently
/// running the default terrain.
EnvironmentProfile environment_by_name(const std::string& name);

}  // namespace resloc::acoustics
