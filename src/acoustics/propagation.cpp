#include "acoustics/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace resloc::acoustics {

namespace {
constexpr double kReferenceDistanceM = 0.1;  // speaker levels are quoted at 10 cm
constexpr double kSnr50Db = 10.0;            // SNR of 50% per-sample detection
constexpr double kSnrSlopeDb = 3.0;          // logistic slope
constexpr double kMaxHitProbability = 0.95;  // detector misses even strong tones
}  // namespace

double received_level_db(double source_db, double distance_m, const EnvironmentProfile& env) {
  const double d = std::max(distance_m, kReferenceDistanceM);
  const double spreading = 20.0 * std::log10(d / kReferenceDistanceM);
  return source_db - spreading - env.excess_attenuation_db_per_m * d;
}

double snr_db(double source_db, double distance_m, double mic_sensitivity_db,
              const EnvironmentProfile& env) {
  return received_level_db(source_db, distance_m, env) + mic_sensitivity_db -
         env.noise_floor_db;
}

double detection_probability(double snr_db_value) {
  const double logistic = 1.0 / (1.0 + std::exp(-(snr_db_value - kSnr50Db) / kSnrSlopeDb));
  return kMaxHitProbability * logistic;
}

double range_for_detection_probability(double source_db, double mic_sensitivity_db,
                                       const EnvironmentProfile& env, double target) {
  double lo = 0.1;
  double hi = 200.0;
  // detection probability decreases monotonically with distance
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double p = detection_probability(snr_db(source_db, mid, mic_sensitivity_db, env));
    if (p > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace resloc::acoustics
