#include "acoustics/chirp_pattern.hpp"

namespace resloc::acoustics {

std::vector<double> chirp_start_times(const ChirpPattern& pattern, resloc::math::Rng& rng) {
  std::vector<double> starts;
  chirp_start_times_into(pattern, rng, starts);
  return starts;
}

void chirp_start_times_into(const ChirpPattern& pattern, resloc::math::Rng& rng,
                            std::vector<double>& starts) {
  starts.clear();
  starts.reserve(static_cast<std::size_t>(pattern.num_chirps));
  double t = 0.0;
  for (int i = 0; i < pattern.num_chirps; ++i) {
    if (i > 0) {
      t += pattern.chirp_duration_s + pattern.inter_chirp_gap_s +
           rng.uniform(0.0, pattern.random_delay_max_s);
    }
    starts.push_back(t);
  }
}

}  // namespace resloc::acoustics
