// Speaker and microphone unit models.
//
// Section 3.4 (source 3, "unit-to-unit variation") and Section 3.6.2: "some
// speaker-microphone pairs have ranges that are consistently much shorter or
// much longer than the typical values... The microphones are rated at +/-3 dB
// sensitivity, and we have observed variations of up to 5 dB on the
// loudspeakers." Faulty hardware occasionally produces very large errors.
#pragma once

#include <string>
#include <vector>

#include "math/rng.hpp"

namespace resloc::acoustics {

/// Nominal output level of the stock Ario S14T40A buzzer on the MTS310 board,
/// measured 10 cm from the buzzer (Section 3.2).
inline constexpr double kStockBuzzerDb = 88.0;

/// Nominal output level of the $5 piezo loudspeaker extension (Section 3.2).
inline constexpr double kLoudspeakerDb = 105.0;

/// One physical speaker: nominal level plus its unit-specific deviation.
struct SpeakerUnit {
  double output_db = kLoudspeakerDb;
  /// Unit-specific constant onset delay (s) relative to the calibrated mean:
  /// different speakers power up at slightly different speeds (error source 3
  /// in Section 3.4), so every pair involving this speaker carries a small
  /// systematic offset.
  double onset_delay_s = 0.0;
  bool faulty = false;  ///< faulty units emit at drastically reduced power
  /// Effective emission level accounting for faults.
  double effective_db() const { return faulty ? output_db - 25.0 : output_db; }
};

/// One physical microphone: sensitivity deviation applied to the received
/// level, plus an optional fault that adds spurious detections.
struct MicUnit {
  double sensitivity_db = 0.0;
  bool faulty = false;  ///< faulty units suffer persistent wide-band noise
};

/// Sampling parameters for drawing unit populations.
struct UnitVariationModel {
  double speaker_stddev_db = 1.7;  ///< up to ~5 dB observed spread
  double mic_stddev_db = 1.0;      ///< +/-3 dB rated sensitivity
  double onset_delay_stddev_s = 0.0004;  ///< per-unit power-up time spread
  double fault_probability = 0.02;

  SpeakerUnit sample_speaker(double nominal_db, resloc::math::Rng& rng) const;
  MicUnit sample_mic(resloc::math::Rng& rng) const;
};

/// Named unit-variation presets, sorted -- the value set of the experiment
/// runner's unit-model axis:
///   "calibrated" -- the paper-calibrated defaults above,
///   "degraded"   -- aged hardware: double the spread, 8 % fault rate,
///   "nominal"    -- idealized identical units, no faults (isolates the
///                   channel/detector error sources from hardware variation).
std::vector<std::string> unit_model_names();

/// Preset factory by name. Throws std::invalid_argument for an unknown name.
UnitVariationModel unit_model_by_name(const std::string& name);

}  // namespace resloc::acoustics
