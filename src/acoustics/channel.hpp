// The acoustic channel: turns an emission schedule into the time intervals
// during which a tone is audible at a receiver, including multipath echoes
// and transient wide-band noise bursts.
//
// Error sources modeled here (Section 3.4 of the paper):
//   2. non-deterministic delays in acoustic devices (speaker power-up jitter),
//   4. signal attenuation (via propagation.hpp),
//   5. noise (burst windows with elevated false-positive probability),
//   6. echoes (delayed, attenuated copies; echoes of *earlier* chirps can
//      arrive before the direct signal of the current chirp and cause the
//      underestimates seen in Figure 2).
#pragma once

#include <vector>

#include "acoustics/environment.hpp"
#include "acoustics/units.hpp"
#include "math/rng.hpp"

namespace resloc::acoustics {

/// One chirp emission at the source, in source-local time.
struct Emission {
  double start_s = 0.0;
  double duration_s = 0.008;
};

/// A time interval during which a tone (direct or echo) is audible, with its
/// SNR at the receiver.
struct SignalInterval {
  double start_s = 0.0;
  double end_s = 0.0;
  double snr_db = 0.0;
};

/// A time interval during which a wide-band noise burst elevates the tone
/// detector's false-positive probability.
struct NoiseBurst {
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Everything audible at one receiver during one sampling window.
struct ReceivedWindow {
  double start_s = 0.0;     ///< window start, same clock as emissions
  double duration_s = 0.0;
  std::vector<SignalInterval> signals;
  std::vector<NoiseBurst> bursts;
};

/// Tuning of the receiver-side timing jitter and speaker power-up behaviour.
struct ChannelJitter {
  /// Standard deviation of the speaker power-up / detector pick-up delay (s),
  /// per chirp. The *mean* of this delay is part of delta_const and is
  /// calibrated away, so the residual is modeled as symmetric around zero;
  /// 0.5 ms of timing jitter is ~17 cm of distance, giving the paper's
  /// zero-mean +/-30 cm error core.
  double actuation_jitter_s = 0.0005;

  /// Speaker power ramp-up: the first `rampup_s` of each chirp is emitted
  /// `rampup_penalty_db` below full level ("it may take some time before an
  /// analog sounder reaches its maximum output power level", Section 3.4).
  /// At marginal SNR the ramp is missed and detection slides into the chirp
  /// body -- the paper's over-estimation mechanism, which grows with chirp
  /// length (Section 3.6) and caps at the chirp's own acoustic length.
  double rampup_s = 0.003;
  double rampup_penalty_db = 5.0;
};

/// The distance-dependent pieces of the channel response, computed once per
/// (distance, environment) and reusable across every chirp window, round,
/// and direction of a link: the spreading loss (environment-independent),
/// the excess attenuation (linear in distance), and the acoustic travel
/// time. Everything else in the received SNR -- speaker level, shadowing,
/// mic sensitivity, noise floor -- varies per unit or per attempt and is
/// composed on top in exactly the association order propagation.hpp uses,
/// so cached and uncached windows are bit-identical.
struct LinkResponse {
  double distance_m = 0.0;
  double spreading_db = 0.0;  ///< 20 * log10(max(d, 10 cm) / 10 cm)
  double excess_db = 0.0;     ///< env.excess_attenuation_db_per_m * d
  double travel_s = 0.0;      ///< d / env.speed_of_sound_mps
};

/// Computes the reusable channel response for one link distance.
LinkResponse link_response(double distance_m, const EnvironmentProfile& env);

/// Builds the received window for one receiver at `distance_m` from the
/// source. `emissions` must include every chirp whose direct signal or echo
/// can fall inside the window (i.e. also the previous chirp).
ReceivedWindow receive(const std::vector<Emission>& emissions, double window_start_s,
                       double window_duration_s, double distance_m, const SpeakerUnit& speaker,
                       const MicUnit& mic, const EnvironmentProfile& env,
                       const ChannelJitter& jitter, resloc::math::Rng& rng);

/// receive() into a caller-owned window, reusing its signal/burst vectors
/// across a campaign's pairs. Draw-for-draw identical to receive().
void receive_into(ReceivedWindow& window, const std::vector<Emission>& emissions,
                  double window_start_s, double window_duration_s, double distance_m,
                  const SpeakerUnit& speaker, const MicUnit& mic, const EnvironmentProfile& env,
                  const ChannelJitter& jitter, resloc::math::Rng& rng);

/// receive_into() with the distance-dependent response precomputed (usually
/// by a sim::ChannelResponseCache). Value- and draw-identical to the
/// distance-taking overload for link == link_response(distance_m, env).
void receive_into(ReceivedWindow& window, const std::vector<Emission>& emissions,
                  double window_start_s, double window_duration_s, const LinkResponse& link,
                  const SpeakerUnit& speaker, const MicUnit& mic, const EnvironmentProfile& env,
                  const ChannelJitter& jitter, resloc::math::Rng& rng);

}  // namespace resloc::acoustics
