// The acoustic signal pattern emitted by the source node.
//
// Section 3.5: "we use a very simple pattern - a sequence of identical chirps
// interspersed with intervals of silence. ... To counteract the effect of
// echoes of the original chirp being detected, we include small random
// delays between elements of the pattern." Section 3.6 fixes the operating
// point: a constant 4.3 kHz tone in 8 ms chirps, 10 chirps per sequence;
// 64 ms chirps caused over-estimates (late part detected when the early part
// is missed) and chirps below 8 ms did not let the speaker power up fully.
#pragma once

#include <vector>

#include "math/rng.hpp"

namespace resloc::acoustics {

/// Emission schedule parameters for one ranging sequence.
struct ChirpPattern {
  int num_chirps = 10;
  double chirp_duration_s = 0.008;   ///< 8 ms (Section 3.6)
  double tone_frequency_hz = 4300.0; ///< within the 4.0-4.5 kHz detector band
  double inter_chirp_gap_s = 0.25;   ///< silence between chirps
  double random_delay_max_s = 0.05;  ///< extra per-chirp random delay, decorrelates echoes
};

/// Emission start times (seconds, relative to the sequence start) for each
/// chirp, including the per-chirp random delays.
std::vector<double> chirp_start_times(const ChirpPattern& pattern, resloc::math::Rng& rng);

/// chirp_start_times() into a caller-owned buffer, reused across sequences.
void chirp_start_times_into(const ChirpPattern& pattern, resloc::math::Rng& rng,
                            std::vector<double>& starts);

}  // namespace resloc::acoustics
