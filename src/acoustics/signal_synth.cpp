#include "acoustics/signal_synth.hpp"

#include <cmath>
#include "math/constants.hpp"

namespace resloc::acoustics {

std::vector<double> synthesize_waveform(const WaveformSpec& spec,
                                        const std::vector<ChirpPlacement>& chirps,
                                        std::size_t num_samples, resloc::math::Rng& rng) {
  std::vector<double> wave(num_samples, 0.0);
  const double dt = 1.0 / spec.sample_rate_hz;

  for (const ChirpPlacement& chirp : chirps) {
    const std::size_t end = std::min(num_samples, chirp.start_sample + chirp.length);
    for (std::size_t i = chirp.start_sample; i < end; ++i) {
      const double t = static_cast<double>(i) * dt;
      wave[i] += spec.tone_amplitude *
                 std::sin(2.0 * resloc::math::kPi * spec.tone_frequency_hz * t);
    }
  }

  if (spec.interference_amplitude != 0.0 && spec.interference_frequency_hz != 0.0) {
    for (std::size_t i = 0; i < num_samples; ++i) {
      const double t = static_cast<double>(i) * dt;
      wave[i] += spec.interference_amplitude *
                 std::sin(2.0 * resloc::math::kPi * spec.interference_frequency_hz * t);
    }
  }

  if (spec.noise_stddev > 0.0) {
    for (double& s : wave) s += rng.gaussian(0.0, spec.noise_stddev);
  }
  return wave;
}

std::vector<ChirpPlacement> periodic_chirps(std::size_t count, std::size_t first_start,
                                            std::size_t period, std::size_t length) {
  std::vector<ChirpPlacement> chirps;
  chirps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    chirps.push_back({first_start + i * period, length});
  }
  return chirps;
}

}  // namespace resloc::acoustics
