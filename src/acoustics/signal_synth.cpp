#include "acoustics/signal_synth.hpp"

#include <cmath>
#include "math/constants.hpp"

namespace resloc::acoustics {

std::vector<double> synthesize_waveform(const WaveformSpec& spec,
                                        const std::vector<ChirpPlacement>& chirps,
                                        std::size_t num_samples, resloc::math::Rng& rng) {
  std::vector<double> wave(num_samples, 0.0);
  const double dt = 1.0 / spec.sample_rate_hz;

  for (const ChirpPlacement& chirp : chirps) {
    const std::size_t end = std::min(num_samples, chirp.start_sample + chirp.length);
    for (std::size_t i = chirp.start_sample; i < end; ++i) {
      const double t = static_cast<double>(i) * dt;
      wave[i] += spec.tone_amplitude *
                 std::sin(2.0 * resloc::math::kPi * spec.tone_frequency_hz * t);
    }
  }

  if (spec.interference_amplitude != 0.0 && spec.interference_frequency_hz != 0.0) {
    for (std::size_t i = 0; i < num_samples; ++i) {
      const double t = static_cast<double>(i) * dt;
      wave[i] += spec.interference_amplitude *
                 std::sin(2.0 * resloc::math::kPi * spec.interference_frequency_hz * t);
    }
  }

  if (spec.noise_stddev > 0.0) {
    for (double& s : wave) s += rng.gaussian(0.0, spec.noise_stddev);
  }
  return wave;
}

void mix_tone_noise_block(const double* amplitude, const double* tone, const double* noise,
                          const std::uint8_t* burst, double burst_noise_sigma, double* out,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = burst[i] != 0 ? burst_noise_sigma : 1.0;
    out[i] = amplitude[i] * tone[i] + sigma * noise[i];
  }
}

std::vector<ChirpPlacement> periodic_chirps(std::size_t count, std::size_t first_start,
                                            std::size_t period, std::size_t length) {
  std::vector<ChirpPlacement> chirps;
  chirps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    chirps.push_back({first_start + i * period, length});
  }
  return chirps;
}

const WaveformSynthesizer::ToneTemplate& WaveformSynthesizer::tone_template(
    double sample_rate_hz, double frequency_hz, std::size_t length) {
  ToneTemplate* entry = nullptr;
  for (ToneTemplate& t : templates_) {
    if (t.sample_rate_hz == sample_rate_hz && t.frequency_hz == frequency_hz) {
      entry = &t;
      break;
    }
  }
  if (entry == nullptr) {
    templates_.push_back({sample_rate_hz, frequency_hz, {}, {}});
    entry = &templates_.back();
  }
  const double omega_dt = 2.0 * resloc::math::kPi * frequency_hz / sample_rate_hz;
  // Extend lazily: a longer chirp than any seen before grows the same table.
  for (std::size_t i = entry->sin_t.size(); i < length; ++i) {
    const double angle = omega_dt * static_cast<double>(i);
    entry->sin_t.push_back(std::sin(angle));
    entry->cos_t.push_back(std::cos(angle));
  }
  return *entry;
}

ToneTemplateView WaveformSynthesizer::tone_template_view(double sample_rate_hz,
                                                         double frequency_hz,
                                                         std::size_t length) {
  const ToneTemplate& tone = tone_template(sample_rate_hz, frequency_hz, length);
  return {tone.sin_t.data(), tone.cos_t.data(), tone.sin_t.size()};
}

void WaveformSynthesizer::synthesize_into(std::vector<double>& wave, const WaveformSpec& spec,
                                          const std::vector<ChirpPlacement>& chirps,
                                          std::size_t num_samples, resloc::math::Rng& rng) {
  wave.assign(num_samples, 0.0);

  for (const ChirpPlacement& chirp : chirps) {
    if (chirp.start_sample >= num_samples) continue;
    const std::size_t length = std::min(chirp.length, num_samples - chirp.start_sample);
    const ToneTemplate& tone =
        tone_template(spec.sample_rate_hz, spec.tone_frequency_hz, length);
    // Tone at absolute sample s+i via angle addition:
    //   sin(w*(s+i)) = sin(w*s)*cos(w*i) + cos(w*s)*sin(w*i)
    // -- two std::sin calls per chirp, two multiplies per sample.
    const double start_angle = 2.0 * resloc::math::kPi * spec.tone_frequency_hz /
                               spec.sample_rate_hz * static_cast<double>(chirp.start_sample);
    const double sin_phase = spec.tone_amplitude * std::sin(start_angle);
    const double cos_phase = spec.tone_amplitude * std::cos(start_angle);
    double* out = wave.data() + chirp.start_sample;
    for (std::size_t i = 0; i < length; ++i) {
      out[i] += sin_phase * tone.cos_t[i] + cos_phase * tone.sin_t[i];
    }
  }

  if (spec.interference_amplitude != 0.0 && spec.interference_frequency_hz != 0.0) {
    const ToneTemplate& tone =
        tone_template(spec.sample_rate_hz, spec.interference_frequency_hz, num_samples);
    for (std::size_t i = 0; i < num_samples; ++i) {
      wave[i] += spec.interference_amplitude * tone.sin_t[i];
    }
  }

  if (spec.noise_stddev > 0.0) {
    for (double& s : wave) s += rng.gaussian(0.0, spec.noise_stddev);
  }
}

std::vector<double> WaveformSynthesizer::synthesize(const WaveformSpec& spec,
                                                    const std::vector<ChirpPlacement>& chirps,
                                                    std::size_t num_samples,
                                                    resloc::math::Rng& rng) {
  std::vector<double> wave;
  synthesize_into(wave, spec, chirps, num_samples, rng);
  return wave;
}

}  // namespace resloc::acoustics
