// Multilateration localization (Section 4.1).
//
// A node with distance measurements to >= 3 non-collinear anchors estimates
// its position by weighted nonlinear least squares:
//   argmin_(x,y)  sum_a w(c_a) * (sqrt((x-x_a)^2 + (y-y_a)^2) - d_a)^2
// solved by gradient descent. The scheme optionally:
//   - applies the intersection consistency check first (Section 4.1.2),
//   - localizes progressively, promoting localized nodes to anchors with
//     down-weighted confidence (Section 4.1.1's proposed modification).
#pragma once

#include <optional>

#include "core/intersection_check.hpp"
#include "core/types.hpp"
#include "math/gradient_descent.hpp"
#include "math/rng.hpp"

namespace resloc::core {

/// Multilateration configuration.
struct MultilaterationOptions {
  /// Minimum anchors with measurements before a node is localized at all
  /// (default 3, the planar lower bound).
  std::size_t min_anchors = 3;

  /// Run the intersection consistency check before minimizing.
  bool use_intersection_check = false;
  IntersectionCheckOptions intersection;

  /// Estimate the position as the dominant intersection cluster's centroid
  /// ("we may take the mode of the intersection points ... instead of
  /// minimizing the error if the number of anchors is large enough") when at
  /// least `mode_min_anchors` (default 5) consistent anchors are available.
  bool use_intersection_mode_estimate = false;
  std::size_t mode_min_anchors = 5;

  /// Degrade instead of giving up: a node with fewer than `min_anchors` but
  /// at least `degraded_min_anchors` usable anchors still receives a fix,
  /// flagged LocalizationStatus::kDegraded in the result (the solve is
  /// under-constrained -- with two anchors the position is one of two mirror
  /// points). Degraded fixes never join the progressive anchor pool. Off by
  /// default so the paper-faithful behavior (and its goldens) are untouched.
  bool allow_degraded = false;
  std::size_t degraded_min_anchors = 2;

  /// Progressive localization: localized non-anchors become anchors for
  /// later rounds, with weight scaled by `progressive_weight` (default 0.5).
  /// The paper's reported experiments use a single round with constant
  /// weight 1, so both toggles default off.
  bool progressive = false;
  double progressive_weight = 0.5;
  int max_progressive_rounds = 10;

  /// Gradient-descent tuning for the position fit.
  resloc::math::GradientDescentOptions gd{.step_size = 0.05,
                                          .max_iterations = 2000,
                                          .relative_tolerance = 1e-12,
                                          .gradient_tolerance = 1e-9,
                                          .adaptive = true,
                                          .record_trace = false};
  resloc::math::RestartOptions restarts{.rounds = 3, .perturbation_stddev = 2.0};
};

/// Least-squares position fit against a fixed set of anchor observations.
/// Returns nullopt when fewer than `min_anchors` observations are given.
std::optional<resloc::math::Vec2> multilaterate(const std::vector<AnchorObservation>& anchors,
                                                const MultilaterationOptions& options,
                                                resloc::math::Rng& rng);

/// Localizes every non-anchor node of the deployment from the measurement
/// set. Anchor positions are taken from the deployment (anchors "know their
/// own location"); non-anchor entries of the result hold estimates or nullopt
/// when the node could not be localized.
LocalizationResult localize_by_multilateration(const Deployment& deployment,
                                               const MeasurementSet& measurements,
                                               const MultilaterationOptions& options,
                                               resloc::math::Rng& rng);

/// Average number of usable anchors per non-anchor node -- the paper reports
/// this (1.47 for the sparse grid, 3.84 augmented) as the sparsity diagnostic.
double average_anchors_per_node(const Deployment& deployment,
                                const MeasurementSet& measurements);

}  // namespace resloc::core
