// Event-driven alignment (Section 4.3.1, Step 3) on the network simulator.
//
// The mote protocol, verbatim: after local maps are exchanged ("two local
// data exchanges per node"), the root broadcasts "a vector representation of
// the origin of the global coordinate system and two orthonormal axis
// vectors". A node receiving (o, x, y) in the sender's frame applies its
// stored sender->self transform to get (o^, x^, y^) in its own frame,
// computes its own position as ((p - o^) . x^, (p - o^) . y^), and forwards
// the transformed vectors -- one round of flooding for the whole network.
//
// This implementation exchanges the actual map/alignment messages over the
// discrete-event radio with drifting clocks, and is checked against the
// graph-driven implementation in distributed_lss.hpp.
#pragma once

#include <optional>
#include <vector>

#include "core/distributed_lss.hpp"
#include "core/local_map.hpp"
#include "core/types.hpp"
#include "math/rng.hpp"
#include "net/network.hpp"

namespace resloc::core {

/// Protocol statistics and result.
struct AlignmentProtocolResult {
  /// Per-node positions in the root's frame (nullopt = never aligned).
  LocalizationResult result;
  std::size_t map_broadcasts = 0;
  std::size_t align_broadcasts = 0;
  std::size_t messages_delivered = 0;
};

/// Runs map exchange + alignment flooding over a simulated radio network.
/// `true_positions` provides radio connectivity only (who can hear whom);
/// the protocol never reads them for localization. `maps` are the prebuilt
/// Step 1 local maps (one per node, owner == index).
AlignmentProtocolResult run_alignment_protocol(const std::vector<LocalMap>& maps, NodeId root,
                                               const std::vector<resloc::math::Vec2>& true_positions,
                                               const DistributedLssOptions& options,
                                               const resloc::net::RadioParams& radio,
                                               std::uint64_t seed);

}  // namespace resloc::core
