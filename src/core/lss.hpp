// Centralized least squares scaling (LSS) localization with soft constraints
// -- the paper's primary contribution (Section 4.2).
//
// LSS seeks a configuration {(x_i, y_i)} minimizing the weighted stress
//
//   E = sum_{d_ij in D} w_ij (sqrt((x_i-x_j)^2 + (y_i-y_j)^2) - d_ij)^2
//     + sum_{d_ij not in D} w_D (min(dcomp_ij, d_min) - d_min)^2
//
// where D is the sparse set of measured distances and the second term is the
// minimum-node-spacing soft constraint: pairs *without* a measurement are
// penalized when placed closer than d_min ("this can be visualized as
// straightening a plane which is incorrectly folded"). Minimization is
// gradient descent (Equation 1) with perturbation restarts to escape local
// minima. Unlike classical MDS, no all-pairs distance matrix is required.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "math/gradient_descent.hpp"
#include "math/rng.hpp"
#include "math/vec2.hpp"

namespace resloc::core {

/// LSS configuration. Defaults follow the field experiment of Section 4.2.2:
/// w_ij = 1 (set per-edge in the MeasurementSet), w_D = 10, d_min = 9.14 m.
struct LssOptions {
  /// Minimum node spacing d_min (default 9.14 m = 30 ft, the paper's grid
  /// spacing); nullopt disables the soft constraint (the Figure 19 /
  /// Figure 22 ablation).
  std::optional<double> min_spacing_m = 9.14;

  /// Soft-constraint weight w_D (default 10, Section 4.2.2).
  double constraint_weight = 10.0;

  /// Side of the square in which random initial configurations are drawn
  /// (default 70 m, covering the ~63 m grass-grid extent).
  double init_box_m = 70.0;

  /// Gradient-descent tuning (Equation 1 with adaptive step).
  resloc::math::GradientDescentOptions gd{.step_size = 1e-3,
                                          .max_iterations = 4000,
                                          .relative_tolerance = 1e-12,
                                          .gradient_tolerance = 1e-7,
                                          .adaptive = true,
                                          .record_trace = false};

  /// Perturbation-restart schedule (Section 4.2.1: each round reseeds from
  /// the best configuration so far plus noise).
  resloc::math::RestartOptions restarts{.rounds = 8, .perturbation_stddev = 4.0};

  /// Number of independent random initial configurations tried by
  /// localize_lss (each gets the full perturbation-restart schedule; the
  /// globally best configuration wins). The paper repeats minimization
  /// "until a reasonable minimum is reached or the maximum computation time
  /// limit expires"; fresh seeds are how a deep fold is escaped when
  /// perturbation alone cannot.
  int independent_inits = 16;

  /// Early-stop: when > 0, initialization attempts stop as soon as the best
  /// stress falls to `target_stress_per_edge * edge_count` ("a reasonable
  /// minimum is reached"). 0 runs all attempts.
  double target_stress_per_edge = 0.0;

  /// When true, the soft constraint's active set is found by the original
  /// dense all-pairs scan (O(n^2) per objective evaluation) instead of the
  /// spatial-hash neighbor query (~O(n)). The two paths are bit-equivalent --
  /// same error, same gradient, down to the last ulp (locked by the
  /// dense-vs-grid test in tests/test_lss_scale.cpp) -- so this exists only
  /// for that test and as a reference when debugging the grid.
  bool dense_constraint_scan = false;
};

/// LSS output. Positions are in an arbitrary rigid frame (translate / rotate
/// / flip) unless anchors pinned the frame; evaluation aligns to ground truth
/// by best-fit (Section 4.2.2).
struct LssResult {
  std::vector<resloc::math::Vec2> positions;
  double stress = 0.0;               ///< final E
  int iterations = 0;                ///< accepted gradient steps (best round)
  bool converged = false;
  /// The solve encountered a non-finite stress (NaN/inf measurements, e.g.
  /// injected corruption): positions are the last finite iterate and should
  /// be treated as degraded, not full-confidence.
  bool non_finite = false;
  std::vector<double> error_trace;   ///< E per iteration when gd.record_trace
};

/// Evaluates the LSS stress function (with the soft constraint when enabled)
/// at the given configuration. Exposed for tests and benches (Figure 23).
double lss_stress(const MeasurementSet& measurements, const std::vector<resloc::math::Vec2>& positions,
                  const LssOptions& options);

/// Evaluates stress AND its gradient at the given configuration. `grad` is
/// resized to 2n and laid out like the solver's parameter vector:
/// [dE/dx_0 .. dE/dx_{n-1}, dE/dy_0 .. dE/dy_{n-1}]. Exposed for the
/// finite-difference gradient checks, the dense-vs-grid equivalence test, and
/// bench_lss_scale.
double lss_stress_with_gradient(const MeasurementSet& measurements,
                                const std::vector<resloc::math::Vec2>& positions,
                                const LssOptions& options, std::vector<double>& grad);

/// Runs centralized LSS over all nodes in the measurement set, starting from
/// a random configuration. All nodes receive coordinates; nodes with no
/// measurements are only constrained by the soft term and are effectively
/// unlocalized (callers can drop isolated nodes).
LssResult localize_lss(const MeasurementSet& measurements, const LssOptions& options,
                       resloc::math::Rng& rng);

/// LSS with a caller-provided initial configuration (e.g. for refinement or
/// deterministic tests).
LssResult localize_lss_from(const MeasurementSet& measurements,
                            std::vector<resloc::math::Vec2> initial, const LssOptions& options,
                            resloc::math::Rng& rng);

/// Anchored LSS: nodes listed in `anchors` are pinned to their known
/// positions (their gradient entries are zeroed), so the output frame is
/// absolute. Not used by the paper's experiments (which align post-hoc) but
/// a natural deployment mode of the same minimization.
LssResult localize_lss_anchored(const MeasurementSet& measurements,
                                const std::vector<std::pair<NodeId, resloc::math::Vec2>>& anchors,
                                const LssOptions& options, resloc::math::Rng& rng);

}  // namespace resloc::core
