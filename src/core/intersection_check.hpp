// Intersection consistency checking for multilateration (Section 4.1.2).
//
// Range circles drawn at the anchors should intersect near the node being
// localized; measurement errors spread the intersection points, but anchors
// with *consistent* distances still intersect close to one another. The
// check computes all pairwise circle intersections, finds the dominant
// cluster, and drops anchors with no intersection point near it (Figure 11's
// anchor (-170, 700) is the canonical casualty: nearly collinear anchors
// amplify small range errors into large intersection displacement).
#pragma once

#include <cstddef>
#include <vector>

#include "math/geometry.hpp"
#include "math/vec2.hpp"

namespace resloc::core {

/// One anchor's contribution to localizing a node.
struct AnchorObservation {
  resloc::math::Vec2 position;
  double distance_m = 0.0;
  double weight = 1.0;
};

/// Outcome of the intersection consistency check.
struct IntersectionCheckResult {
  /// Indices (into the input observation list) of anchors that survived.
  std::vector<std::size_t> consistent_anchors;
  /// All pairwise intersection points considered.
  std::vector<resloc::math::Vec2> intersection_points;
  /// Indices (into intersection_points) of the dominant cluster.
  std::vector<std::size_t> cluster;
  /// Centroid of the dominant cluster; the "mode of the intersection points"
  /// position estimate the paper suggests for large anchor counts.
  resloc::math::Vec2 cluster_centroid;
};

/// Parameters of the check.
struct IntersectionCheckOptions {
  /// Cluster linkage radius ("e.g., beyond 1m range" in the paper).
  double cluster_radius_m = 1.0;
  /// Anchors are kept when at least one of their intersection points lies
  /// within this distance of the dominant cluster.
  double anchor_keep_radius_m = 1.0;
  /// Never drop below this many anchors; with fewer consistent anchors than
  /// this, the check keeps all anchors instead (a caveat the paper notes:
  /// scarce data can make suspicious measurements worth retaining).
  std::size_t min_anchors = 3;
};

/// Runs the intersection consistency check over the anchor observations.
IntersectionCheckResult check_intersection_consistency(
    const std::vector<AnchorObservation>& anchors, const IntersectionCheckOptions& options = {});

}  // namespace resloc::core
