#include "core/local_map.hpp"

#include <algorithm>

namespace resloc::core {

using resloc::math::Vec2;

std::optional<Vec2> LocalMap::coord_of(NodeId id) const {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == id) return coords[i];
  }
  return std::nullopt;
}

std::vector<NodeId> LocalMap::shared_members(const LocalMap& other) const {
  std::vector<NodeId> shared;
  for (NodeId m : members) {
    if (other.coord_of(m).has_value()) shared.push_back(m);
  }
  return shared;
}

LocalMap build_local_map(NodeId owner, const MeasurementSet& measurements,
                         const LssOptions& options, resloc::math::Rng& rng) {
  LocalMap map;
  map.owner = owner;
  map.members.push_back(owner);
  for (const auto& [neighbor, dist] : measurements.neighbors(owner)) {
    (void)dist;
    map.members.push_back(neighbor);
  }
  std::sort(map.members.begin() + 1, map.members.end());

  // Sub-problem over the member set: every measurement among members.
  MeasurementSet local(map.members.size());
  double max_dist = 1.0;
  for (std::size_t a = 0; a < map.members.size(); ++a) {
    for (std::size_t b = a + 1; b < map.members.size(); ++b) {
      const auto edge = measurements.between(map.members[a], map.members[b]);
      if (!edge) continue;
      local.add(static_cast<NodeId>(a), static_cast<NodeId>(b), edge->distance_m, edge->weight);
      max_dist = std::max(max_dist, edge->distance_m);
    }
  }

  LssOptions local_options = options;
  local_options.init_box_m = 2.0 * max_dist;  // local span, not the whole field
  const LssResult fit = localize_lss(local, local_options, rng);
  map.coords = fit.positions;  // local node a <-> members[a], so coords stay parallel
  map.stress = fit.stress;
  return map;
}

}  // namespace resloc::core
