#include "core/dv_hop.hpp"

#include <deque>
#include <limits>

namespace resloc::core {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

/// BFS hop counts from `source` over the measurement connectivity graph.
std::vector<std::size_t> hop_counts_from(NodeId source, const MeasurementSet& measurements,
                                         std::size_t n, std::size_t max_hops) {
  std::vector<std::size_t> hops(n, kUnreachable);
  std::deque<NodeId> frontier{source};
  hops[source] = 0;
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    if (max_hops > 0 && hops[current] >= max_hops) continue;
    for (const auto& [neighbor, dist] : measurements.neighbors(current)) {
      (void)dist;
      if (hops[neighbor] != kUnreachable) continue;
      hops[neighbor] = hops[current] + 1;
      frontier.push_back(neighbor);
    }
  }
  return hops;
}

}  // namespace

DvHopResult localize_dv_hop(const Deployment& deployment, const MeasurementSet& measurements,
                            const DvHopOptions& options, resloc::math::Rng& rng) {
  const std::size_t n = deployment.size();
  const std::size_t a = deployment.anchors.size();
  DvHopResult out;
  out.result.positions.assign(n, std::nullopt);
  out.hop_counts.assign(n, std::vector<std::size_t>(a, kUnreachable));
  out.anchor_hop_distance.assign(a, 0.0);

  // Phase 1: each anchor floods hop counts.
  std::vector<std::vector<std::size_t>> from_anchor(a);
  for (std::size_t k = 0; k < a; ++k) {
    from_anchor[k] = hop_counts_from(deployment.anchors[k], measurements, n, options.max_hops);
    for (std::size_t node = 0; node < n; ++node) out.hop_counts[node][k] = from_anchor[k][node];
  }

  // Phase 2: each anchor computes its distance-per-hop correction from the
  // true distances and hop counts to the other anchors.
  for (std::size_t k = 0; k < a; ++k) {
    double total_distance = 0.0;
    std::size_t total_hops = 0;
    for (std::size_t m = 0; m < a; ++m) {
      if (m == k) continue;
      const std::size_t hops = from_anchor[k][deployment.anchors[m]];
      if (hops == kUnreachable || hops == 0) continue;
      total_distance += resloc::math::distance(deployment.positions[deployment.anchors[k]],
                                               deployment.positions[deployment.anchors[m]]);
      total_hops += hops;
    }
    out.anchor_hop_distance[k] =
        total_hops > 0 ? total_distance / static_cast<double>(total_hops) : 0.0;
  }

  // Phase 3: each non-anchor estimates distances to anchors using the
  // correction of its *nearest* anchor (fewest hops) -- the APS rule -- and
  // multilaterates.
  for (NodeId node = 0; node < n; ++node) {
    if (deployment.is_anchor(node)) {
      out.result.positions[node] = deployment.positions[node];
      continue;
    }
    // Nearest anchor's correction.
    std::size_t best_hops = kUnreachable;
    double correction = 0.0;
    for (std::size_t k = 0; k < a; ++k) {
      const std::size_t hops = out.hop_counts[node][k];
      if (hops < best_hops && out.anchor_hop_distance[k] > 0.0) {
        best_hops = hops;
        correction = out.anchor_hop_distance[k];
      }
    }
    if (best_hops == kUnreachable || correction <= 0.0) continue;

    std::vector<AnchorObservation> observations;
    for (std::size_t k = 0; k < a; ++k) {
      const std::size_t hops = out.hop_counts[node][k];
      if (hops == kUnreachable || hops == 0) continue;
      observations.push_back({deployment.positions[deployment.anchors[k]],
                              static_cast<double>(hops) * correction, 1.0});
    }
    out.result.positions[node] = multilaterate(observations, options.fit, rng);
  }
  return out;
}

}  // namespace resloc::core
