// DV-hop localization baseline (Niculescu & Nath's APS, described in the
// paper's Related Work, Section 2).
//
// "DV-hop ... maintains minimum hop counts to anchor nodes for each node and
// computes average distance per hop. ... The DV-hop and DV-distance
// techniques work well only for isotropic networks with uniform node
// density." Implemented here as a comparison baseline: the ablation bench
// demonstrates exactly that isotropy sensitivity against LSS.
//
// Algorithm: anchors flood hop counts through the connectivity graph (an
// edge = any pair with a range measurement); each anchor computes its
// distance-per-hop correction from true distances to the other anchors; each
// non-anchor converts hop counts to distance estimates using the correction
// of its nearest anchor and multilaterates.
#pragma once

#include "core/multilateration.hpp"
#include "core/types.hpp"
#include "math/rng.hpp"

namespace resloc::core {

/// DV-hop configuration.
struct DvHopOptions {
  /// Maximum hop radius considered (flood TTL); 0 = unlimited.
  std::size_t max_hops = 0;
  /// Position fit settings (the final multilateration step).
  MultilaterationOptions fit;
};

/// Per-run diagnostics.
struct DvHopResult {
  LocalizationResult result;
  /// hop_counts[node][k] = min hops from node to deployment.anchors[k]
  /// (SIZE_MAX when unreachable).
  std::vector<std::vector<std::size_t>> hop_counts;
  /// Average distance-per-hop correction computed by each anchor.
  std::vector<double> anchor_hop_distance;
};

/// Runs DV-hop over the connectivity implied by `measurements` (hop = any
/// measured pair). Anchor positions come from the deployment.
DvHopResult localize_dv_hop(const Deployment& deployment, const MeasurementSet& measurements,
                            const DvHopOptions& options, resloc::math::Rng& rng);

}  // namespace resloc::core
