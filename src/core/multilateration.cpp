#include "core/multilateration.hpp"

#include <cmath>

namespace resloc::core {

using resloc::math::Vec2;

namespace {

/// Weighted range-residual objective and gradient for one node.
resloc::math::Objective make_objective(const std::vector<AnchorObservation>& anchors) {
  return [&anchors](const std::vector<double>& x, std::vector<double>& grad) {
    const Vec2 p{x[0], x[1]};
    double error = 0.0;
    grad[0] = 0.0;
    grad[1] = 0.0;
    for (const AnchorObservation& a : anchors) {
      const Vec2 delta = p - a.position;
      const double dist = std::max(delta.norm(), 1e-9);
      const double residual = dist - a.distance_m;
      error += a.weight * residual * residual;
      const double scale = 2.0 * a.weight * residual / dist;
      grad[0] += scale * delta.x;
      grad[1] += scale * delta.y;
    }
    return error;
  };
}

/// Initial guess: weighted centroid of anchors, nudged toward the anchor
/// with the smallest measured distance (the node is near that anchor).
Vec2 initial_guess(const std::vector<AnchorObservation>& anchors) {
  Vec2 centroid;
  double total = 0.0;
  const AnchorObservation* nearest = &anchors.front();
  for (const AnchorObservation& a : anchors) {
    centroid += a.position * a.weight;
    total += a.weight;
    if (a.distance_m < nearest->distance_m) nearest = &a;
  }
  centroid /= total;
  return (centroid + nearest->position) / 2.0;
}

}  // namespace

std::optional<Vec2> multilaterate(const std::vector<AnchorObservation>& anchors,
                                  const MultilaterationOptions& options,
                                  resloc::math::Rng& rng) {
  if (anchors.size() < options.min_anchors) return std::nullopt;

  const std::vector<AnchorObservation>* used = &anchors;
  std::vector<AnchorObservation> filtered;
  if (options.use_intersection_check) {
    const IntersectionCheckResult check =
        check_intersection_consistency(anchors, options.intersection);
    if (options.use_intersection_mode_estimate &&
        check.consistent_anchors.size() >= options.mode_min_anchors &&
        !check.cluster.empty()) {
      return check.cluster_centroid;
    }
    filtered.reserve(check.consistent_anchors.size());
    for (std::size_t idx : check.consistent_anchors) filtered.push_back(anchors[idx]);
    if (filtered.size() < options.min_anchors) return std::nullopt;
    used = &filtered;
  }

  const auto objective = make_objective(*used);
  const Vec2 guess = initial_guess(*used);
  const auto result = resloc::math::minimize_with_restarts(
      objective, {guess.x, guess.y}, options.gd, options.restarts, rng);
  return Vec2{result.x[0], result.x[1]};
}

LocalizationResult localize_by_multilateration(const Deployment& deployment,
                                               const MeasurementSet& measurements,
                                               const MultilaterationOptions& options,
                                               resloc::math::Rng& rng) {
  const std::size_t n = deployment.size();
  LocalizationResult result;
  result.positions.assign(n, std::nullopt);
  result.status.assign(n, LocalizationStatus::kUnlocalized);

  // Anchor table: position + weight (1 for true anchors; progressive anchors
  // join with reduced weight).
  std::vector<std::optional<Vec2>> anchor_pos(n);
  std::vector<double> anchor_weight(n, 0.0);
  for (NodeId a : deployment.anchors) {
    anchor_pos[a] = deployment.positions[a];
    anchor_weight[a] = 1.0;
    result.positions[a] = deployment.positions[a];
    result.status[a] = LocalizationStatus::kOk;
  }

  // Usable anchor observations for `node`: anchored neighbors with a finite
  // measured distance. Non-finite distances (injected corruption) would
  // poison the least-squares objective, so they are dropped here -- with
  // faults off every distance is finite and the filter is a no-op.
  const auto collect_observations = [&](NodeId node) {
    std::vector<AnchorObservation> observations;
    for (const auto& [neighbor, dist] : measurements.neighbors(node)) {
      if (!anchor_pos[neighbor].has_value()) continue;
      if (!std::isfinite(dist)) continue;
      observations.push_back({*anchor_pos[neighbor], dist, anchor_weight[neighbor]});
    }
    return observations;
  };

  const int rounds = options.progressive ? options.max_progressive_rounds : 1;
  for (int round = 0; round < rounds; ++round) {
    bool any_localized = false;
    // Collect this round's results first so in-round order doesn't matter.
    std::vector<std::pair<NodeId, Vec2>> newly_localized;

    for (NodeId node = 0; node < n; ++node) {
      if (result.positions[node].has_value()) continue;  // anchors + done

      const auto fit = multilaterate(collect_observations(node), options, rng);
      if (fit) {
        newly_localized.emplace_back(node, *fit);
        any_localized = true;
      }
    }

    for (const auto& [node, position] : newly_localized) {
      result.positions[node] = position;
      result.status[node] = LocalizationStatus::kOk;
      if (options.progressive) {
        anchor_pos[node] = position;
        anchor_weight[node] = options.progressive_weight;
      }
    }
    if (!any_localized) break;
  }

  // Degraded pass: after full-confidence localization settles, nodes that
  // remain unplaced but see at least `degraded_min_anchors` usable anchors
  // get an under-constrained fix, flagged kDegraded. Runs last so a node that
  // could have been fully localized in a later progressive round is never
  // demoted; degraded fixes never join the anchor pool.
  if (options.allow_degraded) {
    MultilaterationOptions degraded = options;
    degraded.min_anchors = options.degraded_min_anchors;
    degraded.use_intersection_check = false;
    for (NodeId node = 0; node < n; ++node) {
      if (result.positions[node].has_value()) continue;
      const auto observations = collect_observations(node);
      if (observations.size() < options.degraded_min_anchors) continue;
      const auto fit = multilaterate(observations, degraded, rng);
      if (fit) {
        result.positions[node] = *fit;
        result.status[node] = LocalizationStatus::kDegraded;
      }
    }
  }
  return result;
}

double average_anchors_per_node(const Deployment& deployment,
                                const MeasurementSet& measurements) {
  std::size_t non_anchors = 0;
  std::size_t anchor_links = 0;
  for (NodeId node = 0; node < deployment.size(); ++node) {
    if (deployment.is_anchor(node)) continue;
    ++non_anchors;
    for (const auto& [neighbor, dist] : measurements.neighbors(node)) {
      (void)dist;
      if (deployment.is_anchor(neighbor)) ++anchor_links;
    }
  }
  if (non_anchors == 0) return 0.0;
  return static_cast<double>(anchor_links) / static_cast<double>(non_anchors);
}

}  // namespace resloc::core
