#include "core/types.hpp"

#include <algorithm>

namespace resloc::core {

bool Deployment::is_anchor(NodeId id) const {
  return std::find(anchors.begin(), anchors.end(), id) != anchors.end();
}

std::uint64_t MeasurementSet::key(NodeId i, NodeId j) {
  const NodeId lo = std::min(i, j);
  const NodeId hi = std::max(i, j);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void MeasurementSet::set_node_count(std::size_t n) { node_count_ = std::max(node_count_, n); }

void MeasurementSet::reserve(std::size_t edge_count) {
  edges_.reserve(edge_count);
  index_.reserve(edge_count);
  adjacency_.reserve(node_count_);
}

void MeasurementSet::add(NodeId i, NodeId j, double distance_m, double weight) {
  if (i == j) return;
  DistanceEdge edge;
  edge.i = std::min(i, j);
  edge.j = std::max(i, j);
  edge.distance_m = distance_m;
  edge.weight = weight;

  const std::uint64_t k = key(i, j);
  const auto it = index_.find(k);
  if (it == index_.end()) {
    const std::size_t idx = edges_.size();
    index_[k] = idx;
    edges_.push_back(edge);
    if (adjacency_.size() <= edge.j) adjacency_.resize(static_cast<std::size_t>(edge.j) + 1);
    adjacency_[edge.i].emplace_back(edge.j, idx);
    adjacency_[edge.j].emplace_back(edge.i, idx);
  } else {
    // Replacement: the edge keeps its slot, so the adjacency entries pointing
    // at it stay valid.
    edges_[it->second] = edge;
  }
  node_count_ = std::max(node_count_, static_cast<std::size_t>(edge.j) + 1);
}

std::optional<DistanceEdge> MeasurementSet::between(NodeId i, NodeId j) const {
  const auto it = index_.find(key(i, j));
  if (it == index_.end()) return std::nullopt;
  return edges_[it->second];
}

std::vector<std::pair<NodeId, double>> MeasurementSet::neighbors(NodeId id) const {
  std::vector<std::pair<NodeId, double>> out;
  if (id >= adjacency_.size()) return out;
  out.reserve(adjacency_[id].size());
  for (const auto& [neighbor, edge_index] : adjacency_[id]) {
    out.emplace_back(neighbor, edges_[edge_index].distance_m);
  }
  return out;
}

double MeasurementSet::average_degree() const {
  if (node_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) / static_cast<double>(node_count_);
}

const char* localization_status_name(LocalizationStatus status) {
  switch (status) {
    case LocalizationStatus::kUnlocalized: return "unlocalized";
    case LocalizationStatus::kOk: return "ok";
    case LocalizationStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

LocalizationStatus LocalizationResult::status_of(NodeId id) const {
  if (id < status.size()) return status[id];
  const bool placed = id < positions.size() && positions[id].has_value();
  return placed ? LocalizationStatus::kOk : LocalizationStatus::kUnlocalized;
}

std::size_t LocalizationResult::localized_count() const {
  std::size_t n = 0;
  for (const auto& p : positions) {
    if (p.has_value()) ++n;
  }
  return n;
}

std::size_t LocalizationResult::degraded_count() const {
  std::size_t n = 0;
  for (const LocalizationStatus s : status) {
    if (s == LocalizationStatus::kDegraded) ++n;
  }
  return n;
}

}  // namespace resloc::core
