// Shared types of the localization library: deployments, sparse weighted
// distance measurements, and localization results.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "math/vec2.hpp"

namespace resloc::core {

using NodeId = std::uint32_t;

/// A physical deployment: ground-truth node positions (used by simulation and
/// evaluation only -- the algorithms never read them) and the anchor subset.
struct Deployment {
  std::vector<resloc::math::Vec2> positions;
  std::vector<NodeId> anchors;  ///< ids of nodes that know their position

  std::size_t size() const { return positions.size(); }
  bool is_anchor(NodeId id) const;
};

/// One symmetric distance observation with a confidence weight (the paper's
/// w_ij; Section 4.2.1 suggests statistical entities such as the standard
/// deviation of repeated measurements as weights).
struct DistanceEdge {
  NodeId i = 0;
  NodeId j = 0;  ///< i < j always
  double distance_m = 0.0;
  double weight = 1.0;
};

/// A sparse set of symmetric distance measurements -- the D (subset of
/// D_full) that LSS minimizes over. At most one edge per unordered pair;
/// re-adding replaces.
class MeasurementSet {
 public:
  MeasurementSet() = default;
  explicit MeasurementSet(std::size_t node_count) : node_count_(node_count) {}

  /// Adds (or replaces) the measurement between i and j. Grows node_count as
  /// needed. Self-edges are ignored.
  void add(NodeId i, NodeId j, double distance_m, double weight = 1.0);

  /// The measurement between i and j, if present.
  std::optional<DistanceEdge> between(NodeId i, NodeId j) const;

  bool has(NodeId i, NodeId j) const { return between(i, j).has_value(); }

  const std::vector<DistanceEdge>& edges() const { return edges_; }
  std::size_t edge_count() const { return edges_.size(); }

  std::size_t node_count() const { return node_count_; }
  /// Grows the logical node count to at least `n`. Grow-only by design: ids
  /// may already appear in stored edges, so a shrink would dangle them --
  /// requests smaller than the current count are silently ignored, they do
  /// not truncate. (The constructor argument, by contrast, sets the initial
  /// count exactly.)
  void set_node_count(std::size_t n);

  /// Pre-sizes the edge storage and index for `edge_count` measurements.
  /// Bulk producers (the campaign's filtered set, the synthetic generators)
  /// know their size up front; reserving keeps add() from reallocating the
  /// edge vector and rehashing the index mid-fill.
  void reserve(std::size_t edge_count);

  /// Neighbors of `id`: every node with a measurement to it, with distances.
  /// Served from a per-node adjacency index in O(degree), in edge insertion
  /// order -- the solvers call this per node, which a linear scan of all
  /// edges would turn into O(n * |E|) at campaign scale.
  std::vector<std::pair<NodeId, double>> neighbors(NodeId id) const;

  /// Number of measured edges incident to `id` (O(1)).
  std::size_t degree(NodeId id) const {
    return id < adjacency_.size() ? adjacency_[id].size() : 0;
  }

  /// Average number of measured edges per node (2|E| / n).
  double average_degree() const;

 private:
  static std::uint64_t key(NodeId i, NodeId j);

  std::vector<DistanceEdge> edges_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> edge index
  /// Per-node (neighbor id, index into edges_), appended at insertion so the
  /// order neighbors() reports matches the historical edge scan.
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> adjacency_;
  std::size_t node_count_ = 0;
};

/// Per-node localization quality. The degradation contract of the fault
/// work: a solver that cannot produce a full-confidence fix reports a
/// flagged status instead of silent garbage (or a thrown trial).
enum class LocalizationStatus : std::uint8_t {
  kUnlocalized = 0,  ///< no position estimate for this node
  kOk = 1,           ///< full-confidence fix (or a true anchor)
  kDegraded = 2,     ///< low-confidence fix (e.g. under-constrained solve)
};

/// Stable report name ("unlocalized", "ok", "degraded").
const char* localization_status_name(LocalizationStatus status);

/// Output of a localization algorithm: estimated position per node, or
/// nullopt where the algorithm could not localize the node.
struct LocalizationResult {
  std::vector<std::optional<resloc::math::Vec2>> positions;
  /// Per-node status, aligned with `positions`. Solvers that predate the
  /// status contract may leave it empty; status_of() then derives kOk /
  /// kUnlocalized from the position alone.
  std::vector<LocalizationStatus> status;

  /// The node's status, derived from `positions` when `status` is empty or
  /// short (a placed node is kOk, an unplaced one kUnlocalized).
  LocalizationStatus status_of(NodeId id) const;

  std::size_t localized_count() const;
  /// Nodes placed with a degraded-confidence fix.
  std::size_t degraded_count() const;
  std::size_t size() const { return positions.size(); }
};

}  // namespace resloc::core
