#include "core/classical_mds.hpp"

#include <algorithm>
#include <cmath>

#include "math/jacobi_eigen.hpp"

namespace resloc::core {

using resloc::math::Matrix;
using resloc::math::Vec2;

std::optional<MdsResult> classical_mds(const Matrix& distances) {
  if (distances.rows() == 0 || distances.rows() != distances.cols()) return std::nullopt;
  const std::size_t n = distances.rows();

  // Squared distances, double-centered: B = -1/2 J D^2 J.
  Matrix squared(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      squared(r, c) = distances(r, c) * distances(r, c);
    }
  }
  const Matrix b = squared.double_centered();
  const auto eigen = resloc::math::jacobi_eigen_decomposition(b);

  MdsResult result;
  result.eigenvalues = eigen.eigenvalues;
  result.positions.resize(n);
  // Coordinates: v_i * sqrt(lambda_i) for the top two eigenpairs.
  const double l1 = std::max(eigen.eigenvalues.size() > 0 ? eigen.eigenvalues[0] : 0.0, 0.0);
  const double l2 = std::max(eigen.eigenvalues.size() > 1 ? eigen.eigenvalues[1] : 0.0, 0.0);
  const double s1 = std::sqrt(l1);
  const double s2 = std::sqrt(l2);
  for (std::size_t i = 0; i < n; ++i) {
    result.positions[i] = Vec2{eigen.eigenvectors(i, 0) * s1, eigen.eigenvectors(i, 1) * s2};
  }

  double positive_mass = 0.0;
  for (double l : eigen.eigenvalues) positive_mass += std::max(l, 0.0);
  result.planarity = positive_mass > 0.0 ? (l1 + l2) / positive_mass : 0.0;
  return result;
}

Matrix shortest_path_completion(const MeasurementSet& measurements, double unreachable_value) {
  const std::size_t n = measurements.node_count();
  Matrix dist(n, n, unreachable_value);
  for (std::size_t i = 0; i < n; ++i) dist(i, i) = 0.0;
  for (const DistanceEdge& e : measurements.edges()) {
    // Keep the smaller value if duplicate paths disagree.
    dist(e.i, e.j) = std::min(dist(e.i, e.j), e.distance_m);
    dist(e.j, e.i) = dist(e.i, e.j);
  }
  // Floyd-Warshall.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist(i, k);
      if (dik >= unreachable_value) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double candidate = dik + dist(k, j);
        if (candidate < dist(i, j)) dist(i, j) = candidate;
      }
    }
  }
  return dist;
}

std::optional<MdsResult> mds_map(const MeasurementSet& measurements) {
  if (measurements.node_count() == 0) return std::nullopt;
  return classical_mds(shortest_path_completion(measurements));
}

}  // namespace resloc::core
