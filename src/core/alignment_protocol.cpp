#include "core/alignment_protocol.hpp"

#include <cmath>
#include <map>
#include <memory>

namespace resloc::core {

using resloc::math::Transform2D;
using resloc::math::Vec2;
using resloc::net::Message;
using resloc::net::Network;
using resloc::net::Reception;

namespace {

constexpr int kMapMessage = 1;
constexpr int kAlignMessage = 2;

/// Shared state the per-node apps report into (the "experiment observer").
struct ProtocolState {
  std::vector<std::optional<Vec2>> computed;
  std::size_t map_broadcasts = 0;
  std::size_t align_broadcasts = 0;
};

/// Serializes a local map into a payload: [count, (id, x, y)...].
std::vector<double> encode_map(const LocalMap& map) {
  std::vector<double> payload;
  payload.reserve(1 + 3 * map.members.size());
  payload.push_back(static_cast<double>(map.members.size()));
  for (std::size_t i = 0; i < map.members.size(); ++i) {
    payload.push_back(static_cast<double>(map.members[i]));
    payload.push_back(map.coords[i].x);
    payload.push_back(map.coords[i].y);
  }
  return payload;
}

LocalMap decode_map(NodeId owner, const std::vector<double>& payload) {
  LocalMap map;
  map.owner = owner;
  const auto count = static_cast<std::size_t>(payload.at(0));
  for (std::size_t i = 0; i < count; ++i) {
    map.members.push_back(static_cast<NodeId>(payload.at(1 + 3 * i)));
    map.coords.push_back(Vec2{payload.at(2 + 3 * i), payload.at(3 + 3 * i)});
  }
  return map;
}

class AlignmentApp : public resloc::net::NodeApp {
 public:
  AlignmentApp(LocalMap own_map, bool is_root, const DistributedLssOptions& options,
               ProtocolState& state, resloc::math::Rng rng)
      : own_map_(std::move(own_map)),
        is_root_(is_root),
        options_(options),
        state_(state),
        rng_(std::move(rng)) {}

  void on_start(Network& net, resloc::net::NodeId self) override {
    // Phase A: stagger local-map broadcasts so the shared medium is not
    // saturated at t=0 (real motes would CSMA; staggering is deterministic).
    net.schedule_local(self, 0.01 * (static_cast<double>(self) + 1.0), [this, &net, self]() {
      Message msg;
      msg.kind = kMapMessage;
      msg.payload = encode_map(own_map_);
      ++state_.map_broadcasts;
      net.broadcast(self, msg);
    });

    if (is_root_) {
      // Phase B: after the map exchange settles, the root initiates the
      // alignment flood with its own frame as the global frame.
      net.schedule_local(self, 5.0, [this, &net, self]() {
        aligned_ = true;
        const auto own = own_map_.coord_of(static_cast<NodeId>(self));
        if (own) state_.computed[self] = *own;
        broadcast_alignment(net, self, Vec2{0.0, 0.0}, Vec2{1.0, 0.0}, Vec2{0.0, 1.0});
      });
    }
  }

  void on_message(Network& net, resloc::net::NodeId self, const Reception& reception) override {
    const Message& msg = reception.message;
    if (msg.kind == kMapMessage) {
      handle_map(static_cast<NodeId>(msg.sender), msg.payload);
    } else if (msg.kind == kAlignMessage && !aligned_) {
      handle_alignment(net, self, static_cast<NodeId>(msg.sender), msg.payload);
    }
  }

 private:
  void handle_map(NodeId sender, const std::vector<double>& payload) {
    const LocalMap sender_map = decode_map(sender, payload);
    // Only neighbors (nodes in our own map) matter for alignment.
    if (!own_map_.coord_of(sender).has_value() && sender != own_map_.owner) return;

    const std::vector<NodeId> shared = sender_map.shared_members(own_map_);
    if (shared.size() < options_.min_shared_members) return;

    std::vector<Vec2> source;  // sender frame
    std::vector<Vec2> target;  // own frame
    for (NodeId m : shared) {
      source.push_back(*sender_map.coord_of(m));
      target.push_back(*own_map_.coord_of(m));
    }
    const TransformEstimate estimate =
        estimate_transform(source, target, options_.method, rng_);
    if (!estimate.valid) return;
    const double rmse =
        std::sqrt(estimate.sum_squared_error / static_cast<double>(shared.size()));
    if (rmse > options_.max_transform_rmse_m) return;
    from_sender_[sender] = estimate.transform;
  }

  void handle_alignment(Network& net, resloc::net::NodeId self, NodeId sender,
                        const std::vector<double>& payload) {
    const auto it = from_sender_.find(sender);
    if (it == from_sender_.end()) return;  // no transform for this sender

    const Vec2 o{payload.at(0), payload.at(1)};
    const Vec2 x{payload.at(2), payload.at(3)};
    const Vec2 y{payload.at(4), payload.at(5)};

    // Map the global origin (a point) and the axis directions (vectors) into
    // our own frame.
    const Transform2D& t = it->second;
    const Vec2 o_hat = t.apply(o);
    const Vec2 x_hat = t.apply_linear(x);
    const Vec2 y_hat = t.apply_linear(y);

    aligned_ = true;
    const auto own = own_map_.coord_of(static_cast<NodeId>(self));
    if (own) {
      const Vec2 p = *own - o_hat;
      state_.computed[self] = Vec2{p.dot(x_hat), p.dot(y_hat)};
    }
    broadcast_alignment(net, self, o_hat, x_hat, y_hat);
  }

  void broadcast_alignment(Network& net, resloc::net::NodeId self, Vec2 o, Vec2 x, Vec2 y) {
    Message msg;
    msg.kind = kAlignMessage;
    msg.payload = {o.x, o.y, x.x, x.y, y.x, y.y};
    ++state_.align_broadcasts;
    net.broadcast(self, msg);
  }

  LocalMap own_map_;
  bool is_root_;
  DistributedLssOptions options_;
  ProtocolState& state_;
  resloc::math::Rng rng_;
  std::map<NodeId, Transform2D> from_sender_;
  bool aligned_ = false;
};

}  // namespace

AlignmentProtocolResult run_alignment_protocol(const std::vector<LocalMap>& maps, NodeId root,
                                               const std::vector<Vec2>& true_positions,
                                               const DistributedLssOptions& options,
                                               const resloc::net::RadioParams& radio,
                                               std::uint64_t seed) {
  const std::size_t n = maps.size();
  ProtocolState state;
  state.computed.assign(n, std::nullopt);

  resloc::math::Rng master(seed);
  Network net(radio, master.split());
  for (NodeId id = 0; id < n; ++id) {
    net.add_node(true_positions[id],
                 std::make_unique<AlignmentApp>(maps[id], id == root, options, state,
                                                master.split()));
  }
  net.start();
  net.run();

  AlignmentProtocolResult out;
  out.result.positions = std::move(state.computed);
  out.map_broadcasts = state.map_broadcasts;
  out.align_broadcasts = state.align_broadcasts;
  out.messages_delivered = net.deliveries();
  return out;
}

}  // namespace resloc::core
