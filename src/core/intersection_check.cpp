#include "core/intersection_check.hpp"

#include <algorithm>

namespace resloc::core {

using resloc::math::Circle;
using resloc::math::Vec2;

IntersectionCheckResult check_intersection_consistency(
    const std::vector<AnchorObservation>& anchors, const IntersectionCheckOptions& options) {
  IntersectionCheckResult result;
  const std::size_t n = anchors.size();

  // All pairwise intersection points, remembering which anchors produced each.
  std::vector<std::pair<std::size_t, std::size_t>> owners;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const Circle ca{anchors[a].position, anchors[a].distance_m};
      const Circle cb{anchors[b].position, anchors[b].distance_m};
      for (const Vec2& p : resloc::math::intersect(ca, cb)) {
        result.intersection_points.push_back(p);
        owners.emplace_back(a, b);
      }
    }
  }

  if (result.intersection_points.empty()) {
    // No circles intersect at all (wild measurements or disjoint geometry):
    // keep everything, let least squares sort it out.
    result.consistent_anchors.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.consistent_anchors[i] = i;
    return result;
  }

  result.cluster =
      resloc::math::largest_cluster(result.intersection_points, options.cluster_radius_m);
  std::vector<Vec2> cluster_points;
  cluster_points.reserve(result.cluster.size());
  for (std::size_t idx : result.cluster) cluster_points.push_back(result.intersection_points[idx]);
  result.cluster_centroid = resloc::math::centroid(cluster_points);

  // An anchor survives when one of its intersection points sits inside or
  // near the dominant cluster.
  std::vector<bool> keep(n, false);
  const double keep_r_sq = options.anchor_keep_radius_m * options.anchor_keep_radius_m;
  for (std::size_t point_idx = 0; point_idx < result.intersection_points.size(); ++point_idx) {
    const Vec2& p = result.intersection_points[point_idx];
    bool near_cluster = false;
    for (const Vec2& c : cluster_points) {
      if (resloc::math::distance_sq(p, c) <= keep_r_sq) {
        near_cluster = true;
        break;
      }
    }
    if (near_cluster) {
      keep[owners[point_idx].first] = true;
      keep[owners[point_idx].second] = true;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) result.consistent_anchors.push_back(i);
  }
  if (result.consistent_anchors.size() < options.min_anchors) {
    // Too few survivors: scarce data beats suspicious data (paper's caveat).
    result.consistent_anchors.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.consistent_anchors[i] = i;
  }
  return result;
}

}  // namespace resloc::core
