// Step 1 of the distributed algorithm (Section 4.3.1): local localization.
//
// "Each node collects distance measurements to its neighbors as well as
// amongst them. ... each node uses the LSS localization to find a
// configuration of itself and its neighbors in a local relative coordinate
// system."
#pragma once

#include <optional>
#include <vector>

#include "core/lss.hpp"
#include "core/types.hpp"
#include "math/rng.hpp"
#include "math/vec2.hpp"

namespace resloc::core {

/// A node-centric relative map: the owner and its measurement neighbors with
/// coordinates in an arbitrary local frame.
struct LocalMap {
  NodeId owner = 0;
  std::vector<NodeId> members;            ///< owner first, then neighbors
  std::vector<resloc::math::Vec2> coords; ///< parallel to members
  double stress = 0.0;                    ///< LSS stress of the local fit

  /// Coordinates of `id` in this map, if `id` is a member.
  std::optional<resloc::math::Vec2> coord_of(NodeId id) const;

  /// Members shared with another map.
  std::vector<NodeId> shared_members(const LocalMap& other) const;
};

/// Builds the local map of `owner` from the global measurement set:
/// membership is owner + direct neighbors; edges are all measurements among
/// members. The local frame is scaled like the measurements but otherwise
/// arbitrary.
LocalMap build_local_map(NodeId owner, const MeasurementSet& measurements,
                         const LssOptions& options, resloc::math::Rng& rng);

}  // namespace resloc::core
