#include "core/transform_estimation.hpp"

#include <cmath>

#include "math/procrustes.hpp"

namespace resloc::core {

using resloc::math::Transform2D;
using resloc::math::Vec2;

TransformEstimate estimate_transform_closed_form(const std::vector<Vec2>& source,
                                                 const std::vector<Vec2>& target) {
  TransformEstimate estimate;
  const auto fit = resloc::math::fit_rigid(source, target, /*allow_reflection=*/true);
  if (!fit.valid) return estimate;
  estimate.transform = fit.transform;
  estimate.sum_squared_error = fit.sum_squared_error;
  estimate.valid = true;
  return estimate;
}

namespace {

/// E_f(theta, tx, ty) and its gradient for one reflection hypothesis.
resloc::math::Objective make_objective(const std::vector<Vec2>& source,
                                       const std::vector<Vec2>& target, bool reflect) {
  return [&source, &target, reflect](const std::vector<double>& p, std::vector<double>& grad) {
    const double theta = p[0];
    const Vec2 t{p[1], p[2]};
    const Transform2D transform(theta, reflect, t);
    const double f = reflect ? -1.0 : 1.0;
    const double c = std::cos(theta);
    const double s = std::sin(theta);

    double error = 0.0;
    grad[0] = grad[1] = grad[2] = 0.0;
    for (std::size_t i = 0; i < source.size(); ++i) {
      const Vec2 mapped = transform.apply(source[i]);
      const Vec2 r = mapped - target[i];
      error += r.norm_sq();
      // d(mapped)/dtheta with the paper's matrix convention:
      //   x = u c + v f s + tx -> dx/dtheta = -u s + v f c
      //   y = -u s + v f c + ty -> dy/dtheta = -u c - v f s
      const double u = source[i].x;
      const double v = source[i].y;
      const double dx_dtheta = -u * s + v * f * c;
      const double dy_dtheta = -u * c - v * f * s;
      grad[0] += 2.0 * (r.x * dx_dtheta + r.y * dy_dtheta);
      grad[1] += 2.0 * r.x;
      grad[2] += 2.0 * r.y;
    }
    return error;
  };
}

}  // namespace

TransformEstimate estimate_transform_exact(const std::vector<Vec2>& source,
                                           const std::vector<Vec2>& target,
                                           resloc::math::Rng& rng) {
  TransformEstimate best;
  if (source.empty() || source.size() != target.size()) return best;

  resloc::math::GradientDescentOptions gd;
  gd.step_size = 1e-3;
  gd.max_iterations = 3000;
  gd.gradient_tolerance = 1e-10;
  gd.relative_tolerance = 1e-14;
  resloc::math::RestartOptions restarts{.rounds = 4, .perturbation_stddev = 0.8};

  for (const bool reflect : {false, true}) {
    const auto objective = make_objective(source, target, reflect);
    // Seed translation with the centroid displacement, rotation at zero.
    Vec2 mu_src, mu_dst;
    for (const Vec2& v : source) mu_src += v;
    for (const Vec2& v : target) mu_dst += v;
    mu_src /= static_cast<double>(source.size());
    mu_dst /= static_cast<double>(target.size());
    const Vec2 t0 = mu_dst - mu_src;

    const auto result = resloc::math::minimize_with_restarts(
        objective, {0.0, t0.x, t0.y}, gd, restarts, rng);
    if (!best.valid || result.error < best.sum_squared_error) {
      best.transform = Transform2D(result.x[0], reflect, Vec2{result.x[1], result.x[2]});
      best.sum_squared_error = result.error;
      best.valid = true;
    }
  }
  return best;
}

TransformEstimate estimate_transform(const std::vector<Vec2>& source,
                                     const std::vector<Vec2>& target, TransformMethod method,
                                     resloc::math::Rng& rng) {
  switch (method) {
    case TransformMethod::kExactMinimization:
      return estimate_transform_exact(source, target, rng);
    case TransformMethod::kClosedForm:
    default:
      return estimate_transform_closed_form(source, target);
  }
}

}  // namespace resloc::core
