#include "core/distributed_lss.hpp"

#include <cmath>
#include <deque>

namespace resloc::core {

using resloc::math::Transform2D;
using resloc::math::Vec2;

DistributedLssResult localize_distributed(const MeasurementSet& measurements, NodeId root,
                                          const DistributedLssOptions& options,
                                          resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  std::vector<LocalMap> maps;
  maps.reserve(n);
  for (NodeId node = 0; node < n; ++node) {
    maps.push_back(build_local_map(node, measurements, options.local_lss, rng));
  }
  return align_local_maps(std::move(maps), root, options, rng);
}

DistributedLssResult align_local_maps(std::vector<LocalMap> maps, NodeId root,
                                      const DistributedLssOptions& options,
                                      resloc::math::Rng& rng) {
  DistributedLssResult out;
  const std::size_t n = maps.size();
  out.result.positions.assign(n, std::nullopt);
  out.to_root.assign(n, std::nullopt);

  if (root >= n) {
    out.maps = std::move(maps);
    return out;
  }

  // BFS from the root over the neighbor relation. A neighbor of `node` is any
  // other map owner appearing in node's local map (i.e. a direct
  // measurement), which is exactly who the mote protocol exchanges maps with.
  out.to_root[root] = Transform2D{};  // identity: root frame = global frame
  std::deque<NodeId> frontier{root};
  out.alignment_order.push_back(root);

  while (!frontier.empty()) {
    const NodeId parent = frontier.front();
    frontier.pop_front();
    const LocalMap& parent_map = maps[parent];

    for (std::size_t i = 1; i < parent_map.members.size(); ++i) {
      const NodeId child = parent_map.members[i];
      if (child >= n || out.to_root[child].has_value()) continue;
      const LocalMap& child_map = maps[child];
      if (child_map.owner != child) continue;

      // Shared members with coordinates in both local frames.
      const std::vector<NodeId> shared = child_map.shared_members(parent_map);
      if (shared.size() < options.min_shared_members) continue;

      std::vector<Vec2> source;  // child frame
      std::vector<Vec2> target;  // parent frame
      source.reserve(shared.size());
      target.reserve(shared.size());
      for (NodeId m : shared) {
        source.push_back(*child_map.coord_of(m));
        target.push_back(*parent_map.coord_of(m));
      }

      const TransformEstimate estimate =
          estimate_transform(source, target, options.method, rng);
      if (!estimate.valid) continue;
      const double rmse =
          std::sqrt(estimate.sum_squared_error / static_cast<double>(shared.size()));
      if (rmse > options.max_transform_rmse_m) continue;

      // child frame -> parent frame -> root frame.
      out.to_root[child] = estimate.transform.then(*out.to_root[parent]);
      out.alignment_order.push_back(child);
      frontier.push_back(child);
    }
  }

  // Each aligned node reads its own position out of its own local map.
  for (NodeId node = 0; node < n; ++node) {
    if (!out.to_root[node].has_value()) continue;
    const auto own = maps[node].coord_of(node);
    if (!own) continue;
    out.result.positions[node] = out.to_root[node]->apply(*own);
  }

  out.maps = std::move(maps);
  return out;
}

}  // namespace resloc::core
