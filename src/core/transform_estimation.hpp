// Rigid-transform estimation between two local coordinate systems
// (Section 4.3.1, Step 2 of the distributed algorithm).
//
// Given the coordinates of shared neighbors C in a source and a target
// system, find the translation + rotation + reflection mapping source onto
// target. Two methods, as in the paper:
//   - exact: minimize E_f over (theta, tx, ty) for f = +1 and f = -1 by
//     gradient descent and keep the better ("fairly accurate results, but ...
//     too computationally intensive" for motes),
//   - closed form: translate by the centers of mass, solve
//     [Cxu + Cyv, Cxv - Cyu] . [sin theta, cos theta]^T = 0 for the rotation,
//     try both reflections ("slightly less accurate, but computationally
//     tractable" -- this is planar Procrustes; see math/procrustes.hpp).
#pragma once

#include <vector>

#include "math/gradient_descent.hpp"
#include "math/rng.hpp"
#include "math/transform2d.hpp"
#include "math/vec2.hpp"

namespace resloc::core {

/// Estimated transform plus its fit quality.
struct TransformEstimate {
  resloc::math::Transform2D transform;
  double sum_squared_error = 0.0;
  bool valid = false;
};

/// Method selector for distributed localization.
enum class TransformMethod {
  kExactMinimization,
  kClosedForm,
};

/// Closed-form (centroid + covariance) estimation. Needs >= 2 shared points
/// for a meaningful rotation; with fewer the result is translation-only.
TransformEstimate estimate_transform_closed_form(const std::vector<resloc::math::Vec2>& source,
                                                 const std::vector<resloc::math::Vec2>& target);

/// Exact estimation: gradient descent over (theta, tx, ty) for each
/// reflection hypothesis.
TransformEstimate estimate_transform_exact(const std::vector<resloc::math::Vec2>& source,
                                           const std::vector<resloc::math::Vec2>& target,
                                           resloc::math::Rng& rng);

/// Dispatch on method.
TransformEstimate estimate_transform(const std::vector<resloc::math::Vec2>& source,
                                     const std::vector<resloc::math::Vec2>& target,
                                     TransformMethod method, resloc::math::Rng& rng);

}  // namespace resloc::core
