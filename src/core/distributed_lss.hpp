// Distributed LSS localization (Section 4.3): local maps, pairwise
// transforms, and alignment to the root's coordinate system.
//
// This is the graph-driven reference implementation: it computes exactly what
// the mote protocol computes, with alignment propagating outward from the
// root along a breadth-first tree of neighbor relations (the network flood of
// Step 3 explores the same edges). The event-driven implementation on the
// network simulator lives in alignment_protocol.hpp; the two agree when given
// the same local maps and transform method.
#pragma once

#include <optional>
#include <vector>

#include "core/local_map.hpp"
#include "core/transform_estimation.hpp"
#include "core/types.hpp"

namespace resloc::core {

/// Distributed-LSS configuration.
struct DistributedLssOptions {
  /// LSS settings for the per-node local maps (the soft constraint applies
  /// within each neighborhood too).
  LssOptions local_lss;

  /// Transform estimation method (Section 4.3.1 offers both).
  TransformMethod method = TransformMethod::kClosedForm;

  /// Minimum shared members required to align two local maps (default 3);
  /// below 3 the reflection/rotation is under-determined and alignment is
  /// refused.
  std::size_t min_shared_members = 3;

  /// Reject a pairwise transform whose per-shared-member RMS residual
  /// exceeds this (meters); large residuals signal a folded local map whose
  /// propagation would corrupt everything downstream (the Figure 24 failure).
  /// Set to a huge value to disable (the default 1e9 effectively does).
  double max_transform_rmse_m = 1e9;
};

/// Output of the distributed localization.
struct DistributedLssResult {
  /// Per-node positions in the root's local coordinate frame (nullopt =
  /// unreached / unalignable).
  LocalizationResult result;
  /// Per-node local maps (diagnostics, reused by the event-driven protocol).
  std::vector<LocalMap> maps;
  /// BFS order in which nodes were aligned (root first).
  std::vector<NodeId> alignment_order;
  /// Per-node transform from the node's local frame to the root frame.
  std::vector<std::optional<resloc::math::Transform2D>> to_root;
};

/// Runs the full distributed pipeline: builds every node's local map, then
/// aligns maps outward from `root`, and reads each node's own position out of
/// its aligned local frame.
DistributedLssResult localize_distributed(const MeasurementSet& measurements, NodeId root,
                                          const DistributedLssOptions& options,
                                          resloc::math::Rng& rng);

/// Alignment-only entry point over prebuilt local maps (used by tests, the
/// event-driven protocol, and the ablation benches).
DistributedLssResult align_local_maps(std::vector<LocalMap> maps, NodeId root,
                                      const DistributedLssOptions& options,
                                      resloc::math::Rng& rng);

}  // namespace resloc::core
