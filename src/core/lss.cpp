#include "core/lss.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "math/spatial_hash_grid.hpp"
#include "obs/telemetry.hpp"

namespace resloc::core {

using resloc::math::Vec2;

namespace {

constexpr double kMinSeparation = 1e-9;  // guards the 1/dcomp gradient factor

/// The stress objective over parameters [x_0..x_{n-1}, y_0..y_{n-1}]: the
/// measured-edge term plus the minimum-spacing soft constraint over
/// unmeasured pairs (Section 4.2.1). A concrete callable rather than a
/// std::function: the optimizer evaluates it ~10^5 times per solve, and the
/// spatial-hash scratch below must persist across evaluations.
///
/// The soft constraint's active set -- unmeasured pairs currently placed
/// closer than d_min -- is found by a spatial-hash neighbor query (~O(n) per
/// evaluation) instead of scanning all n(n-1)/2 pairs. Both paths visit the
/// active pairs in identical (i, j) lexicographic order and run identical
/// per-pair arithmetic, so their error and gradient are bit-equal; `fixed`
/// marks nodes whose gradient entries are zeroed (anchored mode).
class StressObjective {
 public:
  StressObjective(const MeasurementSet& measurements, const LssOptions& options,
                  std::vector<bool> fixed)
      : measurements_(measurements),
        options_(options),
        fixed_(std::move(fixed)),
        n_(measurements.node_count()) {}

  double operator()(const std::vector<double>& p, std::vector<double>& grad) {
    for (double& g : grad) g = 0.0;
    double error = 0.0;

    // Measured-edge term: w_ij (dcomp - d_ij)^2.
    for (const DistanceEdge& e : measurements_.edges()) {
      const double dx = p[e.i] - p[e.j];
      const double dy = p[n_ + e.i] - p[n_ + e.j];
      const double dcomp = std::max(std::sqrt(dx * dx + dy * dy), kMinSeparation);
      const double residual = dcomp - e.distance_m;
      error += e.weight * residual * residual;
      const double scale = 2.0 * e.weight * residual / dcomp;
      grad[e.i] += scale * dx;
      grad[e.j] -= scale * dx;
      grad[n_ + e.i] += scale * dy;
      grad[n_ + e.j] -= scale * dy;
    }

    // Soft minimum-spacing constraint over *unmeasured* pairs placed closer
    // than d_min: w_D (dcomp - d_min)^2. The active set changes dynamically
    // as the configuration moves (Section 4.2.1).
    if (options_.min_spacing_m.has_value()) {
      if (options_.dense_constraint_scan) {
        error = accumulate_constraint_dense(p, grad, error);
      } else {
        error = accumulate_constraint_grid(p, grad, error);
      }
    }

    for (std::size_t i = 0; i < n_; ++i) {
      if (fixed_[i]) {
        grad[i] = 0.0;
        grad[n_ + i] = 0.0;
      }
    }
    // Edge-term vs constraint-stage split per evaluation: the two tallies
    // ROADMAP items 1 and 5 read to see where an LSS solve's work goes.
    obs::add(obs::Counter::kLssEdgeTerms, measurements_.edges().size());
    obs::add(obs::Counter::kLssConstraintPairs, active_pairs_);
    active_pairs_ = 0;
    return error;
  }

 private:
  /// One active pair's contribution. Shared verbatim by both scan paths --
  /// the bit-equivalence guarantee reduces to visiting pairs in the same
  /// order.
  double accumulate_pair(const std::vector<double>& p, std::vector<double>& grad,
                         double error, NodeId i, NodeId j, double dmin, double dmin_sq,
                         double wd) const {
    const double dx = p[i] - p[j];
    const double dy = p[n_ + i] - p[n_ + j];
    const double d_sq = dx * dx + dy * dy;
    if (d_sq >= dmin_sq) return error;       // constraint satisfied
    if (measurements_.has(i, j)) return error;  // measured pairs are exempt
    ++active_pairs_;
    const double dcomp = std::max(std::sqrt(d_sq), kMinSeparation);
    const double residual = dcomp - dmin;
    error += wd * residual * residual;
    const double scale = 2.0 * wd * residual / dcomp;
    grad[i] += scale * dx;
    grad[j] -= scale * dx;
    grad[n_ + i] += scale * dy;
    grad[n_ + j] -= scale * dy;
    return error;
  }

  /// Reference path: scan all unordered pairs (the seed implementation).
  double accumulate_constraint_dense(const std::vector<double>& p, std::vector<double>& grad,
                                     double error) {
    const double dmin = *options_.min_spacing_m;
    const double dmin_sq = dmin * dmin;
    const double wd = options_.constraint_weight;
    for (NodeId i = 0; i + 1 < n_; ++i) {
      for (NodeId j = i + 1; j < n_; ++j) {
        error = accumulate_pair(p, grad, error, i, j, dmin, dmin_sq, wd);
      }
    }
    return error;
  }

  /// Fast path: bucket the configuration into cells of side d_min, sweep out
  /// the pairs sharing a 3x3 cell neighborhood -- a superset of the active
  /// set -- and replay them in the dense scan's (i asc, j asc) order, keeping
  /// the result bit-equal. The replay order is restored by a counting bucket
  /// per i plus tiny per-bucket insertion sorts (a comparison sort over all
  /// candidates was measurably the stage's dominant cost). The candidate
  /// count is ~O(n) at any realistic density, so the whole stage is
  /// ~O(n) per evaluation versus the dense scan's O(n^2).
  double accumulate_constraint_grid(const std::vector<double>& p, std::vector<double>& grad,
                                    double error) {
    const double dmin = *options_.min_spacing_m;
    const double dmin_sq = dmin * dmin;
    const double wd = options_.constraint_weight;
    grid_.rebuild(p.data(), p.data() + n_, n_, dmin);
    // Emit only the *active* pairs: the violation test is pure per-pair
    // arithmetic, so applying it in spatial emission order changes nothing
    // bit-wise, and it shrinks the ordering stage below from ~3 candidates
    // per node to the usually near-empty active set.
    pairs_.clear();
    grid_.for_each_candidate_pair([this, &p, dmin_sq](std::size_t i, std::size_t j) {
      const double dx = p[i] - p[j];
      const double dy = p[n_ + i] - p[n_ + j];
      if (dx * dx + dy * dy >= dmin_sq) return;
      if (measurements_.has(static_cast<NodeId>(i), static_cast<NodeId>(j))) return;
      pairs_.push_back((static_cast<std::uint64_t>(i) << 32) | j);
    });

    // Counting sort by i: offsets_[i] walks from the start to the end of
    // node i's slice of js_ as the scatter fills it.
    offsets_.assign(n_ + 1, 0);
    for (const std::uint64_t pair : pairs_) ++offsets_[(pair >> 32) + 1];
    for (std::size_t i = 1; i <= n_; ++i) offsets_[i] += offsets_[i - 1];
    js_.resize(pairs_.size());
    for (const std::uint64_t pair : pairs_) {
      js_[offsets_[pair >> 32]++] = static_cast<std::uint32_t>(pair & 0xffffffffu);
    }

    std::size_t begin = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t end = offsets_[i];  // post-scatter: end of i's slice
      for (std::size_t a = begin + 1; a < end; ++a) {  // insertion sort the js
        const std::uint32_t v = js_[a];
        std::size_t b = a;
        while (b > begin && js_[b - 1] > v) {
          js_[b] = js_[b - 1];
          --b;
        }
        js_[b] = v;
      }
      for (std::size_t a = begin; a < end; ++a) {
        error = accumulate_pair(p, grad, error, static_cast<NodeId>(i), js_[a], dmin, dmin_sq,
                                wd);
      }
      begin = end;
    }
    return error;
  }

  const MeasurementSet& measurements_;
  const LssOptions options_;
  const std::vector<bool> fixed_;
  const std::size_t n_;
  mutable std::uint64_t active_pairs_ = 0;  // active constraint pairs this evaluation
  resloc::math::SpatialHashGrid grid_;   // rebuilt every evaluation, alloc-free
  std::vector<std::uint64_t> pairs_;     // candidate pairs, packed (i << 32) | j
  std::vector<std::uint32_t> offsets_;   // counting-sort scratch (per-i slice bounds)
  std::vector<std::uint32_t> js_;        // candidate js, grouped by i
};

LssResult run(const MeasurementSet& measurements, std::vector<double> initial,
              std::vector<bool> fixed, const LssOptions& options, resloc::math::Rng& rng) {
  RESLOC_SPAN("solver/lss_solve");
  const std::size_t n = measurements.node_count();
  StressObjective objective(measurements, options, std::move(fixed));
  const auto gd_result = resloc::math::minimize_with_restarts(objective, std::move(initial),
                                                              options.gd, options.restarts, rng);
  LssResult result;
  result.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.positions[i] = Vec2{gd_result.x[i], gd_result.x[n + i]};
  }
  result.stress = gd_result.error;
  result.iterations = gd_result.iterations;
  result.converged = gd_result.converged;
  result.non_finite = gd_result.non_finite || !std::isfinite(gd_result.error);
  result.error_trace = gd_result.error_trace;
  return result;
}

}  // namespace

double lss_stress(const MeasurementSet& measurements, const std::vector<Vec2>& positions,
                  const LssOptions& options) {
  std::vector<double> grad;
  return lss_stress_with_gradient(measurements, positions, options, grad);
}

double lss_stress_with_gradient(const MeasurementSet& measurements,
                                const std::vector<Vec2>& positions, const LssOptions& options,
                                std::vector<double>& grad) {
  const std::size_t n = measurements.node_count();
  std::vector<double> p(2 * n, 0.0);
  for (std::size_t i = 0; i < n && i < positions.size(); ++i) {
    p[i] = positions[i].x;
    p[n + i] = positions[i].y;
  }
  grad.assign(2 * n, 0.0);
  StressObjective objective(measurements, options, std::vector<bool>(n, false));
  return objective(p, grad);
}

LssResult localize_lss(const MeasurementSet& measurements, const LssOptions& options,
                       resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  const double stress_target =
      options.target_stress_per_edge > 0.0
          ? options.target_stress_per_edge * static_cast<double>(std::max<std::size_t>(
                                                 measurements.edge_count(), 1))
          : -1.0;

  LssResult best;
  bool have_best = false;
  const int attempts = std::max(options.independent_inits, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<Vec2> initial(n);
    for (auto& v : initial) {
      v = Vec2{rng.uniform(0.0, options.init_box_m), rng.uniform(0.0, options.init_box_m)};
    }
    LssResult candidate = localize_lss_from(measurements, std::move(initial), options, rng);
    // NaN-aware best-selection: a finite-stress attempt always beats a
    // non-finite best (plain `<` never replaces a NaN best), and a
    // non-finite attempt never displaces a finite best.
    const bool better =
        !have_best || (std::isfinite(candidate.stress) && !std::isfinite(best.stress)) ||
        (!(std::isfinite(best.stress) && !std::isfinite(candidate.stress)) &&
         candidate.stress < best.stress);
    if (better) {
      best = std::move(candidate);
      have_best = true;
    }
    if (stress_target >= 0.0 && best.stress <= stress_target) break;
  }
  return best;
}

LssResult localize_lss_from(const MeasurementSet& measurements, std::vector<Vec2> initial,
                            const LssOptions& options, resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  std::vector<double> p(2 * n, 0.0);
  for (std::size_t i = 0; i < n && i < initial.size(); ++i) {
    p[i] = initial[i].x;
    p[n + i] = initial[i].y;
  }
  return run(measurements, std::move(p), std::vector<bool>(n, false), options, rng);
}

LssResult localize_lss_anchored(const MeasurementSet& measurements,
                                const std::vector<std::pair<NodeId, Vec2>>& anchors,
                                const LssOptions& options, resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  std::vector<double> p(2 * n, 0.0);
  std::vector<bool> fixed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = rng.uniform(0.0, options.init_box_m);
    p[n + i] = rng.uniform(0.0, options.init_box_m);
  }
  for (const auto& [id, pos] : anchors) {
    p[id] = pos.x;
    p[n + id] = pos.y;
    fixed[id] = true;
  }
  return run(measurements, std::move(p), std::move(fixed), options, rng);
}

}  // namespace resloc::core
