#include "core/lss.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace resloc::core {

using resloc::math::Vec2;

namespace {

constexpr double kMinSeparation = 1e-9;  // guards the 1/dcomp gradient factor

/// Builds the stress objective over parameters [x_0..x_{n-1}, y_0..y_{n-1}].
/// `fixed` marks nodes whose gradient entries are zeroed (anchored mode).
resloc::math::Objective make_stress_objective(const MeasurementSet& measurements,
                                              const LssOptions& options,
                                              std::vector<bool> fixed) {
  const std::size_t n = measurements.node_count();
  return [&measurements, options, n, fixed = std::move(fixed)](const std::vector<double>& p,
                                                               std::vector<double>& grad) {
    for (double& g : grad) g = 0.0;
    double error = 0.0;

    // Measured-edge term: w_ij (dcomp - d_ij)^2.
    for (const DistanceEdge& e : measurements.edges()) {
      const double dx = p[e.i] - p[e.j];
      const double dy = p[n + e.i] - p[n + e.j];
      const double dcomp = std::max(std::sqrt(dx * dx + dy * dy), kMinSeparation);
      const double residual = dcomp - e.distance_m;
      error += e.weight * residual * residual;
      const double scale = 2.0 * e.weight * residual / dcomp;
      grad[e.i] += scale * dx;
      grad[e.j] -= scale * dx;
      grad[n + e.i] += scale * dy;
      grad[n + e.j] -= scale * dy;
    }

    // Soft minimum-spacing constraint over *unmeasured* pairs placed closer
    // than d_min: w_D (dcomp - d_min)^2. The active set changes dynamically
    // as the configuration moves (Section 4.2.1).
    if (options.min_spacing_m.has_value()) {
      const double dmin = *options.min_spacing_m;
      const double dmin_sq = dmin * dmin;
      const double wd = options.constraint_weight;
      for (NodeId i = 0; i + 1 < n; ++i) {
        for (NodeId j = i + 1; j < n; ++j) {
          const double dx = p[i] - p[j];
          const double dy = p[n + i] - p[n + j];
          const double d_sq = dx * dx + dy * dy;
          if (d_sq >= dmin_sq) continue;       // constraint satisfied
          if (measurements.has(i, j)) continue;  // measured pairs are exempt
          const double dcomp = std::max(std::sqrt(d_sq), kMinSeparation);
          const double residual = dcomp - dmin;
          error += wd * residual * residual;
          const double scale = 2.0 * wd * residual / dcomp;
          grad[i] += scale * dx;
          grad[j] -= scale * dx;
          grad[n + i] += scale * dy;
          grad[n + j] -= scale * dy;
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) {
        grad[i] = 0.0;
        grad[n + i] = 0.0;
      }
    }
    return error;
  };
}

LssResult run(const MeasurementSet& measurements, std::vector<double> initial,
              std::vector<bool> fixed, const LssOptions& options, resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  const auto objective = make_stress_objective(measurements, options, std::move(fixed));
  const auto gd_result = resloc::math::minimize_with_restarts(objective, std::move(initial),
                                                              options.gd, options.restarts, rng);
  LssResult result;
  result.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.positions[i] = Vec2{gd_result.x[i], gd_result.x[n + i]};
  }
  result.stress = gd_result.error;
  result.iterations = gd_result.iterations;
  result.converged = gd_result.converged;
  result.error_trace = gd_result.error_trace;
  return result;
}

}  // namespace

double lss_stress(const MeasurementSet& measurements, const std::vector<Vec2>& positions,
                  const LssOptions& options) {
  const std::size_t n = measurements.node_count();
  std::vector<double> p(2 * n, 0.0);
  for (std::size_t i = 0; i < n && i < positions.size(); ++i) {
    p[i] = positions[i].x;
    p[n + i] = positions[i].y;
  }
  std::vector<double> grad(2 * n, 0.0);
  const auto objective =
      make_stress_objective(measurements, options, std::vector<bool>(n, false));
  return objective(p, grad);
}

LssResult localize_lss(const MeasurementSet& measurements, const LssOptions& options,
                       resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  const double stress_target =
      options.target_stress_per_edge > 0.0
          ? options.target_stress_per_edge * static_cast<double>(std::max<std::size_t>(
                                                 measurements.edge_count(), 1))
          : -1.0;

  LssResult best;
  bool have_best = false;
  const int attempts = std::max(options.independent_inits, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<Vec2> initial(n);
    for (auto& v : initial) {
      v = Vec2{rng.uniform(0.0, options.init_box_m), rng.uniform(0.0, options.init_box_m)};
    }
    LssResult candidate = localize_lss_from(measurements, std::move(initial), options, rng);
    if (!have_best || candidate.stress < best.stress) {
      best = std::move(candidate);
      have_best = true;
    }
    if (stress_target >= 0.0 && best.stress <= stress_target) break;
  }
  return best;
}

LssResult localize_lss_from(const MeasurementSet& measurements, std::vector<Vec2> initial,
                            const LssOptions& options, resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  std::vector<double> p(2 * n, 0.0);
  for (std::size_t i = 0; i < n && i < initial.size(); ++i) {
    p[i] = initial[i].x;
    p[n + i] = initial[i].y;
  }
  return run(measurements, std::move(p), std::vector<bool>(n, false), options, rng);
}

LssResult localize_lss_anchored(const MeasurementSet& measurements,
                                const std::vector<std::pair<NodeId, Vec2>>& anchors,
                                const LssOptions& options, resloc::math::Rng& rng) {
  const std::size_t n = measurements.node_count();
  std::vector<double> p(2 * n, 0.0);
  std::vector<bool> fixed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = rng.uniform(0.0, options.init_box_m);
    p[n + i] = rng.uniform(0.0, options.init_box_m);
  }
  for (const auto& [id, pos] : anchors) {
    p[id] = pos.x;
    p[n + id] = pos.y;
    fixed[id] = true;
  }
  return run(measurements, std::move(p), std::move(fixed), options, rng);
}

}  // namespace resloc::core
