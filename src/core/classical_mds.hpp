// Classical multidimensional scaling baseline (Section 4.2 background; the
// approach of [18], [19] the paper contrasts LSS against).
//
// Classical MDS double-centers the squared-distance matrix and takes the top
// two principal components as coordinates. Its "critical requirement is that
// distances between all pairs of nodes be known a priori"; the MDS-MAP remedy
// completes a sparse measurement set with shortest-path distances first.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "math/matrix.hpp"
#include "math/vec2.hpp"

namespace resloc::core {

/// Classical MDS output.
struct MdsResult {
  std::vector<resloc::math::Vec2> positions;  ///< relative frame
  std::vector<double> eigenvalues;            ///< descending, all n of them
  /// Fraction of total (positive) eigenvalue mass captured by the first two
  /// components; near 1 for genuinely 2-D data.
  double planarity = 0.0;
};

/// Classical MDS on a complete distance matrix (n x n, symmetric, zero
/// diagonal). Returns nullopt when the matrix is not square or is empty.
std::optional<MdsResult> classical_mds(const resloc::math::Matrix& distances);

/// All-pairs shortest-path completion of a sparse measurement set
/// (Floyd-Warshall over measured edges). Unreachable pairs are set to
/// `unreachable_value` (a large value keeps MDS defined but distorted --
/// exactly the failure mode that motivates LSS). Needs node_count >= 1.
resloc::math::Matrix shortest_path_completion(const MeasurementSet& measurements,
                                              double unreachable_value = 1e6);

/// MDS-MAP-style localization: shortest-path completion followed by classical
/// MDS. Returns nullopt for empty inputs.
std::optional<MdsResult> mds_map(const MeasurementSet& measurements);

}  // namespace resloc::core
