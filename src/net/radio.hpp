// Broadcast radio with MAC-layer timestamping.
//
// Section 3.1: the arrival of a radio message is delayed by non-deterministic
// sender- and receiver-side processing (delta_xmit); FTSP-style MAC-layer
// timestamping "eliminates a significant portion of [that] non-determinism".
// We model a message as reaching each in-range receiver after
//   base_latency + |jitter|,
// where jitter is the residual nondeterminism after MAC timestamping. The
// receiver is handed both the true reception instant (converted to its local
// clock by the Network) and the sender's MAC timestamp, from which protocols
// compute clock correspondences exactly as on real motes.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "math/vec2.hpp"
#include "net/event_queue.hpp"

namespace resloc::net {

using NodeId = std::uint32_t;

/// Application payload tag; protocols interpret `kind` and `payload` freely.
struct Message {
  NodeId sender = 0;
  int kind = 0;
  std::vector<double> payload;
  /// Sender's local time at the actual start of transmission (MAC timestamp,
  /// filled by the Network at send time).
  double mac_timestamp = 0.0;
};

/// Delivery metadata handed to the receiving node.
struct Reception {
  Message message;
  double local_receive_time = 0.0;  ///< receiver's local clock at reception
  double rssi_distance_hint = 0.0;  ///< true sender-receiver distance (physics, not visible to protocols that shouldn't use it)
};

/// Radio timing/coverage parameters.
struct RadioParams {
  /// Communication range in meters (MICA2 outdoor ranges are tens of m).
  double range_m = 60.0;
  /// Deterministic part of delta_xmit (encoding + propagation + decoding).
  double base_latency_s = 2e-3;
  /// Std-dev of the residual delivery jitter after MAC-layer timestamping.
  /// FTSP reduces this to the order of microseconds.
  double jitter_stddev_s = 5e-6;
  /// Probability an in-range receiver misses the message entirely.
  double loss_probability = 0.0;
  /// Rate (events/s of sim time) at which whole-network loss bursts start.
  /// During a burst every broadcast is dropped for all receivers -- the
  /// correlated-interference failure mode, as opposed to the independent
  /// per-receiver `loss_probability`. Zero disables bursts.
  double loss_burst_rate_hz = 0.0;
  /// Duration of each loss burst in seconds of sim time.
  double loss_burst_duration_s = 0.0;
};

}  // namespace resloc::net
