// Network container: nodes with positions and clocks, plus broadcast
// delivery over the shared event queue.
//
// Applications subclass NodeApp and receive messages via on_message(); the
// flooding alignment step of the distributed LSS algorithm (Section 4.3.1,
// "Alignment") runs on this substrate.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "math/rng.hpp"
#include "math/vec2.hpp"
#include "net/clock.hpp"
#include "net/event_queue.hpp"
#include "net/radio.hpp"

namespace resloc::net {

class Network;

/// Base class for per-node protocol logic.
class NodeApp {
 public:
  virtual ~NodeApp() = default;

  /// Called once after the node is attached to the network.
  virtual void on_start(Network& /*net*/, NodeId /*self*/) {}

  /// Called for every delivered message.
  virtual void on_message(Network& net, NodeId self, const Reception& reception) = 0;
};

/// The simulated network.
class Network {
 public:
  Network(RadioParams radio, resloc::math::Rng rng);

  /// Adds a node at `position` with a random clock; returns its id.
  NodeId add_node(resloc::math::Vec2 position, std::unique_ptr<NodeApp> app);

  /// Starts all node apps (calls on_start in id order).
  void start();

  /// Broadcasts from `sender`; delivery to every in-range node follows the
  /// radio timing model. The MAC timestamp is stamped with the sender's
  /// local clock at the true transmission instant.
  void broadcast(NodeId sender, Message message);

  /// Schedules an app callback at a local-time delay for a node.
  void schedule_local(NodeId node, double delay_s, std::function<void()> fn);

  /// Runs the simulation until quiescent or `until`.
  std::size_t run(SimTime until = 1e18) { return events_.run(until); }

  std::size_t node_count() const { return nodes_.size(); }
  resloc::math::Vec2 position(NodeId id) const { return nodes_[id].position; }
  const Clock& clock(NodeId id) const { return nodes_[id].clock; }
  SimTime now() const { return events_.now(); }
  EventQueue& events() { return events_; }

  /// Total messages delivered (for protocol-cost accounting; the paper notes
  /// the distributed algorithm needs two local exchanges per node plus one
  /// flood).
  std::size_t deliveries() const { return deliveries_; }
  std::size_t broadcasts() const { return broadcasts_; }
  /// Broadcasts swallowed whole by a loss burst.
  std::size_t bursts_dropped() const { return bursts_dropped_; }

 private:
  struct NodeState {
    resloc::math::Vec2 position;
    Clock clock;
    std::unique_ptr<NodeApp> app;
  };

  /// True while sim-time `now` falls inside a correlated loss burst. The
  /// burst schedule is a lazily-advanced Poisson process on a dedicated RNG
  /// substream, so enabling bursts never perturbs the per-receiver loss and
  /// jitter draws of the main stream.
  bool in_loss_burst();

  RadioParams radio_;
  resloc::math::Rng rng_;
  resloc::math::Rng burst_rng_;
  EventQueue events_;
  std::vector<NodeState> nodes_;
  std::size_t deliveries_ = 0;
  std::size_t broadcasts_ = 0;
  std::size_t bursts_dropped_ = 0;
  SimTime next_burst_start_ = 0.0;
  SimTime burst_end_ = -1.0;
};

}  // namespace resloc::net
