// Discrete-event simulation core.
//
// A minimal but complete event loop: events are (time, sequence, closure)
// triples executed in time order, with the sequence number breaking ties
// deterministically in scheduling order. All network behaviour (message
// delivery, chirp emission, protocol timers) is expressed as events, so the
// distributed localization algorithm runs against the same causal structure
// it would see on real motes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace resloc::net {

/// Simulated global (true) time in seconds.
using SimTime = double;

/// Deterministic time-ordered event executor.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `when` (must not precede now()).
  void schedule_at(SimTime when, Handler handler);

  /// Schedules `handler` after `delay` seconds from now.
  void schedule_after(SimTime delay, Handler handler);

  /// Runs events until the queue drains or `until` is passed.
  /// Returns the number of events executed.
  std::size_t run(SimTime until = 1e18);

  /// Current simulation time (time of the last executed event).
  SimTime now() const { return now_; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace resloc::net
