// Per-node drifting clocks.
//
// The paper's ranging design synchronizes sender and receiver "for a short
// period of time using the very same radio message used for TDoA ranging"
// via FTSP-style MAC-layer timestamping, and bounds the clock-rate difference
// between a pair of nodes at ~50 microseconds per second -- about 0.15 cm of
// ranging error over 30 m (Section 3.1). We model each node's oscillator as
// local = offset + (1 + drift) * true_time, with drift drawn uniformly from
// +/- drift_bound.
#pragma once

#include "math/rng.hpp"
#include "net/event_queue.hpp"

namespace resloc::net {

/// Maximum clock-rate deviation quoted by the paper (50 us/s).
inline constexpr double kDefaultDriftBound = 50e-6;

/// A skewed, offset local oscillator.
class Clock {
 public:
  Clock() = default;
  Clock(double offset_s, double drift) : offset_s_(offset_s), drift_(drift) {}

  /// Draws a random clock: offset uniform in [0, max_offset), drift uniform
  /// in [-drift_bound, +drift_bound].
  static Clock random(resloc::math::Rng& rng, double max_offset_s = 1.0,
                      double drift_bound = kDefaultDriftBound);

  /// Converts true simulation time to this node's local time.
  double local_time(SimTime true_time) const {
    return offset_s_ + (1.0 + drift_) * true_time;
  }

  /// Converts this node's local time back to true simulation time.
  double true_time(double local) const { return (local - offset_s_) / (1.0 + drift_); }

  double drift() const { return drift_; }
  double offset() const { return offset_s_; }

 private:
  double offset_s_ = 0.0;
  double drift_ = 0.0;
};

}  // namespace resloc::net
