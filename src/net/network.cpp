#include "net/network.hpp"

#include <cmath>
#include <utility>

namespace resloc::net {

namespace {
// Substream tag for the burst schedule: keeps correlated-loss draws off the
// main network stream so faults-on/off changes nothing else.
constexpr std::uint64_t kBurstStreamTag = 0xB125;
}  // namespace

Network::Network(RadioParams radio, resloc::math::Rng rng)
    : radio_(radio), rng_(std::move(rng)), burst_rng_(rng_.fork(kBurstStreamTag)) {
  if (radio_.loss_burst_rate_hz > 0.0 && radio_.loss_burst_duration_s > 0.0) {
    next_burst_start_ = burst_rng_.exponential(radio_.loss_burst_rate_hz);
  }
}

bool Network::in_loss_burst() {
  if (radio_.loss_burst_rate_hz <= 0.0 || radio_.loss_burst_duration_s <= 0.0) return false;
  const SimTime now = events_.now();
  // Advance the Poisson schedule past `now`; starts are strictly increasing,
  // so the latest started burst determines the active window.
  while (next_burst_start_ <= now) {
    burst_end_ = next_burst_start_ + radio_.loss_burst_duration_s;
    next_burst_start_ += burst_rng_.exponential(radio_.loss_burst_rate_hz);
  }
  return now < burst_end_;
}

NodeId Network::add_node(resloc::math::Vec2 position, std::unique_ptr<NodeApp> app) {
  const auto id = static_cast<NodeId>(nodes_.size());
  NodeState state;
  state.position = position;
  state.clock = Clock::random(rng_);
  state.app = std::move(app);
  nodes_.push_back(std::move(state));
  return id;
}

void Network::start() {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    nodes_[id].app->on_start(*this, id);
  }
}

void Network::broadcast(NodeId sender, Message message) {
  ++broadcasts_;
  if (in_loss_burst()) {
    // Correlated interference: the whole transmission is lost for everyone.
    ++bursts_dropped_;
    return;
  }
  message.sender = sender;
  // The MAC layer stamps the message with the sender's local clock at the
  // true start of transmission (now): this is the FTSP trick that removes
  // most of the send-side nondeterminism.
  message.mac_timestamp = nodes_[sender].clock.local_time(events_.now());

  const auto sender_pos = nodes_[sender].position;
  for (NodeId receiver = 0; receiver < nodes_.size(); ++receiver) {
    if (receiver == sender) continue;
    const double d = resloc::math::distance(sender_pos, nodes_[receiver].position);
    if (d > radio_.range_m) continue;
    if (rng_.bernoulli(radio_.loss_probability)) continue;

    const double jitter = std::abs(rng_.gaussian(0.0, radio_.jitter_stddev_s));
    const double delay = radio_.base_latency_s + jitter;
    events_.schedule_after(delay, [this, receiver, message, d]() {
      Reception reception;
      reception.message = message;
      reception.local_receive_time = nodes_[receiver].clock.local_time(events_.now());
      reception.rssi_distance_hint = d;
      ++deliveries_;
      nodes_[receiver].app->on_message(*this, receiver, reception);
    });
  }
}

void Network::schedule_local(NodeId node, double delay_s, std::function<void()> fn) {
  (void)node;  // local-time delays differ from true delays only by drift,
               // which is negligible for protocol timers; kept for intent.
  events_.schedule_after(delay_s, std::move(fn));
}

}  // namespace resloc::net
