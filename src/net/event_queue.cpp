#include "net/event_queue.hpp"

#include <cassert>
#include <utility>

namespace resloc::net {

void EventQueue::schedule_at(SimTime when, Handler handler) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_after(SimTime delay, Handler handler) {
  schedule_at(now_ + delay, std::move(handler));
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    // Copy out before pop so the handler may schedule further events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.handler();
    ++executed;
  }
  return executed;
}

}  // namespace resloc::net
