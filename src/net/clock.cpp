#include "net/clock.hpp"

namespace resloc::net {

Clock Clock::random(resloc::math::Rng& rng, double max_offset_s, double drift_bound) {
  return Clock(rng.uniform(0.0, max_offset_s), rng.uniform(-drift_bound, drift_bound));
}

}  // namespace resloc::net
