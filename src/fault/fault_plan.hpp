// Declarative fault configuration for the deterministic fault-injection
// layer.
//
// The paper's title claim is *resilient* localization, but until this layer
// existed the repo could only express one failure mode (mote removal at
// deploy time). A FaultPlan names every injectable fault as a rate in [0, 1]
// (or a physical rate for radio loss bursts); the FaultInjector turns the
// plan into concrete per-(node, round, pair) fault schedules drawn from
// tagged counter-based RNG substreams, so the schedule is byte-identical at
// any thread count and independent of query order.
//
// Fault taxonomy (one knob per failure mode):
//   network   -- packet_loss_probability, loss bursts (radio jamming windows)
//   node      -- node_crash_rate (down for the rest of the campaign),
//                node_sleep_rate (down for a contiguous round window)
//   sensor    -- faulty_mic_rate (persistent wide-band noise; drives the
//                acoustics::MicUnit fault model), stuck_detector_rate
//                (detector latches a constant near-zero arrival)
//   measurement -- missed_chirp_rate (a directed attempt vanishes),
//                corrupt_distance_rate (an estimate is replaced by NaN or a
//                multiplicative outlier -- the inputs the Section 3.5
//                filters exist for)
//
// The all-zeros default plan is inert: enabled() is false, the injector
// draws nothing, and every existing golden byte-stream is unchanged.
#pragma once

#include <string>
#include <vector>

#include "net/radio.hpp"

namespace resloc::fault {

/// Per-campaign fault configuration. All rates default to 0 (no faults).
struct FaultPlan {
  // --- Network faults (consumed via apply_to_radio / net::Network). ---
  /// Probability an in-range radio delivery is dropped.
  double packet_loss_probability = 0.0;
  /// Poisson arrival rate of channel-wide loss bursts (jamming windows).
  double loss_burst_rate_hz = 0.0;
  /// Duration of each loss burst, seconds.
  double loss_burst_duration_s = 0.0;

  // --- Node availability faults (round-granular campaign schedules). ---
  /// Fraction of nodes that crash mid-campaign: a crashed node neither
  /// chirps nor listens from its crash round (always >= 1) onward.
  double node_crash_rate = 0.0;
  /// Fraction of nodes that sleep through a contiguous window of rounds
  /// (duty cycling / brown-out) and come back afterwards.
  double node_sleep_rate = 0.0;

  // --- Sensor faults (persistent per-unit hardware failures). ---
  /// Fraction of microphones forced faulty (persistent wide-band noise,
  /// the acoustics::MicUnit fault model).
  double faulty_mic_rate = 0.0;
  /// Fraction of receivers whose detector latches a constant near-zero
  /// arrival regardless of the true distance. Self-consistent across
  /// rounds -- exactly the failure the bidirectional consistency check
  /// (Section 3.5) exists to catch.
  double stuck_detector_rate = 0.0;

  // --- Measurement faults (per directed (round, source, receiver) draw). ---
  /// Probability a directed ranging attempt produces nothing at all.
  double missed_chirp_rate = 0.0;
  /// Probability a successful estimate is corrupted before it reaches the
  /// filters.
  double corrupt_distance_rate = 0.0;
  /// Of the corruptions, the fraction replaced by NaN; the rest become
  /// multiplicative outliers.
  double corrupt_nan_fraction = 0.5;
  /// Outlier corruption multiplies the estimate by uniform(2, 1 + this).
  double outlier_scale = 4.0;

  /// True when any fault can fire. The inert default plan keeps every
  /// existing byte-stream untouched (the injector draws nothing).
  bool enabled() const;
};

/// The sweep-axis vocabulary, sorted: "all", "corrupt_distance",
/// "faulty_mic", "missed_chirp", "node_crash", "node_sleep", "none",
/// "packet_loss", "stuck_detector".
std::vector<std::string> fault_kind_names();

/// Builds the plan for one named fault kind at the given intensity (1.0 =
/// the kind's calibrated base rate; rates scale linearly and clamp at their
/// physical caps). "none" returns the inert plan; "all" enables every kind
/// at half its single-kind rate. Throws std::invalid_argument for an unknown
/// kind or a negative intensity.
FaultPlan plan_from_kind(const std::string& kind, double intensity);

/// Projects the plan's network faults onto radio parameters (loss
/// probability is the max of the existing value and the plan's).
void apply_to_radio(const FaultPlan& plan, net::RadioParams& radio);

}  // namespace resloc::fault
