// Deterministic fault-injection runtime.
//
// A FaultInjector answers "does fault X fire at key K?" for every fault kind
// of a FaultPlan. Every answer is drawn from a tagged counter-based
// substream of a caller-provided fork base:
//
//   crash/sleep schedules   base.fork(kind_tag).fork(node)
//   mic / stuck detector    base.fork(kind_tag).fork(node)
//   missed chirp / corrupt  base.fork(kind_tag).fork((round * n + source) * n
//                                                    + receiver)
//
// so a query's outcome depends only on (plan, base, key) -- never on query
// order, enumeration order, or thread count. That is the same substream
// contract the measurement campaign already relies on (see
// sim/field_experiment.hpp), which is what makes a faulted campaign
// byte-identical at any `threads` value. Queries against an inert plan (or a
// default-constructed injector) return "no fault" without drawing at all.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"
#include "fault/fault_plan.hpp"
#include "math/rng.hpp"

namespace resloc::fault {

class FaultInjector {
 public:
  /// Inert injector: every query reports "no fault" and draws nothing.
  FaultInjector() = default;

  /// Builds the injector for one campaign: `base` is the tagged fork the
  /// caller dedicates to faults, `node_count` and `rounds` bound the key
  /// space (crash/sleep schedules need the round horizon).
  FaultInjector(const FaultPlan& plan, const math::Rng& base,
                std::size_t node_count, int rounds);

  /// False when the plan is inert -- the fast path the fault-free campaign
  /// takes through every query below.
  bool active() const { return active_; }

  /// Whether `node` is up in `round` under the crash/sleep schedules.
  /// Crashes are permanent from their (>= 1) crash round; sleeps cover a
  /// contiguous round window. A node that is down neither chirps nor hears.
  bool node_available(core::NodeId node, int round) const;

  /// Whether `node`'s microphone is forced faulty for the whole campaign.
  bool mic_faulty(core::NodeId node) const;

  /// Whether `node`'s detector is stuck (latches a constant arrival).
  bool detector_stuck(core::NodeId node) const;

  /// The constant distance a stuck detector reports, drawn once per node
  /// (near zero: the detector fires at the start of every window).
  double stuck_distance_m(core::NodeId node) const;

  /// Whether the directed attempt (round, source -> receiver) vanishes.
  bool chirp_missed(int round, core::NodeId source, core::NodeId receiver) const;

  /// Possibly corrupts a successful estimate for the directed attempt:
  /// returns NaN, a multiplicative outlier, or `measured_m` unchanged.
  double corrupt_distance(int round, core::NodeId source, core::NodeId receiver,
                          double measured_m) const;

 private:
  std::uint64_t pair_key(int round, core::NodeId source, core::NodeId receiver) const;

  FaultPlan plan_;
  math::Rng base_;
  std::size_t n_ = 0;
  int rounds_ = 0;
  bool active_ = false;
};

}  // namespace resloc::fault
