#include "fault/fault_injector.hpp"

#include <algorithm>
#include <limits>

namespace resloc::fault {

namespace {

/// Per-kind substream tags. Each fault kind forks its own base off the
/// injector's base so a node's crash draw can never correlate with (or
/// shift) its sleep, mic, or per-pair draws.
constexpr std::uint64_t kCrashTag = 0xC0A5;
constexpr std::uint64_t kSleepTag = 0x51EE;
constexpr std::uint64_t kMicTag = 0x301C;
constexpr std::uint64_t kStuckTag = 0x57CC;
constexpr std::uint64_t kMissTag = 0x3155;
constexpr std::uint64_t kCorruptTag = 0xC0FF;

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, const math::Rng& base,
                             std::size_t node_count, int rounds)
    : plan_(plan), base_(base), n_(node_count), rounds_(rounds),
      active_(plan.enabled()) {}

std::uint64_t FaultInjector::pair_key(int round, core::NodeId source,
                                      core::NodeId receiver) const {
  return (static_cast<std::uint64_t>(round) * n_ + source) * n_ + receiver;
}

bool FaultInjector::node_available(core::NodeId node, int round) const {
  if (!active_) return true;
  if (plan_.node_crash_rate > 0.0 && rounds_ > 1) {
    math::Rng stream = base_.fork(kCrashTag).fork(node);
    if (stream.bernoulli(plan_.node_crash_rate)) {
      // Crash rounds start at 1: a crash is a *mid-campaign* failure, so
      // every node contributes at least its round-0 measurements.
      const auto crash_round =
          static_cast<int>(stream.uniform_int(1, rounds_ - 1));
      if (round >= crash_round) return false;
    }
  }
  if (plan_.node_sleep_rate > 0.0 && rounds_ > 0) {
    math::Rng stream = base_.fork(kSleepTag).fork(node);
    if (stream.bernoulli(plan_.node_sleep_rate)) {
      const auto start = static_cast<int>(stream.uniform_int(0, rounds_ - 1));
      const auto length = static_cast<int>(
          stream.uniform_int(1, std::max(1, rounds_ / 2)));
      if (round >= start && round < start + length) return false;
    }
  }
  return true;
}

bool FaultInjector::mic_faulty(core::NodeId node) const {
  if (!active_ || plan_.faulty_mic_rate <= 0.0) return false;
  math::Rng stream = base_.fork(kMicTag).fork(node);
  return stream.bernoulli(plan_.faulty_mic_rate);
}

bool FaultInjector::detector_stuck(core::NodeId node) const {
  if (!active_ || plan_.stuck_detector_rate <= 0.0) return false;
  math::Rng stream = base_.fork(kStuckTag).fork(node);
  return stream.bernoulli(plan_.stuck_detector_rate);
}

double FaultInjector::stuck_distance_m(core::NodeId node) const {
  // Second draw of the stuck substream (the first is the bernoulli): a small
  // constant the node reports for every link, every round. Not exactly zero
  // so degenerate same-position geometry cannot hide the fault.
  math::Rng stream = base_.fork(kStuckTag).fork(node);
  (void)stream.bernoulli(plan_.stuck_detector_rate);
  return stream.uniform(0.1, 2.0);
}

bool FaultInjector::chirp_missed(int round, core::NodeId source,
                                 core::NodeId receiver) const {
  if (!active_ || plan_.missed_chirp_rate <= 0.0) return false;
  math::Rng stream = base_.fork(kMissTag).fork(pair_key(round, source, receiver));
  return stream.bernoulli(plan_.missed_chirp_rate);
}

double FaultInjector::corrupt_distance(int round, core::NodeId source,
                                       core::NodeId receiver, double measured_m) const {
  if (!active_ || plan_.corrupt_distance_rate <= 0.0) return measured_m;
  math::Rng stream =
      base_.fork(kCorruptTag).fork(pair_key(round, source, receiver));
  if (!stream.bernoulli(plan_.corrupt_distance_rate)) return measured_m;
  if (stream.uniform() < plan_.corrupt_nan_fraction) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Multiplicative outlier, always an overestimate: the physical signature
  // of latching an echo instead of the first arrival.
  return measured_m * stream.uniform(2.0, std::max(2.0, 1.0 + plan_.outlier_scale));
}

}  // namespace resloc::fault
