#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace resloc::fault {

bool FaultPlan::enabled() const {
  return packet_loss_probability > 0.0 || loss_burst_rate_hz > 0.0 ||
         node_crash_rate > 0.0 || node_sleep_rate > 0.0 || faulty_mic_rate > 0.0 ||
         stuck_detector_rate > 0.0 || missed_chirp_rate > 0.0 ||
         corrupt_distance_rate > 0.0;
}

std::vector<std::string> fault_kind_names() {
  return {"all",        "corrupt_distance", "faulty_mic", "missed_chirp", "node_crash",
          "node_sleep", "none",             "packet_loss", "stuck_detector"};
}

namespace {

/// Scales a base rate by intensity and clamps at its physical cap. The caps
/// keep extreme intensities meaningful rather than degenerate: a probability
/// may not exceed its cap (e.g. missing *every* chirp would make every cell
/// trivially empty).
double scaled(double base_rate, double intensity, double cap) {
  return std::min(base_rate * intensity, cap);
}

}  // namespace

FaultPlan plan_from_kind(const std::string& kind, double intensity) {
  if (!(intensity >= 0.0)) {
    throw std::invalid_argument("fault intensity must be >= 0, got " +
                                std::to_string(intensity));
  }
  FaultPlan plan;
  // Base rates are calibrated so intensity 1.0 visibly stresses -- but does
  // not flatten -- the paper-scale scenarios; "all" runs every kind at half
  // strength so the combined plan stays comparable.
  const double share = kind == "all" ? 0.5 : 1.0;
  bool known = kind == "none" || kind == "all";
  if (kind == "packet_loss" || kind == "all") {
    plan.packet_loss_probability = scaled(0.3 * share, intensity, 0.95);
    plan.loss_burst_rate_hz = scaled(0.05 * share, intensity, 10.0);
    plan.loss_burst_duration_s = 0.5;
    known = true;
  }
  if (kind == "node_crash" || kind == "all") {
    plan.node_crash_rate = scaled(0.25 * share, intensity, 1.0);
    known = true;
  }
  if (kind == "node_sleep" || kind == "all") {
    plan.node_sleep_rate = scaled(0.3 * share, intensity, 1.0);
    known = true;
  }
  if (kind == "faulty_mic" || kind == "all") {
    plan.faulty_mic_rate = scaled(0.2 * share, intensity, 1.0);
    known = true;
  }
  if (kind == "stuck_detector" || kind == "all") {
    plan.stuck_detector_rate = scaled(0.15 * share, intensity, 1.0);
    known = true;
  }
  if (kind == "missed_chirp" || kind == "all") {
    plan.missed_chirp_rate = scaled(0.2 * share, intensity, 0.9);
    known = true;
  }
  if (kind == "corrupt_distance" || kind == "all") {
    plan.corrupt_distance_rate = scaled(0.15 * share, intensity, 0.9);
    known = true;
  }
  if (!known) {
    throw std::invalid_argument("unknown fault kind '" + kind +
                                "' (fault_kind_names() lists the vocabulary)");
  }
  return plan;
}

void apply_to_radio(const FaultPlan& plan, net::RadioParams& radio) {
  radio.loss_probability = std::max(radio.loss_probability, plan.packet_loss_probability);
  radio.loss_burst_rate_hz = std::max(radio.loss_burst_rate_hz, plan.loss_burst_rate_hz);
  radio.loss_burst_duration_s =
      std::max(radio.loss_burst_duration_s, plan.loss_burst_duration_s);
}

}  // namespace resloc::fault
