#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace resloc::math {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  // Sample standard deviation (Bessel's correction). The n < 2 guard above
  // already treats the input as a sample -- a population of one has a
  // perfectly valid stddev of 0 -- so dividing by N here was inconsistent
  // and biased every measurement-spread estimate low.
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

std::optional<double> median(std::vector<double> v) {
  if (v.empty()) return std::nullopt;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double upper = v[mid];
  if (v.size() % 2 == 1) return upper;
  const double lower = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

std::optional<double> mad(const std::vector<double>& v) {
  const std::optional<double> center = median(std::vector<double>(v));
  if (!center) return std::nullopt;
  std::vector<double> deviations;
  deviations.reserve(v.size());
  for (double x : v) deviations.push_back(std::abs(x - *center));
  return median(std::move(deviations));
}

std::optional<double> binned_mode(const std::vector<double>& v, double bin_width) {
  if (v.empty() || bin_width <= 0.0) return std::nullopt;
  std::map<long long, std::size_t> counts;
  for (double x : v) {
    const auto bin = static_cast<long long>(std::floor(x / bin_width));
    ++counts[bin];
  }
  long long best_bin = counts.begin()->first;
  std::size_t best_count = 0;
  for (const auto& [bin, count] : counts) {
    if (count > best_count) {  // map iteration order breaks ties toward the lower bin
      best_count = count;
      best_bin = bin;
    }
  }
  return (static_cast<double>(best_bin) + 0.5) * bin_width;
}

std::optional<double> percentile(std::vector<double> v, double p) {
  if (v.empty()) return std::nullopt;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

std::optional<double> min_value(const std::vector<double>& v) {
  if (v.empty()) return std::nullopt;
  return *std::min_element(v.begin(), v.end());
}

std::optional<double> max_value(const std::vector<double>& v) {
  if (v.empty()) return std::nullopt;
  return *std::max_element(v.begin(), v.end());
}

double fraction_within(const std::vector<double>& v, double bound) {
  if (v.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : v) {
    if (std::abs(x) <= bound) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(v.size());
}

}  // namespace resloc::math
