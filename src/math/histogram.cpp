#include "math/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace resloc::math {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  // Real validation, not assert: a Release build fed hi <= lo or bins == 0
  // would otherwise binning-divide by a zero-or-negative width and fill
  // garbage bins.
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: requires hi > lo and bins > 0");
  }
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guard against FP edge at hi_
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_lower(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

std::size_t Histogram::peak_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::to_ascii(std::size_t max_bar) const {
  const std::size_t peak = counts_[peak_bin()];
  std::ostringstream os;
  if (underflow_ > 0) os << "  < " << lo_ << ": " << underflow_ << "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_bar / peak;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%9.3f | ", bin_center(i));
    os << buf << std::string(bar, '#') << ' ' << counts_[i] << "\n";
  }
  if (overflow_ > 0) os << "  >= " << hi_ << ": " << overflow_ << "\n";
  return os.str();
}

}  // namespace resloc::math
