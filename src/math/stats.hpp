// Order statistics and summary statistics used by the ranging service's
// statistical filter (Section 3.5 of the paper: median / mode of repeated
// measurements) and by the evaluation harness.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace resloc::math {

/// Arithmetic mean. Returns 0 for an empty input.
double mean(const std::vector<double>& v);

/// Sample standard deviation (divides by N - 1, Bessel's correction): the
/// callers estimate the spread of noisy measurements and localization errors
/// from a sample, not a full population. Returns 0 for fewer than two
/// samples.
double stddev(const std::vector<double>& v);

/// Median (average of the two central elements for even sizes).
/// Small-input convention, pinned by test_measurement_properties:
///   {}      -> std::nullopt (no data, no estimate)
///   {a}     -> a
///   {a, b}  -> (a + b) / 2
std::optional<double> median(std::vector<double> v);

/// Median absolute deviation: median(|x - median(x)|), unscaled. Multiply by
/// 1.4826 to estimate sigma under Gaussian noise (callers own the scaling so
/// the raw robust spread stays available). Small-input convention:
///   {}      -> std::nullopt
///   {a}     -> 0 (a lone sample has no spread)
///   {a, b}  -> |a - b| / 2 (each deviates half the gap from their midpoint)
std::optional<double> mad(const std::vector<double>& v);

/// Mode of continuous data, computed by binning with the given bin width and
/// returning the center of the most populated bin. Ties are broken toward the
/// lower bin. This mirrors the paper's use of the mode as an outlier-resistant
/// estimate that "needs more measurements to be effective" than the median.
/// Returns std::nullopt for an empty input or non-positive bin width.
std::optional<double> binned_mode(const std::vector<double>& v, double bin_width);

/// p-th percentile (0 <= p <= 100) with linear interpolation; p is clamped
/// into [0, 100]. Small-input convention, pinned by test:
///   {}      -> std::nullopt
///   {a}     -> a for every p (a single sample is every percentile)
///   {a, b}  -> linear interpolation between the two (p=0 -> min, p=100 -> max,
///              p=50 -> their average, matching median)
std::optional<double> percentile(std::vector<double> v, double p);

/// Root mean square of the input values.
double rms(const std::vector<double>& v);

/// Minimum / maximum; std::nullopt for an empty input.
std::optional<double> min_value(const std::vector<double>& v);
std::optional<double> max_value(const std::vector<double>& v);

/// Fraction of values satisfying |v| <= bound.
double fraction_within(const std::vector<double>& v, double bound);

}  // namespace resloc::math
