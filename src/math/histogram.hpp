// Fixed-bin histogram used to reproduce the paper's ranging-error histograms
// (Figures 6 and 7) and to render ASCII versions of them in the benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace resloc::math {

/// Histogram over [lo, hi) with uniform bins; values outside the range are
/// counted in underflow/overflow.
class Histogram {
 public:
  /// Throws std::invalid_argument unless hi > lo and bins > 0 (this also
  /// rejects NaN bounds). Enforced in every build type -- a malformed range
  /// would silently produce a zero-or-negative bin width.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Center of the given bin.
  double bin_center(std::size_t bin) const;
  /// Inclusive lower edge of the given bin.
  double bin_lower(std::size_t bin) const;
  double bin_width() const { return width_; }

  /// Index of the most populated bin.
  std::size_t peak_bin() const;

  /// Renders a row-per-bin ASCII bar chart, scaled so the largest bar is
  /// `max_bar` characters wide. Intended for bench/report output.
  std::string to_ascii(std::size_t max_bar = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace resloc::math
