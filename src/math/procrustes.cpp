#include "math/procrustes.hpp"

#include <cmath>

namespace resloc::math {

namespace {

/// Error and optimal rotation for one reflection hypothesis.
/// `reflect` mirrors the centered source across the x-axis before rotating.
struct Hypothesis {
  Transform2D transform;
  double error = 0.0;
};

Hypothesis fit_hypothesis(const std::vector<Vec2>& src, const std::vector<Vec2>& dst,
                          Vec2 mu_src, Vec2 mu_dst, bool reflect) {
  // Covariances between centered target (x, y) and centered, possibly
  // reflected, source (u, v) -- the paper's Cxu, Cyv, Cxv, Cyu.
  double cxu = 0.0;
  double cyv = 0.0;
  double cxv = 0.0;
  double cyu = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Vec2 s = src[i] - mu_src;
    const double u = s.x;
    const double v = reflect ? -s.y : s.y;
    const Vec2 d = dst[i] - mu_dst;
    cxu += d.x * u;
    cyv += d.y * v;
    cxv += d.x * v;
    cyu += d.y * u;
  }

  // Minimizing column-convention angle: sin t (Cxu+Cyv) + cos t (Cxv-Cyu) = 0
  // with the minimum at t = atan2(Cyu - Cxv, Cxu + Cyv).
  const double sin_num = cyu - cxv;
  const double cos_num = cxu + cyv;
  const double theta_col =
      (sin_num == 0.0 && cos_num == 0.0) ? 0.0 : std::atan2(sin_num, cos_num);

  // Convert to the paper's row-vector matrix convention: the matrix form
  // realizes "reflect across x, then rotate by -theta_matrix", so
  // theta_matrix = -theta_col for both reflection hypotheses.
  const Transform2D center = Transform2D::translation(-mu_src);
  const Transform2D rotate(-theta_col, reflect, {0.0, 0.0});
  const Transform2D uncenter = Transform2D::translation(mu_dst);
  Hypothesis h;
  h.transform = center.then(rotate).then(uncenter);
  for (std::size_t i = 0; i < src.size(); ++i) {
    h.error += distance_sq(h.transform.apply(src[i]), dst[i]);
  }
  return h;
}

}  // namespace

RigidFit fit_rigid(const std::vector<Vec2>& src, const std::vector<Vec2>& dst,
                   bool allow_reflection) {
  RigidFit fit;
  if (src.empty() || src.size() != dst.size()) return fit;

  Vec2 mu_src;
  Vec2 mu_dst;
  for (const auto& p : src) mu_src += p;
  for (const auto& p : dst) mu_dst += p;
  mu_src /= static_cast<double>(src.size());
  mu_dst /= static_cast<double>(dst.size());

  Hypothesis best = fit_hypothesis(src, dst, mu_src, mu_dst, /*reflect=*/false);
  if (allow_reflection) {
    const Hypothesis mirrored = fit_hypothesis(src, dst, mu_src, mu_dst, /*reflect=*/true);
    if (mirrored.error < best.error) best = mirrored;
  }
  fit.transform = best.transform;
  fit.sum_squared_error = best.error;
  fit.valid = true;
  return fit;
}

double fit_rmse(const RigidFit& fit, std::size_t n_points) {
  if (!fit.valid || n_points == 0) return 0.0;
  return std::sqrt(fit.sum_squared_error / static_cast<double>(n_points));
}

}  // namespace resloc::math
