#pragma once

// Runtime SIMD dispatch for the handful of block kernels whose throughput
// decides the per-pair measure budget. Binaries stay baseline x86-64 (CI
// runners and older fleets run them unchanged); the hot kernels carry
// per-function target attributes and are selected once per process from
// CPUID, so AVX2/AVX-512 machines get vectorized LCG and counter loops from
// the same build. On other platforms/toolchains the portable scalar
// fallbacks are the only path.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RESLOC_X86_SIMD 1
#else
#define RESLOC_X86_SIMD 0
#endif

namespace resloc::math {

#if RESLOC_X86_SIMD
/// AVX-512 subset the kernels use: F for the 512-bit integer core, DQ for
/// 64-bit lane multiplies, BW for byte-granular masks, VL for the 256-bit
/// forms. Evaluated once; __builtin_cpu_supports self-initializes.
inline bool cpu_has_avx512_kernels() {
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512dq") &&
                         __builtin_cpu_supports("avx512bw") &&
                         __builtin_cpu_supports("avx512vl");
  return ok;
}

inline bool cpu_has_avx2_kernels() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}
#else
inline bool cpu_has_avx512_kernels() { return false; }
inline bool cpu_has_avx2_kernels() { return false; }
#endif

}  // namespace resloc::math
