// Rigid transforms of the plane (rotation + optional reflection + translation)
// in the homogeneous-coordinate form used by Section 4.3.1 of the paper:
//
//   [x, y, 1] = [u, v, 1] * | cos t  -sin t  0 |
//                           | f sin t f cos t 0 |
//                           | tx      ty      1 |
//
// with reflection factor f in {+1, -1}. The distributed LSS algorithm composes
// and inverts these to align per-node local coordinate systems.
#pragma once

#include <ostream>

#include "math/vec2.hpp"

namespace resloc::math {

/// A rigid transform of the plane: p_target = R_f(theta) * p_source + t,
/// where R_f applies rotation by theta with reflection across the x-axis
/// first when f = -1 (matching the paper's matrix form).
class Transform2D {
 public:
  /// Identity transform.
  Transform2D() : cos_(1.0), sin_(0.0), f_(1.0), t_{0.0, 0.0} {}

  /// Builds a transform from angle, reflection factor and translation.
  Transform2D(double theta, bool reflect, Vec2 translation);

  /// Pure translation.
  static Transform2D translation(Vec2 t) { return Transform2D(0.0, false, t); }

  /// Pure rotation about the origin.
  static Transform2D rotation(double theta) { return Transform2D(theta, false, {0.0, 0.0}); }

  /// Applies the transform to a point.
  Vec2 apply(Vec2 p) const {
    // Row-vector convention from the paper: [u v] * [[c, -s],[f s, f c]] + t.
    return {p.x * cos_ + p.y * f_ * sin_ + t_.x, -p.x * sin_ + p.y * f_ * cos_ + t_.y};
  }

  /// Applies only the rotation/reflection part (for direction vectors).
  Vec2 apply_linear(Vec2 p) const {
    return {p.x * cos_ + p.y * f_ * sin_, -p.x * sin_ + p.y * f_ * cos_};
  }

  /// Composition: (a.then(b)).apply(p) == b.apply(a.apply(p)).
  Transform2D then(const Transform2D& b) const;

  /// Inverse transform.
  Transform2D inverse() const;

  double cos_theta() const { return cos_; }
  double sin_theta() const { return sin_; }
  /// Rotation angle in (-pi, pi].
  double theta() const;
  bool reflected() const { return f_ < 0.0; }
  Vec2 translation_part() const { return t_; }

  /// Maximum absolute difference in the 6 defining parameters.
  double max_param_diff(const Transform2D& o) const;

 private:
  Transform2D(double c, double s, double f, Vec2 t) : cos_(c), sin_(s), f_(f), t_(t) {}

  double cos_;
  double sin_;
  double f_;  // +1 or -1
  Vec2 t_;
};

std::ostream& operator<<(std::ostream& os, const Transform2D& t);

}  // namespace resloc::math
