#include "math/grid_pairs.hpp"

#include <algorithm>

namespace resloc::math {

namespace {

/// Grid cells are inflated past the cutoff so the cell-index argument
/// ("|dx| < cell implies indices differ by at most 1") survives floating-
/// point rounding even for pairs at exactly the cutoff distance (collinear
/// grids at exact spacing hit this boundary). 1e-6 relative slack dwarfs the
/// ~1e-10 worst-case rounding of coordinates within the grid's unclamped
/// +-2^20-cell range while adding no measurable candidates.
constexpr double kCellInflation = 1.0 + 1e-6;

}  // namespace

void GridPairEnumerator::build(const Vec2* points, std::size_t n, double cutoff_m,
                               bool include_equal) {
  n_ = n;
  pair_offsets_.assign(n + 1, 0);
  js_.clear();
  dist_.clear();
  adj_offsets_.assign(n + 1, 0);
  adj_ids_.clear();
  adj_dist_.clear();
  if (n < 2 || cutoff_m < 0.0 || (cutoff_m == 0.0 && !include_equal)) return;

  xs_.resize(n);
  ys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs_[i] = points[i].x;
    ys_[i] = points[i].y;
  }
  // cutoff 0 (coincident pairs only) still needs a positive cell size; any
  // value works, coincident points always share a cell.
  const double cell = cutoff_m > 0.0 ? cutoff_m * kCellInflation : 1.0;
  grid_.rebuild(xs_.data(), ys_.data(), n, cell);

  // Filter the candidate superset with the exact dense-scan predicate: the
  // same math::distance call, the same < or <= comparison, so the kept set
  // (and every stored distance) matches the dense scan bit for bit.
  cand_.clear();
  cand_dist_.clear();
  grid_.for_each_candidate_pair([&](std::size_t i, std::size_t j) {
    const double d = distance(points[i], points[j]);
    if (include_equal ? d <= cutoff_m : d < cutoff_m) {
      cand_.push_back((static_cast<std::uint64_t>(i) << 32) | j);
      cand_dist_.push_back(d);
    }
  });

  // Counting sort by i, carrying the distances, then per-bucket insertion
  // sort by j: restores (i, j)-lexicographic order in O(pairs) -- buckets are
  // a handful of near-sorted entries at any realistic density.
  for (const std::uint64_t pair : cand_) ++pair_offsets_[(pair >> 32) + 1];
  for (std::size_t i = 1; i <= n; ++i) pair_offsets_[i] += pair_offsets_[i - 1];
  js_.resize(cand_.size());
  dist_.resize(cand_.size());
  walk_.assign(pair_offsets_.begin(), pair_offsets_.end());
  for (std::size_t t = 0; t < cand_.size(); ++t) {
    const std::size_t slot = walk_[cand_[t] >> 32]++;
    js_[slot] = static_cast<std::uint32_t>(cand_[t] & 0xffffffffu);
    dist_[slot] = cand_dist_[t];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = pair_offsets_[i];
    const std::size_t end = pair_offsets_[i + 1];
    for (std::size_t a = begin + 1; a < end; ++a) {
      const std::uint32_t vj = js_[a];
      const double vd = dist_[a];
      std::size_t b = a;
      while (b > begin && js_[b - 1] > vj) {
        js_[b] = js_[b - 1];
        dist_[b] = dist_[b - 1];
        --b;
      }
      js_[b] = vj;
      dist_[b] = vd;
    }
  }

  // Symmetric adjacency by a second counting scatter in pair order. Node k's
  // slice fills with partners i < k first (while the outer index ascends to
  // k) and partners j > k after (while the outer index equals k), each run
  // ascending -- so the concatenation is already sorted, no per-node sort.
  for (std::size_t t = 0; t < js_.size(); ++t) ++adj_offsets_[js_[t] + 1];
  for (std::size_t i = 0; i < n; ++i) {
    adj_offsets_[i + 1] += pair_offsets_[i + 1] - pair_offsets_[i];
  }
  for (std::size_t i = 1; i <= n; ++i) adj_offsets_[i] += adj_offsets_[i - 1];
  adj_ids_.resize(2 * js_.size());
  adj_dist_.resize(2 * js_.size());
  walk_.assign(adj_offsets_.begin(), adj_offsets_.end());
  for_each_pair([&](std::size_t i, std::size_t j, double d) {
    std::size_t slot = walk_[i]++;
    adj_ids_[slot] = static_cast<std::uint32_t>(j);
    adj_dist_[slot] = d;
    slot = walk_[j]++;
    adj_ids_[slot] = static_cast<std::uint32_t>(i);
    adj_dist_[slot] = d;
  });
}

}  // namespace resloc::math
