// In-range pair enumeration over a 2-D point set by spatial-grid culling,
// replayed in the dense scan's order.
//
// The measurement-acquisition front end (acoustic campaigns, synthetic
// measurement generators, augmentation) repeatedly needs "every unordered
// pair closer than a cutoff" over deployments whose measurement graphs are
// sparse -- the paper's own premise (Section 3: acoustic ranging is
// short-range, so almost every pair of a large field is out of range). A
// dense scan pays O(n^2) distance computations to find O(n) survivors; this
// enumerator buckets the points into cells of (slightly more than) the cutoff
// via SpatialHashGrid and keeps only candidate pairs sharing a 3x3 cell
// block, O(n + candidates).
//
// Replay order is the contract: the kept pairs are stored grouped by i with
// ascending j (the dense scan's (i, j)-lexicographic order, restored by the
// same counting-bucket + per-bucket insertion sort the LSS constraint scan
// uses), and the per-node neighbor lists visit ascending ids (the order a
// dense per-source receiver loop visits them). Every distance is computed
// once, by the same math::distance(points[i], points[j]) call the dense scan
// makes -- distance is bitwise symmetric in its arguments -- so consumers
// that draw RNG per kept pair in replay order produce byte-identical results
// to their dense counterparts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/spatial_hash_grid.hpp"
#include "math/vec2.hpp"

namespace resloc::math {

class GridPairEnumerator {
 public:
  /// Rebuilds over points[0..n): keeps every unordered pair (i < j) whose
  /// distance d satisfies d < cutoff_m, or d <= cutoff_m when include_equal
  /// is set (the two comparisons the measurement generators and the campaign
  /// cutoff use, respectively). Internal buffers are reused across rebuilds.
  /// A negative cutoff keeps nothing; cutoff 0 with include_equal keeps only
  /// coincident pairs. Throws std::length_error past SpatialHashGrid's 2^21
  /// point cap.
  void build(const Vec2* points, std::size_t n, double cutoff_m, bool include_equal);

  std::size_t point_count() const { return n_; }
  std::size_t pair_count() const { return js_.size(); }

  /// In-range neighbor count of node i (both directions), O(1).
  std::size_t degree(std::size_t i) const {
    return adj_offsets_[i + 1] - adj_offsets_[i];
  }

  /// Invokes fn(i, j, distance_m) for every kept pair, i < j, in the dense
  /// scan's (i asc, j asc) order.
  template <typename Fn>
  void for_each_pair(Fn&& fn) const {
    std::size_t t = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t end = pair_offsets_[i + 1];
      for (; t < end; ++t) fn(i, static_cast<std::size_t>(js_[t]), dist_[t]);
    }
  }

  /// Invokes fn(j, distance_m) for every in-range neighbor j of node i
  /// (either side of the unordered pair), in ascending j -- the order a
  /// dense receiver scan `for (j = 0; j < n; ++j)` visits the survivors.
  template <typename Fn>
  void for_each_neighbor(std::size_t i, Fn&& fn) const {
    for (std::size_t t = adj_offsets_[i]; t < adj_offsets_[i + 1]; ++t) {
      fn(static_cast<std::size_t>(adj_ids_[t]), adj_dist_[t]);
    }
  }

 private:
  std::size_t n_ = 0;
  SpatialHashGrid grid_;
  std::vector<double> xs_, ys_;  // split coordinates for the grid rebuild

  // Kept pairs as CSR over i: js_/dist_[pair_offsets_[i] .. pair_offsets_[i+1])
  // are node i's ascending partners j > i with their distances.
  std::vector<std::uint32_t> pair_offsets_;
  std::vector<std::uint32_t> js_;
  std::vector<double> dist_;

  // Symmetric adjacency as CSR: both directions of every kept pair, ascending.
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<std::uint32_t> adj_ids_;
  std::vector<double> adj_dist_;

  // Scatter scratch, reused across builds.
  std::vector<std::uint64_t> cand_;       // packed (i << 32) | j, emission order
  std::vector<double> cand_dist_;
  std::vector<std::uint32_t> walk_;
};

}  // namespace resloc::math
