#include "math/spatial_hash_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resloc::math {

namespace {

/// floor(v / cell) as a biased 21-bit cell coordinate. The clamp keeps
/// out-of-range and non-finite values (NaN fails both comparisons and lands
/// at 0) inside the packing instead of invoking UB; clamped points merge into
/// the boundary cells, which only ever adds candidates.
std::uint64_t biased_coord(double v, double inv_cell) {
  constexpr double kBias = 1048576.0;  // 2^20
  const double c = std::floor(v * inv_cell) + kBias;
  // Negated comparison so NaN takes the clamp branch: a plain `c <= 0.0` is
  // false for NaN and would fall through into an undefined float->int cast.
  if (!(c > 0.0)) return 0;
  if (c >= 2097151.0) return 2097151;  // 2^21 - 1
  return static_cast<std::uint64_t>(c);
}

}  // namespace

void SpatialHashGrid::rebuild(const double* xs, const double* ys, std::size_t n,
                              double cell_size) {
  if (n > kMaxPoints) {
    throw std::length_error("SpatialHashGrid: point count exceeds 2^21");
  }
  count_ = n;
  entries_.resize(n);
  cell_of_.resize(n);
  const double inv_cell = 1.0 / cell_size;
  std::uint64_t min_row = ~std::uint64_t{0};
  std::uint64_t max_row = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t row = biased_coord(ys[i], inv_cell);
    const std::uint64_t col = biased_coord(xs[i], inv_cell);
    cell_of_[i] = (row << kCoordBits) | col;
    entries_[i] = (row << (2 * kCoordBits)) | (col << kCoordBits) | i;
    min_row = std::min(min_row, row);
    max_row = std::max(max_row, row);
  }
  if (n == 0) return;

  // Sorting the packed words is the rebuild's dominant cost, and a
  // comparison sort pays ~n log n branchy compares per evaluation. Real
  // configurations occupy a band of rows proportional to the field height,
  // so a counting sort over rows followed by small per-row sorts is ~2-4x
  // cheaper; widely scattered rows (diverged descent) fall back to one
  // comparison sort.
  const std::uint64_t row_range = max_row - min_row + 1;
  if (row_range > 4 * n + 16) {
    std::sort(entries_.begin(), entries_.end());
    return;
  }
  row_offsets_.assign(static_cast<std::size_t>(row_range) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++row_offsets_[static_cast<std::size_t>((entries_[i] >> (2 * kCoordBits)) - min_row) + 1];
  }
  for (std::size_t r = 1; r < row_offsets_.size(); ++r) row_offsets_[r] += row_offsets_[r - 1];
  scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>((entries_[i] >> (2 * kCoordBits)) - min_row);
    scratch_[row_offsets_[r]++] = entries_[i];
  }
  entries_.swap(scratch_);
  // row_offsets_[r] now marks the end of row r's span; sort each row by
  // (col, id). Rows are a handful of points, so insertion sort wins there;
  // clustered configurations degrade gracefully to std::sort.
  std::size_t begin = 0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(row_range); ++r) {
    const std::size_t end = row_offsets_[r];
    const std::size_t len = end - begin;
    if (len > 32) {
      std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(begin),
                entries_.begin() + static_cast<std::ptrdiff_t>(end));
    } else if (len > 1) {
      for (std::size_t a = begin + 1; a < end; ++a) {
        const std::uint64_t v = entries_[a];
        std::size_t b = a;
        while (b > begin && entries_[b - 1] > v) {
          entries_[b] = entries_[b - 1];
          --b;
        }
        entries_[b] = v;
      }
    }
    begin = end;
  }
}

std::size_t SpatialHashGrid::row_span_begin(std::int64_t r, std::int64_t col_from) const {
  const std::int64_t col = std::max<std::int64_t>(col_from, 0);
  const std::uint64_t probe = (static_cast<std::uint64_t>(r) << (2 * kCoordBits)) |
                              (static_cast<std::uint64_t>(col) << kCoordBits);
  return static_cast<std::size_t>(
      std::lower_bound(entries_.begin(), entries_.end(), probe) - entries_.begin());
}

}  // namespace resloc::math
