#include "math/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace resloc::math {

std::vector<Vec2> intersect(const Circle& a, const Circle& b) {
  const Vec2 delta = b.center - a.center;
  const double d = delta.norm();
  if (d == 0.0) return {};  // concentric (or identical): no usable points
  if (d > a.radius + b.radius) return {};
  if (d < std::abs(a.radius - b.radius)) return {};  // one inside the other

  // Distance from a.center to the chord midpoint along the center line.
  const double along = (a.radius * a.radius - b.radius * b.radius + d * d) / (2.0 * d);
  const double h_sq = a.radius * a.radius - along * along;
  const Vec2 mid = a.center + delta * (along / d);
  if (h_sq <= 0.0) {
    return {mid};  // tangency (within FP tolerance)
  }
  const double h = std::sqrt(h_sq);
  const Vec2 offset = delta.perp() * (h / d);
  return {mid + offset, mid - offset};
}

bool satisfies_triangle_inequality(double a, double b, double c) {
  return satisfies_triangle_inequality(a, b, c, 0.0);
}

bool satisfies_triangle_inequality(double a, double b, double c, double tolerance) {
  const double slack = 1.0 + tolerance;
  return a <= (b + c) * slack && b <= (a + c) * slack && c <= (a + b) * slack;
}

namespace {

/// Minimal union-find over indices 0..n-1.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<std::vector<std::size_t>> cluster_points(const std::vector<Vec2>& points,
                                                     double radius) {
  const std::size_t n = points.size();
  DisjointSets sets(n);
  const double r_sq = radius * radius;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (distance_sq(points[i], points[j]) <= r_sq) sets.unite(i, j);
    }
  }
  // Group indices by root, preserving first-appearance order of clusters.
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<std::ptrdiff_t> root_to_cluster(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.find(i);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = static_cast<std::ptrdiff_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(root_to_cluster[root])].push_back(i);
  }
  return clusters;
}

std::vector<std::size_t> largest_cluster(const std::vector<Vec2>& points, double radius) {
  auto clusters = cluster_points(points, radius);
  if (clusters.empty()) return {};
  const auto best = std::max_element(
      clusters.begin(), clusters.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  return *best;
}

Vec2 centroid(const std::vector<Vec2>& points) {
  if (points.empty()) return {};
  Vec2 sum;
  for (const auto& p : points) sum += p;
  return sum / static_cast<double>(points.size());
}

double point_line_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len = ab.norm();
  if (len == 0.0) return distance(p, a);
  return std::abs(ab.cross(p - a)) / len;
}

double collinearity_height(Vec2 a, Vec2 b, Vec2 c) {
  const double area2 = std::abs((b - a).cross(c - a));  // twice the triangle area
  const double ab = distance(a, b);
  const double bc = distance(b, c);
  const double ca = distance(c, a);
  const double longest = std::max({ab, bc, ca});
  if (longest == 0.0) return 0.0;
  // Each height = 2*area / base; the smallest height uses the longest base.
  return area2 / longest;
}

}  // namespace resloc::math
