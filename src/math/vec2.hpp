// 2-D vector type used throughout the localization library.
//
// The paper works entirely in the plane (node positions, range circles,
// rigid transforms), so a small value type with the usual Euclidean
// operations is the workhorse of every module.
#pragma once

#include <cmath>
#include <ostream>

namespace resloc::math {

/// A point or displacement in the plane. Plain aggregate; cheap to copy.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  Vec2& operator/=(double s) {
    x /= s;
    y /= s;
    return *this;
  }

  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }
  constexpr bool operator!=(const Vec2& o) const { return !(*this == o); }

  /// Dot product.
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// Z-component of the 3-D cross product (signed parallelogram area).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  /// Squared Euclidean norm. Prefer over norm() when comparing magnitudes.
  constexpr double norm_sq() const { return x * x + y * y; }

  /// Euclidean norm.
  double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector in the same direction. Undefined for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return {x / n, y / n};
  }

  /// Counter-clockwise rotation by `theta` radians about the origin.
  Vec2 rotated(double theta) const {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {c * x - s * y, s * x + c * y};
  }

  /// The vector rotated 90 degrees counter-clockwise.
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared Euclidean distance between two points.
constexpr double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace resloc::math
