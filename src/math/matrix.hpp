// Dense dynamically-sized matrix with the small set of operations the
// localization algorithms need: products, transposes, symmetric
// eigendecomposition support (see jacobi_eigen.hpp), and the double-centering
// step of classical MDS.
//
// This is deliberately a minimal, obvious implementation: matrices here are
// at most a few hundred rows (one per sensor node), so cache-blocking tricks
// would be noise. Row-major storage.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <vector>

namespace resloc::math {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows` x `cols` matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (row by row).
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      assert(row.size() == cols_ && "ragged initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// The n x n identity matrix.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }
  bool operator!=(const Matrix& o) const { return !(*this == o); }

  Matrix operator+(const Matrix& o) const {
    assert(same_shape(o));
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + o.data_[i];
    return out;
  }

  Matrix operator-(const Matrix& o) const {
    assert(same_shape(o));
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - o.data_[i];
    return out;
  }

  Matrix operator*(double s) const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
    return out;
  }

  /// Matrix product.
  Matrix operator*(const Matrix& o) const {
    assert(cols_ == o.rows_);
    Matrix out(rows_, o.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double a = (*this)(i, k);
        if (a == 0.0) continue;
        for (std::size_t j = 0; j < o.cols_; ++j) {
          out(i, j) += a * o(k, j);
        }
      }
    }
    return out;
  }

  /// Transposed copy.
  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  /// Largest absolute off-diagonal element; convergence measure for Jacobi.
  double max_off_diagonal() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Applies MDS double centering: B = -1/2 * J * M * J with J = I - 11^T/n.
  /// `*this` must be square (typically a matrix of squared distances).
  Matrix double_centered() const;

  bool same_shape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace resloc::math
