#include "math/matrix.hpp"

#include <cmath>

namespace resloc::math {

double Matrix::max_off_diagonal() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (r == c) continue;
      best = std::max(best, std::abs((*this)(r, c)));
    }
  }
  return best;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Matrix Matrix::double_centered() const {
  assert(rows_ == cols_);
  const std::size_t n = rows_;
  if (n == 0) return {};

  std::vector<double> row_mean(n, 0.0);
  std::vector<double> col_mean(n, 0.0);
  double total_mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const double v = (*this)(r, c);
      row_mean[r] += v;
      col_mean[c] += v;
      total_mean += v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    row_mean[i] /= static_cast<double>(n);
    col_mean[i] /= static_cast<double>(n);
  }
  total_mean /= static_cast<double>(n * n);

  Matrix out(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      out(r, c) = -0.5 * ((*this)(r, c) - row_mean[r] - col_mean[c] + total_mean);
    }
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 == m.cols() ? "" : " ");
    }
    os << (r + 1 == m.rows() ? "]" : "\n");
  }
  return os;
}

}  // namespace resloc::math
