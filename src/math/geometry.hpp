// Planar geometry kernels for the intersection consistency check of
// Section 4.1.2: range-circle intersection and point clustering.
#pragma once

#include <cstddef>
#include <vector>

#include "math/vec2.hpp"

namespace resloc::math {

/// A circle in the plane; for localization, center = anchor position and
/// radius = measured distance to the node being localized.
struct Circle {
  Vec2 center;
  double radius = 0.0;
};

/// Intersection points of two circles: 0, 1 (tangency) or 2 points.
/// Concentric or identical circles yield no points.
std::vector<Vec2> intersect(const Circle& a, const Circle& b);

/// Returns true iff the three lengths can form a (possibly degenerate)
/// triangle: each side no longer than the sum of the other two. The ranging
/// service uses the converse to flag inconsistent distance triples
/// (Section 3.5, "consistency checking").
bool satisfies_triangle_inequality(double a, double b, double c);

/// Same check with a multiplicative slack: sides may exceed the sum of the
/// other two by `tolerance` fraction before being flagged. Measurements carry
/// noise, so a strict check would reject valid triples.
bool satisfies_triangle_inequality(double a, double b, double c, double tolerance);

/// Partition of points into clusters by single linkage: two points belong to
/// the same cluster iff a chain of points with consecutive gaps <= radius
/// connects them. Returned clusters hold indices into `points`.
std::vector<std::vector<std::size_t>> cluster_points(const std::vector<Vec2>& points,
                                                     double radius);

/// Indices of the largest single-linkage cluster (ties: lowest first index).
/// Empty when `points` is empty.
std::vector<std::size_t> largest_cluster(const std::vector<Vec2>& points, double radius);

/// Centroid of a point set. Zero vector for an empty set.
Vec2 centroid(const std::vector<Vec2>& points);

/// Perpendicular distance from point `p` to the infinite line through a, b.
/// Returns distance(p, a) when a == b.
double point_line_distance(Vec2 p, Vec2 a, Vec2 b);

/// Measures how close three points are to collinear: the smallest of the
/// three triangle heights. Near-zero means nearly collinear. Used to reason
/// about the ill-conditioned anchor geometries of Figure 11.
double collinearity_height(Vec2 a, Vec2 b, Vec2 c);

}  // namespace resloc::math
