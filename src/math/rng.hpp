// Deterministic random number generation.
//
// Every stochastic component in the reproduction (acoustic noise, deployment
// jitter, gradient-descent restarts, synthetic measurement errors) draws from
// an explicitly seeded generator so that every experiment, test, and bench is
// bit-reproducible. We implement PCG32 (O'Neill, 2014) from scratch: it is
// tiny, fast, statistically solid, and has well-defined cross-platform output,
// unlike std::default_random_engine. Distribution sampling is also hand-rolled
// (Box-Muller for Gaussians) because libstdc++'s std::normal_distribution is
// not guaranteed to produce identical streams across versions.
#pragma once

#include <cstdint>
#include <vector>

namespace resloc::math {

/// PCG32 pseudo-random generator (XSH-RR variant), 64-bit state.
class Rng {
 public:
  /// Seeds the generator. `stream` selects one of 2^63 independent sequences.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t stream = 1);

  /// Next raw 32-bit output.
  std::uint32_t next_u32();

  /// The 53-bit integer behind uniform(): uniform() == uniform_bits() * 2^-53
  /// exactly (the conversion is a power-of-two scaling of an integer below
  /// 2^53, so it is lossless). Block kernels compare these integers against
  /// precomputed bernoulli_threshold() values to keep their inner loops free
  /// of floating point while drawing the identical stream.
  std::uint64_t uniform_bits();

  /// Integer form of a Bernoulli comparison:
  ///     uniform() < p   <=>   uniform_bits() < bernoulli_threshold(p)
  /// for every double p. For p in (0, 1), p * 2^53 is exact (power-of-two
  /// scaling), so ceil(p * 2^53) splits the 53-bit lattice at exactly the
  /// same point the double comparison does.
  static std::uint64_t bernoulli_threshold(double p);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), using rejection for exactness.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian sample with the given mean and standard deviation (Box-Muller).
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p);

  /// Exponential sample with the given rate parameter lambda.
  double exponential(double lambda);

  /// Writes exactly the next `n` uniform_bits() draws to `out` and leaves the
  /// generator in the same state n sequential calls would. Internally the raw
  /// u32 sequence is split across 8 independent LCG lanes via the jump-by-8
  /// affine map, so the 8 state multiplies per iteration have no dependency
  /// chain between them -- the serial PCG recurrence is the block-DSP hot
  /// path's floor, and this is how it is broken without changing one output.
  void fill_uniform_bits_block(std::uint64_t* out, std::size_t n);

  /// Writes exactly the next `n` gaussian(0, 1) draws to `out`, including the
  /// Box-Muller cached-second-normal behaviour (a cached half pending before
  /// the call is consumed first; one may be left pending after). Standard
  /// normals only: gaussian(0, sigma) == sigma * gaussian(0, 1) bit for bit,
  /// so callers scale in their own vectorizable pass.
  void fill_gaussian_block(double* out, std::size_t n);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `min(k, n)` distinct indices from [0, n) in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; used to give each simulated node
  /// or experiment repetition its own stream without correlation.
  Rng split();

  /// Derives the `stream_index`-th substream of this generator without
  /// advancing it (SplitMix64 over the current state, the stream selector,
  /// and the index). fork(i) depends on the parent's CURRENT state -- for a
  /// freshly seeded parent that has produced no draws, that is exactly its
  /// seed material, which is how the campaign runner gets its replay recipe:
  /// Rng(seed).fork(i) is the same stream from any thread, in any order.
  /// A parent that has already drawn yields a different (still
  /// deterministic) substream family. Distinct indices are decorrelated.
  Rng fork(std::uint64_t stream_index) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace resloc::math
