// Uniform spatial grid over 2-D points.
//
// Built for the LSS solvers' minimum-spacing soft constraint (Section 4.2.1):
// every objective evaluation must find the dynamic active set of point pairs
// closer than d_min. A dense scan is O(n^2) per evaluation; bucketing points
// into square cells of side d_min reduces it to O(n log n + candidate pairs),
// because any pair within d_min of each other is guaranteed to land in the
// same or an adjacent cell (|dx| < cell implies cell indices differ by at
// most 1).
//
// The grid is rebuilt from scratch on every evaluation -- configurations move
// each gradient step -- so the implementation is tuned for rebuild + one
// enumeration pass, not for incremental updates: each point's (row, col, id)
// is packed into one 64-bit word and the words are sorted. Candidate pairs
// then fall out of a single merge-sweep over adjacent rows with no hashing
// and no per-point queries; all storage is reused across rebuilds, so
// steady-state rebuilds are allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace resloc::math {

class SpatialHashGrid {
 public:
  /// Cell coordinates occupy 21 bits per axis and the point id the remaining
  /// 21, so one sortable word holds all three. 2^21 points is far beyond any
  /// deployment this repo simulates; rebuild() throws std::length_error past
  /// it rather than corrupting the packing.
  static constexpr std::size_t kMaxPoints = std::size_t{1} << 21;

  /// Rebuilds the grid over the n points (xs[i], ys[i]) with square cells of
  /// side `cell_size` (must be > 0). Previous contents are discarded; internal
  /// buffers are reused. Cell coordinates are clamped to +/-2^20 cells from
  /// the origin (~10^7 m at LSS cell sizes); beyond that -- including
  /// non-finite coordinates from a diverged descent step -- points collapse
  /// into the boundary cells, which can only add candidate pairs, never lose
  /// a genuine neighbor.
  void rebuild(const double* xs, const double* ys, std::size_t n, double cell_size);

  std::size_t point_count() const { return count_; }

  /// Invokes fn(j) for every point j stored in the 3x3 block of cells centred
  /// on point i's cell -- a superset of all points within cell_size of point
  /// i. Includes i itself; emits each candidate exactly once, in unspecified
  /// order.
  template <typename Fn>
  void for_each_neighborhood_point(std::size_t i, Fn&& fn) const {
    const std::int64_t row = static_cast<std::int64_t>(cell_of_[i] >> kCoordBits);
    const std::int64_t col = static_cast<std::int64_t>(cell_of_[i] & kCoordMask);
    for (std::int64_t r = row - 1; r <= row + 1; ++r) {
      if (r < 0 || r > kCoordMask) continue;
      const std::size_t begin = row_span_begin(r, col - 1);
      for (std::size_t t = begin; t < entries_.size(); ++t) {
        const std::uint64_t e = entries_[t];
        if (static_cast<std::int64_t>(e >> (2 * kCoordBits)) != r ||
            static_cast<std::int64_t>((e >> kCoordBits) & kCoordMask) > col + 1) {
          break;
        }
        fn(static_cast<std::size_t>(e & kCoordMask));
      }
    }
  }

  /// Invokes fn(i, j) with i < j for every unordered pair of points sharing a
  /// 3x3 cell neighborhood -- a superset of all pairs closer than cell_size.
  /// Each pair is emitted exactly once, in spatial (not id) order; callers
  /// needing the dense scan's (i, j)-lexicographic order must sort. One
  /// merge-sweep over the sorted entries: O(n + emitted pairs).
  template <typename Fn>
  void for_each_candidate_pair(Fn&& fn) const {
    const std::size_t n = entries_.size();
    std::size_t row_begin = 0;
    while (row_begin < n) {
      const std::uint64_t row = entries_[row_begin] >> (2 * kCoordBits);
      std::size_t row_end = row_begin;
      while (row_end < n && (entries_[row_end] >> (2 * kCoordBits)) == row) ++row_end;

      // Pairs within the row: same cell and the (+1, 0) neighbor. The scan
      // from t+1 stops at the first entry more than one cell to the right.
      for (std::size_t t = row_begin; t < row_end; ++t) {
        const std::int64_t col =
            static_cast<std::int64_t>((entries_[t] >> kCoordBits) & kCoordMask);
        for (std::size_t u = t + 1; u < row_end; ++u) {
          if (static_cast<std::int64_t>((entries_[u] >> kCoordBits) & kCoordMask) > col + 1) break;
          emit(entries_[t], entries_[u], fn);
        }
      }

      // Pairs against the next row, if it is row + 1: a monotone window of
      // columns [col - 1, col + 1] per entry ((-1,+1), (0,+1), (+1,+1)).
      if (row_end < n && (entries_[row_end] >> (2 * kCoordBits)) == row + 1) {
        std::size_t next_end = row_end;
        while (next_end < n && (entries_[next_end] >> (2 * kCoordBits)) == row + 1) ++next_end;
        std::size_t window = row_end;
        for (std::size_t t = row_begin; t < row_end; ++t) {
          const std::int64_t col =
              static_cast<std::int64_t>((entries_[t] >> kCoordBits) & kCoordMask);
          while (window < next_end &&
                 static_cast<std::int64_t>((entries_[window] >> kCoordBits) & kCoordMask) <
                     col - 1) {
            ++window;
          }
          for (std::size_t u = window; u < next_end; ++u) {
            if (static_cast<std::int64_t>((entries_[u] >> kCoordBits) & kCoordMask) > col + 1) {
              break;
            }
            emit(entries_[t], entries_[u], fn);
          }
        }
      }
      row_begin = row_end;
    }
  }

 private:
  static constexpr int kCoordBits = 21;
  static constexpr std::int64_t kCoordMask = (std::int64_t{1} << kCoordBits) - 1;

  template <typename Fn>
  static void emit(std::uint64_t a, std::uint64_t b, Fn&& fn) {
    const auto ia = static_cast<std::size_t>(a & kCoordMask);
    const auto ib = static_cast<std::size_t>(b & kCoordMask);
    if (ia < ib) {
      fn(ia, ib);
    } else {
      fn(ib, ia);
    }
  }

  /// First sorted position with row `r` and column >= `col_from`.
  std::size_t row_span_begin(std::int64_t r, std::int64_t col_from) const;

  std::size_t count_ = 0;
  std::vector<std::uint64_t> entries_;  ///< (row << 42) | (col << 21) | id, sorted
  std::vector<std::uint64_t> cell_of_;  ///< per point: (row << 21) | col
  std::vector<std::uint32_t> row_offsets_;  ///< counting-sort scratch
  std::vector<std::uint64_t> scratch_;      ///< counting-sort scratch
};

}  // namespace resloc::math
