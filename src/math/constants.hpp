// Scalar math constants shared across the library.
#pragma once

namespace resloc::math {

/// pi as a double (std::numbers::pi is C++20; this library targets C++17).
inline constexpr double kPi = 3.141592653589793238462643383279502884;

}  // namespace resloc::math
