#include "math/gradient_descent.hpp"

#include <cmath>

namespace resloc::math {

namespace {

double inf_norm(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

}  // namespace

GradientDescentResult minimize(const Objective& objective, std::vector<double> x0,
                               const GradientDescentOptions& options) {
  GradientDescentResult result;
  const std::size_t n = x0.size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> candidate(n, 0.0);
  std::vector<double> candidate_grad(n, 0.0);

  double error = objective(x0, grad);
  double step = options.step_size;

  result.x = x0;
  result.error = error;
  if (options.record_trace) result.error_trace.push_back(error);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double grad_norm = inf_norm(grad);
    if (grad_norm <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    for (std::size_t i = 0; i < n; ++i) candidate[i] = result.x[i] - step * grad[i];
    double candidate_error = objective(candidate, candidate_grad);

    if (options.adaptive) {
      // Backtrack: shrink the step until the error stops increasing (or the
      // step collapses, which we treat as convergence).
      int backtracks = 0;
      while (candidate_error > error && backtracks < 40) {
        step *= 0.5;
        for (std::size_t i = 0; i < n; ++i) candidate[i] = result.x[i] - step * grad[i];
        candidate_error = objective(candidate, candidate_grad);
        ++backtracks;
      }
      if (candidate_error > error) {
        result.converged = true;  // no descent direction progress possible
        break;
      }
      if (backtracks == 0) step *= 1.1;  // reward: cautiously grow the step
    }

    const double improvement = error - candidate_error;
    result.x.swap(candidate);
    grad.swap(candidate_grad);
    error = candidate_error;
    result.error = error;
    ++result.iterations;
    if (options.record_trace) result.error_trace.push_back(error);

    if (improvement >= 0.0 && improvement <= options.relative_tolerance * std::abs(error)) {
      result.converged = true;
      break;
    }
  }
  return result;
}

GradientDescentResult minimize_with_restarts(const Objective& objective, std::vector<double> x0,
                                             const GradientDescentOptions& options,
                                             const RestartOptions& restart, Rng& rng) {
  GradientDescentResult best;
  bool have_best = false;
  std::vector<double> seed = std::move(x0);

  for (int round = 0; round < restart.rounds; ++round) {
    GradientDescentResult r = minimize(objective, seed, options);
    if (!have_best || r.error < best.error) {
      // Keep the longest trace view: append this round's trace to the tail.
      if (have_best && options.record_trace) {
        r.error_trace.insert(r.error_trace.begin(), best.error_trace.begin(),
                             best.error_trace.end());
      }
      best = std::move(r);
      have_best = true;
    } else if (options.record_trace) {
      // Record that a round happened without improvement, keeping the best E.
      best.error_trace.push_back(best.error);
    }
    // Perturb the best-so-far configuration as the next seed (Section 4.2.1).
    seed = best.x;
    for (double& v : seed) v += rng.gaussian(0.0, restart.perturbation_stddev);
  }
  return best;
}

}  // namespace resloc::math
