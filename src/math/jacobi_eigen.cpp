#include "math/jacobi_eigen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace resloc::math {

EigenDecomposition jacobi_eigen_decomposition(Matrix a, double tolerance, int max_sweeps) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (a.max_off_diagonal() <= tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tolerance) continue;

        // Classic Jacobi rotation annihilating a(p, q).
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t lhs, std::size_t rhs) { return diag[lhs] > diag[rhs]; });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.eigenvalues[i] = diag[order[i]];
    for (std::size_t r = 0; r < n; ++r) out.eigenvectors(r, i) = v(r, order[i]);
  }
  return out;
}

}  // namespace resloc::math
