#include "math/rng.hpp"

#include <cassert>
#include <cmath>
#include "math/constants.hpp"
#include "math/simd_dispatch.hpp"

#if RESLOC_X86_SIMD
// GCC's unary AVX-512 intrinsics pass _mm512_undefined_epi32() as the
// masked-off source operand; with a full mask that operand is never read,
// but -Wmaybe-uninitialized cannot see through the builtin and flags it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#endif

namespace resloc::math {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;

/// PCG32 XSH-RR output permutation of a raw LCG state.
inline std::uint32_t pcg_output(std::uint64_t state) {
  const auto xorshifted = static_cast<std::uint32_t>(((state >> 18u) ^ state) >> 27u);
  const auto rot = static_cast<std::uint32_t>(state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

// SplitMix64 finalizer (Steele et al., 2014): a strong 64 -> 64 bit mixer
// whose outputs for consecutive inputs are statistically independent, which
// is exactly what substream derivation needs.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// 16-lane jump-ahead seed block shared by every fill_bits_groups variant:
/// lane r starts at the state of raw u32 index r, and (jump_mul, jump_add)
/// advance any lane by 16 raw steps. Jump constants by doubling: if
/// s' = A s + C jumps L steps, then A^2 s + (A + 1) C jumps 2L; four
/// doublings give jump-by-16.
struct LaneSetup {
  std::uint64_t s[16];
  std::uint64_t jump_mul;
  std::uint64_t jump_add;
};

LaneSetup lane_setup(std::uint64_t state, std::uint64_t inc) {
  LaneSetup ls;
  ls.s[0] = state;
  for (int r = 1; r < 16; ++r) ls.s[r] = ls.s[r - 1] * kMultiplier + inc;
  ls.jump_mul = kMultiplier;
  ls.jump_add = inc;
  for (int d = 0; d < 4; ++d) {
    ls.jump_add *= ls.jump_mul + 1;
    ls.jump_mul *= ls.jump_mul;
  }
  return ls;
}

/// Portable body of fill_uniform_bits_block: emits `groups` * 8 uniforms
/// (16 raw u32 outputs per group) and returns the LCG state after
/// 16 * groups raw steps -- exactly the sequential state. Lane r carries the
/// states of raw indices congruent to r mod 16, so the serial multiply
/// dependency becomes 16 independent chains.
std::uint64_t fill_bits_groups(std::uint64_t state, std::uint64_t inc, std::uint64_t* out,
                               std::size_t groups) {
  LaneSetup ls = lane_setup(state, inc);
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint32_t o[16];
    for (int r = 0; r < 16; ++r) {
      o[r] = pcg_output(ls.s[r]);
      ls.s[r] = ls.s[r] * ls.jump_mul + ls.jump_add;
    }
    for (int j = 0; j < 8; ++j) {
      out[8 * g + j] =
          ((static_cast<std::uint64_t>(o[2 * j]) << 32) | o[2 * j + 1]) >> 11;
    }
  }
  return ls.s[0];  // lane 0 holds raw index 16 * groups = the sequential state
}

#if RESLOC_X86_SIMD

/// AVX-512 variant: two vectors of 8 LCG lanes. XSH-RR maps directly onto
/// the ISA -- 64-bit lane multiply (vpmullq), truncating narrow
/// (vpmovqd), and the per-lane 32-bit variable rotate is a single vprorvd.
__attribute__((target("avx512f,avx512dq,avx512vl")))
std::uint64_t fill_bits_groups_avx512(std::uint64_t state, std::uint64_t inc,
                                      std::uint64_t* out, std::size_t groups) {
  const LaneSetup ls = lane_setup(state, inc);
  __m512i s0 = _mm512_loadu_si512(ls.s);
  __m512i s1 = _mm512_loadu_si512(ls.s + 8);
  const __m512i jm = _mm512_set1_epi64(static_cast<long long>(ls.jump_mul));
  const __m512i ja = _mm512_set1_epi64(static_cast<long long>(ls.jump_add));
  for (std::size_t g = 0; g < groups; ++g) {
    const __m512i x0 =
        _mm512_srli_epi64(_mm512_xor_si512(_mm512_srli_epi64(s0, 18), s0), 27);
    const __m512i x1 =
        _mm512_srli_epi64(_mm512_xor_si512(_mm512_srli_epi64(s1, 18), s1), 27);
    const __m256i o0 = _mm256_rorv_epi32(_mm512_cvtepi64_epi32(x0),
                                         _mm512_cvtepi64_epi32(_mm512_srli_epi64(s0, 59)));
    const __m256i o1 = _mm256_rorv_epi32(_mm512_cvtepi64_epi32(x1),
                                         _mm512_cvtepi64_epi32(_mm512_srli_epi64(s1, 59)));
    // out[j] = ((u64)o[2j] << 32 | o[2j+1]) >> 11: in the little-endian u64
    // view adjacent u32 lanes sit swapped, so one 32-bit element swap plus a
    // 64-bit shift produces four outputs per vector.
    const __m256i p0 =
        _mm256_srli_epi64(_mm256_shuffle_epi32(o0, _MM_SHUFFLE(2, 3, 0, 1)), 11);
    const __m256i p1 =
        _mm256_srli_epi64(_mm256_shuffle_epi32(o1, _MM_SHUFFLE(2, 3, 0, 1)), 11);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g), p0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g + 4), p1);
    s0 = _mm512_add_epi64(_mm512_mullo_epi64(s0, jm), ja);
    s1 = _mm512_add_epi64(_mm512_mullo_epi64(s1, jm), ja);
  }
  std::uint64_t tail[8];
  _mm512_storeu_si512(tail, s0);
  return tail[0];
}

/// 64 x 64 -> low 64 multiply from 32-bit partial products (AVX2 has no
/// 64-bit lane multiply): lo*lo + ((hi*lo + lo*hi) << 32).
__attribute__((target("avx2")))
inline __m256i mullo64_avx2(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// AVX2 variant: four vectors of 4 LCG lanes, grouped even/odd by raw index
/// (v0 = raw {0,2,4,6}, v1 = raw {1,3,5,7}, ...) so an output u64 is one
/// shift-or across two vectors. The 32-bit rotate runs in the 64-bit lanes
/// with variable shifts; the rotated value still fits 32 bits.
__attribute__((target("avx2")))
std::uint64_t fill_bits_groups_avx2(std::uint64_t state, std::uint64_t inc,
                                    std::uint64_t* out, std::size_t groups) {
  const LaneSetup ls = lane_setup(state, inc);
  alignas(32) std::uint64_t lanes[16];
  for (int r = 0; r < 16; ++r) {
    lanes[8 * (r / 8) + 4 * (r % 2) + (r % 8) / 2] = ls.s[r];
  }
  __m256i v[4];
  for (int k = 0; k < 4; ++k) {
    v[k] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes + 4 * k));
  }
  const __m256i jm = _mm256_set1_epi64x(static_cast<long long>(ls.jump_mul));
  const __m256i ja = _mm256_set1_epi64x(static_cast<long long>(ls.jump_add));
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i c32 = _mm256_set1_epi64x(32);
  const __m256i c31 = _mm256_set1_epi64x(31);
  for (std::size_t g = 0; g < groups; ++g) {
    __m256i o[4];
    for (int k = 0; k < 4; ++k) {
      const __m256i s = v[k];
      const __m256i x = _mm256_and_si256(
          _mm256_srli_epi64(_mm256_xor_si256(_mm256_srli_epi64(s, 18), s), 27), mask32);
      const __m256i rot = _mm256_srli_epi64(s, 59);
      const __m256i left_count = _mm256_and_si256(_mm256_sub_epi64(c32, rot), c31);
      o[k] = _mm256_or_si256(
          _mm256_srlv_epi64(x, rot),
          _mm256_and_si256(_mm256_sllv_epi64(x, left_count), mask32));
      v[k] = _mm256_add_epi64(mullo64_avx2(s, jm), ja);
    }
    // v0/v1 carry the even/odd raw outputs of u64s 0..3, v2/v3 of u64s 4..7.
    const __m256i p0 =
        _mm256_srli_epi64(_mm256_or_si256(_mm256_slli_epi64(o[0], 32), o[1]), 11);
    const __m256i p1 =
        _mm256_srli_epi64(_mm256_or_si256(_mm256_slli_epi64(o[2], 32), o[3]), 11);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g), p0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g + 4), p1);
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v[0]);
  return lanes[0];  // v0 lane 0 = raw index 16 * groups = the sequential state
}

#endif  // RESLOC_X86_SIMD
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * kMultiplier + inc_;
  return pcg_output(old);
}

std::uint64_t Rng::uniform_bits() {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  return ((hi << 32) | lo) >> 11;
}

std::uint64_t Rng::bernoulli_threshold(double p) {
  if (p <= 0.0) return 0;                           // uniform() < p never holds
  if (p >= 1.0) return std::uint64_t{1} << 53;      // always holds (bits < 2^53)
  // p * 2^53 is exact; the proof that bits < ceil(p * 2^53) matches
  // double(bits) * 2^-53 < p splits on whether p * 2^53 is an integer, and
  // both cases agree because bits itself is an integer.
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(uniform_bits()) * 0x1.0p-53;
}

void Rng::fill_uniform_bits_block(std::uint64_t* out, std::size_t n) {
  // 16 jump-ahead lanes restructure the serial multiply chain into
  // independent streams the SIMD variants map onto vector lanes. Output
  // values AND the final generator state are identical to n sequential
  // uniform_bits() calls -- the lanes only change evaluation order.
  const std::size_t groups = n / 8;
  if (groups > 0) {
#if RESLOC_X86_SIMD
    if (cpu_has_avx512_kernels()) {
      state_ = fill_bits_groups_avx512(state_, inc_, out, groups);
    } else if (cpu_has_avx2_kernels()) {
      state_ = fill_bits_groups_avx2(state_, inc_, out, groups);
    } else
#endif
    {
      state_ = fill_bits_groups(state_, inc_, out, groups);
    }
    out += groups * 8;
    n -= groups * 8;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = uniform_bits();
}

void Rng::fill_gaussian_block(double* out, std::size_t n) {
  // Box-Muller is libm-bound (log/sqrt/sincos per pair), so the block form is
  // the sequential draw order verbatim; the win for callers is separating the
  // standard-normal stream from the per-sample scaling/mixing, which then
  // vectorizes. gaussian(0, 1) returns the raw normal (0 + 1 * z == z except
  // for a harmless -0 -> +0 normalization), including the cached second half.
  for (std::size_t i = 0; i < n; ++i) out[i] = gaussian(0.0, 1.0);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((static_cast<std::uint64_t>(next_u32()) << 32) | next_u32());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / range) * range;
  std::uint64_t draw;
  do {
    draw = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * resloc::math::kPi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  // Clamp instead of trusting the caller: with NDEBUG the old assert was a
  // no-op and resize(k > n) padded the sample with duplicate zero indices.
  if (k > n) k = n;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all);
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t stream_index) const {
  // Mix state, stream selector, and index so that (a) different parents give
  // different substream families and (b) consecutive indices land far apart.
  const std::uint64_t base = splitmix64(state_ ^ splitmix64(inc_));
  const std::uint64_t seed = splitmix64(base ^ splitmix64(stream_index));
  const std::uint64_t stream = splitmix64(seed + 0x632be59bd9b4e019ULL);
  return Rng(seed, stream);
}

Rng Rng::split() {
  const std::uint64_t seed = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  const std::uint64_t stream = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Rng(seed, stream);
}

}  // namespace resloc::math
