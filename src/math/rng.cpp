#include "math/rng.hpp"

#include <cassert>
#include <cmath>
#include "math/constants.hpp"

namespace resloc::math {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;

// SplitMix64 finalizer (Steele et al., 2014): a strong 64 -> 64 bit mixer
// whose outputs for consecutive inputs are statistically independent, which
// is exactly what substream derivation needs.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * kMultiplier + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((static_cast<std::uint64_t>(next_u32()) << 32) | next_u32());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / range) * range;
  std::uint64_t draw;
  do {
    draw = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * resloc::math::kPi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  // Clamp instead of trusting the caller: with NDEBUG the old assert was a
  // no-op and resize(k > n) padded the sample with duplicate zero indices.
  if (k > n) k = n;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all);
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t stream_index) const {
  // Mix state, stream selector, and index so that (a) different parents give
  // different substream families and (b) consecutive indices land far apart.
  const std::uint64_t base = splitmix64(state_ ^ splitmix64(inc_));
  const std::uint64_t seed = splitmix64(base ^ splitmix64(stream_index));
  const std::uint64_t stream = splitmix64(seed + 0x632be59bd9b4e019ULL);
  return Rng(seed, stream);
}

Rng Rng::split() {
  const std::uint64_t seed = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  const std::uint64_t stream = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Rng(seed, stream);
}

}  // namespace resloc::math
