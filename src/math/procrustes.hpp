// Closed-form rigid alignment of two point sets (orthogonal Procrustes in the
// plane). Two uses in the reproduction:
//
//  1. The paper's "computationally tractable" transform estimation between
//     two local coordinate systems (Section 4.3.1): translate by the shared
//     neighbors' center of mass, rotate by the angle solving
//        [Cxu + Cyv, Cxv - Cyu] . [sin theta, cos theta]^T = 0,
//     try both reflection factors f = +/-1, keep the lower-error one.
//
//  2. Evaluation alignment: the paper reports localization error after the
//     computed coordinates are "translated, rotated and flipped to achieve a
//     best-fit match with the actual node coordinates" (Section 4.2.2).
#pragma once

#include <vector>

#include "math/transform2d.hpp"
#include "math/vec2.hpp"

namespace resloc::math {

/// Result of a rigid fit.
struct RigidFit {
  Transform2D transform;       ///< maps source points onto target points
  double sum_squared_error = 0.0;  ///< sum of squared residuals after mapping
  bool valid = false;          ///< false when inputs are empty or mismatched
};

/// Finds the rigid transform (rotation + translation, optionally reflection)
/// minimizing sum_i |T(src[i]) - dst[i]|^2. Requires src.size() == dst.size().
/// With fewer than 2 points the rotation is arbitrary and set to zero
/// (translation-only fit). Collinear point sets still determine the rotation,
/// but reflection becomes ambiguous; both hypotheses tie and f = +1 wins.
RigidFit fit_rigid(const std::vector<Vec2>& src, const std::vector<Vec2>& dst,
                   bool allow_reflection = true);

/// Root-mean-square residual of a fit over n points (0 when invalid/empty).
double fit_rmse(const RigidFit& fit, std::size_t n_points);

}  // namespace resloc::math
