// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Needed by the classical-MDS baseline (Section 4.2 background; [18], [19]):
// MDS double-centers the squared-distance matrix and takes the top principal
// components, i.e. the leading eigenpairs of a symmetric matrix. Jacobi is
// simple, numerically robust for the modest sizes here (n = node count), and
// has no external dependencies.
#pragma once

#include <vector>

#include "math/matrix.hpp"

namespace resloc::math {

/// Eigenvalues (descending) with matching eigenvectors. eigenvectors.col(i)
/// corresponds to eigenvalues[i]; vectors are orthonormal columns.
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;  // n x n, column i = eigenvector i
};

/// Decomposes a symmetric matrix. Asserts on non-square input; symmetry is
/// assumed (the strictly lower triangle is read together with the upper).
/// `tolerance` bounds the final max off-diagonal magnitude.
EigenDecomposition jacobi_eigen_decomposition(Matrix a, double tolerance = 1e-12,
                                              int max_sweeps = 100);

}  // namespace resloc::math
