// Gradient-descent minimizer, the numerical engine of both localization
// schemes in the paper:
//   - multilateration minimizes the weighted range residual (Section 4.1.1),
//   - LSS minimizes the (soft-constrained) stress function (Section 4.2.1),
//     using "[x_{t+1}, y_{t+1}] = [x_t, y_t] - alpha * grad E" (Equation 1)
//     and restarting "each round of minimization with seed positions obtained
//     by perturbing the best results so far" to escape local minima.
//
// The objective is a callback that fills the gradient and returns the error;
// this keeps the optimizer reusable across all the different error functions
// in the reproduction.
#pragma once

#include <functional>
#include <vector>

#include "math/rng.hpp"

namespace resloc::math {

/// Objective callback: given parameters x, fill `grad` (already sized like x)
/// and return the scalar error E(x).
using Objective = std::function<double(const std::vector<double>& x, std::vector<double>& grad)>;

/// Tuning knobs for a single gradient-descent run.
struct GradientDescentOptions {
  /// Initial step size alpha in Equation 1.
  double step_size = 1e-3;
  /// Upper bound on iterations for one descent run.
  int max_iterations = 5000;
  /// Stop when the error improves by less than this fraction over a window.
  double relative_tolerance = 1e-9;
  /// Stop when the gradient inf-norm falls below this.
  double gradient_tolerance = 1e-9;
  /// When true, backtrack (halve the step and retry) on steps that increase
  /// the error, and grow the step slightly on success. Plain fixed-step
  /// descent diverges easily on the LSS stress surface, so this is on by
  /// default; turn it off to study the paper's raw update rule.
  bool adaptive = true;
  /// Record E after every accepted iteration (for Figure 23 style traces).
  bool record_trace = false;
};

/// Outcome of a descent run.
struct GradientDescentResult {
  std::vector<double> x;           ///< best parameters found
  double error = 0.0;              ///< E at x
  int iterations = 0;              ///< accepted iterations performed
  bool converged = false;          ///< true if a tolerance triggered the stop
  std::vector<double> error_trace; ///< per-iteration errors when recorded
};

/// Runs gradient descent from `x0`.
GradientDescentResult minimize(const Objective& objective, std::vector<double> x0,
                               const GradientDescentOptions& options);

/// Options for the restart wrapper.
struct RestartOptions {
  /// Number of descent rounds. Round 0 starts from the caller's seed; each
  /// later round starts from the best-so-far parameters perturbed by
  /// Gaussian noise of the given standard deviation.
  int rounds = 5;
  /// Standard deviation of the perturbation applied between rounds.
  double perturbation_stddev = 1.0;
};

/// Repeated descent with perturbation restarts (Section 4.2.1): keeps the
/// best configuration across rounds and reseeds each round by perturbing it.
GradientDescentResult minimize_with_restarts(const Objective& objective, std::vector<double> x0,
                                             const GradientDescentOptions& options,
                                             const RestartOptions& restart, Rng& rng);

}  // namespace resloc::math
