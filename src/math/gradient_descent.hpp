// Gradient-descent minimizer, the numerical engine of both localization
// schemes in the paper:
//   - multilateration minimizes the weighted range residual (Section 4.1.1),
//   - LSS minimizes the (soft-constrained) stress function (Section 4.2.1),
//     using "[x_{t+1}, y_{t+1}] = [x_t, y_t] - alpha * grad E" (Equation 1)
//     and restarting "each round of minimization with seed positions obtained
//     by perturbing the best results so far" to escape local minima.
//
// The objective is a callable that fills the gradient and returns the error.
// minimize() and minimize_with_restarts() are templates over the callable's
// concrete type: the LSS stress objective is evaluated ~10^5 times per solve
// and carries per-evaluation scratch (a spatial hash of the configuration),
// so the call must inline rather than go through std::function dispatch. The
// `Objective` alias remains for callers that want type erasure (tests, stored
// callbacks); passing one simply instantiates the template with it.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "math/rng.hpp"
#include "obs/telemetry.hpp"

namespace resloc::math {

/// Objective callback: given parameters x, fill `grad` (already sized like x)
/// and return the scalar error E(x).
using Objective = std::function<double(const std::vector<double>& x, std::vector<double>& grad)>;

/// Tuning knobs for a single gradient-descent run.
struct GradientDescentOptions {
  /// Initial step size alpha in Equation 1.
  double step_size = 1e-3;
  /// Upper bound on iterations for one descent run.
  int max_iterations = 5000;
  /// Stop when the error improves by less than this fraction over a window.
  double relative_tolerance = 1e-9;
  /// Stop when the gradient inf-norm falls below this.
  double gradient_tolerance = 1e-9;
  /// When true, backtrack (halve the step and retry) on steps that increase
  /// the error, and grow the step slightly on success. Plain fixed-step
  /// descent diverges easily on the LSS stress surface, so this is on by
  /// default; turn it off to study the paper's raw update rule.
  bool adaptive = true;
  /// Record E after every accepted iteration (for Figure 23 style traces).
  bool record_trace = false;
};

/// Outcome of a descent run.
struct GradientDescentResult {
  std::vector<double> x;           ///< best parameters found
  double error = 0.0;              ///< E at x
  int iterations = 0;              ///< accepted iterations performed
  bool converged = false;          ///< true if a tolerance triggered the stop
  /// The objective produced a non-finite value (NaN/inf inputs, e.g. from
  /// injected measurement corruption): the run stopped at the last finite
  /// parameter vector instead of accepting a poisoned state. NaN compares
  /// false to everything, so without this guard the backtracking loop would
  /// silently *accept* a NaN step and return garbage coordinates.
  bool non_finite = false;
  std::vector<double> error_trace; ///< per-iteration errors when recorded
};

namespace detail {

inline double inf_norm(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

}  // namespace detail

/// Runs gradient descent from `x0`. The objective may be stateful (scratch
/// buffers); it is taken by reference and never copied.
template <typename ObjectiveFn>
GradientDescentResult minimize(ObjectiveFn&& objective, std::vector<double> x0,
                               const GradientDescentOptions& options) {
  RESLOC_SPAN("solver/minimize");
  GradientDescentResult result;
  const std::size_t n = x0.size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> candidate(n, 0.0);
  std::vector<double> candidate_grad(n, 0.0);

  double error = objective(x0, grad);
  obs::add(obs::Counter::kGdEvaluations);
  double step = options.step_size;

  result.x = x0;
  result.error = error;
  if (options.record_trace) result.error_trace.push_back(error);
  if (!std::isfinite(error)) {
    // The surface is poisoned at the seed itself (non-finite measurements):
    // there is no descent direction to trust. Return the seed, flagged.
    result.non_finite = true;
    return result;
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double grad_norm = detail::inf_norm(grad);
    if (grad_norm <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    for (std::size_t i = 0; i < n; ++i) candidate[i] = result.x[i] - step * grad[i];
    double candidate_error = objective(candidate, candidate_grad);
    obs::add(obs::Counter::kGdEvaluations);

    if (options.adaptive) {
      // Backtrack: shrink the step until the error stops increasing (or the
      // step collapses, which we treat as convergence). The predicate is
      // written !(candidate <= error) rather than (candidate > error) so a
      // non-finite candidate also backtracks: NaN compares false to
      // everything, and the > form would silently *accept* a NaN step. For
      // finite values the two forms are identical.
      int backtracks = 0;
      while (!(candidate_error <= error) && backtracks < 40) {
        step *= 0.5;
        for (std::size_t i = 0; i < n; ++i) candidate[i] = result.x[i] - step * grad[i];
        candidate_error = objective(candidate, candidate_grad);
        obs::add(obs::Counter::kGdEvaluations);
        ++backtracks;
      }
      obs::add(obs::Counter::kGdBacktracks, static_cast<std::uint64_t>(backtracks));
      if (!(candidate_error <= error)) {
        if (!std::isfinite(candidate_error)) result.non_finite = true;
        result.converged = true;  // no descent direction progress possible
        break;
      }
      if (backtracks == 0) step *= 1.1;  // reward: cautiously grow the step
    } else if (!std::isfinite(candidate_error)) {
      // Fixed-step descent walked off the finite surface: stop at the last
      // finite iterate instead of accepting the poisoned step.
      result.non_finite = true;
      break;
    }

    const double improvement = error - candidate_error;
    result.x.swap(candidate);
    grad.swap(candidate_grad);
    error = candidate_error;
    result.error = error;
    ++result.iterations;
    if (options.record_trace) result.error_trace.push_back(error);

    if (improvement >= 0.0 && improvement <= options.relative_tolerance * std::abs(error)) {
      result.converged = true;
      break;
    }
  }
  obs::add(obs::Counter::kGdIterations, static_cast<std::uint64_t>(result.iterations));
  return result;
}

/// Options for the restart wrapper.
struct RestartOptions {
  /// Number of descent rounds. Round 0 starts from the caller's seed; each
  /// later round starts from the best-so-far parameters perturbed by
  /// Gaussian noise of the given standard deviation.
  int rounds = 5;
  /// Standard deviation of the perturbation applied between rounds.
  double perturbation_stddev = 1.0;
};

/// Repeated descent with perturbation restarts (Section 4.2.1): keeps the
/// best configuration across rounds and reseeds each round by perturbing it.
template <typename ObjectiveFn>
GradientDescentResult minimize_with_restarts(ObjectiveFn&& objective, std::vector<double> x0,
                                             const GradientDescentOptions& options,
                                             const RestartOptions& restart, Rng& rng) {
  GradientDescentResult best;
  bool have_best = false;
  std::vector<double> seed = std::move(x0);

  for (int round = 0; round < restart.rounds; ++round) {
    obs::add(obs::Counter::kGdRestartRounds);
    GradientDescentResult r = minimize(objective, seed, options);
    // NaN-aware best-selection: a finite round always beats a non-finite
    // best (plain `<` would never replace a NaN best, since NaN comparisons
    // are all false), and a non-finite round never displaces a finite best.
    const bool better =
        !have_best || (std::isfinite(r.error) && !std::isfinite(best.error)) ||
        (!(std::isfinite(best.error) && !std::isfinite(r.error)) && r.error < best.error);
    if (better) {
      // Keep the longest trace view: append this round's trace to the tail.
      if (have_best && options.record_trace) {
        r.error_trace.insert(r.error_trace.begin(), best.error_trace.begin(),
                             best.error_trace.end());
      }
      best = std::move(r);
      have_best = true;
    } else if (options.record_trace) {
      // Record that a round happened without improvement, keeping the best E.
      best.error_trace.push_back(best.error);
    }
    // Perturb the best-so-far configuration as the next seed (Section 4.2.1).
    seed = best.x;
    for (double& v : seed) v += rng.gaussian(0.0, restart.perturbation_stddev);
  }
  return best;
}

}  // namespace resloc::math
