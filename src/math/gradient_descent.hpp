// Gradient-descent minimizer, the numerical engine of both localization
// schemes in the paper:
//   - multilateration minimizes the weighted range residual (Section 4.1.1),
//   - LSS minimizes the (soft-constrained) stress function (Section 4.2.1),
//     using "[x_{t+1}, y_{t+1}] = [x_t, y_t] - alpha * grad E" (Equation 1)
//     and restarting "each round of minimization with seed positions obtained
//     by perturbing the best results so far" to escape local minima.
//
// The objective is a callable that fills the gradient and returns the error.
// minimize() and minimize_with_restarts() are templates over the callable's
// concrete type: the LSS stress objective is evaluated ~10^5 times per solve
// and carries per-evaluation scratch (a spatial hash of the configuration),
// so the call must inline rather than go through std::function dispatch. The
// `Objective` alias remains for callers that want type erasure (tests, stored
// callbacks); passing one simply instantiates the template with it.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "math/rng.hpp"
#include "obs/telemetry.hpp"

namespace resloc::math {

/// Objective callback: given parameters x, fill `grad` (already sized like x)
/// and return the scalar error E(x).
using Objective = std::function<double(const std::vector<double>& x, std::vector<double>& grad)>;

/// Tuning knobs for a single gradient-descent run.
struct GradientDescentOptions {
  /// Initial step size alpha in Equation 1.
  double step_size = 1e-3;
  /// Upper bound on iterations for one descent run.
  int max_iterations = 5000;
  /// Stop when the error improves by less than this fraction over a window.
  double relative_tolerance = 1e-9;
  /// Stop when the gradient inf-norm falls below this.
  double gradient_tolerance = 1e-9;
  /// When true, backtrack (halve the step and retry) on steps that increase
  /// the error, and grow the step slightly on success. Plain fixed-step
  /// descent diverges easily on the LSS stress surface, so this is on by
  /// default; turn it off to study the paper's raw update rule.
  bool adaptive = true;
  /// Record E after every accepted iteration (for Figure 23 style traces).
  bool record_trace = false;
};

/// Outcome of a descent run.
struct GradientDescentResult {
  std::vector<double> x;           ///< best parameters found
  double error = 0.0;              ///< E at x
  int iterations = 0;              ///< accepted iterations performed
  bool converged = false;          ///< true if a tolerance triggered the stop
  std::vector<double> error_trace; ///< per-iteration errors when recorded
};

namespace detail {

inline double inf_norm(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

}  // namespace detail

/// Runs gradient descent from `x0`. The objective may be stateful (scratch
/// buffers); it is taken by reference and never copied.
template <typename ObjectiveFn>
GradientDescentResult minimize(ObjectiveFn&& objective, std::vector<double> x0,
                               const GradientDescentOptions& options) {
  RESLOC_SPAN("solver/minimize");
  GradientDescentResult result;
  const std::size_t n = x0.size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> candidate(n, 0.0);
  std::vector<double> candidate_grad(n, 0.0);

  double error = objective(x0, grad);
  obs::add(obs::Counter::kGdEvaluations);
  double step = options.step_size;

  result.x = x0;
  result.error = error;
  if (options.record_trace) result.error_trace.push_back(error);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double grad_norm = detail::inf_norm(grad);
    if (grad_norm <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    for (std::size_t i = 0; i < n; ++i) candidate[i] = result.x[i] - step * grad[i];
    double candidate_error = objective(candidate, candidate_grad);
    obs::add(obs::Counter::kGdEvaluations);

    if (options.adaptive) {
      // Backtrack: shrink the step until the error stops increasing (or the
      // step collapses, which we treat as convergence).
      int backtracks = 0;
      while (candidate_error > error && backtracks < 40) {
        step *= 0.5;
        for (std::size_t i = 0; i < n; ++i) candidate[i] = result.x[i] - step * grad[i];
        candidate_error = objective(candidate, candidate_grad);
        obs::add(obs::Counter::kGdEvaluations);
        ++backtracks;
      }
      obs::add(obs::Counter::kGdBacktracks, static_cast<std::uint64_t>(backtracks));
      if (candidate_error > error) {
        result.converged = true;  // no descent direction progress possible
        break;
      }
      if (backtracks == 0) step *= 1.1;  // reward: cautiously grow the step
    }

    const double improvement = error - candidate_error;
    result.x.swap(candidate);
    grad.swap(candidate_grad);
    error = candidate_error;
    result.error = error;
    ++result.iterations;
    if (options.record_trace) result.error_trace.push_back(error);

    if (improvement >= 0.0 && improvement <= options.relative_tolerance * std::abs(error)) {
      result.converged = true;
      break;
    }
  }
  obs::add(obs::Counter::kGdIterations, static_cast<std::uint64_t>(result.iterations));
  return result;
}

/// Options for the restart wrapper.
struct RestartOptions {
  /// Number of descent rounds. Round 0 starts from the caller's seed; each
  /// later round starts from the best-so-far parameters perturbed by
  /// Gaussian noise of the given standard deviation.
  int rounds = 5;
  /// Standard deviation of the perturbation applied between rounds.
  double perturbation_stddev = 1.0;
};

/// Repeated descent with perturbation restarts (Section 4.2.1): keeps the
/// best configuration across rounds and reseeds each round by perturbing it.
template <typename ObjectiveFn>
GradientDescentResult minimize_with_restarts(ObjectiveFn&& objective, std::vector<double> x0,
                                             const GradientDescentOptions& options,
                                             const RestartOptions& restart, Rng& rng) {
  GradientDescentResult best;
  bool have_best = false;
  std::vector<double> seed = std::move(x0);

  for (int round = 0; round < restart.rounds; ++round) {
    obs::add(obs::Counter::kGdRestartRounds);
    GradientDescentResult r = minimize(objective, seed, options);
    if (!have_best || r.error < best.error) {
      // Keep the longest trace view: append this round's trace to the tail.
      if (have_best && options.record_trace) {
        r.error_trace.insert(r.error_trace.begin(), best.error_trace.begin(),
                             best.error_trace.end());
      }
      best = std::move(r);
      have_best = true;
    } else if (options.record_trace) {
      // Record that a round happened without improvement, keeping the best E.
      best.error_trace.push_back(best.error);
    }
    // Perturb the best-so-far configuration as the next seed (Section 4.2.1).
    seed = best.x;
    for (double& v : seed) v += rng.gaussian(0.0, restart.perturbation_stddev);
  }
  return best;
}

}  // namespace resloc::math
