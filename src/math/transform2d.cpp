#include "math/transform2d.hpp"

#include <cmath>

namespace resloc::math {

Transform2D::Transform2D(double theta, bool reflect, Vec2 translation)
    : cos_(std::cos(theta)), sin_(std::sin(theta)), f_(reflect ? -1.0 : 1.0), t_(translation) {}

Transform2D Transform2D::then(const Transform2D& b) const {
  // Linear parts in the paper's row-vector convention:
  //   L = | c      -s    |
  //       | f*s     f*c  |
  // Composite linear part is L_a * L_b, which is again of the same form with
  // f' = f_a * f_b (the determinant of L is f). Extract (c', s') from the
  // first row of the product.
  const double m11 = cos_ * b.cos_ + (-sin_) * (b.f_ * b.sin_);
  const double m12 = cos_ * (-b.sin_) + (-sin_) * (b.f_ * b.cos_);
  Transform2D out(m11, -m12, f_ * b.f_, {0.0, 0.0});
  out.t_ = b.apply_linear(t_) + b.t_;
  return out;
}

Transform2D Transform2D::inverse() const {
  // For f = +1 the linear inverse is rotation by -theta; for f = -1 the
  // linear part is an involution (its own inverse).
  Transform2D inv(cos_, f_ > 0.0 ? -sin_ : sin_, f_, {0.0, 0.0});
  inv.t_ = -inv.apply_linear(t_);
  return inv;
}

double Transform2D::theta() const { return std::atan2(sin_, cos_); }

double Transform2D::max_param_diff(const Transform2D& o) const {
  double d = std::abs(cos_ - o.cos_);
  d = std::max(d, std::abs(sin_ - o.sin_));
  d = std::max(d, std::abs(f_ - o.f_));
  d = std::max(d, std::abs(t_.x - o.t_.x));
  d = std::max(d, std::abs(t_.y - o.t_.y));
  return d;
}

std::ostream& operator<<(std::ostream& os, const Transform2D& t) {
  return os << "Transform2D{theta=" << t.theta() << ", f=" << (t.reflected() ? -1 : 1)
            << ", t=" << t.translation_part() << '}';
}

}  // namespace resloc::math
