// Parallel Monte-Carlo campaign execution.
//
// CampaignRunner fans a SweepSpec's trials out across a pool of worker
// threads. Scheduling is work-stealing in the simplest possible form: one
// shared atomic cursor over the expanded trial list, each worker claiming the
// next unclaimed trial -- long LSS solves and quick multilateration trials
// interleave without static partitioning imbalance.
//
// Determinism contract: aggregates are bit-identical for a given (spec.seed,
// spec) at ANY thread count. Three properties make that hold:
//   1. trial i's randomness is Rng(seed).fork(i) -- derived from the master
//      seed and the trial's global index only, never from shared RNG state;
//   2. outcomes are written to outcome slot i, not appended in completion
//      order;
//   3. aggregation runs sequentially over slots in index order after the
//      pool joins, so floating-point reduction order is fixed.
// Wall-clock timing is recorded per trial but deliberately kept out of the
// serialized aggregates (see eval/aggregate.hpp).
//
// The underlying LocalizationPipeline::run() is const and the solver stack
// holds no mutable global state (audited: the only statics in src/ are
// factory functions), so one pipeline configuration is safely shared by all
// workers while each trial draws from its own forked Rng.
//
// The same contract recurses one level down: an acoustic trial's measurement
// campaign shards its (round, source) turns across
// `PipelineConfig::campaign.threads` workers, each turn on its own
// counter-indexed substream of the trial's Rng (see sim/field_experiment.hpp)
// -- byte-identical at any inner thread count, so runner threads and
// campaign threads compose without touching the aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/aggregate.hpp"
#include "runner/sweep_spec.hpp"

namespace resloc::runner {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// Everything a campaign produced: raw per-trial outcomes (global-index
/// order) and per-cell aggregates (cell-index order).
struct CampaignResult {
  std::string sweep_name;
  std::uint64_t seed = 0;
  unsigned threads_used = 1;
  std::vector<resloc::eval::TrialOutcome> trials;
  std::vector<resloc::eval::CellResult> cells;
  double wall_time_s = 0.0;  ///< whole-campaign wall clock (not serialized)

  /// Deterministic serializations of the per-cell aggregates.
  std::string to_json() const;
  std::string to_csv() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  /// Expands the sweep and runs every trial, in parallel when the options
  /// allow. Never throws on per-trial failure: a trial that cannot build its
  /// scenario or solve records ok = false and the campaign continues.
  CampaignResult run(const SweepSpec& spec) const;

  /// Runs a single trial synchronously (the unit the pool schedules);
  /// exposed for tests and for embedding in existing bench loops.
  static resloc::eval::TrialOutcome run_trial(const SweepSpec& spec, const TrialSpec& trial);

 private:
  RunnerOptions options_;
};

}  // namespace resloc::runner
