#include "runner/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "acoustics/environment.hpp"
#include "acoustics/units.hpp"
#include "fault/fault_plan.hpp"
#include "obs/telemetry.hpp"
#include "ranging/ranging_service.hpp"
#include "ranging/signal_detection.hpp"
#include "sim/deployments.hpp"
#include "sim/scenario_registry.hpp"

namespace resloc::runner {

using resloc::eval::CellResult;
using resloc::eval::FailureReason;
using resloc::eval::TrialOutcome;

namespace {

/// The obs counter tallying one failure classification.
obs::Counter failure_counter(FailureReason reason) {
  switch (reason) {
    case FailureReason::kScenarioBuild: return obs::Counter::kTrialFailScenario;
    case FailureReason::kConfig: return obs::Counter::kTrialFailConfig;
    case FailureReason::kMeasurement: return obs::Counter::kTrialFailMeasurement;
    case FailureReason::kSolver: return obs::Counter::kTrialFailSolver;
    case FailureReason::kNonStdException: return obs::Counter::kTrialFailNonStd;
    case FailureReason::kNone: break;
  }
  return obs::Counter::kRunnerTrialFailures;
}

}  // namespace

std::string CampaignResult::to_json() const {
  return resloc::eval::campaign_to_json(sweep_name, seed, cells);
}

std::string CampaignResult::to_csv() const { return resloc::eval::campaign_to_csv(cells); }

CampaignRunner::CampaignRunner(RunnerOptions options) : options_(options) {}

TrialOutcome CampaignRunner::run_trial(const SweepSpec& spec, const TrialSpec& trial) {
  RESLOC_SPAN("runner/trial");
  obs::add(obs::Counter::kRunnerTrials);
  TrialOutcome outcome;
  outcome.cell_index = trial.cell_index;
  outcome.trial_index = trial.trial_index;

  const auto start = std::chrono::steady_clock::now();
  // Substream derivation: the master Rng is never advanced, so this trial's
  // randomness depends only on (spec.seed, global_index).
  const resloc::math::Rng master(spec.seed);
  const resloc::math::Rng trial_rng = master.fork(trial.global_index);

  for (std::size_t attempt = 0; attempt <= spec.max_trial_retries; ++attempt) {
    if (attempt > 0) {
      obs::add(obs::Counter::kRunnerTrialRetries);
      // Linear backoff between attempts. Wall time is excluded from the
      // serialized aggregates, so sleeping cannot perturb golden output.
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * attempt));
    }
    outcome.attempts = attempt + 1;
    // Stage marker for failure classification: advanced as the trial
    // progresses, so whichever stage throws is the one on record.
    FailureReason stage = FailureReason::kScenarioBuild;
    try {
      // Attempt 0 forks deployment / anchors / pipeline substreams 0 / 1 / 2
      // of the trial RNG, exactly as the single-attempt runner always did
      // (byte-identical when max_trial_retries = 0 or the first try
      // succeeds). Retry a >= 1 re-derives them from the disjoint substream
      // fork(8 + a): a genuinely fresh draw, still a pure function of
      // (seed, global_index, a).
      const resloc::math::Rng attempt_rng =
          attempt == 0 ? trial_rng : trial_rng.fork(8 + attempt);
      resloc::math::Rng deploy_rng = attempt_rng.fork(0);
      resloc::math::Rng anchor_rng = attempt_rng.fork(1);
      resloc::math::Rng pipeline_rng = attempt_rng.fork(2);

      sim::ScenarioParams params;
      params.node_count = trial.node_count;
      core::Deployment deployment = sim::build_scenario(trial.scenario, params, deploy_rng);
      if (trial.drop_rate > 0.0 && !deployment.positions.empty()) {
        const auto drops = static_cast<std::size_t>(
            std::floor(trial.drop_rate * static_cast<double>(deployment.size())));
        sim::drop_random_nodes(deployment, drops, deploy_rng);
      }
      if (trial.anchor_count > 0) {
        sim::choose_random_anchors(deployment, trial.anchor_count, anchor_rng);
      }

      stage = FailureReason::kConfig;
      pipeline::PipelineConfig config = spec.base;
      config.solver = trial.solver;
      config.noise.sigma_m = trial.noise_sigma;
      config.augment_missing = trial.augment;

      // Acoustic campaign axes. Sentinels ("" / 0 / 1.0) keep the base
      // config's values, so synthetic sweeps are untouched; unknown names
      // throw and fail the trial, not the campaign.
      if (!trial.environment.empty()) {
        std::string env_name = trial.environment;
        if (env_name == "scenario") {
          env_name = sim::scenario_environment(trial.scenario);
          if (env_name.empty()) {
            throw std::invalid_argument("scenario '" + trial.scenario +
                                        "' has no canonical environment to resolve the "
                                        "\"scenario\" axis value");
          }
        }
        config.campaign.ranging.environment = acoustics::environment_by_name(env_name);
      }
      if (trial.chirp_count > 0) {
        if (trial.chirp_count > ranging::SignalAccumulator::kMaxChirps) {
          throw std::invalid_argument(
              "chirp count " + std::to_string(trial.chirp_count) + " exceeds the 4-bit counter cap (" +
              std::to_string(ranging::SignalAccumulator::kMaxChirps) +
              "); chirps past the cap would be paid for but never recorded");
        }
        config.campaign.ranging.pattern.num_chirps = trial.chirp_count;
      }
      if (trial.detection_threshold > 0) {
        config.campaign.ranging.detection.threshold = trial.detection_threshold;
      }
      if (!trial.unit_model.empty()) {
        config.campaign.units = acoustics::unit_model_by_name(trial.unit_model);
      }
      if (trial.interference_scale != 1.0) {
        // One hostility dial: denser echoes and more frequent noise bursts.
        acoustics::EnvironmentProfile& env = config.campaign.ranging.environment;
        env.echo_rate *= trial.interference_scale;
        env.noise_burst_rate_hz *= trial.interference_scale;
      }
      if (!trial.detector.empty()) {
        config.campaign.ranging.detector_mode = ranging::detector_mode_by_name(trial.detector);
      }
      if (!trial.fault_kind.empty()) {
        // Fault axis: the named plan at the cell's intensity drives both the
        // acoustic campaign (availability, mics, detectors, corruption) and
        // -- where a net::Network is built from campaign radio params -- the
        // radio loss model. Unknown kinds throw here (a config failure).
        config.campaign.faults =
            fault::plan_from_kind(trial.fault_kind, trial.fault_intensity);
      }

      const pipeline::LocalizationPipeline pipe(config);

      // measure / solve split: pipe.run() is exactly these two calls on the
      // same rng, so splitting reproduces its byte-stream while letting the
      // failure taxonomy tell a measurement-stage throw from a solver one.
      stage = FailureReason::kMeasurement;
      const auto measure_start = std::chrono::steady_clock::now();
      std::size_t augmented = 0;
      std::size_t skipped = 0;
      double offset_samples = 0.0;
      core::MeasurementSet measurements =
          pipe.measure(deployment, pipeline_rng, &augmented, &skipped, &offset_samples);
      const double measure_wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - measure_start)
              .count();

      stage = FailureReason::kSolver;
      const pipeline::PipelineRun run =
          pipe.run_on_measurements(deployment, std::move(measurements), pipeline_rng);

      outcome.ok = true;
      outcome.failure = FailureReason::kNone;
      outcome.error.clear();
      outcome.error_spans.clear();
      outcome.total_nodes = run.report.total_nodes;
      outcome.localized = run.report.localized;
      outcome.degraded = run.estimates.degraded_count();
      outcome.placement_rate = run.report.localized_fraction();
      outcome.average_error_m = run.report.average_error_m;
      outcome.median_error_m = run.report.median_error_m;
      outcome.max_error_m = run.report.max_error_m;
      outcome.stress = run.stress;
      outcome.augmented_edges = augmented;
      outcome.measured_edges = run.measurements.edge_count() - augmented;
      outcome.skipped_pairs = skipped;
      outcome.measure_wall_s = measure_wall_s;
      outcome.solve_wall_s = run.solve_wall_s;
      outcome.eval_wall_s = run.eval_wall_s;
      break;
    } catch (const std::exception& e) {
      outcome.ok = false;  // unknown scenario, fixed-size mismatch, ...
      outcome.failure = stage;
      outcome.error = e.what();
      obs::add(obs::Counter::kRunnerTrialFailures);
      obs::add(failure_counter(stage));
      // The failing thread's recent spans locate *where* in the pipeline the
      // trial died (e.g. deep in ranging vs. at solver setup) without a rerun.
      outcome.error_spans = obs::recent_spans_this_thread(32);
    } catch (...) {
      // Catch-all isolation tier: a throw of something not derived from
      // std::exception (plain int, custom struct) must not take down the
      // campaign -- it gets its own classification instead of a masquerade
      // as a std failure.
      outcome.ok = false;
      outcome.failure = FailureReason::kNonStdException;
      outcome.error = "non-std exception";
      obs::add(obs::Counter::kRunnerTrialFailures);
      obs::add(failure_counter(FailureReason::kNonStdException));
      outcome.error_spans = obs::recent_spans_this_thread(32);
    }
  }
  outcome.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return outcome;
}

CampaignResult CampaignRunner::run(const SweepSpec& spec) const {
  const auto start = std::chrono::steady_clock::now();

  CampaignResult result;
  result.sweep_name = spec.name;
  result.seed = spec.seed;

  const std::vector<TrialSpec> trials = expand(spec);
  result.trials.resize(trials.size());

  unsigned threads = options_.threads != 0 ? options_.threads
                                           : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(1, trials.size())));
  result.threads_used = threads;

  // Work-stealing over a shared cursor: each worker claims the next
  // unclaimed trial and writes its outcome into that trial's own slot.
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&spec, &trials, &cursor, &result]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      result.trials[i] = run_trial(spec, trials[i]);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Sequential aggregation in cell order: reduction order (and therefore
  // floating-point rounding) is independent of the schedule above. expand()
  // is cell-major, so cell c's outcomes are the contiguous slice
  // [c * trials_per_cell, (c + 1) * trials_per_cell) -- no bucketing copy.
  const std::size_t cells = cell_count(spec);
  result.cells.resize(spec.trials_per_cell == 0 ? 0 : cells);
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const TrialOutcome* begin = result.trials.data() + c * spec.trials_per_cell;
    result.cells[c].axes = cell_axes(trials[c * spec.trials_per_cell]);
    result.cells[c].aggregate =
        resloc::eval::aggregate_trials(begin, begin + spec.trials_per_cell);
  }

  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace resloc::runner
