#include "runner/sweep_spec.hpp"

#include <cstdio>

namespace resloc::runner {

namespace {

// Trims trailing zeros off a %g-style double for compact axis labels.
std::string label(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::size_t cell_count(const SweepSpec& spec) {
  const SweepAxes& a = spec.axes;
  return a.scenarios.size() * a.solvers.size() * a.node_counts.size() *
         a.noise_sigmas.size() * a.anchor_counts.size() * a.drop_rates.size() *
         a.augment.size() * a.environments.size() * a.chirp_counts.size() *
         a.detection_thresholds.size() * a.unit_models.size() *
         a.interference_scales.size() * a.detectors.size() * a.fault_kinds.size() *
         a.fault_intensities.size();
}

std::vector<TrialSpec> expand(const SweepSpec& spec) {
  std::vector<TrialSpec> trials;
  trials.reserve(cell_count(spec) * spec.trials_per_cell);
  const SweepAxes& a = spec.axes;
  std::size_t cell = 0;
  for (const std::string& scenario : a.scenarios) {
    for (const auto solver : a.solvers) {
      for (const std::size_t nodes : a.node_counts) {
        for (const double sigma : a.noise_sigmas) {
          for (const std::size_t anchors : a.anchor_counts) {
            for (const double drop : a.drop_rates) {
              for (const bool augment : a.augment) {
                for (const std::string& environment : a.environments) {
                  for (const int chirps : a.chirp_counts) {
                    for (const int threshold : a.detection_thresholds) {
                      for (const std::string& units : a.unit_models) {
                        for (const double interference : a.interference_scales) {
                          for (const std::string& detector : a.detectors) {
                            for (const std::string& fault_kind : a.fault_kinds) {
                              for (const double fault_intensity : a.fault_intensities) {
                                for (std::size_t rep = 0; rep < spec.trials_per_cell; ++rep) {
                                  TrialSpec t;
                                  t.global_index = trials.size();
                                  t.cell_index = cell;
                                  t.trial_index = rep;
                                  t.scenario = scenario;
                                  t.solver = solver;
                                  t.node_count = nodes;
                                  t.noise_sigma = sigma;
                                  t.anchor_count = anchors;
                                  t.drop_rate = drop;
                                  t.augment = augment;
                                  t.environment = environment;
                                  t.chirp_count = chirps;
                                  t.detection_threshold = threshold;
                                  t.unit_model = units;
                                  t.interference_scale = interference;
                                  t.detector = detector;
                                  t.fault_kind = fault_kind;
                                  t.fault_intensity = fault_intensity;
                                  trials.push_back(std::move(t));
                                }
                                ++cell;
                              }
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return trials;
}

std::string solver_name(resloc::pipeline::Solver solver) {
  switch (solver) {
    case resloc::pipeline::Solver::kMultilateration: return "multilateration";
    case resloc::pipeline::Solver::kCentralizedLss: return "lss";
    case resloc::pipeline::Solver::kDistributedLss: return "distributed_lss";
  }
  return "unknown";
}

namespace {

// Sentinel coordinates print as "base": they mean "whatever the sweep's
// base pipeline config says", which is only resolvable at trial time.
std::vector<std::pair<std::string, std::string>> base_cell_axes(const TrialSpec& trial) {
  return {
      {"scenario", trial.scenario},
      {"solver", solver_name(trial.solver)},
      {"node_count", std::to_string(trial.node_count)},
      {"noise_sigma", label(trial.noise_sigma)},
      {"anchor_count", std::to_string(trial.anchor_count)},
      {"drop_rate", label(trial.drop_rate)},
      {"augment", trial.augment ? "on" : "off"},
      {"environment", trial.environment.empty() ? "base" : trial.environment},
      {"chirp_count", trial.chirp_count <= 0 ? "base" : std::to_string(trial.chirp_count)},
      {"detection_threshold",
       trial.detection_threshold <= 0 ? "base" : std::to_string(trial.detection_threshold)},
      {"unit_model", trial.unit_model.empty() ? "base" : trial.unit_model},
      {"interference_scale",
       trial.interference_scale == 1.0 ? "base" : label(trial.interference_scale)},
      {"detector", trial.detector.empty() ? "base" : trial.detector},
  };
}

}  // namespace

std::vector<std::pair<std::string, std::string>> cell_axes(const TrialSpec& trial) {
  auto axes = base_cell_axes(trial);
  // Fault columns appear only when the sweep actually sweeps faults: the
  // sentinel kind "" means "base plan", and tacking a constant "base" column
  // onto every historical sweep would change their golden CSV/JSON bytes.
  if (!trial.fault_kind.empty()) {
    axes.emplace_back("fault_kind", trial.fault_kind);
    axes.emplace_back("fault_intensity", label(trial.fault_intensity));
  }
  return axes;
}

}  // namespace resloc::runner
