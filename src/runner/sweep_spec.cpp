#include "runner/sweep_spec.hpp"

#include <cstdio>

namespace resloc::runner {

namespace {

// Trims trailing zeros off a %g-style double for compact axis labels.
std::string label(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::size_t cell_count(const SweepSpec& spec) {
  const SweepAxes& a = spec.axes;
  return a.scenarios.size() * a.solvers.size() * a.node_counts.size() *
         a.noise_sigmas.size() * a.anchor_counts.size() * a.drop_rates.size() *
         a.augment.size();
}

std::vector<TrialSpec> expand(const SweepSpec& spec) {
  std::vector<TrialSpec> trials;
  trials.reserve(cell_count(spec) * spec.trials_per_cell);
  const SweepAxes& a = spec.axes;
  std::size_t cell = 0;
  for (const std::string& scenario : a.scenarios) {
    for (const auto solver : a.solvers) {
      for (const std::size_t nodes : a.node_counts) {
        for (const double sigma : a.noise_sigmas) {
          for (const std::size_t anchors : a.anchor_counts) {
            for (const double drop : a.drop_rates) {
              for (const bool augment : a.augment) {
                for (std::size_t rep = 0; rep < spec.trials_per_cell; ++rep) {
                  TrialSpec t;
                  t.global_index = trials.size();
                  t.cell_index = cell;
                  t.trial_index = rep;
                  t.scenario = scenario;
                  t.solver = solver;
                  t.node_count = nodes;
                  t.noise_sigma = sigma;
                  t.anchor_count = anchors;
                  t.drop_rate = drop;
                  t.augment = augment;
                  trials.push_back(std::move(t));
                }
                ++cell;
              }
            }
          }
        }
      }
    }
  }
  return trials;
}

std::string solver_name(resloc::pipeline::Solver solver) {
  switch (solver) {
    case resloc::pipeline::Solver::kMultilateration: return "multilateration";
    case resloc::pipeline::Solver::kCentralizedLss: return "lss";
    case resloc::pipeline::Solver::kDistributedLss: return "distributed_lss";
  }
  return "unknown";
}

std::vector<std::pair<std::string, std::string>> cell_axes(const TrialSpec& trial) {
  return {
      {"scenario", trial.scenario},
      {"solver", solver_name(trial.solver)},
      {"node_count", std::to_string(trial.node_count)},
      {"noise_sigma", label(trial.noise_sigma)},
      {"anchor_count", std::to_string(trial.anchor_count)},
      {"drop_rate", label(trial.drop_rate)},
      {"augment", trial.augment ? "on" : "off"},
  };
}

}  // namespace resloc::runner
