// Declarative parameter sweeps.
//
// Every figure in Sections 4.1-4.3 of the paper is a sweep: localization
// error as a function of node count, noise sigma, anchor count, augmentation,
// or solver. A SweepSpec names the axes once; expand() cross-products them
// into a flat list of TrialSpecs (cells x trials_per_cell), each carrying its
// resolved parameters and a stable global index. The global index is the
// determinism anchor: trial i always derives its RNG substream as
// Rng(seed).fork(i), so results are independent of which thread runs which
// trial and in what order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/localization_pipeline.hpp"

namespace resloc::runner {

/// The swept axes. Each vector is one axis of the cross product; a
/// single-element axis pins that parameter. Empty axes make the sweep empty.
struct SweepAxes {
  /// Scenario registry names (sim::scenario_names()).
  std::vector<std::string> scenarios = {"offset_grid"};
  std::vector<resloc::pipeline::Solver> solvers = {
      resloc::pipeline::Solver::kMultilateration};
  /// Target node counts; 0 keeps each scenario's native size.
  std::vector<std::size_t> node_counts = {0};
  /// Synthetic/augmentation noise sigma (m).
  std::vector<double> noise_sigmas = {0.33};
  /// Random anchors assigned per trial; 0 keeps the scenario's own anchors.
  std::vector<std::size_t> anchor_counts = {13};
  /// Fraction of nodes randomly dropped (mote failures), in [0, 1).
  std::vector<double> drop_rates = {0.0};
  /// Whether missing in-range pairs are augmented with synthetic distances.
  std::vector<bool> augment = {false};

  // --- Acoustic campaign axes (MeasurementSource::kAcousticRanging). Each
  // sentinel ("" / 0 / 1.0) keeps the base config's value, so synthetic
  // sweeps pay no extra cells. The axes map onto Section 3's knobs: the
  // terrain (3.3/3.6), the chirp count k of the accumulation pattern (3.5),
  // the counter threshold T of detect-signal (3.5), unit-to-unit hardware
  // variation (3.4 source 3), and ambient noise-burst/echo intensity
  // (3.4 sources 5/6). ---

  /// Acoustic environment profile names (acoustics::environment_names()).
  /// "" keeps the base campaign's terrain; the special value "scenario"
  /// resolves each scenario's canonical site (sim::scenario_environment).
  std::vector<std::string> environments = {""};
  /// Chirps per ranging sequence (the pattern's k); 0 keeps the base value.
  std::vector<int> chirp_counts = {0};
  /// Accumulated-counter threshold T of detect-signal; 0 keeps the base value.
  std::vector<int> detection_thresholds = {0};
  /// Unit-variation presets (acoustics::unit_model_names()); "" keeps base.
  std::vector<std::string> unit_models = {""};
  /// Multiplier on the environment's echo rate and noise-burst rate --
  /// one dial for "how hostile is the ambient acoustic scene". 1.0 = as-is.
  std::vector<double> interference_scales = {1.0};
  /// Detector-mode names (ranging::detector_mode_by_name: "hardware",
  /// "goertzel", "ncc"); "" keeps the base campaign's detector. An unknown
  /// name fails the trial loudly at config-application time.
  std::vector<std::string> detectors = {""};

  // --- Fault-injection axes (src/fault). The sentinels ("" / any intensity)
  // keep the base config's fault plan -- inert by default -- so fault-free
  // sweeps gain no cells and their cell axis labels (and goldens) are
  // unchanged: cell_axes() appends the fault columns only when fault_kind is
  // non-sentinel. An unknown kind fails the trial loudly at config time. ---

  /// Fault-plan kinds (fault::fault_kind_names(): "none", "packet_loss",
  /// "node_crash", ..., "all"); "" keeps the base plan.
  std::vector<std::string> fault_kinds = {""};
  /// Intensity multiplier handed to fault::plan_from_kind (1.0 = the kind's
  /// reference rates). Only read when fault_kind is non-sentinel.
  std::vector<double> fault_intensities = {1.0};
};

/// A full sweep: axes over a base pipeline configuration.
struct SweepSpec {
  std::string name = "sweep";
  /// Master seed; trial i runs on Rng(seed).fork(i).
  std::uint64_t seed = 1;
  /// Repetitions per cell (each with a distinct deployment / noise draw).
  std::size_t trials_per_cell = 1;
  /// Template configuration; each trial copies it and applies its axis
  /// values (solver, noise sigma, augmentation).
  resloc::pipeline::PipelineConfig base;
  SweepAxes axes;
  /// Bounded re-runs of a failed trial before it is recorded as failed:
  /// attempt a > 0 reruns the pipeline on a fresh substream of the same
  /// trial RNG (fork(8 + a), disjoint from the first attempt's fork(0..2)),
  /// so a retry is a genuinely different draw yet fully deterministic.
  /// 0 (default) preserves the historical single-attempt behavior exactly.
  std::size_t max_trial_retries = 0;
};

/// One concrete trial: a cell of the cross product plus a repetition index.
struct TrialSpec {
  std::size_t global_index = 0;  ///< position in expand()'s output
  std::size_t cell_index = 0;
  std::size_t trial_index = 0;   ///< repetition within the cell
  std::string scenario;
  resloc::pipeline::Solver solver = resloc::pipeline::Solver::kMultilateration;
  std::size_t node_count = 0;
  double noise_sigma = 0.33;
  std::size_t anchor_count = 0;
  double drop_rate = 0.0;
  bool augment = false;
  std::string environment;        ///< "" = base campaign terrain
  int chirp_count = 0;            ///< k; 0 = base
  int detection_threshold = 0;    ///< T; 0 = base
  std::string unit_model;         ///< "" = base unit-variation model
  double interference_scale = 1.0;
  std::string detector;           ///< "" = base detector mode
  std::string fault_kind;         ///< "" = base fault plan (inert by default)
  double fault_intensity = 1.0;   ///< read only when fault_kind != ""
};

/// Number of cells in the cross product (0 if any axis is empty).
std::size_t cell_count(const SweepSpec& spec);

/// Flattens the sweep into cell_count() * trials_per_cell trials, cell-major
/// (all repetitions of cell 0 first). Deterministic: axis order is fixed as
/// scenario > solver > node_count > noise_sigma > anchor_count > drop_rate >
/// augment > environment > chirp_count > detection_threshold > unit_model >
/// interference_scale > detector > fault_kind > fault_intensity, slowest
/// axis first.
std::vector<TrialSpec> expand(const SweepSpec& spec);

/// Human-readable solver name ("multilateration", "lss", "distributed_lss").
std::string solver_name(resloc::pipeline::Solver solver);

/// The axis coordinates of a trial's cell as (name, value) pairs, in axis
/// order -- the labels the aggregation layer attaches to each cell.
std::vector<std::pair<std::string, std::string>> cell_axes(const TrialSpec& trial);

}  // namespace resloc::runner
