#include <gtest/gtest.h>

#include <memory>

#include "net/clock.hpp"
#include "net/event_queue.hpp"
#include "net/network.hpp"

namespace {

using namespace resloc::net;
using resloc::math::Rng;
using resloc::math::Vec2;

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampFifoHoldsAcrossHandlerScheduling) {
  // A handler that schedules at an already-populated timestamp lands after
  // the events that were scheduled there first: ties break in schedule
  // order even when scheduling is interleaved with execution.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    q.schedule_at(2.0, [&] { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    if (count < 5) q.schedule_after(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  const auto executed = q.run();
  EXPECT_EQ(executed, 5u);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilBound) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  q.run(5.5);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.pending(), 5u);
  q.run();
  EXPECT_EQ(count, 10);
}

TEST(Clock, LocalTimeLinearInTrueTime) {
  const Clock c(10.0, 50e-6);
  EXPECT_DOUBLE_EQ(c.local_time(0.0), 10.0);
  EXPECT_DOUBLE_EQ(c.local_time(100.0), 10.0 + 100.0 * (1.0 + 50e-6));
}

TEST(Clock, RoundTripConversion) {
  const Clock c(3.7, -42e-6);
  for (double t : {0.0, 1.0, 55.5, 1234.0}) {
    EXPECT_NEAR(c.true_time(c.local_time(t)), t, 1e-9);
  }
}

TEST(Clock, RoundTripStaysTightAtDriftBounds) {
  // Round-trip error at the drift extremes (+/- 200 ppm, 4x the radio
  // default) over a multi-day horizon: conversion must stay well under a
  // microsecond, or MAC-timestamp ranging would inherit the bias.
  for (double drift : {200e-6, -200e-6, 50e-6, -50e-6}) {
    const Clock c(123.456, drift);
    for (double t : {0.0, 1.0, 3600.0, 86400.0, 3.0 * 86400.0}) {
      EXPECT_NEAR(c.true_time(c.local_time(t)), t, 1e-6) << drift << " " << t;
      // Local time is strictly monotone in true time for |drift| < 1.
      EXPECT_GT(c.local_time(t + 1e-3), c.local_time(t)) << drift << " " << t;
    }
  }
}

TEST(Clock, RandomClockWithinBounds) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const Clock c = Clock::random(rng, 1.0, 50e-6);
    EXPECT_GE(c.offset(), 0.0);
    EXPECT_LT(c.offset(), 1.0);
    EXPECT_LE(std::abs(c.drift()), 50e-6);
  }
}

/// Test app: records receptions.
class RecorderApp : public NodeApp {
 public:
  explicit RecorderApp(std::vector<Reception>& log) : log_(log) {}
  void on_message(Network&, NodeId, const Reception& r) override { log_.push_back(r); }

 private:
  std::vector<Reception>& log_;
};

/// Test app: broadcasts once at start.
class BeaconApp : public NodeApp {
 public:
  void on_start(Network& net, NodeId self) override {
    net.schedule_local(self, 0.001, [&net, self]() {
      Message m;
      m.kind = 42;
      m.payload = {1.0, 2.0};
      net.broadcast(self, m);
    });
  }
  void on_message(Network&, NodeId, const Reception&) override {}
};

TEST(Network, BroadcastReachesNodesInRange) {
  RadioParams radio;
  radio.range_m = 50.0;
  Network net(radio, Rng(1));
  std::vector<Reception> log_near, log_far;
  net.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
  net.add_node(Vec2{30.0, 0.0}, std::make_unique<RecorderApp>(log_near));
  net.add_node(Vec2{100.0, 0.0}, std::make_unique<RecorderApp>(log_far));
  net.start();
  net.run();
  ASSERT_EQ(log_near.size(), 1u);
  EXPECT_TRUE(log_far.empty());
  EXPECT_EQ(log_near[0].message.kind, 42);
  EXPECT_EQ(log_near[0].message.sender, 0u);
  EXPECT_EQ(log_near[0].message.payload, (std::vector<double>{1.0, 2.0}));
  EXPECT_NEAR(log_near[0].rssi_distance_hint, 30.0, 1e-12);
  EXPECT_EQ(net.deliveries(), 1u);
  EXPECT_EQ(net.broadcasts(), 1u);
}

TEST(Network, MacTimestampUsesSenderClock) {
  RadioParams radio;
  Network net(radio, Rng(2));
  std::vector<Reception> log;
  const NodeId beacon = net.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
  net.add_node(Vec2{10.0, 0.0}, std::make_unique<RecorderApp>(log));
  net.start();
  net.run();
  ASSERT_EQ(log.size(), 1u);
  // The MAC timestamp is the sender's local clock at the send instant
  // (t = 0.001); reconstruct via the sender clock.
  const double expected = net.clock(beacon).local_time(0.001);
  EXPECT_NEAR(log[0].message.mac_timestamp, expected, 1e-9);
  // Delivery happened after base latency.
  EXPECT_GT(log[0].local_receive_time, 0.0);
}

TEST(Network, LossDropsEverything) {
  RadioParams radio;
  radio.loss_probability = 1.0;
  Network net(radio, Rng(3));
  std::vector<Reception> log;
  net.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
  net.add_node(Vec2{5.0, 0.0}, std::make_unique<RecorderApp>(log));
  net.start();
  net.run();
  EXPECT_TRUE(log.empty());
}

TEST(Network, LossBurstSwallowsBroadcastsWholesale) {
  // A burst schedule dense enough to be active at the send instant drops the
  // whole broadcast (correlated loss: every receiver misses it together).
  RadioParams radio;
  radio.loss_burst_rate_hz = 1e6;   // first burst starts ~1 us in
  radio.loss_burst_duration_s = 10.0;
  Network net(radio, Rng(7));
  std::vector<Reception> log;
  net.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
  net.add_node(Vec2{5.0, 0.0}, std::make_unique<RecorderApp>(log));
  net.start();
  net.run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(net.bursts_dropped(), 1u);
  EXPECT_EQ(net.broadcasts(), 1u);  // the send still counts as attempted
}

TEST(Network, BurstsOffByDefaultAndDeterministicUnderSeed) {
  RadioParams radio;  // burst rate 0: the schedule never engages
  Network net(radio, Rng(8));
  std::vector<Reception> log;
  net.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
  net.add_node(Vec2{5.0, 0.0}, std::make_unique<RecorderApp>(log));
  net.start();
  net.run();
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(net.bursts_dropped(), 0u);

  // With bursts on, the drop decision is a pure function of the seed: two
  // same-seeded networks agree exactly.
  radio.loss_burst_rate_hz = 100.0;
  radio.loss_burst_duration_s = 0.005;
  std::size_t dropped[2];
  for (int run = 0; run < 2; ++run) {
    Network bursty(radio, Rng(99));
    std::vector<Reception> sink;
    bursty.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
    bursty.add_node(Vec2{5.0, 0.0}, std::make_unique<RecorderApp>(sink));
    bursty.start();
    bursty.run();
    dropped[run] = bursty.bursts_dropped();
  }
  EXPECT_EQ(dropped[0], dropped[1]);
}

TEST(Network, SenderDoesNotHearItself) {
  RadioParams radio;
  Network net(radio, Rng(4));
  std::vector<Reception> log;
  // Single node that both broadcasts and records.
  class SelfApp : public NodeApp {
   public:
    explicit SelfApp(std::vector<Reception>& log) : log_(log) {}
    void on_start(Network& net, NodeId self) override {
      net.schedule_local(self, 0.0, [&net, self]() { net.broadcast(self, Message{}); });
    }
    void on_message(Network&, NodeId, const Reception& r) override { log_.push_back(r); }

   private:
    std::vector<Reception>& log_;
  };
  net.add_node(Vec2{0.0, 0.0}, std::make_unique<SelfApp>(log));
  net.start();
  net.run();
  EXPECT_TRUE(log.empty());
}

TEST(Network, DeliveryJitterIsSmallAndPositive) {
  RadioParams radio;
  radio.base_latency_s = 2e-3;
  radio.jitter_stddev_s = 5e-6;
  Network net(radio, Rng(5));
  std::vector<Reception> log;
  net.add_node(Vec2{0.0, 0.0}, std::make_unique<BeaconApp>());
  net.add_node(Vec2{1.0, 0.0}, std::make_unique<RecorderApp>(log));
  net.start();
  net.run();
  ASSERT_EQ(log.size(), 1u);
  // True delivery time = 0.001 (send) + base latency + |jitter|; check the
  // event clock advanced accordingly.
  EXPECT_GE(net.now(), 0.001 + 2e-3);
  EXPECT_LT(net.now(), 0.001 + 2e-3 + 1e-4);
}

}  // namespace
