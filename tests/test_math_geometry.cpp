#include <gtest/gtest.h>

#include <cmath>

#include "math/geometry.hpp"

namespace {

using namespace resloc::math;

TEST(CircleIntersection, TwoPoints) {
  const Circle a{{0.0, 0.0}, 5.0};
  const Circle b{{8.0, 0.0}, 5.0};
  const auto points = intersect(a, b);
  ASSERT_EQ(points.size(), 2u);
  for (const Vec2& p : points) {
    EXPECT_NEAR(distance(p, a.center), 5.0, 1e-9);
    EXPECT_NEAR(distance(p, b.center), 5.0, 1e-9);
  }
  EXPECT_NEAR(points[0].x, 4.0, 1e-9);
  EXPECT_NEAR(std::abs(points[0].y), 3.0, 1e-9);
}

TEST(CircleIntersection, Tangent) {
  const Circle a{{0.0, 0.0}, 2.0};
  const Circle b{{5.0, 0.0}, 3.0};
  const auto points = intersect(a, b);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].x, 2.0, 1e-9);
  EXPECT_NEAR(points[0].y, 0.0, 1e-9);
}

TEST(CircleIntersection, Disjoint) {
  EXPECT_TRUE(intersect({{0.0, 0.0}, 1.0}, {{10.0, 0.0}, 2.0}).empty());
}

TEST(CircleIntersection, OneInsideOther) {
  EXPECT_TRUE(intersect({{0.0, 0.0}, 10.0}, {{1.0, 0.0}, 2.0}).empty());
}

TEST(CircleIntersection, Concentric) {
  EXPECT_TRUE(intersect({{0.0, 0.0}, 2.0}, {{0.0, 0.0}, 3.0}).empty());
  EXPECT_TRUE(intersect({{0.0, 0.0}, 2.0}, {{0.0, 0.0}, 2.0}).empty());
}

TEST(TriangleInequality, ValidTriples) {
  EXPECT_TRUE(satisfies_triangle_inequality(3.0, 4.0, 5.0));
  EXPECT_TRUE(satisfies_triangle_inequality(1.0, 1.0, 2.0));  // degenerate allowed
  EXPECT_TRUE(satisfies_triangle_inequality(2.0, 2.0, 2.0));
}

TEST(TriangleInequality, Violations) {
  EXPECT_FALSE(satisfies_triangle_inequality(10.0, 1.0, 2.0));
  EXPECT_FALSE(satisfies_triangle_inequality(1.0, 10.0, 2.0));
  EXPECT_FALSE(satisfies_triangle_inequality(1.0, 2.0, 10.0));
}

TEST(TriangleInequality, ToleranceAllowsSlack) {
  // 10 vs 9.5 sum: 5.3% over; allowed at 6% tolerance, rejected at 3%.
  EXPECT_TRUE(satisfies_triangle_inequality(10.0, 4.5, 5.0, 0.06));
  EXPECT_FALSE(satisfies_triangle_inequality(10.0, 4.5, 5.0, 0.03));
}

TEST(Clustering, SingleLinkageChains) {
  // A chain of points 0.9 apart forms one cluster at radius 1.0.
  std::vector<Vec2> points;
  for (int i = 0; i < 5; ++i) points.push_back({0.9 * i, 0.0});
  points.push_back({100.0, 0.0});  // far outlier
  const auto clusters = cluster_points(points, 1.0);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 5u);
  EXPECT_EQ(clusters[1].size(), 1u);
}

TEST(Clustering, LargestCluster) {
  const std::vector<Vec2> points{{0.0, 0.0}, {0.5, 0.0}, {0.2, 0.3},
                                 {50.0, 50.0}, {50.4, 50.0}};
  const auto cluster = largest_cluster(points, 1.0);
  EXPECT_EQ(cluster.size(), 3u);
}

TEST(Clustering, EmptyInput) {
  EXPECT_TRUE(cluster_points({}, 1.0).empty());
  EXPECT_TRUE(largest_cluster({}, 1.0).empty());
}

TEST(Centroid, Basics) {
  EXPECT_EQ(centroid({}), Vec2(0.0, 0.0));
  const Vec2 c = centroid({{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}});
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

TEST(PointLineDistance, Basics) {
  EXPECT_DOUBLE_EQ(point_line_distance({0.0, 5.0}, {-1.0, 0.0}, {1.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(point_line_distance({3.0, 0.0}, {0.0, 0.0}, {0.0, 1.0}), 3.0);
  // Degenerate segment: falls back to point distance.
  EXPECT_DOUBLE_EQ(point_line_distance({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0}), 5.0);
}

TEST(Collinearity, HeightOfRightTriangle) {
  // 3-4-5 right triangle: smallest height is from the right angle onto the
  // hypotenuse: 2*area/5 = 12/5.
  EXPECT_NEAR(collinearity_height({0.0, 0.0}, {3.0, 0.0}, {0.0, 4.0}), 2.4, 1e-12);
}

TEST(Collinearity, CollinearPointsHaveZeroHeight) {
  EXPECT_DOUBLE_EQ(collinearity_height({0.0, 0.0}, {1.0, 1.0}, {5.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(collinearity_height({2.0, 2.0}, {2.0, 2.0}, {2.0, 2.0}), 0.0);
}

}  // namespace
