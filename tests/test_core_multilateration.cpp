#include <gtest/gtest.h>

#include <cmath>

#include "core/intersection_check.hpp"
#include "core/multilateration.hpp"
#include "math/rng.hpp"

namespace {

using namespace resloc::core;
using resloc::math::Rng;
using resloc::math::Vec2;

std::vector<AnchorObservation> observe(const std::vector<Vec2>& anchors, Vec2 node,
                                       double noise = 0.0, Rng* rng = nullptr) {
  std::vector<AnchorObservation> out;
  for (const Vec2& a : anchors) {
    double d = resloc::math::distance(a, node);
    if (rng != nullptr && noise > 0.0) d += rng->gaussian(0.0, noise);
    out.push_back({a, d, 1.0});
  }
  return out;
}

TEST(Multilaterate, ExactWithThreeAnchors) {
  const Vec2 node{4.0, 7.0};
  const auto anchors = observe({{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}}, node);
  Rng rng(1);
  const auto fit = multilaterate(anchors, MultilaterationOptions{}, rng);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->x, node.x, 1e-3);
  EXPECT_NEAR(fit->y, node.y, 1e-3);
}

TEST(Multilaterate, RefusesTooFewAnchors) {
  const Vec2 node{4.0, 7.0};
  const auto anchors = observe({{0.0, 0.0}, {20.0, 0.0}}, node);
  Rng rng(2);
  EXPECT_FALSE(multilaterate(anchors, MultilaterationOptions{}, rng).has_value());
}

TEST(Multilaterate, NoisyAnchorsStillClose) {
  const Vec2 node{10.0, 12.0};
  Rng noise_rng(3);
  const auto anchors = observe({{0.0, 0.0}, {25.0, 0.0}, {0.0, 25.0}, {25.0, 25.0}, {12.0, -5.0}},
                               node, 0.33, &noise_rng);
  Rng rng(4);
  const auto fit = multilaterate(anchors, MultilaterationOptions{}, rng);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(resloc::math::distance(*fit, node), 1.0);
}

TEST(Multilaterate, MoreAnchorsImproveAccuracy) {
  const Vec2 node{10.0, 12.0};
  Rng rng(5);
  double err3 = 0.0;
  double err8 = 0.0;
  const std::vector<Vec2> all{{0.0, 0.0},  {25.0, 0.0}, {0.0, 25.0},  {25.0, 25.0},
                              {12.0, -5.0}, {-5.0, 12.0}, {30.0, 12.0}, {12.0, 30.0}};
  for (int trial = 0; trial < 20; ++trial) {
    Rng noise_rng(100 + static_cast<std::uint64_t>(trial));
    const auto obs = observe(all, node, 0.5, &noise_rng);
    const std::vector<AnchorObservation> three(obs.begin(), obs.begin() + 3);
    const auto fit3 = multilaterate(three, MultilaterationOptions{}, rng);
    const auto fit8 = multilaterate(obs, MultilaterationOptions{}, rng);
    err3 += resloc::math::distance(*fit3, node);
    err8 += resloc::math::distance(*fit8, node);
  }
  EXPECT_LT(err8, err3);
}

TEST(IntersectionCheck, DropsInconsistentAnchor) {
  // Three good anchors + one with a wildly wrong distance whose circle
  // intersects far from the true position cluster.
  const Vec2 node{10.0, 10.0};
  auto anchors = observe({{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}}, node);
  anchors.push_back({{40.0, 40.0}, 15.0, 1.0});  // true distance is 42.4
  const auto result = check_intersection_consistency(anchors, {});
  EXPECT_EQ(result.consistent_anchors.size(), 3u);
  for (std::size_t idx : result.consistent_anchors) EXPECT_NE(idx, 3u);
  EXPECT_LT(resloc::math::distance(result.cluster_centroid, node), 1.0);
}

TEST(IntersectionCheck, KeepsAllWhenConsistent) {
  const Vec2 node{10.0, 10.0};
  const auto anchors = observe({{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}, {20.0, 20.0}}, node);
  const auto result = check_intersection_consistency(anchors, {});
  EXPECT_EQ(result.consistent_anchors.size(), 4u);
}

TEST(IntersectionCheck, FallsBackWhenTooFewSurvive) {
  // All circles disjoint: no intersection points at all -> keep everything.
  std::vector<AnchorObservation> anchors{
      {{0.0, 0.0}, 1.0, 1.0}, {{100.0, 0.0}, 1.0, 1.0}, {{0.0, 100.0}, 1.0, 1.0}};
  const auto result = check_intersection_consistency(anchors, {});
  EXPECT_EQ(result.consistent_anchors.size(), 3u);
  EXPECT_TRUE(result.intersection_points.empty());
}

TEST(IntersectionCheck, CollinearAnchorsAmplifyError) {
  // The Figure 11 situation: two nearly-collinear anchors displace the
  // intersection points strongly under small distance error.
  const Vec2 node{10.0, 0.0};
  std::vector<AnchorObservation> anchors;
  anchors.push_back({{0.0, 0.1}, 10.0, 1.0});
  anchors.push_back({{20.0, -0.1}, 10.0 + 0.4, 1.0});  // small error, near-collinear
  anchors.push_back({{10.0, 15.0}, 15.0, 1.0});
  anchors.push_back({{10.0, -15.0}, 15.0, 1.0});
  const auto result = check_intersection_consistency(anchors, {});
  // The cluster still forms near the node.
  EXPECT_LT(resloc::math::distance(result.cluster_centroid, node), 2.5);
}

TEST(MultilaterateWithCheck, OutlierAnchorSurvivable) {
  const Vec2 node{10.0, 10.0};
  auto anchors = observe({{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}, {20.0, 20.0}}, node);
  anchors.push_back({{5.0, 5.0}, 30.0, 1.0});  // true distance is ~7.1: big outlier
  MultilaterationOptions plain;
  MultilaterationOptions checked;
  checked.use_intersection_check = true;
  Rng rng(6);
  const auto biased = multilaterate(anchors, plain, rng);
  const auto cleaned = multilaterate(anchors, checked, rng);
  ASSERT_TRUE(biased && cleaned);
  EXPECT_LT(resloc::math::distance(*cleaned, node), resloc::math::distance(*biased, node));
  EXPECT_LT(resloc::math::distance(*cleaned, node), 0.5);
}

TEST(LocalizeByMultilateration, GridWithDenseAnchors) {
  Deployment d;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      d.positions.push_back(Vec2{x * 10.0, y * 10.0});
    }
  }
  d.anchors = {0, 3, 12, 15, 5};
  MeasurementSet meas(d.size());
  for (NodeId i = 0; i < d.size(); ++i) {
    for (NodeId j = i + 1; j < d.size(); ++j) {
      const double dist = resloc::math::distance(d.positions[i], d.positions[j]);
      if (dist < 25.0) meas.add(i, j, dist);
    }
  }
  Rng rng(7);
  const auto result = localize_by_multilateration(d, meas, MultilaterationOptions{}, rng);
  std::size_t good = 0;
  for (NodeId i = 0; i < d.size(); ++i) {
    if (d.is_anchor(i) || !result.positions[i]) continue;
    if (resloc::math::distance(*result.positions[i], d.positions[i]) < 0.5) ++good;
  }
  EXPECT_GE(good, 8u);
}

TEST(LocalizeByMultilateration, ProgressiveLocalizesMore) {
  // Node 3 sits inside the anchor triangle (3 anchor links); node 4 only has
  // 2 anchor links plus a link to node 3 -- localizable only after node 3 is
  // promoted to anchor by the progressive scheme.
  Deployment d;
  d.positions = {{0.0, 0.0}, {10.0, 0.0}, {5.0, 8.66}, {5.0, 3.0}, {15.0, 3.0}};
  d.anchors = {0, 1, 2};
  MeasurementSet meas(d.size());
  for (NodeId i = 0; i < d.size(); ++i) {
    for (NodeId j = i + 1; j < d.size(); ++j) {
      const double dist = resloc::math::distance(d.positions[i], d.positions[j]);
      if (dist < 13.0) meas.add(i, j, dist);
    }
  }
  MultilaterationOptions plain;
  Rng rng(8);
  const auto without = localize_by_multilateration(d, meas, plain, rng);
  MultilaterationOptions progressive = plain;
  progressive.progressive = true;
  const auto with = localize_by_multilateration(d, meas, progressive, rng);
  EXPECT_EQ(without.localized_count(), 4u);  // 3 anchors + node 3
  EXPECT_EQ(with.localized_count(), 5u);     // node 4 joins via promoted node 3
  ASSERT_TRUE(with.positions[4].has_value());
  EXPECT_LT(resloc::math::distance(*with.positions[4], d.positions[4]), 0.5);
}

TEST(AverageAnchorsPerNode, CountsOnlyAnchorLinks) {
  Deployment d;
  d.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  d.anchors = {0};
  MeasurementSet meas(4);
  meas.add(0, 1, 1.0);  // anchor link for node 1
  meas.add(1, 2, 1.0);  // non-anchor link
  meas.add(0, 3, 3.0);  // anchor link for node 3
  EXPECT_DOUBLE_EQ(average_anchors_per_node(d, meas), 2.0 / 3.0);
}

}  // namespace
