// Detection-offset accuracy harness: the lock on the matched-filter detector
// and the robust measurement filtering.
//
// Every fixture here is zero-jitter (sync_jitter = actuation_jitter = 0,
// delta_const_true == calibrated), so the ground-truth arrival sample of a
// trial is exactly ranging::detection_index_for_distance(d) and the detection
// offset |detected - truth| is measurable per trial with no estimation step.
// Two scene families:
//   - clean: line-of-sight grass propagation;
//   - fixed echo: a deterministic reflector fixed_echo_lag_s = 10 ms
//     (160 samples at 16 kHz) behind the direct path and 8 dB LOUDER (a
//     focusing surface). The constant lag survives the accumulation pattern
//     -- random inter-chirp delays cannot decorrelate it -- which makes it
//     the adversarial scene the three detector front ends disagree on.
//
// Seeds and scene parameters are shared with bench_detector_accuracy so the
// CI gate and this harness pin the same distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "acoustics/environment.hpp"
#include "math/geometry.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"
#include "ranging/ranging_service.hpp"
#include "ranging/tdoa.hpp"
#include "sim/field_experiment.hpp"
#include "sim/scenarios.hpp"

namespace {

using resloc::ranging::DetectorMode;

/// Zero-jitter grass fixture; ambient interference off so the echo under test
/// is the only adversary.
resloc::ranging::RangingConfig fixture_config(DetectorMode mode, bool fixed_echo) {
  resloc::ranging::RangingConfig config;
  config.environment = resloc::acoustics::EnvironmentProfile::grass();
  config.environment.echo_rate = 0.0;
  config.environment.noise_burst_rate_hz = 0.0;
  if (fixed_echo) {
    config.environment.fixed_echo_lag_s = 0.010;          // 160 samples
    config.environment.fixed_echo_attenuation_db = -8.0;  // echo louder than direct
  }
  config.pattern.num_chirps = 10;
  config.pattern.chirp_duration_s = 0.008;
  config.pattern.tone_frequency_hz = 4300.0;
  config.detection = {2, 32, 6};
  config.max_window_range_m = 22.0;
  config.tdoa.sync_jitter_s = 0.0;
  config.channel_jitter.actuation_jitter_s = 0.0;
  config.tdoa.delta_const_true_s = config.tdoa.delta_const_calibrated_s;
  config.detector_mode = mode;
  return config;
}

struct OffsetSummary {
  double median_abs = -1.0;   ///< -1 when nothing was detected
  double median_signed = 0.0;
  int detections = 0;
  int attempts = 0;
};

/// Per-trial |detection index - true index| over fixed-seed substreams.
OffsetSummary offset_summary(const resloc::ranging::RangingConfig& config,
                             const std::vector<double>& distances, int trials,
                             std::uint64_t seed, double mic_sensitivity_db = 0.0) {
  const resloc::ranging::RangingService service(config);
  resloc::acoustics::MicUnit mic;
  mic.sensitivity_db = mic_sensitivity_db;
  OffsetSummary summary;
  std::vector<double> abs_offsets;
  std::vector<double> signed_offsets;
  for (const double d : distances) {
    const int expected = resloc::ranging::detection_index_for_distance(d, config.tdoa);
    resloc::math::Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
      resloc::math::Rng stream = rng.fork(t);
      ++summary.attempts;
      const auto attempt = service.measure_with_diagnostics(d, {}, mic, stream);
      if (!attempt.distance_m) continue;
      ++summary.detections;
      const double off = attempt.detection_index - expected;
      abs_offsets.push_back(std::abs(off));
      signed_offsets.push_back(off);
    }
  }
  if (!abs_offsets.empty()) {
    summary.median_abs = *resloc::math::median(std::move(abs_offsets));
    summary.median_signed = *resloc::math::median(std::move(signed_offsets));
  }
  return summary;
}

const std::vector<double> kEchoDistances = {14.0, 16.0, 18.0, 20.0};
constexpr int kTrials = 30;
constexpr std::uint64_t kCleanSeed = 0xF00D;
constexpr std::uint64_t kEchoSeed = 0xBEEF;

// --- The acceptance inequality: NCC beats the software tone detector ---

TEST(DetectorAccuracy, NccMedianOffsetStrictlyBelowGoertzelOnEchoFixtures) {
  const auto goertzel = offset_summary(fixture_config(DetectorMode::kGoertzel, true),
                                       kEchoDistances, kTrials, kEchoSeed);
  const auto ncc = offset_summary(fixture_config(DetectorMode::kMatchedFilter, true),
                                  kEchoDistances, kTrials, kEchoSeed);
  ASSERT_GT(goertzel.detections, 0);
  ASSERT_GT(ncc.detections, 0);
  // The tentpole claim, strict: matched-filter peak picking stays on the true
  // first arrival where the per-sample Goertzel scan drifts.
  EXPECT_LT(ncc.median_abs, goertzel.median_abs);
  // Fixed-seed regression pins (probed margins ~4x): NCC holds sample-level
  // accuracy; the Goertzel median sits multiple samples off on this scene.
  EXPECT_LE(ncc.median_abs, 2.0);
  EXPECT_GE(goertzel.median_abs, 2.0);
  // Both software detectors must actually detect: an accuracy win at a lower
  // detection rate would be a false victory.
  EXPECT_EQ(ncc.detections, ncc.attempts);
  EXPECT_EQ(goertzel.detections, goertzel.attempts);
}

TEST(DetectorAccuracy, NccHoldsSampleAccuracyOnCleanFixtures) {
  const std::vector<double> distances = {5.0, 10.0, 15.0, 20.0};
  const auto ncc = offset_summary(fixture_config(DetectorMode::kMatchedFilter, false),
                                  distances, kTrials, kCleanSeed);
  EXPECT_EQ(ncc.detections, ncc.attempts);
  EXPECT_LE(ncc.median_abs, 2.0);
}

// --- Echo-injection properties ---

TEST(DetectorAccuracy, HardwareDetectorLatchesLouderEchoByExpectedLag) {
  // With the direct arrival pushed near the hardware front end's detection
  // floor (mic -6 dB, 18-20 m) and the echo 8 dB louder, the interval
  // detector locks the echo: the signed detection offset lands at the
  // injected lag (160 samples), not at zero. This is the unfiltered-
  // detection shift the robust filters exist for.
  const auto hw = offset_summary(fixture_config(DetectorMode::kHardware, true),
                                 {18.0, 20.0}, kTrials, kEchoSeed,
                                 /*mic_sensitivity_db=*/-6.0);
  ASSERT_GT(hw.detections, 0);
  EXPECT_NEAR(hw.median_signed, 160.0, 10.0);
}

TEST(DetectorAccuracy, NccRecoversTrueFirstArrivalDespiteLouderEcho) {
  // Same scene: NCC's leftmost-peak rule keeps the weaker-but-first direct
  // correlation peak instead of the stronger echo peak.
  const auto ncc = offset_summary(fixture_config(DetectorMode::kMatchedFilter, true),
                                  {18.0, 20.0}, kTrials, kEchoSeed);
  EXPECT_EQ(ncc.detections, ncc.attempts);
  EXPECT_NEAR(ncc.median_signed, 0.0, 2.0);
}

TEST(DetectorAccuracy, NccFallsBackToEchoOnlyWhenDirectIsBelowFloor) {
  // Drop the mic 12 dB: the direct arrival sinks below even the matched
  // filter's ~-6 dB operating point, and the only detectable arrival IS the
  // echo. NCC then reports the echo onset (offset ~ lag), pinning where its
  // processing-gain advantage ends.
  resloc::ranging::RangingConfig config =
      fixture_config(DetectorMode::kMatchedFilter, true);
  config.environment.fixed_echo_attenuation_db = -10.0;
  const auto ncc = offset_summary(config, {15.0}, kTrials, 0xCAFE,
                                  /*mic_sensitivity_db=*/-12.0);
  ASSERT_GT(ncc.detections, 0);
  EXPECT_NEAR(ncc.median_signed, 160.0, 10.0);
  // At -9 dB the direct path is still above the NCC floor and wins.
  const auto still_direct = offset_summary(config, {15.0}, kTrials, 0xCAFE,
                                           /*mic_sensitivity_db=*/-9.0);
  EXPECT_NEAR(still_direct.median_signed, 0.0, 3.0);
}

// --- Unknown-mode failure paths ---

TEST(DetectorAccuracy, UnknownDetectorNameThrowsNamingTheValue) {
  try {
    resloc::ranging::detector_mode_by_name("fancy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fancy"), std::string::npos) << what;
    EXPECT_NE(what.find("ncc"), std::string::npos) << what;
  }
}

TEST(DetectorAccuracy, OutOfRangeDetectorEnumThrowsInServiceConstructor) {
  resloc::ranging::RangingConfig config = fixture_config(DetectorMode::kHardware, false);
  config.detector_mode = static_cast<DetectorMode>(99);
  try {
    const resloc::ranging::RangingService service(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

TEST(DetectorAccuracy, DetectorModeNamesRoundTrip) {
  for (const auto mode : {DetectorMode::kHardware, DetectorMode::kGoertzel,
                          DetectorMode::kMatchedFilter}) {
    EXPECT_EQ(resloc::ranging::detector_mode_by_name(
                  resloc::ranging::detector_mode_name(mode)),
              mode);
  }
  // The legacy boolean is an alias for the Goertzel mode.
  resloc::ranging::RangingConfig config = fixture_config(DetectorMode::kHardware, false);
  config.software_detector = true;
  const resloc::ranging::RangingService service(config);
  EXPECT_EQ(service.detector_mode(), DetectorMode::kGoertzel);
}

// --- Robust filtering cuts the 22-30 m error tail ---

TEST(DetectorAccuracy, RobustFiltersCutLongLinkErrorTailOnEchoHostileCampaign) {
  // Baseline single-chirp urban campaign (no accumulation pattern, so random
  // echoes and noise bursts survive into individual measurements -- the
  // paper's Figure 4 regime) over a 4x3 grid with 10 m spacing: link true
  // distances reach ~36 m, and the 22-30 m band is where weak direct
  // arrivals lose to interference. The consistency vote drops links with no
  // repeatable distance and MAD trims round-to-round stragglers; plain
  // median averaging keeps them all.
  resloc::core::Deployment dep;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) dep.positions.push_back({10.0 * x, 10.0 * y});
  }
  resloc::sim::FieldExperimentConfig config =
      resloc::sim::urban_baseline_campaign_config(/*rounds=*/5);
  config.simulate_within_m = 32.0;

  resloc::math::Rng rng(0x22AA);
  const auto data = resloc::sim::run_field_experiment(dep, config, rng);

  resloc::ranging::FilterPolicy plain;
  plain.kind = resloc::ranging::FilterKind::kMedian;
  resloc::ranging::FilterPolicy robust = plain;
  robust.consistency_vote = true;
  robust.consistency_tolerance_m = 0.5;
  robust.consistency_min_votes = 2;
  robust.mad_reject = true;

  struct Band {
    double mean = 0.0;
    double worst = 0.0;
    int links = 0;
  };
  const auto band_error = [&](const resloc::ranging::FilterPolicy& policy) {
    Band band;
    double sum = 0.0;
    for (const auto& p : data.raw.symmetric_estimates(policy, 1.0)) {
      const double truth =
          resloc::math::distance(dep.positions[p.a], dep.positions[p.b]);
      if (truth < 22.0 || truth > 30.0) continue;
      const double err = std::abs(p.distance_m - truth);
      sum += err;
      band.worst = std::max(band.worst, err);
      ++band.links;
    }
    band.mean = band.links > 0 ? sum / band.links : -1.0;
    return band;
  };

  const Band unfiltered = band_error(plain);
  const Band filtered = band_error(robust);
  ASSERT_GT(unfiltered.links, 5);
  ASSERT_GT(filtered.links, 5);
  // The improvement claim, strict, plus fixed-seed regression bounds with
  // ~2x margin on the probed values (plain mean 4.9 m / worst 26.4 m,
  // robust mean 0.47 m / worst 1.36 m at seed 0x22AA).
  EXPECT_LT(filtered.mean, unfiltered.mean);
  EXPECT_LT(filtered.worst, unfiltered.worst);
  EXPECT_GT(unfiltered.mean, 2.0);
  EXPECT_LT(filtered.mean, 1.0);
  EXPECT_GT(unfiltered.worst, 10.0);
  EXPECT_LT(filtered.worst, 3.0);
  // The vote is doing real work: some long links end with no consensus at
  // all and are dropped rather than estimated from garbage.
  const auto report = data.raw.robust_report(robust);
  EXPECT_GT(report.vote_rejected, 0u);
  EXPECT_GT(report.pairs_without_consensus, 0u);
}

// --- Byte-identity guard: the robust-filter machinery off = the old path ---

TEST(DetectorAccuracy, DefaultPolicyCampaignUnchangedByRobustMachinery) {
  // A grass campaign with the default (all-off) policy must produce exactly
  // the same filtered estimates as before the robust stages existed; the
  // statistical filter only changes behaviour when a policy opts in. (The
  // golden acoustic fixtures enforce this end to end; this is the targeted
  // unit-level version with a nonzero-vote policy as the contrast.)
  resloc::core::Deployment dep;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 3; ++x) dep.positions.push_back({8.0 * x, 8.0 * y});
  }
  resloc::sim::FieldExperimentConfig config = resloc::sim::grass_campaign_config(3);
  resloc::math::Rng rng(0x900D);
  const auto data = resloc::sim::run_field_experiment(dep, config, rng);
  const auto defaults = data.raw.symmetric_estimates(resloc::ranging::FilterPolicy{}, 1.0);
  const auto campaign = data.filtered;
  ASSERT_EQ(defaults.size(), campaign.size());
  for (std::size_t i = 0; i < defaults.size(); ++i) {
    EXPECT_EQ(defaults[i].a, campaign[i].a);
    EXPECT_EQ(defaults[i].b, campaign[i].b);
    EXPECT_DOUBLE_EQ(defaults[i].distance_m, campaign[i].distance_m);
  }
}

}  // namespace
