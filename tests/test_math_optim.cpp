#include <gtest/gtest.h>

#include <cmath>

#include "math/gradient_descent.hpp"
#include "math/jacobi_eigen.hpp"
#include "math/matrix.hpp"

namespace {

using namespace resloc::math;

TEST(GradientDescent, QuadraticBowl) {
  // E = (x-3)^2 + (y+1)^2.
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 2.0 * (x[0] - 3.0);
    g[1] = 2.0 * (x[1] + 1.0);
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  GradientDescentOptions options;
  options.step_size = 0.1;
  options.max_iterations = 1000;
  const auto result = minimize(objective, {0.0, 0.0}, options);
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
  EXPECT_LT(result.error, 1e-8);
}

TEST(GradientDescent, AdaptiveStepSurvivesHugeInitialStep) {
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  GradientDescentOptions options;
  options.step_size = 1000.0;  // would diverge without backtracking
  options.adaptive = true;
  options.max_iterations = 500;
  const auto result = minimize(objective, {5.0}, options);
  EXPECT_NEAR(result.x[0], 0.0, 1e-3);
}

TEST(GradientDescent, FixedStepMatchesEquationOne) {
  // One iteration of the paper's update rule: x1 = x0 - alpha * grad.
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  GradientDescentOptions options;
  options.step_size = 0.25;
  options.adaptive = false;
  options.max_iterations = 1;
  const auto result = minimize(objective, {4.0}, options);
  EXPECT_DOUBLE_EQ(result.x[0], 4.0 - 0.25 * 8.0);
}

TEST(GradientDescent, StopsAtGradientTolerance) {
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 0.0;
    return 7.0 + 0.0 * x[0];
  };
  GradientDescentOptions options;
  const auto result = minimize(objective, {1.0}, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_DOUBLE_EQ(result.error, 7.0);
}

TEST(GradientDescent, TraceIsMonotoneWithAdaptiveStep) {
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 2.0 * (x[0] - 1.0);
    g[1] = 4.0 * x[1];
    return (x[0] - 1.0) * (x[0] - 1.0) + 2.0 * x[1] * x[1];
  };
  GradientDescentOptions options;
  options.record_trace = true;
  options.step_size = 0.05;
  const auto result = minimize(objective, {5.0, -3.0}, options);
  ASSERT_GE(result.error_trace.size(), 2u);
  for (std::size_t i = 1; i < result.error_trace.size(); ++i) {
    EXPECT_LE(result.error_trace[i], result.error_trace[i - 1] + 1e-12);
  }
}

TEST(GradientDescent, RestartsEscapeLocalMinimum) {
  // Double well: E = (x^2 - 1)^2 + 0.3 x, local minimum near x=+1 (E~0.3),
  // global near x=-1 (E~-0.3). Start in the bad basin.
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 4.0 * x[0] * (x[0] * x[0] - 1.0) + 0.3;
    const double q = x[0] * x[0] - 1.0;
    return q * q + 0.3 * x[0];
  };
  GradientDescentOptions options;
  options.step_size = 0.02;
  options.max_iterations = 400;
  RestartOptions restarts{.rounds = 25, .perturbation_stddev = 1.5};
  Rng rng(99);
  const auto result = minimize_with_restarts(objective, {1.0}, options, restarts, rng);
  EXPECT_NEAR(result.x[0], -1.0, 0.15);
}

TEST(GradientDescent, RestartsNeverWorseThanSingleRun) {
  const Objective objective = [](const std::vector<double>& x, std::vector<double>& g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  GradientDescentOptions options;
  options.max_iterations = 50;
  options.step_size = 0.01;
  Rng rng(1);
  const auto single = minimize(objective, {10.0}, options);
  Rng rng2(1);
  RestartOptions restarts{.rounds = 5, .perturbation_stddev = 2.0};
  const auto multi = minimize_with_restarts(objective, {10.0}, options, restarts, rng2);
  EXPECT_LE(multi.error, single.error + 1e-15);
}

TEST(JacobiEigen, DiagonalMatrix) {
  const Matrix m{{3.0, 0.0}, {0.0, 7.0}};
  const auto d = jacobi_eigen_decomposition(m);
  EXPECT_NEAR(d.eigenvalues[0], 7.0, 1e-12);
  EXPECT_NEAR(d.eigenvalues[1], 3.0, 1e-12);
}

TEST(JacobiEigen, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1) and (1,-1).
  const Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const auto d = jacobi_eigen_decomposition(m);
  EXPECT_NEAR(d.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(d.eigenvalues[1], 1.0, 1e-12);
  // First eigenvector proportional to (1,1).
  EXPECT_NEAR(std::abs(d.eigenvectors(0, 0)), std::abs(d.eigenvectors(1, 0)), 1e-10);
}

TEST(JacobiEigen, ReconstructsMatrix) {
  const Matrix m{{4.0, 1.0, -2.0}, {1.0, 2.0, 0.0}, {-2.0, 0.0, 3.0}};
  const auto d = jacobi_eigen_decomposition(m);
  // A = V diag(lambda) V^T.
  Matrix lambda(3, 3);
  for (int i = 0; i < 3; ++i) lambda(i, i) = d.eigenvalues[i];
  const Matrix reconstructed = d.eigenvectors * lambda * d.eigenvectors.transposed();
  EXPECT_LT((reconstructed - m).frobenius_norm(), 1e-9);
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
  const Matrix m{{5.0, 2.0, 1.0}, {2.0, 6.0, 3.0}, {1.0, 3.0, 7.0}};
  const auto d = jacobi_eigen_decomposition(m);
  const Matrix vtv = d.eigenvectors.transposed() * d.eigenvectors;
  EXPECT_LT((vtv - Matrix::identity(3)).frobenius_norm(), 1e-9);
}

TEST(JacobiEigen, EigenvaluesSortedDescending) {
  const Matrix m{{1.0, 0.5, 0.0, 0.2},
                 {0.5, 2.0, 0.3, 0.0},
                 {0.0, 0.3, 3.0, 0.1},
                 {0.2, 0.0, 0.1, 4.0}};
  const auto d = jacobi_eigen_decomposition(m);
  for (std::size_t i = 1; i < d.eigenvalues.size(); ++i) {
    EXPECT_GE(d.eigenvalues[i - 1], d.eigenvalues[i]);
  }
}

}  // namespace
