#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace {

using resloc::math::Rng;

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  std::vector<double> draws;
  for (int i = 0; i < 20000; ++i) draws.push_back(rng.uniform());
  EXPECT_NEAR(resloc::math::mean(draws), 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(15);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  std::vector<double> draws;
  for (int i = 0; i < 50000; ++i) draws.push_back(rng.gaussian(2.0, 3.0));
  EXPECT_NEAR(resloc::math::mean(draws), 2.0, 0.08);
  EXPECT_NEAR(resloc::math::stddev(draws), 3.0, 0.08);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  std::vector<double> draws;
  for (int i = 0; i < 50000; ++i) draws.push_back(rng.exponential(2.0));
  EXPECT_NEAR(resloc::math::mean(draws), 0.5, 0.02);
  for (double d : draws) EXPECT_GE(d, 0.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(27);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream should not replay the parent's continuation.
  Rng parent_copy(31);
  Rng child_copy = parent_copy.split();
  int same_as_parent = 0;
  for (int i = 0; i < 64; ++i) {
    const auto c = child.next_u32();
    EXPECT_EQ(c, child_copy.next_u32());  // but still deterministic
    if (c == parent.next_u32()) ++same_as_parent;
  }
  EXPECT_LT(same_as_parent, 4);
}

TEST(Rng, SampleIndicesClampsOversizedRequest) {
  Rng rng(29);
  const auto sample = rng.sample_indices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);  // no duplicate padding
}

TEST(Rng, ForkIsDeterministicAndOrderIndependent) {
  const Rng master(101);
  Rng a = master.fork(7);
  // Forking other indices first (even from another copy) must not matter.
  Rng master2(101);
  master2.fork(3);
  master2.fork(12345);
  Rng b = master2.fork(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng forked(55);
  Rng untouched(55);
  forked.fork(0);
  forked.fork(99);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(forked.next_u32(), untouched.next_u32());
  }
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  const Rng master(202);
  // Adjacent indices -- the hardest case for a counter-based scheme -- must
  // produce streams that neither collide nor track each other.
  for (std::uint64_t idx : {0ULL, 1ULL, 2ULL, 1000ULL}) {
    Rng a = master.fork(idx);
    Rng b = master.fork(idx + 1);
    int same = 0;
    std::vector<double> draws_a, draws_b;
    for (int i = 0; i < 2000; ++i) {
      const auto ua = a.next_u32();
      const auto ub = b.next_u32();
      if (ua == ub) ++same;
      draws_a.push_back(static_cast<double>(ua));
      draws_b.push_back(static_cast<double>(ub));
    }
    EXPECT_LT(same, 4);
    // Pearson correlation of the raw outputs should be ~0.
    const double ma = resloc::math::mean(draws_a);
    const double mb = resloc::math::mean(draws_b);
    double cov = 0.0;
    for (std::size_t i = 0; i < draws_a.size(); ++i) {
      cov += (draws_a[i] - ma) * (draws_b[i] - mb);
    }
    cov /= static_cast<double>(draws_a.size());
    const double corr =
        cov / (resloc::math::stddev(draws_a) * resloc::math::stddev(draws_b));
    EXPECT_LT(std::abs(corr), 0.08) << "index " << idx;
  }
}

TEST(Rng, ForkDiffersFromParentContinuation) {
  Rng parent(303);
  Rng child = parent.fork(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u32() == parent.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
