#include <gtest/gtest.h>

#include "core/types.hpp"

namespace {

using namespace resloc::core;

TEST(MeasurementSet, AddAndLookup) {
  MeasurementSet set;
  set.add(3, 1, 7.5, 2.0);
  const auto edge = set.between(1, 3);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->i, 1u);  // normalized ordering
  EXPECT_EQ(edge->j, 3u);
  EXPECT_DOUBLE_EQ(edge->distance_m, 7.5);
  EXPECT_DOUBLE_EQ(edge->weight, 2.0);
  EXPECT_TRUE(set.has(3, 1));
  EXPECT_FALSE(set.has(1, 2));
  EXPECT_EQ(set.node_count(), 4u);
}

TEST(MeasurementSet, ReplacesDuplicates) {
  MeasurementSet set;
  set.add(0, 1, 5.0);
  set.add(1, 0, 6.0);
  EXPECT_EQ(set.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(set.between(0, 1)->distance_m, 6.0);
}

TEST(MeasurementSet, IgnoresSelfEdges) {
  MeasurementSet set;
  set.add(2, 2, 1.0);
  EXPECT_EQ(set.edge_count(), 0u);
}

TEST(MeasurementSet, Neighbors) {
  MeasurementSet set;
  set.add(0, 1, 5.0);
  set.add(0, 2, 6.0);
  set.add(1, 2, 7.0);
  const auto n0 = set.neighbors(0);
  EXPECT_EQ(n0.size(), 2u);
  const auto n3 = set.neighbors(3);
  EXPECT_TRUE(n3.empty());
}

TEST(MeasurementSet, AverageDegree) {
  MeasurementSet set(4);
  set.add(0, 1, 1.0);
  set.add(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(set.average_degree(), 1.0);  // 2*2/4
}

TEST(MeasurementSet, NodeCountGrowsAndPersists) {
  MeasurementSet set;
  EXPECT_EQ(set.node_count(), 0u);
  set.set_node_count(10);
  set.add(0, 1, 1.0);
  EXPECT_EQ(set.node_count(), 10u);
  set.add(0, 20, 1.0);
  EXPECT_EQ(set.node_count(), 21u);
}

TEST(Deployment, AnchorMembership) {
  Deployment d;
  d.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  d.anchors = {0, 2};
  EXPECT_TRUE(d.is_anchor(0));
  EXPECT_FALSE(d.is_anchor(1));
  EXPECT_TRUE(d.is_anchor(2));
  EXPECT_EQ(d.size(), 3u);
}

TEST(LocalizationResult, LocalizedCount) {
  LocalizationResult r;
  r.positions = {resloc::math::Vec2{0.0, 0.0}, std::nullopt, resloc::math::Vec2{1.0, 1.0}};
  EXPECT_EQ(r.localized_count(), 2u);
  EXPECT_EQ(r.size(), 3u);
}

}  // namespace
