// The measurement-acquisition scaling contract: grid-culled pair enumeration
// must find exactly the dense scan's in-range pair set (same pairs, same
// order, same distances) across benign and degenerate geometries, and the
// campaign's counter-based RNG substreams must make its output independent of
// enumeration path and thread count -- byte for byte, not approximately.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "math/grid_pairs.hpp"
#include "math/rng.hpp"
#include "sim/field_experiment.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenarios.hpp"

namespace {

using resloc::core::Deployment;
using resloc::core::MeasurementSet;
using resloc::core::NodeId;
using resloc::math::GridPairEnumerator;
using resloc::math::Rng;
using resloc::math::Vec2;

using PairList = std::vector<std::tuple<std::size_t, std::size_t, double>>;

PairList dense_pairs(const std::vector<Vec2>& points, double cutoff, bool include_equal) {
  PairList out;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double d = resloc::math::distance(points[i], points[j]);
      if (include_equal ? d <= cutoff : d < cutoff) out.emplace_back(i, j, d);
    }
  }
  return out;
}

PairList grid_pairs(const std::vector<Vec2>& points, double cutoff, bool include_equal) {
  GridPairEnumerator pairs;
  pairs.build(points.data(), points.size(), cutoff, include_equal);
  PairList out;
  pairs.for_each_pair([&](std::size_t i, std::size_t j, double d) { out.emplace_back(i, j, d); });
  return out;
}

void expect_matches_dense(const std::vector<Vec2>& points, double cutoff,
                          const char* label) {
  for (const bool include_equal : {false, true}) {
    const PairList dense = dense_pairs(points, cutoff, include_equal);
    const PairList grid = grid_pairs(points, cutoff, include_equal);
    // Exact tuple equality: same set, same (i, j)-lexicographic order, and
    // bit-identical distances (tested via == on the doubles).
    EXPECT_EQ(dense, grid) << label << " cutoff " << cutoff
                           << (include_equal ? " inclusive" : " strict");

    // Neighbor lists must replay the dense receiver scan's ascending order.
    GridPairEnumerator enumerator;
    enumerator.build(points.data(), points.size(), cutoff, include_equal);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::vector<std::size_t> expected;
      for (std::size_t j = 0; j < points.size(); ++j) {
        if (j == i) continue;
        const double d = resloc::math::distance(points[i], points[j]);
        if (include_equal ? d <= cutoff : d < cutoff) expected.push_back(j);
      }
      std::vector<std::size_t> got;
      enumerator.for_each_neighbor(i, [&](std::size_t j, double d) {
        got.push_back(j);
        EXPECT_EQ(d, resloc::math::distance(points[i], points[j]));
      });
      EXPECT_EQ(expected, got) << label << " node " << i;
      EXPECT_EQ(enumerator.degree(i), expected.size());
    }
  }
}

TEST(GridPairEnumerator, MatchesDenseScanOnRandomDeployment) {
  Rng rng(0xF1E1D);
  std::vector<Vec2> points;
  for (int i = 0; i < 70; ++i) {
    points.push_back({rng.uniform(0.0, 90.0), rng.uniform(0.0, 60.0)});
  }
  for (const double cutoff : {0.0, 4.0, 22.0, 45.0, 1000.0}) {
    expect_matches_dense(points, cutoff, "random");
  }
}

TEST(GridPairEnumerator, MatchesDenseScanOnClusteredDeployment) {
  // Tight blobs far apart: many same-cell candidates inside a blob, nothing
  // across blobs -- the regime that punishes a wrong cell size.
  Rng rng(0xC1);
  std::vector<Vec2> points;
  const Vec2 centers[] = {{0.0, 0.0}, {200.0, 10.0}, {40.0, 300.0}, {-150.0, -80.0}};
  for (const Vec2& c : centers) {
    for (int i = 0; i < 20; ++i) {
      points.push_back({c.x + rng.gaussian(0.0, 2.5), c.y + rng.gaussian(0.0, 2.5)});
    }
  }
  for (const double cutoff : {1.0, 8.0, 250.0}) {
    expect_matches_dense(points, cutoff, "clustered");
  }
}

TEST(GridPairEnumerator, MatchesDenseScanOnExactSpacingBoundaries) {
  // Collinear nodes at exact 10 m spacing with a cutoff of exactly 10, 20,
  // 30 m: every link distance sits on the strict-vs-inclusive boundary, the
  // case a grid cell sized exactly at the cutoff can lose to floating-point
  // rounding at cell edges.
  std::vector<Vec2> points;
  for (int i = 0; i < 41; ++i) points.push_back({10.0 * i, 3.0});
  for (const double cutoff : {10.0, 20.0, 30.0}) {
    expect_matches_dense(points, cutoff, "collinear-exact");
  }
  // The same boundary on a square lattice (both axes at play).
  std::vector<Vec2> lattice;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) lattice.push_back({7.0 * c, 7.0 * r});
  }
  for (const double cutoff : {7.0, 7.0 * std::sqrt(2.0), 14.0}) {
    expect_matches_dense(lattice, cutoff, "lattice-exact");
  }
}

TEST(GridPairEnumerator, MatchesDenseScanOnDegenerateDeployments) {
  expect_matches_dense({}, 10.0, "empty");
  expect_matches_dense({{3.0, 4.0}}, 10.0, "single");
  // All coincident: every pair at distance 0 (kept only inclusively at
  // cutoff 0), all in one cell.
  std::vector<Vec2> coincident(12, Vec2{5.0, -7.0});
  for (const double cutoff : {0.0, 1.0}) {
    expect_matches_dense(coincident, cutoff, "coincident");
  }
  // Negative cutoff keeps nothing, inclusively or not.
  EXPECT_TRUE(grid_pairs(coincident, -1.0, true).empty());
}

// --- Campaign equivalence: the grid front end against the seed-shaped dense
// reference path, and thread-count independence. ---

Deployment small_field(std::size_t n, double side) {
  Deployment d;
  Rng rng(0xDE90 + n);
  for (std::size_t i = 0; i < n; ++i) {
    d.positions.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return d;
}

void expect_same_campaign(const resloc::sim::FieldExperimentData& a,
                          const resloc::sim::FieldExperimentData& b) {
  EXPECT_EQ(a.skipped_pairs, b.skipped_pairs);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].source, b.samples[i].source);
    EXPECT_EQ(a.samples[i].receiver, b.samples[i].receiver);
    EXPECT_EQ(a.samples[i].true_distance_m, b.samples[i].true_distance_m);
    EXPECT_EQ(a.samples[i].measured_m, b.samples[i].measured_m);
  }
  ASSERT_EQ(a.filtered.size(), b.filtered.size());
  for (std::size_t i = 0; i < a.filtered.size(); ++i) {
    EXPECT_EQ(a.filtered[i].a, b.filtered[i].a);
    EXPECT_EQ(a.filtered[i].b, b.filtered[i].b);
    EXPECT_EQ(a.filtered[i].distance_m, b.filtered[i].distance_m);
    EXPECT_EQ(a.filtered[i].bidirectional, b.filtered[i].bidirectional);
  }
  const MeasurementSet ma = a.to_measurement_set(0);
  const MeasurementSet mb = b.to_measurement_set(0);
  ASSERT_EQ(ma.edge_count(), mb.edge_count());
  for (std::size_t i = 0; i < ma.edge_count(); ++i) {
    EXPECT_EQ(ma.edges()[i].i, mb.edges()[i].i);
    EXPECT_EQ(ma.edges()[i].j, mb.edges()[i].j);
    EXPECT_EQ(ma.edges()[i].distance_m, mb.edges()[i].distance_m);
  }
}

TEST(FieldExperimentScale, GridFrontEndMatchesDenseReferenceBitExactly) {
  const Deployment deployment = small_field(26, 55.0);
  resloc::sim::FieldExperimentConfig config = resloc::sim::grass_campaign_config(/*rounds=*/2);

  Rng rng_grid(31);
  const auto grid = resloc::sim::run_field_experiment(deployment, config, rng_grid);
  config.dense_pair_scan = true;
  Rng rng_dense(31);
  const auto dense = resloc::sim::run_field_experiment(deployment, config, rng_dense);

  EXPECT_GT(grid.samples.size(), 0u);
  expect_same_campaign(grid, dense);
  // Both paths must leave the caller's generator in the same state: only the
  // per-node unit draws advance it, never the campaign substreams.
  EXPECT_EQ(rng_grid.next_u32(), rng_dense.next_u32());
}

TEST(FieldExperimentScale, ThreadCountDoesNotChangeBytes) {
  const Deployment deployment = small_field(24, 50.0);
  resloc::sim::FieldExperimentConfig config = resloc::sim::grass_campaign_config(/*rounds=*/2);

  Rng rng1(97);
  const auto one = resloc::sim::run_field_experiment(deployment, config, rng1);
  config.threads = 4;
  Rng rng4(97);
  const auto four = resloc::sim::run_field_experiment(deployment, config, rng4);
  // The dense reference path shards identically.
  config.dense_pair_scan = true;
  Rng rng_dense(97);
  const auto dense4 = resloc::sim::run_field_experiment(deployment, config, rng_dense);

  EXPECT_GT(one.samples.size(), 0u);
  expect_same_campaign(one, four);
  expect_same_campaign(one, dense4);
}

TEST(FieldExperimentScale, SkippedPairsCountsOutOfRangePairsOnce) {
  // Three nodes: one close pair, one node far away -> 2 skipped unordered
  // pairs regardless of rounds, threads, or scan path.
  Deployment d;
  d.positions = {{0.0, 0.0}, {5.0, 0.0}, {500.0, 0.0}};
  resloc::sim::FieldExperimentConfig config = resloc::sim::grass_campaign_config(/*rounds=*/3);
  for (const bool dense : {false, true}) {
    config.dense_pair_scan = dense;
    Rng rng(3);
    const auto data = resloc::sim::run_field_experiment(d, config, rng);
    EXPECT_EQ(data.skipped_pairs, 2u) << (dense ? "dense" : "grid");
  }
}

// --- Generator equivalence: the grid-culled synthetic generators against the
// seed's dense loops, draw for draw. ---

MeasurementSet legacy_gaussian(const Deployment& deployment,
                               const resloc::sim::GaussianNoiseModel& noise, Rng& rng) {
  MeasurementSet set(deployment.size());
  for (NodeId i = 0; i < deployment.size(); ++i) {
    for (NodeId j = i + 1; j < deployment.size(); ++j) {
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d >= noise.max_range_m) continue;
      set.add(i, j, std::max(0.05, d + rng.gaussian(0.0, noise.sigma_m)));
    }
  }
  return set;
}

std::size_t legacy_augment(MeasurementSet& measurements, const Deployment& deployment,
                           const resloc::sim::GaussianNoiseModel& noise, Rng& rng,
                           std::size_t max_added) {
  // The seed implementation, distance-recomputation flaw and all: the flaw
  // cost time, not draws, so the rewritten version must consume the
  // generator identically.
  measurements.set_node_count(deployment.size());
  std::vector<std::pair<NodeId, NodeId>> candidates;
  for (NodeId i = 0; i < deployment.size(); ++i) {
    for (NodeId j = i + 1; j < deployment.size(); ++j) {
      if (measurements.has(i, j)) continue;
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d < noise.max_range_m) candidates.emplace_back(i, j);
    }
  }
  rng.shuffle(candidates);
  std::size_t added = 0;
  for (const auto& [i, j] : candidates) {
    if (max_added > 0 && added >= max_added) break;
    const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
    measurements.add(i, j, std::max(0.05, d + rng.gaussian(0.0, noise.sigma_m)));
    ++added;
  }
  return added;
}

void expect_same_edges(const MeasurementSet& a, const MeasurementSet& b) {
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i].i, b.edges()[i].i);
    EXPECT_EQ(a.edges()[i].j, b.edges()[i].j);
    EXPECT_EQ(a.edges()[i].distance_m, b.edges()[i].distance_m);
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight);
  }
}

TEST(MeasurementGenScale, GaussianMeasurementsMatchLegacyDenseLoop) {
  const Deployment deployment = small_field(60, 70.0);
  resloc::sim::GaussianNoiseModel noise;
  Rng rng_new(0xAB);
  const MeasurementSet fast = resloc::sim::gaussian_measurements(deployment, noise, rng_new);
  Rng rng_old(0xAB);
  const MeasurementSet slow = legacy_gaussian(deployment, noise, rng_old);
  EXPECT_GT(fast.edge_count(), 0u);
  expect_same_edges(fast, slow);
  EXPECT_EQ(rng_new.next_u32(), rng_old.next_u32());
}

TEST(MeasurementGenScale, AugmentDrawsPerPairUnchangedByDistanceCache) {
  const Deployment deployment = small_field(50, 60.0);
  resloc::sim::GaussianNoiseModel noise;
  // Seed both sets with the same sparse base so augmentation has real gaps.
  Rng base_rng(0x5EED);
  MeasurementSet fast = resloc::sim::gaussian_measurements(deployment, noise, base_rng);
  fast = resloc::sim::subsample_edges(fast, fast.edge_count() / 3, base_rng);
  MeasurementSet slow = fast;

  for (const std::size_t max_added : {std::size_t{0}, std::size_t{17}}) {
    MeasurementSet fast_copy = fast;
    MeasurementSet slow_copy = slow;
    Rng rng_new(0xCAC4E);
    Rng rng_old(0xCAC4E);
    const std::size_t added_fast =
        resloc::sim::augment_with_gaussian(fast_copy, deployment, noise, rng_new, max_added);
    const std::size_t added_slow =
        legacy_augment(slow_copy, deployment, noise, rng_old, max_added);
    EXPECT_GT(added_fast, 0u);
    EXPECT_EQ(added_fast, added_slow);
    expect_same_edges(fast_copy, slow_copy);
    // Identical post-call state: the cache removed a distance computation,
    // not a draw.
    EXPECT_EQ(rng_new.next_u32(), rng_old.next_u32());
  }
}

TEST(MeasurementGenScale, PerfectMeasurementsMatchLegacyDenseLoop) {
  const Deployment deployment = small_field(60, 70.0);
  const MeasurementSet fast = resloc::sim::perfect_measurements(deployment, 22.0);
  MeasurementSet slow(deployment.size());
  for (NodeId i = 0; i < deployment.size(); ++i) {
    for (NodeId j = i + 1; j < deployment.size(); ++j) {
      const double d = resloc::math::distance(deployment.positions[i], deployment.positions[j]);
      if (d < 22.0) slow.add(i, j, d);
    }
  }
  EXPECT_GT(fast.edge_count(), 0u);
  expect_same_edges(fast, slow);
}

}  // namespace
