#include <gtest/gtest.h>

#include <set>

#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"

namespace {

using resloc::pipeline::MeasurementSource;
using resloc::pipeline::Solver;
using resloc::runner::CampaignResult;
using resloc::runner::CampaignRunner;
using resloc::runner::RunnerOptions;
using resloc::runner::SweepSpec;
using resloc::runner::TrialSpec;

// A small but genuinely multi-axis sweep that runs in well under a second:
// synthetic measurements + multilateration on modest grids.
SweepSpec small_sweep() {
  SweepSpec spec;
  spec.name = "unit";
  spec.seed = 42;
  spec.trials_per_cell = 3;
  spec.base.source = MeasurementSource::kSyntheticGaussian;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.solvers = {Solver::kMultilateration};
  spec.axes.node_counts = {16, 25};
  spec.axes.noise_sigmas = {0.33, 1.0};
  spec.axes.anchor_counts = {6};
  spec.axes.augment = {false};
  return spec;
}

TEST(SweepSpec, ExpandCrossProductsAllAxes) {
  SweepSpec spec = small_sweep();
  EXPECT_EQ(resloc::runner::cell_count(spec), 4u);  // 2 node counts x 2 sigmas
  const auto trials = resloc::runner::expand(spec);
  ASSERT_EQ(trials.size(), 12u);  // 4 cells x 3 repetitions
  // Global indices are positional; cells are cell-major.
  std::set<std::size_t> cells;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].global_index, i);
    cells.insert(trials[i].cell_index);
    EXPECT_EQ(trials[i].cell_index, i / spec.trials_per_cell);
    EXPECT_EQ(trials[i].trial_index, i % spec.trials_per_cell);
  }
  EXPECT_EQ(cells.size(), 4u);
}

TEST(SweepSpec, EmptyAxisMakesEmptySweep) {
  SweepSpec spec = small_sweep();
  spec.axes.noise_sigmas.clear();
  EXPECT_EQ(resloc::runner::cell_count(spec), 0u);
  EXPECT_TRUE(resloc::runner::expand(spec).empty());
}

TEST(CampaignRunner, EmptySweepProducesValidEmptyResult) {
  SweepSpec spec = small_sweep();
  spec.axes.scenarios.clear();
  const CampaignResult result = CampaignRunner(RunnerOptions{4}).run(spec);
  EXPECT_TRUE(result.trials.empty());
  EXPECT_TRUE(result.cells.empty());
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"cell_count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
}

TEST(CampaignRunner, SingleTrialSweep) {
  SweepSpec spec = small_sweep();
  spec.trials_per_cell = 1;
  spec.axes.node_counts = {16};
  spec.axes.noise_sigmas = {0.33};
  const CampaignResult result = CampaignRunner(RunnerOptions{1}).run(spec);
  ASSERT_EQ(result.trials.size(), 1u);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.trials[0].ok);
  EXPECT_GT(result.trials[0].localized, 0u);
  EXPECT_EQ(result.cells[0].aggregate.trials, 1u);
  EXPECT_EQ(result.cells[0].aggregate.ok_trials, 1u);
}

TEST(CampaignRunner, UnknownScenarioFailsTrialNotCampaign) {
  SweepSpec spec = small_sweep();
  spec.axes.scenarios = {"no_such_scenario"};
  spec.trials_per_cell = 1;
  const CampaignResult result = CampaignRunner(RunnerOptions{2}).run(spec);
  ASSERT_EQ(result.trials.size(), 4u);
  for (const auto& t : result.trials) {
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.failure, resloc::eval::FailureReason::kScenarioBuild);
    EXPECT_NE(t.error.find("no_such_scenario"), std::string::npos);
  }
  for (const auto& c : result.cells) EXPECT_EQ(c.aggregate.ok_trials, 0u);
  // Absent error statistics serialize as null, not a perfect-looking 0.
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"mean_error_m\": null"), std::string::npos);
  EXPECT_EQ(json.find("\"mean_error_m\": 0"), std::string::npos);
}

TEST(CampaignRunner, AggregatesAreIdenticalAcrossThreadCounts) {
  const SweepSpec spec = small_sweep();
  const CampaignResult serial = CampaignRunner(RunnerOptions{1}).run(spec);
  const CampaignResult parallel4 = CampaignRunner(RunnerOptions{4}).run(spec);
  const CampaignResult parallel7 = CampaignRunner(RunnerOptions{7}).run(spec);

  // The acceptance bar: byte-identical serialized aggregates.
  const std::string json1 = serial.to_json();
  EXPECT_EQ(json1, parallel4.to_json());
  EXPECT_EQ(json1, parallel7.to_json());
  EXPECT_EQ(serial.to_csv(), parallel4.to_csv());

  // And the raw per-trial outcomes agree slot by slot (not just in aggregate).
  ASSERT_EQ(serial.trials.size(), parallel4.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].average_error_m, parallel4.trials[i].average_error_m) << i;
    EXPECT_EQ(serial.trials[i].localized, parallel4.trials[i].localized) << i;
  }
}

TEST(CampaignRunner, DifferentSeedsProduceDifferentResults) {
  SweepSpec spec = small_sweep();
  const std::string a = CampaignRunner(RunnerOptions{2}).run(spec).to_json();
  spec.seed = 43;
  const std::string b = CampaignRunner(RunnerOptions{2}).run(spec).to_json();
  EXPECT_NE(a, b);
}

TEST(CampaignRunner, RunTrialMatchesPoolExecution) {
  const SweepSpec spec = small_sweep();
  const auto trials = resloc::runner::expand(spec);
  const CampaignResult pooled = CampaignRunner(RunnerOptions{4}).run(spec);
  // Re-running trial 5 standalone reproduces the pooled slot exactly.
  const auto solo = CampaignRunner::run_trial(spec, trials[5]);
  EXPECT_EQ(solo.average_error_m, pooled.trials[5].average_error_m);
  EXPECT_EQ(solo.localized, pooled.trials[5].localized);
  EXPECT_EQ(solo.measured_edges, pooled.trials[5].measured_edges);
}

}  // namespace
