#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "eval/metrics.hpp"
#include <fstream>

#include "eval/report.hpp"
#include "math/stats.hpp"
#include "math/transform2d.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace resloc::sim;
using resloc::core::Deployment;
using resloc::core::MeasurementSet;
using resloc::core::NodeId;
using resloc::math::Rng;
using resloc::math::Vec2;

TEST(Deployments, OffsetGridGeometry) {
  const auto d = offset_grid();
  EXPECT_EQ(d.size(), 49u);
  // Column spacing 9 m; even columns offset by 4.5 m. The paper discusses
  // node (0, 4.5): it must exist.
  bool found = false;
  for (const auto& p : d.positions) {
    if (std::abs(p.x) < 1e-9 && std::abs(p.y - 4.5) < 1e-9) found = true;
  }
  EXPECT_TRUE(found);
  // Nearest-neighbor distances are 9 m (in-column) and ~10 m (cross-column).
  double min_d = 1e9;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      min_d = std::min(min_d, resloc::math::distance(d.positions[i], d.positions[j]));
    }
  }
  EXPECT_NEAR(min_d, 9.0, 1e-9);
}

TEST(Deployments, OffsetGridWithFailures) {
  Rng rng(1);
  const auto d = offset_grid_with_failures(3, rng);
  EXPECT_EQ(d.size(), 46u);
}

TEST(Deployments, RandomUniformRespectsSpacingAndBounds) {
  Rng rng(2);
  const auto d = random_uniform(40, 100.0, 50.0, 5.0, rng);
  EXPECT_EQ(d.size(), 40u);
  for (const auto& p : d.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 50.0);
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      EXPECT_GE(resloc::math::distance(d.positions[i], d.positions[j]), 5.0);
    }
  }
}

TEST(Deployments, TownBlocksInvariants) {
  const auto d = town_blocks_59();
  EXPECT_EQ(d.size(), 59u);
  // Min spacing supports the paper's 9 m soft constraint.
  double min_d = 1e9;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      min_d = std::min(min_d, resloc::math::distance(d.positions[i], d.positions[j]));
    }
  }
  EXPECT_GT(min_d, 8.5);
  // The 22 m measurement graph is connected (required for localization).
  const auto meas = perfect_measurements(d, 22.0);
  EXPECT_GT(meas.edge_count(), 250u);
  std::vector<bool> seen(d.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (const auto& [n, dist] : meas.neighbors(cur)) {
      (void)dist;
      if (!seen[n]) {
        seen[n] = true;
        stack.push_back(n);
      }
    }
  }
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_TRUE(seen[i]) << "node " << i;
}

TEST(Deployments, ParkingLot) {
  const auto d = parking_lot_15();
  EXPECT_EQ(d.size(), 15u);
  EXPECT_EQ(d.anchors.size(), 5u);
  for (const auto& p : d.positions) {
    EXPECT_GE(p.x, -1.0);
    EXPECT_LE(p.x, 26.0);
  }
}

TEST(Deployments, RandomAnchors) {
  auto d = offset_grid();
  Rng rng(3);
  choose_random_anchors(d, 13, rng);
  EXPECT_EQ(d.anchors.size(), 13u);
  const std::set<NodeId> unique(d.anchors.begin(), d.anchors.end());
  EXPECT_EQ(unique.size(), 13u);
  EXPECT_TRUE(std::is_sorted(d.anchors.begin(), d.anchors.end()));
}

// Regression: an anchor request larger than the deployment used to be
// forwarded unchecked into sample_indices, which in release builds padded
// the pick list with duplicate zero indices.
TEST(Deployments, AssignRandomAnchorsClampsOversizedCount) {
  auto d = offset_grid(3, 3);  // 9 nodes
  assign_random_anchors(d, 50, /*seed=*/7);
  EXPECT_EQ(d.anchors.size(), 9u);
  const std::set<NodeId> unique(d.anchors.begin(), d.anchors.end());
  EXPECT_EQ(unique.size(), 9u);  // distinct picks, no duplicates
  for (NodeId id : d.anchors) EXPECT_LT(id, 9u);
}

TEST(Deployments, AssignRandomAnchorsReplacesPreviousSet) {
  auto d = offset_grid();
  assign_random_anchors(d, 13, 1);
  assign_random_anchors(d, 5, 2);  // second call must not accumulate
  EXPECT_EQ(d.anchors.size(), 5u);
  const std::set<NodeId> unique(d.anchors.begin(), d.anchors.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ScenarioRegistry, BuiltinsPresent) {
  for (const char* name :
       {"offset_grid", "grass_grid", "town", "parking_lot", "random_uniform"}) {
    EXPECT_TRUE(has_scenario(name)) << name;
  }
  EXPECT_FALSE(has_scenario("no_such_scenario"));
  const auto names = scenario_names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistry, BuildsParameterizedDeployments) {
  Rng rng(11);
  ScenarioParams params;
  params.node_count = 25;
  const auto grid = build_scenario("offset_grid", params, rng);
  EXPECT_EQ(grid.size(), 25u);

  ScenarioParams defaults;
  Rng rng2(11);
  EXPECT_EQ(build_scenario("grass_grid", defaults, rng2).size(), 46u);  // 49 - 3 failures
  EXPECT_EQ(build_scenario("town", defaults, rng2).size(), 59u);
  EXPECT_EQ(build_scenario("parking_lot", defaults, rng2).anchors.size(), 5u);
  EXPECT_THROW(build_scenario("no_such_scenario", defaults, rng2), std::out_of_range);
}

TEST(ScenarioRegistry, FixedGeometryRejectsMismatchedNodeCount) {
  Rng rng(19);
  ScenarioParams params;
  params.node_count = 25;  // town is a fixed 59-node layout
  EXPECT_THROW(build_scenario("town", params, rng), std::invalid_argument);
  EXPECT_THROW(build_scenario("parking_lot", params, rng), std::invalid_argument);
  params.node_count = 59;  // the native size is accepted
  EXPECT_EQ(build_scenario("town", params, rng).size(), 59u);
}

TEST(ScenarioRegistry, DropPreservesAnchorsAndRemapsIds) {
  Rng rng(13);
  ScenarioParams params;
  params.drop_count = 4;
  const auto lot = build_scenario("parking_lot", params, rng);
  EXPECT_EQ(lot.size(), 11u);  // 15 - 4, anchors never dropped
  EXPECT_EQ(lot.anchors.size(), 5u);
  for (NodeId id : lot.anchors) EXPECT_LT(id, lot.size());
  const std::set<NodeId> unique(lot.anchors.begin(), lot.anchors.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ScenarioRegistry, RegisterCustomScenario) {
  register_scenario("unit_test_line", [](const ScenarioParams& p, Rng&) {
    Deployment d;
    const std::size_t n = p.node_count == 0 ? 3 : p.node_count;
    for (std::size_t i = 0; i < n; ++i) {
      d.positions.push_back(Vec2{static_cast<double>(i) * 10.0, 0.0});
    }
    return d;
  });
  Rng rng(17);
  ScenarioParams params;
  params.node_count = 6;
  EXPECT_EQ(build_scenario("unit_test_line", params, rng).size(), 6u);
}

TEST(MeasurementGen, PerfectMeasurementsRespectCutoff) {
  const auto d = offset_grid(3, 3);
  const auto meas = perfect_measurements(d, 10.5);
  for (const auto& e : meas.edges()) {
    EXPECT_LT(e.distance_m, 10.5);
    EXPECT_NEAR(e.distance_m,
                resloc::math::distance(d.positions[e.i], d.positions[e.j]), 1e-12);
  }
}

TEST(MeasurementGen, GaussianNoiseStatistics) {
  const auto d = offset_grid();
  Rng rng(4);
  GaussianNoiseModel noise;
  const auto meas = gaussian_measurements(d, noise, rng);
  std::vector<double> errors;
  for (const auto& e : meas.edges()) {
    errors.push_back(e.distance_m -
                     resloc::math::distance(d.positions[e.i], d.positions[e.j]));
  }
  ASSERT_GT(errors.size(), 100u);
  EXPECT_NEAR(resloc::math::mean(errors), 0.0, 0.08);
  EXPECT_NEAR(resloc::math::stddev(errors), 0.33, 0.08);
}

TEST(MeasurementGen, AugmentOnlyAddsMissing) {
  const auto d = offset_grid(3, 3);
  Rng rng(5);
  auto meas = perfect_measurements(d, 10.5);
  const std::size_t before = meas.edge_count();
  const std::size_t full = perfect_measurements(d, 22.0).edge_count();
  const std::size_t added = augment_with_gaussian(meas, d, {}, rng, 0);
  EXPECT_EQ(meas.edge_count(), before + added);
  EXPECT_EQ(meas.edge_count(), full);
  // Idempotent: nothing more to add.
  Rng rng2(6);
  EXPECT_EQ(augment_with_gaussian(meas, d, {}, rng2, 0), 0u);
}

TEST(MeasurementGen, AugmentRespectsCap) {
  const auto d = offset_grid();
  Rng rng(7);
  MeasurementSet meas(d.size());
  const std::size_t added = augment_with_gaussian(meas, d, {}, rng, 10);
  EXPECT_EQ(added, 10u);
  EXPECT_EQ(meas.edge_count(), 10u);
}

TEST(MeasurementGen, SubsampleEdges) {
  const auto d = offset_grid();
  Rng rng(8);
  const auto full = perfect_measurements(d, 22.0);
  const auto sub = subsample_edges(full, 50, rng);
  EXPECT_EQ(sub.edge_count(), 50u);
  EXPECT_EQ(sub.node_count(), full.node_count());
  for (const auto& e : sub.edges()) EXPECT_TRUE(full.has(e.i, e.j));
}

TEST(MeasurementGen, InjectOutliersCorruptsFraction) {
  const auto d = offset_grid();
  Rng rng(9);
  auto meas = perfect_measurements(d, 22.0);
  const auto original = meas;
  inject_outliers(meas, 0.2, 8.0, rng);
  std::size_t changed = 0;
  for (const auto& e : meas.edges()) {
    if (std::abs(e.distance_m - original.between(e.i, e.j)->distance_m) > 1e-12) ++changed;
  }
  const double fraction = static_cast<double>(changed) / static_cast<double>(meas.edge_count());
  EXPECT_NEAR(fraction, 0.2, 0.08);
}

// --- eval ---

TEST(Metrics, PerfectEstimatesZeroError) {
  const std::vector<Vec2> actual{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const auto report = resloc::eval::evaluate_localization(actual, actual, false);
  EXPECT_EQ(report.localized, 3u);
  EXPECT_DOUBLE_EQ(report.average_error_m, 0.0);
}

TEST(Metrics, UnlocalizedNodesCounted) {
  std::vector<std::optional<Vec2>> est{Vec2{0.0, 0.0}, std::nullopt, Vec2{0.0, 1.2}};
  const std::vector<Vec2> actual{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const auto report = resloc::eval::evaluate_localization(est, actual, false);
  EXPECT_EQ(report.total_nodes, 3u);
  EXPECT_EQ(report.localized, 2u);
  EXPECT_NEAR(report.average_error_m, 0.1, 1e-12);
  EXPECT_NEAR(report.localized_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(report.node_errors[1].has_value());
  EXPECT_TRUE(report.node_errors[2].has_value());
}

TEST(Metrics, ExclusionList) {
  const std::vector<Vec2> actual{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  std::vector<std::optional<Vec2>> est{Vec2{5.0, 5.0}, Vec2{1.0, 0.0}, Vec2{0.0, 1.0}};
  const auto report = resloc::eval::evaluate_localization(est, actual, false, {0});
  EXPECT_EQ(report.total_nodes, 2u);
  EXPECT_DOUBLE_EQ(report.average_error_m, 0.0);
}

TEST(Metrics, AlignmentRemovesRigidMotion) {
  const std::vector<Vec2> actual{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  const resloc::math::Transform2D motion(0.9, true, {50.0, -20.0});
  std::vector<Vec2> est;
  for (const Vec2& p : actual) est.push_back(motion.apply(p));
  const auto unaligned = resloc::eval::evaluate_localization(est, actual, false);
  const auto aligned = resloc::eval::evaluate_localization(est, actual, true);
  EXPECT_GT(unaligned.average_error_m, 10.0);
  EXPECT_NEAR(aligned.average_error_m, 0.0, 1e-9);
}

TEST(Metrics, AverageWithoutWorst) {
  resloc::eval::LocalizationReport report;
  report.per_node_errors = {1.0, 1.0, 1.0, 10.0};
  EXPECT_DOUBLE_EQ(report.average_without_worst(1), 1.0);
  EXPECT_DOUBLE_EQ(report.average_without_worst(4), 0.0);  // nothing left
}

TEST(Metrics, RangingSummary) {
  const std::vector<double> errors{-0.1, 0.2, 0.05, -2.0, 3.5, 0.0};
  const auto report = resloc::eval::summarize_ranging_errors(errors);
  EXPECT_EQ(report.count, 6u);
  EXPECT_EQ(report.underestimates_beyond_1m, 1u);
  EXPECT_EQ(report.overestimates_beyond_1m, 1u);
  EXPECT_DOUBLE_EQ(report.within_30cm_fraction, 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(report.max_abs_m, 3.5);
}

TEST(Report, TableFormatsRows) {
  resloc::eval::Table table({"name", "value"});
  table.add_row(std::vector<std::string>{"alpha", "1"});
  table.add_row({2.5, 10.136}, 2);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10.14"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Report, CompareLine) {
  const auto line = resloc::eval::compare_line("avg error", 2.229, 1.8, "m");
  EXPECT_NE(line.find("2.229"), std::string::npos);
  EXPECT_NE(line.find("1.800"), std::string::npos);
}

TEST(Report, CsvWriter) {
  const std::string path = "/tmp/resloc_test_csv.csv";
  ASSERT_TRUE(resloc::eval::write_csv(path, {"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

}  // namespace
