// Locks the solver-scaling contract of the spatial-grid LSS rewrite:
//   - the grid-backed soft-constraint path is BIT-equal to the dense
//     all-pairs scan (error and every gradient component, to the last ulp),
//   - the SpatialHashGrid's neighborhood/pair enumeration never misses a
//     point pair within one cell size of each other,
//   - the analytic gradient of both stress terms matches finite differences
//     (so neither this rewrite nor a future objective edit can silently ship
//     a wrong gradient),
//   - the large-scale scenarios and the DV-hop-seeded pipeline mode work end
//     to end at a few hundred nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "math/rng.hpp"
#include "math/spatial_hash_grid.hpp"
#include "pipeline/localization_pipeline.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenario_registry.hpp"

namespace {

using namespace resloc::core;
using resloc::math::Rng;
using resloc::math::SpatialHashGrid;
using resloc::math::Vec2;

// --- Dense-vs-grid bit-equivalence ---

/// Random configuration + random sparse measurement set; box side controls
/// how violated the constraint is (small box = everything overlapping).
void expect_paths_bit_equal(std::size_t n, double box, double dmin, double measured_fraction,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> config(n);
  for (auto& v : config) v = Vec2{rng.uniform(-box / 2.0, box / 2.0), rng.uniform(0.0, box)};
  MeasurementSet meas(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(measured_fraction)) {
        meas.add(i, j, rng.uniform(0.5, box), rng.uniform(0.5, 2.0));
      }
    }
  }

  LssOptions grid_opt;
  grid_opt.min_spacing_m = dmin;
  LssOptions dense_opt = grid_opt;
  dense_opt.dense_constraint_scan = true;

  std::vector<double> grid_grad;
  std::vector<double> dense_grad;
  const double grid_e = lss_stress_with_gradient(meas, config, grid_opt, grid_grad);
  const double dense_e = lss_stress_with_gradient(meas, config, dense_opt, dense_grad);

  // Bit equality, not tolerance: both paths must run identical arithmetic in
  // identical order.
  EXPECT_EQ(grid_e, dense_e) << "n=" << n << " box=" << box << " seed=" << seed;
  ASSERT_EQ(grid_grad.size(), dense_grad.size());
  for (std::size_t k = 0; k < grid_grad.size(); ++k) {
    EXPECT_EQ(grid_grad[k], dense_grad[k])
        << "grad[" << k << "] n=" << n << " box=" << box << " seed=" << seed;
  }
}

TEST(LssGridEquivalence, RandomConfigurationsAcrossScales) {
  std::uint64_t seed = 100;
  for (const std::size_t n : {2u, 3u, 7u, 20u, 60u, 150u}) {
    for (const double box : {120.0, 40.0, 8.0}) {  // spread, busy, heavily violated
      expect_paths_bit_equal(n, box, 9.14, 0.15, seed++);
    }
  }
}

TEST(LssGridEquivalence, AllPointsInOneCell) {
  // Every pair active and in the same grid cell: the worst clustering case.
  expect_paths_bit_equal(40, 3.0, 9.0, 0.3, 7);
}

TEST(LssGridEquivalence, PointsOnCellBoundaries) {
  // Coordinates at exact multiples of d_min (cell edges) and coincident
  // points (the kMinSeparation guard).
  const double dmin = 9.0;
  std::vector<Vec2> config;
  for (int x = -2; x <= 2; ++x) {
    for (int y = -2; y <= 2; ++y) {
      config.push_back(Vec2{x * dmin, y * dmin});
    }
  }
  config.push_back(config.front());  // exact duplicate
  const std::size_t n = config.size();
  MeasurementSet meas(n);
  meas.add(0, 1, 5.0);

  LssOptions grid_opt;
  grid_opt.min_spacing_m = dmin;
  LssOptions dense_opt = grid_opt;
  dense_opt.dense_constraint_scan = true;
  std::vector<double> g1;
  std::vector<double> g2;
  EXPECT_EQ(lss_stress_with_gradient(meas, config, grid_opt, g1),
            lss_stress_with_gradient(meas, config, dense_opt, g2));
  EXPECT_EQ(g1, g2);
}

TEST(LssGridEquivalence, SolvesIdentically) {
  // Whole solves (restarts, backtracking, the lot) agree bit-for-bit when
  // seeded identically: the grid changes the cost of a solve, never its
  // trajectory.
  Rng noise(3);
  const auto town = resloc::sim::town_blocks_59();
  const auto meas = resloc::sim::gaussian_measurements(town, {}, noise);
  LssOptions grid_opt;
  grid_opt.independent_inits = 1;
  grid_opt.restarts.rounds = 2;
  grid_opt.gd.max_iterations = 400;
  LssOptions dense_opt = grid_opt;
  dense_opt.dense_constraint_scan = true;
  Rng r1(17);
  Rng r2(17);
  const auto a = localize_lss(meas, grid_opt, r1);
  const auto b = localize_lss(meas, dense_opt, r2);
  EXPECT_EQ(a.stress, b.stress);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x);
    EXPECT_EQ(a.positions[i].y, b.positions[i].y);
  }
}

// --- SpatialHashGrid unit tests ---

TEST(SpatialHashGrid, NeighborhoodIsSupersetOfRadius) {
  Rng rng(41);
  const std::size_t n = 200;
  const double cell = 7.5;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(-60.0, 60.0);
    ys[i] = rng.uniform(-45.0, 75.0);
  }
  SpatialHashGrid grid;
  grid.rebuild(xs.data(), ys.data(), n, cell);
  ASSERT_EQ(grid.point_count(), n);

  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> seen;
    grid.for_each_neighborhood_point(i, [&](std::size_t j) {
      EXPECT_TRUE(seen.insert(j).second) << "duplicate emission of " << j;
    });
    EXPECT_TRUE(seen.count(i)) << "neighborhood must include the point itself";
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx * dx + dy * dy < cell * cell) {
        EXPECT_TRUE(seen.count(j)) << "missed in-range neighbor " << j << " of " << i;
      }
    }
  }
}

TEST(SpatialHashGrid, CandidatePairsCoverAllCloseOnes) {
  Rng rng(42);
  const std::size_t n = 300;
  const double cell = 5.0;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of a dense clump and a spread field, including negative coords.
    const bool clump = i % 3 == 0;
    xs[i] = clump ? rng.uniform(-3.0, 3.0) : rng.uniform(-80.0, 80.0);
    ys[i] = clump ? rng.uniform(-3.0, 3.0) : rng.uniform(-80.0, 80.0);
  }
  SpatialHashGrid grid;
  grid.rebuild(xs.data(), ys.data(), n, cell);

  std::set<std::pair<std::size_t, std::size_t>> emitted;
  grid.for_each_candidate_pair([&](std::size_t i, std::size_t j) {
    ASSERT_LT(i, j);
    EXPECT_TRUE(emitted.emplace(i, j).second) << "pair emitted twice: " << i << "," << j;
  });
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx * dx + dy * dy < cell * cell) {
        EXPECT_TRUE(emitted.count({i, j})) << "missed close pair " << i << "," << j;
      }
    }
  }
}

TEST(SpatialHashGrid, SurvivesExtremeAndNonFiniteCoordinates) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs{0.0, 1e12, -1e12, inf, -inf, nan, 3.0};
  const std::vector<double> ys{0.0, -1e12, 1e12, -inf, inf, nan, 4.0};
  SpatialHashGrid grid;
  grid.rebuild(xs.data(), ys.data(), xs.size(), 9.0);
  std::size_t pairs = 0;
  grid.for_each_candidate_pair([&](std::size_t, std::size_t) { ++pairs; });
  // Points 0 and 6 are 5 m apart and must be candidates regardless of the
  // garbage around them.
  bool found = false;
  grid.for_each_neighborhood_point(0, [&](std::size_t j) { found |= (j == 6); });
  EXPECT_TRUE(found);
  EXPECT_GE(pairs, 1u);
}

TEST(SpatialHashGrid, EmptyAndSingle) {
  SpatialHashGrid grid;
  grid.rebuild(nullptr, nullptr, 0, 5.0);
  EXPECT_EQ(grid.point_count(), 0u);
  std::size_t emissions = 0;
  grid.for_each_candidate_pair([&](std::size_t, std::size_t) { ++emissions; });
  EXPECT_EQ(emissions, 0u);

  const double x = 2.0;
  const double y = -3.0;
  grid.rebuild(&x, &y, 1, 5.0);
  grid.for_each_candidate_pair([&](std::size_t, std::size_t) { ++emissions; });
  EXPECT_EQ(emissions, 0u);
  std::size_t self = 0;
  grid.for_each_neighborhood_point(0, [&](std::size_t j) { self += (j == 0); });
  EXPECT_EQ(self, 1u);
}

// --- Finite-difference gradient checks ---

/// Central-difference check of lss_stress_with_gradient around `config`.
void expect_gradient_matches_fd(const MeasurementSet& meas, const std::vector<Vec2>& config,
                                const LssOptions& options) {
  std::vector<double> grad;
  lss_stress_with_gradient(meas, config, options, grad);
  const double h = 1e-6;
  const std::size_t n = config.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (int axis = 0; axis < 2; ++axis) {
      std::vector<Vec2> plus = config;
      std::vector<Vec2> minus = config;
      (axis == 0 ? plus[i].x : plus[i].y) += h;
      (axis == 0 ? minus[i].x : minus[i].y) -= h;
      const double fd =
          (lss_stress(meas, plus, options) - lss_stress(meas, minus, options)) / (2.0 * h);
      const double analytic = grad[axis == 0 ? i : n + i];
      EXPECT_NEAR(analytic, fd, 1e-4 * std::max(1.0, std::abs(fd)))
          << "node " << i << " axis " << axis;
    }
  }
}

TEST(LssGradient, MeasuredEdgeTermMatchesFiniteDifference) {
  Rng rng(55);
  const std::size_t n = 8;
  std::vector<Vec2> config(n);
  for (auto& v : config) v = Vec2{rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)};
  MeasurementSet meas(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.6)) meas.add(i, j, rng.uniform(2.0, 25.0), rng.uniform(0.5, 2.0));
    }
  }
  LssOptions opt;
  opt.min_spacing_m.reset();  // edge term only
  expect_gradient_matches_fd(meas, config, opt);
}

TEST(LssGradient, SoftConstraintTermMatchesFiniteDifference) {
  Rng rng(56);
  const std::size_t n = 8;
  std::vector<Vec2> config(n);
  // Cramped: most pairs violate the 9 m spacing, none measured.
  for (auto& v : config) v = Vec2{rng.uniform(0.0, 14.0), rng.uniform(0.0, 14.0)};
  MeasurementSet meas(n);  // empty: every pair is a constraint candidate
  LssOptions opt;
  opt.min_spacing_m = 9.0;
  opt.constraint_weight = 10.0;
  EXPECT_GT(lss_stress(meas, config, opt), 0.0);  // the term must actually fire
  expect_gradient_matches_fd(meas, config, opt);
}

TEST(LssGradient, CombinedObjectiveMatchesFiniteDifference) {
  Rng rng(57);
  const std::size_t n = 10;
  std::vector<Vec2> config(n);
  for (auto& v : config) v = Vec2{rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)};
  MeasurementSet meas(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.3)) meas.add(i, j, rng.uniform(2.0, 18.0));
    }
  }
  LssOptions opt;
  opt.min_spacing_m = 9.14;
  expect_gradient_matches_fd(meas, config, opt);
}

// --- Large-scale scenarios and the DV-hop-seeded pipeline ---

TEST(ScaleScenarios, RegistryEntriesBuildAtNativeSize) {
  Rng rng(9);
  resloc::sim::ScenarioParams params;
  EXPECT_EQ(resloc::sim::build_scenario("campus_500", params, rng).size(), 500u);
  EXPECT_EQ(resloc::sim::build_scenario("city_1000", params, rng).size(), 1000u);
  EXPECT_EQ(resloc::sim::build_scenario("uniform_n", params, rng).size(), 100u);
  params.node_count = 37;
  EXPECT_EQ(resloc::sim::build_scenario("uniform_n", params, rng).size(), 37u);
  EXPECT_EQ(resloc::sim::scenario_environment("city_1000"), "urban");
}

TEST(ScaleScenarios, SaturatedFieldThrowsInsteadOfUnderfilling) {
  Rng rng(10);
  resloc::sim::ScenarioParams params;
  params.node_count = 5000;  // cannot fit 5000 nodes at 7 m spacing in 320x240
  EXPECT_THROW(resloc::sim::build_scenario("campus_500", params, rng), std::invalid_argument);
}

TEST(ScalePipeline, DvHopSeededLssLocalizesMidSizeField) {
  Rng deploy_rng(21);
  resloc::sim::ScenarioParams params;
  params.node_count = 150;
  auto deployment = resloc::sim::build_scenario("uniform_n", params, deploy_rng);
  Rng anchor_rng(22);
  resloc::sim::choose_random_anchors(deployment, 15, anchor_rng);

  resloc::pipeline::PipelineConfig config;
  config.source = resloc::pipeline::MeasurementSource::kSyntheticGaussian;
  config.solver = resloc::pipeline::Solver::kCentralizedLss;
  config.lss_init = resloc::pipeline::LssInit::kDvHopSeeded;
  config.lss.restarts.rounds = 3;
  const resloc::pipeline::LocalizationPipeline pipe(config);
  Rng run_rng(23);
  const auto run = pipe.run(deployment, run_rng);
  // 150 nodes is far beyond what random-init LSS unfolds reliably; the
  // DV-hop seed must bring the refined error down to ranging-noise scale.
  EXPECT_GT(run.report.localized, 140u);
  EXPECT_LT(run.report.average_error_m, 1.5);
}

// --- MeasurementSet adjacency index ---

TEST(MeasurementSetAdjacency, ReplacementUpdatesDistanceWithoutDuplicates) {
  MeasurementSet set(3);
  set.add(0, 1, 5.0);
  set.add(1, 2, 2.0);
  set.add(1, 0, 7.5);  // replaces 0-1, reversed order
  const auto n1 = set.neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].first, 0u);
  EXPECT_DOUBLE_EQ(n1[0].second, 7.5);
  EXPECT_EQ(n1[1].first, 2u);
  EXPECT_EQ(set.degree(1), 2u);
  EXPECT_EQ(set.degree(2), 1u);
  EXPECT_EQ(set.degree(99), 0u);  // out of range: no neighbors, no throw
  EXPECT_TRUE(set.neighbors(99).empty());
}

}  // namespace
