#include <gtest/gtest.h>

#include "math/matrix.hpp"

namespace {

using resloc::math::Matrix;

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a + b, Matrix({{6.0, 8.0}, {10.0, 12.0}}));
  EXPECT_EQ(b - a, Matrix({{4.0, 4.0}, {4.0, 4.0}}));
  EXPECT_EQ(a * 2.0, Matrix({{2.0, 4.0}, {6.0, 8.0}}));
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a * b, Matrix({{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(Matrix, ProductWithIdentity) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(a * Matrix::identity(3), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, MaxOffDiagonal) {
  const Matrix m{{10.0, -3.0}, {2.0, 20.0}};
  EXPECT_DOUBLE_EQ(m.max_off_diagonal(), 3.0);
  EXPECT_DOUBLE_EQ(Matrix::identity(4).max_off_diagonal(), 0.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, DoubleCenteringAnnihilatesRowColumnMeans) {
  const Matrix m{{0.0, 1.0, 4.0}, {1.0, 0.0, 9.0}, {4.0, 9.0, 0.0}};
  const Matrix b = m.double_centered();
  for (std::size_t r = 0; r < 3; ++r) {
    double row_sum = 0.0;
    double col_sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      row_sum += b(r, c);
      col_sum += b(c, r);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
    EXPECT_NEAR(col_sum, 0.0, 1e-12);
  }
}

TEST(Matrix, DoubleCenteringRecoversGramMatrix) {
  // Points on a line: x = 0, 3, 6. Squared distances d_ij^2; B should equal
  // the Gram matrix of centered coordinates: centered x = -3, 0, 3.
  Matrix d2(3, 3, 0.0);
  const double xs[3] = {0.0, 3.0, 6.0};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      d2(i, j) = (xs[i] - xs[j]) * (xs[i] - xs[j]);
    }
  }
  const Matrix b = d2.double_centered();
  const double centered[3] = {-3.0, 0.0, 3.0};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(b(i, j), centered[i] * centered[j], 1e-12);
    }
  }
}

}  // namespace
