// End-to-end integration tests: full ranging -> filtering -> localization
// pipelines on seeded scenarios, plus failure injection.
#include <gtest/gtest.h>

#include "core/alignment_protocol.hpp"
#include "core/distributed_lss.hpp"
#include "core/lss.hpp"
#include "core/multilateration.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace resloc;

TEST(Integration, GrassCampaignProducesUsableData) {
  const auto scenario = sim::grass_grid_scenario(1001, /*rounds=*/2);
  EXPECT_EQ(scenario.deployment.size(), 46u);
  // The campaign measures a substantial fraction of in-range pairs.
  EXPECT_GT(scenario.measurements.edge_count(), 120u);
  EXPECT_LT(scenario.measurements.edge_count(), 300u);
  // Median filtering keeps typical errors small.
  std::vector<double> errors;
  for (const auto& e : scenario.measurements.edges()) {
    const double true_d = math::distance(scenario.deployment.positions[e.i],
                                         scenario.deployment.positions[e.j]);
    errors.push_back(e.distance_m - true_d);
  }
  const auto report = eval::summarize_ranging_errors(errors);
  EXPECT_LT(report.median_abs_m, 0.8);
}

TEST(Integration, CentralizedLssOnFieldData) {
  const auto scenario = sim::grass_grid_scenario(1002, /*rounds=*/3);
  core::LssOptions options;
  options.min_spacing_m = 9.0;
  options.gd.max_iterations = 6000;
  options.independent_inits = 16;
  options.target_stress_per_edge = 0.75;
  math::Rng rng(3);
  const auto result = core::localize_lss(scenario.measurements, options, rng);
  const auto report =
      eval::evaluate_localization(result.positions, scenario.deployment.positions, true);
  // The paper reports 2.2 m on its field data; allow a generous band.
  EXPECT_LT(report.average_error_m, 5.0);
  EXPECT_EQ(report.localized, scenario.deployment.size());
}

TEST(Integration, MultilaterationVsLssOnSparseData) {
  // The paper's central comparison: on sparse field data, multilateration
  // localizes a minority while LSS localizes everyone.
  auto scenario = sim::grass_grid_scenario(1003, /*rounds=*/3);
  sim::assign_random_anchors(scenario.deployment, 13, 77);

  core::MultilaterationOptions mopt;
  math::Rng rng(4);
  const auto mlat =
      core::localize_by_multilateration(scenario.deployment, scenario.measurements, mopt, rng);
  const auto mlat_rep = eval::evaluate_localization(
      mlat.positions, scenario.deployment.positions, false, scenario.deployment.anchors);

  core::LssOptions lopt;
  lopt.min_spacing_m = 9.0;
  lopt.gd.max_iterations = 5000;
  lopt.independent_inits = 12;
  lopt.target_stress_per_edge = 0.75;
  const auto lss = core::localize_lss(scenario.measurements, lopt, rng);
  const auto lss_rep = eval::evaluate_localization(
      lss.positions, scenario.deployment.positions, true, scenario.deployment.anchors);

  EXPECT_LT(mlat_rep.localized, mlat_rep.total_nodes);  // some nodes always fail
  EXPECT_EQ(lss_rep.localized, lss_rep.total_nodes);    // LSS localizes everyone
}

TEST(Integration, DistributedImprovesWithDensity) {
  const auto scenario = sim::grass_grid_scenario(1004, /*rounds=*/3);
  core::DistributedLssOptions options;
  options.local_lss.min_spacing_m = 9.0;
  options.local_lss.independent_inits = 6;
  options.local_lss.restarts.rounds = 2;
  options.local_lss.gd.max_iterations = 1500;
  options.local_lss.target_stress_per_edge = 0.3;

  math::Rng rng1(5);
  const auto sparse = core::localize_distributed(scenario.measurements, 22, options, rng1);
  const auto sparse_rep =
      eval::evaluate_localization(sparse.result.positions, scenario.deployment.positions, true);

  auto augmented = scenario.measurements;
  sim::GaussianNoiseModel wide;
  wide.max_range_m = 30.0;
  math::Rng aug(6);
  sim::augment_with_gaussian(augmented, scenario.deployment, wide, aug, 370);
  math::Rng rng2(5);
  const auto dense = core::localize_distributed(augmented, 22, options, rng2);
  const auto dense_rep =
      eval::evaluate_localization(dense.result.positions, scenario.deployment.positions, true);

  EXPECT_LT(dense_rep.average_error_m, sparse_rep.average_error_m);
  EXPECT_EQ(dense_rep.localized, scenario.deployment.size());
}

TEST(Integration, OutlierInjectionDegradesGracefullyWithWeights) {
  // Corrupt 10% of edges; the weighted pipeline (downweight suspicious
  // unidirectional edges) should beat uniform weighting.
  const auto town = sim::town_blocks_59();
  math::Rng rng(7);
  auto clean = sim::gaussian_measurements(town, {}, rng);
  auto corrupted = clean;
  sim::inject_outliers(corrupted, 0.10, 10.0, rng);

  core::LssOptions options;
  options.min_spacing_m = 9.0;
  options.gd.max_iterations = 5000;
  options.independent_inits = 12;
  options.target_stress_per_edge = 2.0;
  math::Rng r1(8);
  const auto noisy = core::localize_lss(corrupted, options, r1);
  const auto noisy_rep = eval::evaluate_localization(noisy.positions, town.positions, true);
  // Resilience claim: 10% gross outliers leave the map usable (a few meters),
  // not destroyed (tens of meters).
  EXPECT_LT(noisy_rep.average_error_m, 8.0);
}

TEST(Integration, FaultyHardwareCampaignStillLocalizes) {
  // Crank the hardware fault rate: per-node faults correlate errors. Keeping
  // every suspicious unidirectional estimate poisons the map; restricting to
  // bidirectionally-confirmed pairs (the Section 3.5 consistency check)
  // strips the per-node corruption and keeps localization usable.
  math::Rng rng(1005);
  core::Deployment deployment = sim::offset_grid_with_failures(3, rng);
  sim::FieldExperimentConfig config = sim::grass_campaign_config(/*rounds=*/3);
  config.units.fault_probability = 0.10;
  const auto data = sim::run_field_experiment(deployment, config, rng);

  core::MeasurementSet confirmed(deployment.size());
  confirmed.set_node_count(deployment.size());
  for (const auto& pair : data.raw.bidirectional_only(config.filter, 1.0)) {
    confirmed.add(pair.a, pair.b, pair.distance_m);
  }
  ASSERT_GT(confirmed.edge_count(), 100u);

  core::LssOptions options;
  options.min_spacing_m = 9.0;
  options.gd.max_iterations = 5000;
  options.independent_inits = 12;
  options.target_stress_per_edge = 1.0;
  math::Rng r(9);
  const auto result = core::localize_lss(confirmed, options, r);
  const auto report =
      eval::evaluate_localization(result.positions, deployment.positions, true);
  EXPECT_LT(report.average_without_worst(6), 5.0);
}

TEST(Integration, MessageLossSlowsButDoesNotBreakAlignment) {
  // Event-driven alignment under 20% radio loss: the flood is redundant
  // enough to keep most of the network aligned.
  const auto grid = sim::offset_grid(4, 4);
  auto meas = sim::perfect_measurements(grid, 22.0);
  core::DistributedLssOptions options;
  options.local_lss.min_spacing_m = 9.0;
  options.local_lss.independent_inits = 8;
  options.local_lss.gd.max_iterations = 2500;
  options.local_lss.target_stress_per_edge = 1e-4;
  math::Rng rng(10);
  const auto graph_run = core::localize_distributed(meas, 0, options, rng);

  net::RadioParams radio;
  radio.range_m = 60.0;
  radio.loss_probability = 0.2;
  const auto protocol = core::run_alignment_protocol(graph_run.maps, 0, grid.positions,
                                                     options, radio, 1234);
  EXPECT_GE(protocol.result.localized_count(), grid.size() - 4);
}

}  // namespace
