// Resilience integration tests: the fault-injection tentpole end to end.
//
// What is pinned here: (1) a faulted campaign is byte-identical at any
// thread count, (2) every fault kind x intensity x solver combination is
// survivable -- trials fail closed with a classified reason, never by
// crashing the campaign, (3) degraded localization places under-constrained
// nodes with an explicit kDegraded status, (4) retries are deterministic and
// accounted, and (5) all-failed cells serialize sentinel statistics instead
// of fabricated zeros.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/multilateration.hpp"
#include "core/types.hpp"
#include "eval/aggregate.hpp"
#include "fault/fault_plan.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/scenarios.hpp"

namespace {

using resloc::eval::FailureReason;
using resloc::pipeline::MeasurementSource;
using resloc::pipeline::Solver;
using resloc::runner::CampaignResult;
using resloc::runner::CampaignRunner;
using resloc::runner::RunnerOptions;
using resloc::runner::SweepSpec;

// A small acoustic sweep template: 16-node offset grid, 2-round grass
// campaign, degraded fixes allowed -- the resilience_smoke shape at test size.
SweepSpec acoustic_fault_sweep() {
  SweepSpec spec;
  spec.name = "resilience_test";
  spec.seed = 2026;
  spec.trials_per_cell = 1;
  spec.base.source = MeasurementSource::kAcousticRanging;
  spec.base.campaign = resloc::sim::grass_campaign_config(2);
  spec.base.multilateration.allow_degraded = true;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.solvers = {Solver::kMultilateration};
  spec.axes.node_counts = {16};
  spec.axes.anchor_counts = {6};
  return spec;
}

TEST(Resilience, FaultedCampaignIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = acoustic_fault_sweep();
  spec.axes.fault_kinds = {"none", "node_crash", "corrupt_distance", "all"};
  spec.max_trial_retries = 1;

  const CampaignResult serial = CampaignRunner(RunnerOptions{1}).run(spec);
  const CampaignResult pooled = CampaignRunner(RunnerOptions{8}).run(spec);

  EXPECT_EQ(serial.to_json(), pooled.to_json());
  EXPECT_EQ(serial.to_csv(), pooled.to_csv());

  // The fault axes and resilience statistics are present in the emitters.
  const std::string json = serial.to_json();
  EXPECT_NE(json.find("\"fault_kind\": \"node_crash\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"failed_trials\""), std::string::npos);
  const std::string csv = serial.to_csv();
  EXPECT_NE(csv.find("fault_kind,fault_intensity"), std::string::npos);
  EXPECT_NE(csv.find(",failed_trials,mean_coverage,mean_degraded_rate"), std::string::npos);
}

TEST(Resilience, FuzzMatrixNeverEscapesTheTrialBoundary) {
  // Every fault kind at two intensities under both paper solvers. The bar is
  // fail-closed: each trial either completes or records a classified failure;
  // an exception escaping run() would abort the test process itself.
  SweepSpec spec = acoustic_fault_sweep();
  spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
  spec.axes.fault_kinds = resloc::fault::fault_kind_names();
  spec.axes.fault_intensities = {0.5, 2.0};

  const CampaignResult result = CampaignRunner(RunnerOptions{8}).run(spec);
  ASSERT_EQ(result.trials.size(),
            2u * resloc::fault::fault_kind_names().size() * 2u);
  std::size_t ok = 0;
  for (const auto& t : result.trials) {
    if (t.ok) {
      ++ok;
      EXPECT_EQ(t.failure, FailureReason::kNone);
    } else {
      EXPECT_NE(t.failure, FailureReason::kNone);
      EXPECT_FALSE(t.error.empty());
    }
    // Every placement statistic a downstream report reads must be finite or
    // the explicit NaN sentinel -- never an infinity leaked from corruption.
    EXPECT_FALSE(std::isinf(t.average_error_m));
    EXPECT_FALSE(std::isinf(t.placement_rate));
  }
  // The fault-free cells at minimum must succeed.
  EXPECT_GE(ok, 4u);

  // Serialization of the whole matrix is well-formed and deterministic.
  EXPECT_EQ(result.to_json(), CampaignRunner(RunnerOptions{3}).run(spec).to_json());
}

TEST(Resilience, DegradedMultilaterationPlacesUnderConstrainedNodes) {
  resloc::core::Deployment deployment;
  deployment.positions = {{0.0, 0.0}, {10.0, 0.0}, {5.0, 5.0}};
  deployment.anchors = {0, 1};
  resloc::core::MeasurementSet measurements(3);
  const double d = std::sqrt(50.0);
  measurements.add(0, 2, d);
  measurements.add(1, 2, d);

  resloc::core::MultilaterationOptions options;  // min_anchors = 3
  resloc::math::Rng rng_strict(4);
  const auto strict = resloc::core::localize_by_multilateration(
      deployment, measurements, options, rng_strict);
  EXPECT_FALSE(strict.positions[2].has_value());
  EXPECT_EQ(strict.status_of(2), resloc::core::LocalizationStatus::kUnlocalized);
  EXPECT_EQ(strict.degraded_count(), 0u);

  options.allow_degraded = true;
  resloc::math::Rng rng_degraded(4);
  const auto degraded = resloc::core::localize_by_multilateration(
      deployment, measurements, options, rng_degraded);
  ASSERT_TRUE(degraded.positions[2].has_value());
  EXPECT_EQ(degraded.status_of(2), resloc::core::LocalizationStatus::kDegraded);
  EXPECT_EQ(degraded.degraded_count(), 1u);
  // The two-anchor fix is one of the two mirror intersections of the range
  // circles: x is pinned, |y| matches up to solver tolerance.
  EXPECT_NEAR(degraded.positions[2]->x, 5.0, 0.5);
  EXPECT_NEAR(std::abs(degraded.positions[2]->y), 5.0, 0.5);
  // Anchors stay full-confidence.
  EXPECT_EQ(degraded.status_of(0), resloc::core::LocalizationStatus::kOk);
}

TEST(Resilience, RetriesAreAccountedAndDoNotPerturbSuccessfulRuns) {
  // A sweep where every trial succeeds first try must serialize identically
  // with and without a retry budget: attempt 0 uses the historical substreams.
  SweepSpec spec;
  spec.name = "retry_identity";
  spec.seed = 42;
  spec.trials_per_cell = 2;
  spec.base.source = MeasurementSource::kSyntheticGaussian;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.node_counts = {16};
  spec.axes.anchor_counts = {6};
  const std::string baseline = CampaignRunner(RunnerOptions{2}).run(spec).to_json();
  spec.max_trial_retries = 3;
  const CampaignResult retried = CampaignRunner(RunnerOptions{2}).run(spec);
  EXPECT_EQ(baseline, retried.to_json());
  for (const auto& t : retried.trials) EXPECT_EQ(t.attempts, 1u);

  // A deterministic failure burns the whole budget and stays classified.
  spec.axes.scenarios = {"no_such_scenario"};
  spec.trials_per_cell = 1;
  const CampaignResult failed = CampaignRunner(RunnerOptions{1}).run(spec);
  ASSERT_EQ(failed.trials.size(), 1u);
  EXPECT_FALSE(failed.trials[0].ok);
  EXPECT_EQ(failed.trials[0].attempts, 4u);  // 1 + max_trial_retries
  EXPECT_EQ(failed.trials[0].failure, FailureReason::kScenarioBuild);
}

TEST(Resilience, UnknownFaultKindIsAConfigStageFailure) {
  SweepSpec spec = acoustic_fault_sweep();
  spec.axes.fault_kinds = {"not_a_fault"};
  const CampaignResult result = CampaignRunner(RunnerOptions{1}).run(spec);
  ASSERT_EQ(result.trials.size(), 1u);
  EXPECT_FALSE(result.trials[0].ok);
  EXPECT_EQ(result.trials[0].failure, FailureReason::kConfig);
  EXPECT_NE(result.trials[0].error.find("not_a_fault"), std::string::npos);
}

TEST(Resilience, NonStdExceptionsAreIsolatedAndClassified) {
  // The catch-all tier: a scenario builder that throws a plain int must fail
  // its own trial with the dedicated classification, not the campaign.
  resloc::sim::register_scenario(
      "throws_plain_int",
      [](const resloc::sim::ScenarioParams&, resloc::math::Rng&) -> resloc::core::Deployment {
        throw 42;
      });
  SweepSpec spec;
  spec.name = "non_std";
  spec.seed = 1;
  spec.trials_per_cell = 1;
  spec.base.source = MeasurementSource::kSyntheticGaussian;
  spec.axes.scenarios = {"throws_plain_int", "offset_grid"};
  spec.axes.node_counts = {16};
  spec.axes.anchor_counts = {6};
  const CampaignResult result = CampaignRunner(RunnerOptions{2}).run(spec);
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_FALSE(result.trials[0].ok);
  EXPECT_EQ(result.trials[0].failure, FailureReason::kNonStdException);
  EXPECT_EQ(result.trials[0].error, "non-std exception");
  EXPECT_TRUE(result.trials[1].ok);  // the campaign itself survived
}

TEST(Resilience, AllFailedCellsSerializeSentinelsNotZeros) {
  // Satellite pin: a cell where every trial failed reports coverage 0 (the
  // resilience headline: nothing was placed) but NaN/null for the statistics
  // that have no data -- a plotted 0 error would read as perfection.
  SweepSpec spec = acoustic_fault_sweep();
  spec.axes.scenarios = {"no_such_scenario"};
  spec.axes.fault_kinds = {"node_crash"};
  spec.trials_per_cell = 2;
  const CampaignResult result = CampaignRunner(RunnerOptions{1}).run(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  const auto& agg = result.cells[0].aggregate;
  EXPECT_EQ(agg.trials, 2u);
  EXPECT_EQ(agg.ok_trials, 0u);
  EXPECT_EQ(agg.failed_trials, 2u);
  EXPECT_EQ(agg.mean_coverage, 0.0);
  EXPECT_TRUE(std::isnan(agg.mean_degraded_rate));
  EXPECT_TRUE(std::isnan(agg.mean_error_m));

  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"failed_trials\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mean_coverage\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"mean_degraded_rate\": null"), std::string::npos);
  EXPECT_NE(json.find("\"mean_error_m\": null"), std::string::npos);
}

TEST(Resilience, FaultFreeSweepsCarryNoResilienceColumns) {
  // Golden-compatibility pin: a sweep without a fault axis serializes exactly
  // the historical shape -- no fault columns, no resilience statistics.
  SweepSpec spec;
  spec.name = "plain";
  spec.seed = 42;
  spec.trials_per_cell = 1;
  spec.base.source = MeasurementSource::kSyntheticGaussian;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.node_counts = {16};
  spec.axes.anchor_counts = {6};
  const CampaignResult result = CampaignRunner(RunnerOptions{1}).run(spec);
  const std::string json = result.to_json();
  EXPECT_EQ(json.find("fault_kind"), std::string::npos);
  EXPECT_EQ(json.find("mean_coverage"), std::string::npos);
  EXPECT_EQ(json.find("failed_trials"), std::string::npos);
  const std::string csv = result.to_csv();
  EXPECT_EQ(csv.find("fault_"), std::string::npos);
  EXPECT_EQ(csv.find("mean_coverage"), std::string::npos);
}

}  // namespace
