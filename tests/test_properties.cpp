// Property-style sweeps over randomized inputs (TEST_P/INSTANTIATE) covering
// cross-module invariants.
#include <gtest/gtest.h>

#include <cmath>
#include "math/constants.hpp"

#include "core/lss.hpp"
#include "core/transform_estimation.hpp"
#include "eval/metrics.hpp"
#include "math/geometry.hpp"
#include "math/rng.hpp"
#include "math/transform2d.hpp"
#include "ranging/dft_detector.hpp"
#include "ranging/statistical_filter.hpp"
#include "ranging/signal_detection.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

namespace {

using resloc::math::Rng;
using resloc::math::Transform2D;
using resloc::math::Vec2;

// --- LSS stress is invariant under rigid motion of any configuration ---

class LssRigidInvariance : public ::testing::TestWithParam<int> {};

TEST_P(LssRigidInvariance, StressUnchangedByRigidMotion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 8;
  std::vector<Vec2> config;
  resloc::core::MeasurementSet meas(n);
  meas.set_node_count(n);
  for (std::size_t i = 0; i < n; ++i) {
    config.push_back({rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.6)) {
        meas.add(static_cast<resloc::core::NodeId>(i), static_cast<resloc::core::NodeId>(j),
                 rng.uniform(1.0, 40.0), rng.uniform(0.2, 2.0));
      }
    }
  }
  resloc::core::LssOptions opt;
  opt.min_spacing_m = rng.uniform(2.0, 10.0);
  opt.constraint_weight = rng.uniform(1.0, 20.0);

  const double base = resloc::core::lss_stress(meas, config, opt);
  const Transform2D motion(rng.uniform(-3.1, 3.1), rng.bernoulli(0.5),
                           {rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
  std::vector<Vec2> moved;
  for (const Vec2& p : config) moved.push_back(motion.apply(p));
  EXPECT_NEAR(resloc::core::lss_stress(meas, moved, opt), base,
              1e-9 * std::max(1.0, base));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LssRigidInvariance, ::testing::Range(0, 10));

// --- Transform estimation: closed form recovers arbitrary rigid motions of
//     arbitrary (non-degenerate) point sets exactly ---

class TransformRecovery : public ::testing::TestWithParam<int> {};

TEST_P(TransformRecovery, ClosedFormExactOnCleanData) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  const std::size_t count = 3 + static_cast<std::size_t>(GetParam()) % 6;
  std::vector<Vec2> src;
  for (std::size_t i = 0; i < count; ++i) {
    src.push_back({rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)});
  }
  const Transform2D motion(rng.uniform(-3.1, 3.1), rng.bernoulli(0.5),
                           {rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
  std::vector<Vec2> dst;
  for (const Vec2& p : src) dst.push_back(motion.apply(p));
  const auto estimate = resloc::core::estimate_transform_closed_form(src, dst);
  ASSERT_TRUE(estimate.valid);
  EXPECT_NEAR(estimate.sum_squared_error, 0.0, 1e-10);
  // The recovered transform agrees with the true motion on fresh points.
  const Vec2 probe{rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)};
  EXPECT_LT(resloc::math::distance(estimate.transform.apply(probe), motion.apply(probe)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformRecovery, ::testing::Range(0, 12));

// --- Median filter output always lies within the input range ---

class MedianBounds : public ::testing::TestWithParam<int> {};

TEST_P(MedianBounds, FilterOutputWithinInputRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  std::vector<double> values;
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 20));
  for (std::size_t i = 0; i < n; ++i) values.push_back(rng.uniform(0.0, 50.0));
  resloc::ranging::FilterPolicy policy;
  policy.kind = resloc::ranging::FilterKind::kMedian;
  const auto out = resloc::ranging::filter_measurements(values, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_GE(*out, *std::min_element(values.begin(), values.end()) - 1e-12);
  EXPECT_LE(*out, *std::max_element(values.begin(), values.end()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MedianBounds, ::testing::Range(0, 10));

// --- detect_signal: detection index never precedes the first qualifying
//     sample and is stable under appending quiet samples ---

class DetectSignalStability : public ::testing::TestWithParam<int> {};

TEST_P(DetectSignalStability, AppendQuietSamplesNoChange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  std::vector<std::uint8_t> samples(256, 0);
  // Random burst.
  const int start = static_cast<int>(rng.uniform_int(10, 180));
  const int len = static_cast<int>(rng.uniform_int(20, 60));
  for (int i = start; i < start + len && i < 256; ++i) {
    samples[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform_int(2, 9));
  }
  const resloc::ranging::DetectionParams params{2, 16, 5};
  const int detected = resloc::ranging::detect_signal(samples, params);
  if (detected >= 0) {
    EXPECT_GE(detected, 0);
    EXPECT_GE(samples[static_cast<std::size_t>(detected)], params.threshold);
    // First sample before `detected` in a fully-quiet prefix can't qualify.
    std::vector<std::uint8_t> extended = samples;
    extended.resize(400, 0);
    EXPECT_EQ(resloc::ranging::detect_signal(extended, params), detected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectSignalStability, ::testing::Range(0, 12));

// --- Sliding DFT frequency selectivity across tone phases ---

class DftPhaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(DftPhaseSweep, InBandToneDetectedAtAnyPhase) {
  const double phase =
      static_cast<double>(GetParam()) / 8.0 * 2.0 * resloc::math::kPi;
  resloc::ranging::SlidingDftFilter filter;
  resloc::ranging::BandPowers last{};
  for (int i = 0; i < 144; ++i) {
    last = filter.filter(100.0 * std::sin(resloc::math::kPi / 2.0 * i + phase));
  }
  EXPECT_GT(last.band_fs4, 1e5) << "phase " << phase;
  EXPECT_LT(last.band_fs6, last.band_fs4 / 20.0);
}

INSTANTIATE_TEST_SUITE_P(Phases, DftPhaseSweep, ::testing::Range(0, 8));

// --- Localization evaluation is invariant to rigid motion when aligning ---

class EvalAlignmentInvariance : public ::testing::TestWithParam<int> {};

TEST_P(EvalAlignmentInvariance, ErrorIndependentOfFrame) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 2);
  auto grid = resloc::sim::offset_grid(4, 4);
  // Estimates: truth plus noise.
  std::vector<Vec2> estimates;
  for (const Vec2& p : grid.positions) {
    estimates.push_back(p + Vec2{rng.gaussian(0.0, 0.4), rng.gaussian(0.0, 0.4)});
  }
  const auto base = resloc::eval::evaluate_localization(estimates, grid.positions, true);
  const Transform2D motion(rng.uniform(-3.0, 3.0), rng.bernoulli(0.5),
                           {rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)});
  std::vector<Vec2> moved;
  for (const Vec2& p : estimates) moved.push_back(motion.apply(p));
  const auto shifted = resloc::eval::evaluate_localization(moved, grid.positions, true);
  EXPECT_NEAR(shifted.average_error_m, base.average_error_m, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalAlignmentInvariance, ::testing::Range(0, 8));

// --- Circle intersections always lie on both circles ---

class CircleIntersectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(CircleIntersectionSweep, PointsOnBothCircles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 17);
  for (int trial = 0; trial < 40; ++trial) {
    const resloc::math::Circle a{{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)},
                                 rng.uniform(0.5, 15.0)};
    const resloc::math::Circle b{{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)},
                                 rng.uniform(0.5, 15.0)};
    for (const Vec2& p : resloc::math::intersect(a, b)) {
      EXPECT_NEAR(resloc::math::distance(p, a.center), a.radius, 1e-7);
      EXPECT_NEAR(resloc::math::distance(p, b.center), b.radius, 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircleIntersectionSweep, ::testing::Range(0, 6));

// --- Gaussian measurement generation respects the range cutoff for any
//     deployment and the noise never produces non-positive distances ---

class MeasurementGenSweep : public ::testing::TestWithParam<int> {};

TEST_P(MeasurementGenSweep, EdgesValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3 + 1);
  const auto d = resloc::sim::random_uniform(25, 60.0, 60.0, 3.0, rng);
  resloc::sim::GaussianNoiseModel noise;
  noise.max_range_m = rng.uniform(10.0, 30.0);
  const auto meas = resloc::sim::gaussian_measurements(d, noise, rng);
  for (const auto& e : meas.edges()) {
    EXPECT_GT(e.distance_m, 0.0);
    const double true_d = resloc::math::distance(d.positions[e.i], d.positions[e.j]);
    EXPECT_LT(true_d, noise.max_range_m);
    EXPECT_LT(std::abs(e.distance_m - true_d), 5.0 * noise.sigma_m + 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasurementGenSweep, ::testing::Range(0, 8));

}  // namespace
