// The obs layer's contracts, locked by test:
//   - spans measure exactly what the injected clock says (ManualClock);
//   - counter totals and span counts are byte-identical at 1 vs 8 runner
//     threads (the determinism contract for everything in the metrics
//     report's "deterministic" block);
//   - enabling telemetry does not change a single byte of the campaign's
//     JSON/CSV aggregates;
//   - the Chrome trace export is valid and properly nested across 8 threads,
//     and the validator actually rejects malformed traces;
//   - the per-thread span cap drops loudly (dropped_spans), never silently;
//   - recent_spans_this_thread returns the failure-report context in order.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"

namespace {

using resloc::pipeline::MeasurementSource;
using resloc::pipeline::Solver;
using resloc::runner::CampaignResult;
using resloc::runner::CampaignRunner;
using resloc::runner::RunnerOptions;
using resloc::runner::SweepSpec;

namespace obs = resloc::obs;

/// Telemetry is process-global; every test starts from a clean, disabled
/// state and leaves it that way.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::set_capture_spans(false);
    obs::set_clock_source(nullptr);
    obs::set_max_spans_per_thread(1 << 20);
    obs::reset();
  }
  void TearDown() override { SetUp(); }
};

/// Deterministic test clock: each now_ns() call advances by a fixed step.
class ManualClock : public obs::ClockSource {
 public:
  explicit ManualClock(std::uint64_t step_ns) : step_ns_(step_ns) {}
  std::uint64_t now_ns() const override { return now_ns_ += step_ns_; }

 private:
  std::uint64_t step_ns_;
  mutable std::uint64_t now_ns_ = 0;
};

/// A small acoustic sweep exercising ranging, solver, and runner spans in
/// well under a second. LSS on one cell covers the gradient-descent and
/// constraint counters; the acoustic source covers the measure sub-stages.
SweepSpec obs_sweep() {
  SweepSpec spec;
  spec.name = "obs_unit";
  spec.seed = 42;
  spec.trials_per_cell = 2;
  spec.base.source = MeasurementSource::kAcousticRanging;
  spec.axes.scenarios = {"grass_grid"};
  spec.axes.solvers = {Solver::kMultilateration, Solver::kCentralizedLss};
  spec.axes.node_counts = {16};
  spec.axes.anchor_counts = {6};
  return spec;
}

/// Name -> count map of every recorded stage, the schedule-independent view
/// of a snapshot (SpanIds depend on intern order, names do not).
std::map<std::string, std::uint64_t> stage_counts(const obs::TelemetrySnapshot& snap) {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t id = 0; id < snap.stage_totals.size(); ++id) {
    if (snap.stage_totals[id].count > 0) {
      out[snap.span_names[id]] = snap.stage_totals[id].count;
    }
  }
  return out;
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  {
    RESLOC_SPAN("test/never");
    obs::add(obs::Counter::kMeasureCalls, 5);
  }
  const obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kMeasureCalls), 0u);
  EXPECT_EQ(snap.stage_count("test/never"), 0u);
}

TEST_F(ObsTest, ManualClockYieldsExactDurations) {
  const ManualClock clock(/*step_ns=*/100);
  obs::set_clock_source(&clock);
  obs::set_enabled(true);
  obs::set_capture_spans(true);

  {
    RESLOC_SPAN("test/outer");  // start at t=100
    {
      RESLOC_SPAN("test/inner");  // start at t=200, end at t=300
    }
  }  // outer ends at t=400

  const obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_EQ(snap.stage_count("test/outer"), 1u);
  EXPECT_EQ(snap.stage_count("test/inner"), 1u);
  EXPECT_EQ(snap.stage_total_ns("test/outer"), 300u);  // 400 - 100
  EXPECT_EQ(snap.stage_total_ns("test/inner"), 100u);  // 300 - 200

  // The retained events carry the raw timestamps for the trace export.
  // (Thread buffers registered by other tests' pools survive reset(), so
  // locate this thread's buffer by its contents.)
  const obs::ThreadSnapshot* mine = nullptr;
  for (const obs::ThreadSnapshot& t : snap.threads) {
    if (!t.events.empty()) {
      ASSERT_EQ(mine, nullptr) << "only the calling thread should have recorded";
      mine = &t;
    }
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 2u);
  // Events are recorded at scope exit: inner closes before outer.
  EXPECT_EQ(mine->events[0].start_ns, 200u);
  EXPECT_EQ(mine->events[0].end_ns, 300u);
  EXPECT_EQ(mine->events[1].start_ns, 100u);
  EXPECT_EQ(mine->events[1].end_ns, 400u);
}

TEST_F(ObsTest, CountersAddOnlyWhenEnabled) {
  obs::set_enabled(true);
  obs::add(obs::Counter::kGdEvaluations, 3);
  obs::add(obs::Counter::kGdEvaluations);
  const obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kGdEvaluations), 4u);
  // Every counter has a stable, non-empty report key.
  for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(obs::Counter::kCount); ++c) {
    EXPECT_STRNE(obs::counter_name(static_cast<obs::Counter>(c)), "");
  }
}

TEST_F(ObsTest, CounterTotalsIdenticalAtOneVsEightThreads) {
  obs::set_enabled(true);
  const CampaignRunner single(RunnerOptions{1});
  const CampaignResult r1 = single.run(obs_sweep());
  const obs::TelemetrySnapshot snap1 = obs::snapshot();
  obs::reset();

  const CampaignRunner eight(RunnerOptions{8});
  const CampaignResult r8 = eight.run(obs_sweep());
  const obs::TelemetrySnapshot snap8 = obs::snapshot();

  // The deterministic block: every counter and every stage count matches
  // exactly -- integer sums over per-thread cells are order-independent.
  ASSERT_EQ(snap1.counters.size(), snap8.counters.size());
  for (std::size_t c = 0; c < snap1.counters.size(); ++c) {
    EXPECT_EQ(snap1.counters[c], snap8.counters[c])
        << "counter " << obs::counter_name(static_cast<obs::Counter>(c));
  }
  EXPECT_EQ(stage_counts(snap1), stage_counts(snap8));

  // Sanity: the sweep actually exercised all three instrumented layers.
  EXPECT_GT(snap1.counter(obs::Counter::kMeasureCalls), 0u);
  EXPECT_GT(snap1.counter(obs::Counter::kGdEvaluations), 0u);
  EXPECT_GT(snap1.counter(obs::Counter::kLssEdgeTerms), 0u);
  EXPECT_EQ(snap1.counter(obs::Counter::kRunnerTrials), r1.trials.size());
  EXPECT_GT(snap1.stage_count("ranging/measure"), 0u);
  EXPECT_GT(snap1.stage_count("solver/lss_solve"), 0u);
  EXPECT_GT(snap1.stage_count("pipeline/solve"), 0u);

  // And the aggregates themselves are byte-identical, threads and telemetry
  // notwithstanding.
  EXPECT_EQ(r1.to_json(), r8.to_json());
  EXPECT_EQ(r1.to_csv(), r8.to_csv());
}

TEST_F(ObsTest, TelemetryNeverChangesAggregateBytes) {
  const CampaignRunner runner(RunnerOptions{2});
  const CampaignResult off = runner.run(obs_sweep());

  obs::set_enabled(true);
  obs::set_capture_spans(true);
  const CampaignResult on = runner.run(obs_sweep());

  EXPECT_EQ(off.to_json(), on.to_json());
  EXPECT_EQ(off.to_csv(), on.to_csv());
}

TEST_F(ObsTest, TraceAcrossEightThreadsIsValidAndNested) {
  obs::set_enabled(true);
  obs::set_capture_spans(true);
  const CampaignRunner runner(RunnerOptions{8});
  (void)runner.run(obs_sweep());

  const obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_EQ(snap.dropped_spans, 0u);

  const std::string trace = obs::to_chrome_trace_json(snap);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(trace, &error)) << error;

  // The metrics report renders from the same snapshot without tripping over
  // multi-thread data.
  const std::string metrics = obs::metrics_report_json(snap);
  EXPECT_NE(metrics.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(metrics.find("\"non_deterministic\""), std::string::npos);
  EXPECT_NE(metrics.find("ranging/measure"), std::string::npos);
  EXPECT_FALSE(obs::metrics_report_text(snap).empty());
}

TEST_F(ObsTest, ValidatorRejectsMalformedTraces) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("not json", &error));
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &error));
  EXPECT_FALSE(obs::validate_chrome_trace(R"({"traceEvents": 3})", &error));
  // Wrong phase.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "a", "cat": "resloc", "ph": "B", "pid": 1, "tid": 0, "ts": 0, "dur": 1}]})",
      &error));
  // Partial overlap on one thread: [0, 10) vs [5, 15) neither nests nor is
  // disjoint -- a corrupted trace.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "a", "cat": "resloc", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 10},)"
      R"({"name": "b", "cat": "resloc", "ph": "X", "pid": 1, "tid": 0, "ts": 5, "dur": 10}]})",
      &error));
  // The same pair on *different* threads is fine.
  EXPECT_TRUE(obs::validate_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "a", "cat": "resloc", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 10},)"
      R"({"name": "b", "cat": "resloc", "ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": 10}]})",
      &error))
      << error;
}

TEST_F(ObsTest, SpanCapDropsLoudly) {
  const ManualClock clock(1);
  obs::set_clock_source(&clock);
  obs::set_enabled(true);
  obs::set_capture_spans(true);
  obs::set_max_spans_per_thread(4);
  for (int i = 0; i < 10; ++i) {
    RESLOC_SPAN("test/capped");
  }
  const obs::TelemetrySnapshot snap = obs::snapshot();
  // Stage totals keep counting past the cap; only retained events stop.
  EXPECT_EQ(snap.stage_count("test/capped"), 10u);
  std::size_t retained = 0;
  for (const obs::ThreadSnapshot& t : snap.threads) retained += t.events.size();
  EXPECT_EQ(retained, 4u);
  EXPECT_EQ(snap.dropped_spans, 6u);
  // The capped trace still exports and validates.
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(obs::to_chrome_trace_json(snap), &error)) << error;
}

TEST_F(ObsTest, RecentSpansGiveFailureContextInOrder) {
  const ManualClock clock(10);
  obs::set_clock_source(&clock);
  obs::set_enabled(true);
  obs::set_capture_spans(true);
  {
    RESLOC_SPAN("test/first");
  }
  {
    RESLOC_SPAN("test/second");
  }
  {
    RESLOC_SPAN("test/third");
  }
  const std::vector<std::string> recent = obs::recent_spans_this_thread(2);
  ASSERT_EQ(recent.size(), 2u);
  // Oldest first among the last two completed spans.
  EXPECT_NE(recent[0].find("test/second"), std::string::npos);
  EXPECT_NE(recent[1].find("test/third"), std::string::npos);

  // Without span capture there is no buffer to report from.
  obs::reset();
  obs::set_capture_spans(false);
  {
    RESLOC_SPAN("test/uncaptured");
  }
  EXPECT_TRUE(obs::recent_spans_this_thread(8).empty());
}

TEST_F(ObsTest, ResetClearsDataButKeepsInterning) {
  obs::set_enabled(true);
  obs::set_capture_spans(true);
  const obs::SpanId id = obs::intern_span("test/reset");
  EXPECT_EQ(obs::intern_span("test/reset"), id);
  {
    RESLOC_SPAN("test/reset");
  }
  obs::add(obs::Counter::kChirpWindows, 7);
  obs::reset();
  const obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_EQ(snap.stage_count("test/reset"), 0u);
  EXPECT_EQ(snap.counter(obs::Counter::kChirpWindows), 0u);
  EXPECT_EQ(obs::intern_span("test/reset"), id);
}

}  // namespace
