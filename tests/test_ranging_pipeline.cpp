#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "ranging/memory_model.hpp"
#include "ranging/ranging_service.hpp"
#include "ranging/statistical_filter.hpp"
#include "ranging/tdoa.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace resloc::ranging;
using resloc::math::Rng;

TEST(Tdoa, IndexDistanceRoundTrip) {
  TdoaParams params;
  for (double d : {1.0, 5.0, 10.0, 20.0}) {
    const int index = detection_index_for_distance(d, params);
    const double back = distance_from_detection_index(index, params);
    // Quantization error bounded by one sample of acoustic travel (~2.1 cm).
    EXPECT_NEAR(back, d, params.speed_of_sound_mps / params.sample_rate_hz + 1e-9);
  }
}

TEST(Tdoa, IndexZeroIsDistanceZero) {
  TdoaParams params;
  EXPECT_DOUBLE_EQ(distance_from_detection_index(0, params), 0.0);
}

TEST(Tdoa, WindowCoversRangePlusChirp) {
  TdoaParams params;
  const std::size_t samples = window_samples_for_range(20.0, 0.008, params);
  // 20 m at 340 m/s = 58.8 ms; + 8 ms chirp = 66.8 ms at 16 kHz = 1069 samples.
  EXPECT_NEAR(static_cast<double>(samples), (20.0 / 340.0 + 0.008) * 16000.0, 2.0);
}

TEST(MemoryModel, PaperRamBudget) {
  // Section 3.6.2: "for 15 samples at distances up to 20m, the service uses
  // less than 500 bytes of RAM" with 4 bits per offset.
  EXPECT_LT(hardware_detector_buffer_bytes(20.0), 500u);
  EXPECT_GT(hardware_detector_buffer_bytes(20.0), 400u);
}

TEST(MemoryModel, SoftwareDetectorIsLarger) {
  // Section 3.7: ~2 kB for 20 m at 16 kHz.
  const std::size_t software = software_detector_buffer_bytes(20.0);
  EXPECT_GT(software, 1500u);
  EXPECT_LT(software, 3000u);
  EXPECT_GT(software, 3 * hardware_detector_buffer_bytes(20.0));
}

TEST(MemoryModel, MaxRangeInverse) {
  const std::size_t bytes = hardware_detector_buffer_bytes(20.0);
  const double range = hardware_detector_max_range_m(bytes);
  EXPECT_NEAR(range, 20.0, 0.1);
}

TEST(StatisticalFilter, EmptyInput) {
  EXPECT_FALSE(filter_measurements({}, FilterPolicy{}).has_value());
}

TEST(StatisticalFilter, MedianRemovesOutlier) {
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  const auto result = filter_measurements({10.0, 10.1, 9.9, 44.0, 10.05}, policy);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(*result, 10.05, 1e-9);
}

TEST(StatisticalFilter, MaxSamplesLimitsWindow) {
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  policy.max_samples = 3;
  // Only the first three measurements are used (Figure 4: "up to five").
  const auto result = filter_measurements({1.0, 2.0, 3.0, 100.0, 200.0}, policy);
  EXPECT_DOUBLE_EQ(*result, 2.0);
}

TEST(StatisticalFilter, AutoSwitchesToModeWithEnoughSamples) {
  FilterPolicy policy;
  policy.kind = FilterKind::kAuto;
  policy.mode_min_samples = 5;
  policy.mode_bin_width_m = 0.5;
  // 4 samples -> median (average of the central pair).
  const auto median_result = filter_measurements({10.0, 10.1, 9.9, 20.0}, policy);
  // 7 samples -> mode; outliers cannot move the dominant bin.
  const auto mode_result =
      filter_measurements({10.0, 10.1, 9.9, 10.05, 9.95, 20.0, 30.0}, policy);
  ASSERT_TRUE(median_result && mode_result);
  EXPECT_DOUBLE_EQ(*median_result, 10.05);
  EXPECT_NEAR(*mode_result, 10.0, 0.5);
}

TEST(StatisticalFilter, ModeNeedsMoreSamplesThanMedian) {
  // The paper: mode "is more resistant to the effects of uncorrelated
  // outliers than the median, but it needs more measurements to be
  // effective". With 3 samples and 2 outliers in one bin, mode fails where
  // median fails too, but with 5 honest + 2 outliers mode nails it.
  FilterPolicy mode_policy;
  mode_policy.kind = FilterKind::kMode;
  mode_policy.mode_bin_width_m = 0.5;
  const auto bad = filter_measurements({10.0, 20.0, 20.1}, mode_policy);
  ASSERT_TRUE(bad.has_value());
  EXPECT_GT(*bad, 15.0);  // two correlated outliers dominate 1 honest sample
  const auto good = filter_measurements({10.0, 10.1, 9.9, 10.05, 9.95, 20.0, 20.1}, mode_policy);
  EXPECT_NEAR(*good, 10.0, 0.5);
}

// --- End-to-end ranging service ---

TEST(RangingService, ShortRangeAccurate) {
  const auto config = resloc::sim::grass_refined_ranging();
  const RangingService service(config);
  Rng rng(1);
  int detections = 0;
  double worst = 0.0;
  for (int i = 0; i < 30; ++i) {
    const auto estimate =
        service.measure(9.0, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{}, rng);
    if (!estimate) continue;
    ++detections;
    worst = std::max(worst, std::abs(*estimate - 9.0));
  }
  EXPECT_GE(detections, 27);
  EXPECT_LT(worst, 1.5);
}

TEST(RangingService, BeyondMaxRangeRarelyDetects) {
  const auto config = resloc::sim::grass_refined_ranging();
  const RangingService service(config);
  Rng rng(2);
  int detections = 0;
  for (int i = 0; i < 30; ++i) {
    if (service.measure(28.0, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{},
                        rng)) {
      ++detections;
    }
  }
  EXPECT_LE(detections, 3);
}

TEST(RangingService, GrassDetectionFallsOffWithDistance) {
  const auto config = resloc::sim::grass_refined_ranging();
  const RangingService service(config);
  Rng rng(3);
  const auto rate = [&](double d) {
    int det = 0;
    for (int i = 0; i < 25; ++i) {
      if (service.measure(d, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{},
                          rng)) {
        ++det;
      }
    }
    return det / 25.0;
  };
  EXPECT_GT(rate(10.0), 0.85);  // reliable range
  EXPECT_LT(rate(24.0), 0.25);  // beyond max range
}

TEST(RangingService, StockBuzzerShorterRangeThanLoudspeaker) {
  const auto config = resloc::sim::grass_refined_ranging();
  const RangingService service(config);
  Rng rng(4);
  resloc::acoustics::SpeakerUnit stock;
  stock.output_db = resloc::acoustics::kStockBuzzerDb;
  int stock_detections = 0;
  int loud_detections = 0;
  for (int i = 0; i < 25; ++i) {
    if (service.measure(14.0, stock, resloc::acoustics::MicUnit{}, rng)) ++stock_detections;
    if (service.measure(14.0, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{},
                        rng)) {
      ++loud_detections;
    }
  }
  EXPECT_GT(loud_detections, stock_detections + 10);
}

TEST(RangingService, DiagnosticsExposeDetectionIndex) {
  const auto config = resloc::sim::grass_refined_ranging();
  const RangingService service(config);
  Rng rng(5);
  const auto attempt = service.measure_with_diagnostics(
      10.0, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{}, rng);
  ASSERT_TRUE(attempt.distance_m.has_value());
  EXPECT_GE(attempt.detection_index, 0);
  EXPECT_EQ(attempt.accumulated.size(), service.window_samples());
  // Detection index consistent with the returned distance.
  EXPECT_NEAR(distance_from_detection_index(attempt.detection_index, config.tdoa),
              *attempt.distance_m, 1e-9);
}

TEST(RangingService, CalibrationBiasShiftsEstimates) {
  // A miscalibrated delta_const adds a constant offset (Section 3.6:
  // "a constant offset of 10-20cm may be added to every ranging measurement").
  // The detector itself has a small distance-invariant bias (it anchors on
  // the earliest jittered chirp onset), so compare against a calibrated run.
  const auto mean_error = [](const resloc::ranging::RangingConfig& config,
                             std::uint64_t seed) {
    const RangingService service(config);
    Rng rng(seed);
    std::vector<double> errors;
    for (int i = 0; i < 60; ++i) {
      const auto estimate = service.measure(8.0, resloc::acoustics::SpeakerUnit{},
                                            resloc::acoustics::MicUnit{}, rng);
      if (estimate) errors.push_back(*estimate - 8.0);
    }
    return resloc::math::mean(errors);
  };
  auto calibrated = resloc::sim::grass_refined_ranging();
  auto biased = calibrated;
  biased.tdoa.delta_const_true_s = calibrated.tdoa.delta_const_calibrated_s + 0.0006;
  const double shift = mean_error(biased, 6) - mean_error(calibrated, 6);
  EXPECT_NEAR(shift, 0.0006 * 340.0, 0.1);  // ~20 cm
}

TEST(RangingService, BaselineProducesMoreLargeErrorsThanRefined) {
  // The Figure 2 vs Figure 6 contrast, urban environment. The refined
  // service must use the urban-calibrated thresholds ("a high threshold is
  // advantageous in noisy environments").
  const auto baseline_config = resloc::sim::urban_baseline_ranging();
  const auto refined_config = resloc::sim::urban_refined_ranging();
  const RangingService baseline(baseline_config);
  const RangingService refined(refined_config);
  Rng rng(7);
  int baseline_large = 0;
  int refined_large = 0;
  for (int i = 0; i < 60; ++i) {
    const double d = 15.0;
    const auto b =
        baseline.measure(d, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{}, rng);
    const auto r =
        refined.measure(d, resloc::acoustics::SpeakerUnit{}, resloc::acoustics::MicUnit{}, rng);
    if (b && std::abs(*b - d) > 1.0) ++baseline_large;
    if (r && std::abs(*r - d) > 1.0) ++refined_large;
  }
  EXPECT_GT(baseline_large, refined_large);
}

}  // namespace
