#include <gtest/gtest.h>

#include <cmath>
#include "math/constants.hpp"

#include "acoustics/signal_synth.hpp"
#include "math/rng.hpp"
#include "ranging/dft_detector.hpp"
#include "ranging/signal_detection.hpp"

namespace {

using namespace resloc::ranging;
using resloc::math::Rng;

std::vector<bool> bool_series(const std::vector<int>& bits) {
  std::vector<bool> out;
  out.reserve(bits.size());
  for (int b : bits) out.push_back(b != 0);
  return out;
}

TEST(SignalAccumulator, AccumulatesAcrossChirps) {
  SignalAccumulator acc(4);
  acc.record_chirp(bool_series({1, 0, 1, 0}));
  acc.record_chirp(bool_series({1, 1, 0, 0}));
  acc.record_chirp(bool_series({1, 0, 0, 1}));
  EXPECT_EQ(acc.samples(), (std::vector<std::uint8_t>{3, 1, 1, 1}));
  EXPECT_EQ(acc.chirps_recorded(), 3);
}

TEST(SignalAccumulator, SaturatesAtFourBits) {
  SignalAccumulator acc(1);
  for (int i = 0; i < 20; ++i) acc.record_chirp(bool_series({1}));
  EXPECT_EQ(acc.samples()[0], 15);  // 4-bit counter cap
  EXPECT_EQ(acc.chirps_recorded(), SignalAccumulator::kMaxChirps);
}

TEST(DetectSignal, FindsWindowStart) {
  // Counts: quiet until index 10, then strong.
  std::vector<std::uint8_t> samples(40, 0);
  for (int i = 10; i < 40; ++i) samples[static_cast<std::size_t>(i)] = 5;
  DetectionParams params{/*threshold=*/2, /*window=*/8, /*min_detections=*/4};
  EXPECT_EQ(detect_signal(samples, params), 10);
}

TEST(DetectSignal, RequiresWindowDensity) {
  // A single spike is not enough when k > 1.
  std::vector<std::uint8_t> samples(64, 0);
  samples[20] = 9;
  DetectionParams params{2, 8, 4};
  EXPECT_EQ(detect_signal(samples, params), -1);
}

TEST(DetectSignal, IgnoresSubThresholdCounts) {
  std::vector<std::uint8_t> samples(64, 1);  // everything below T=2
  DetectionParams params{2, 8, 4};
  EXPECT_EQ(detect_signal(samples, params), -1);
}

TEST(DetectSignal, WindowStartMustQualify) {
  // Dense block starting at 12; index 11 is quiet, so detection anchors at 12.
  std::vector<std::uint8_t> samples(64, 0);
  for (int i = 12; i < 30; ++i) samples[static_cast<std::size_t>(i)] = 3;
  DetectionParams params{2, 8, 4};
  EXPECT_EQ(detect_signal(samples, params), 12);
}

TEST(DetectSignal, StartIndexSkipsEarlyCandidates) {
  std::vector<std::uint8_t> samples(80, 0);
  for (int i = 5; i < 15; ++i) samples[static_cast<std::size_t>(i)] = 3;   // first burst
  for (int i = 40; i < 60; ++i) samples[static_cast<std::size_t>(i)] = 3;  // second burst
  DetectionParams params{2, 8, 4};
  EXPECT_EQ(detect_signal(samples, params, 0), 5);
  // Restarting inside the first burst re-detects within it...
  EXPECT_EQ(detect_signal(samples, params, 6), 6);
  // ...while restarting past it finds the second burst.
  EXPECT_EQ(detect_signal(samples, params, 15), 40);
  EXPECT_EQ(detect_signal(samples, params, 61), -1);
}

TEST(DetectSignal, ShortInputSafe) {
  std::vector<std::uint8_t> samples(4, 9);
  DetectionParams params{1, 8, 1};
  EXPECT_EQ(detect_signal(samples, params), -1);  // window longer than input
  EXPECT_EQ(detect_signal({}, params), -1);
}

TEST(VerifyPrecedingSilence, AcceptsQuietGap) {
  std::vector<std::uint8_t> samples(64, 0);
  for (int i = 30; i < 50; ++i) samples[static_cast<std::size_t>(i)] = 4;
  EXPECT_TRUE(verify_preceding_silence(samples, 30, 16, 2, 2));
}

TEST(VerifyPrecedingSilence, RejectsNoisyGap) {
  std::vector<std::uint8_t> samples(64, 0);
  for (int i = 20; i < 50; ++i) samples[static_cast<std::size_t>(i)] = 4;  // noise before 30
  EXPECT_FALSE(verify_preceding_silence(samples, 30, 16, 2, 2));
}

TEST(VerifyPrecedingSilence, WindowClampedAtStart) {
  std::vector<std::uint8_t> samples(16, 4);
  // Index 2: only 2 noisy samples precede; allowed when max_noisy >= 2.
  EXPECT_TRUE(verify_preceding_silence(samples, 2, 16, 2, 2));
  EXPECT_FALSE(verify_preceding_silence(samples, 2, 16, 2, 1));
  EXPECT_FALSE(verify_preceding_silence(samples, -1, 16, 2, 2));
}

// --- Figure 9 sliding DFT filter ---

std::vector<double> tone(std::size_t n, double period, double amplitude, double phase = 0.0) {
  std::vector<double> wave(n);
  for (std::size_t i = 0; i < n; ++i) {
    wave[i] = amplitude * std::sin(2.0 * resloc::math::kPi * static_cast<double>(i) / period + phase);
  }
  return wave;
}

TEST(SlidingDft, Fs4ToneExcitesBand4Only) {
  SlidingDftFilter filter;
  BandPowers last{};
  for (double s : tone(144, 4.0, 100.0)) last = filter.filter(s);
  EXPECT_GT(last.band_fs4, 1e5);
  EXPECT_LT(last.band_fs6, last.band_fs4 / 50.0);
}

TEST(SlidingDft, Fs6ToneExcitesBand6Only) {
  SlidingDftFilter filter;
  BandPowers last{};
  for (double s : tone(144, 6.0, 100.0)) last = filter.filter(s);
  EXPECT_GT(last.band_fs6, 1e5);
  EXPECT_LT(last.band_fs4, last.band_fs6 / 50.0);
}

TEST(SlidingDft, OffBandToneRejected) {
  SlidingDftFilter filter;
  BandPowers last{};
  for (double s : tone(144, 9.0, 100.0)) last = filter.filter(s);  // fs/9 tone
  // Window of 36 samples holds an integer number of fs/9 periods -> full
  // rejection in both bands.
  EXPECT_LT(last.band_fs4, 1e3);
  EXPECT_LT(last.band_fs6, 1e3);
}

TEST(SlidingDft, WindowEnergyTracksParseval) {
  SlidingDftFilter filter;
  const auto wave = tone(36, 4.0, 10.0);
  double sum_sq = 0.0;
  for (double s : wave) {
    filter.filter(s);
    sum_sq += s * s;
  }
  EXPECT_NEAR(filter.window_energy(), sum_sq, 1e-9);
}

TEST(SlidingDft, ResetClearsState) {
  SlidingDftFilter filter;
  for (double s : tone(72, 4.0, 50.0)) filter.filter(s);
  filter.reset();
  EXPECT_DOUBLE_EQ(filter.window_energy(), 0.0);
  const auto powers = filter.filter(0.0);
  EXPECT_DOUBLE_EQ(powers.band_fs4, 0.0);
  EXPECT_DOUBLE_EQ(powers.band_fs6, 0.0);
}

TEST(SlidingDft, SlidingUpdateMatchesBatchRecompute) {
  // After arbitrary history, the band power must equal recomputing the DFT
  // over the last 36 samples from scratch.
  Rng rng(17);
  SlidingDftFilter filter;
  std::vector<double> history;
  BandPowers streamed{};
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(-50.0, 50.0);
    history.push_back(s);
    streamed = filter.filter(s);
  }
  SlidingDftFilter fresh;
  BandPowers batch{};
  // Zero-pad so that the fresh filter's ring-buffer slot phase (n mod 4,
  // k mod 6) matches the streamed filter's: 200 mod 36 alignment.
  const std::size_t start = history.size() - SlidingDftFilter::kWindow;
  for (std::size_t i = 0; i < start; ++i) fresh.filter(0.0);
  for (std::size_t i = start; i < history.size(); ++i) batch = fresh.filter(history[i]);
  EXPECT_NEAR(batch.band_fs4, streamed.band_fs4, 1e-6);
  EXPECT_NEAR(batch.band_fs6, streamed.band_fs6, 1e-6);
}

TEST(DftToneDetector, DetectsCleanChirps) {
  resloc::acoustics::WaveformSpec spec;
  spec.tone_frequency_hz = 4000.0;  // fs/4 at 16 kHz
  spec.noise_stddev = 0.0;
  Rng rng(18);
  const auto chirps = resloc::acoustics::periodic_chirps(4, 100, 400, 128);
  const auto wave = resloc::acoustics::synthesize_waveform(spec, chirps, 1800, rng);
  DftToneDetector detector(4);
  const auto metric = detector.run(wave);
  EXPECT_EQ(DftToneDetector::count_detections(metric), 4);
}

TEST(DftToneDetector, NoisySignalStillMostlyDetected) {
  // The Figure 10 situation: noisy capture; most chirps found, no false
  // positives from noise alone.
  resloc::acoustics::WaveformSpec spec;
  spec.tone_frequency_hz = 4000.0;
  spec.tone_amplitude = 1000.0;
  spec.noise_stddev = 300.0;
  Rng rng(19);
  const auto chirps = resloc::acoustics::periodic_chirps(4, 100, 400, 128);
  const auto wave = resloc::acoustics::synthesize_waveform(spec, chirps, 1800, rng);
  DftToneDetector detector(4);
  const auto metric = detector.run(wave);
  const int found = DftToneDetector::count_detections(metric);
  EXPECT_GE(found, 3);
  EXPECT_LE(found, 4);
}

TEST(DftToneDetector, PureNoiseYieldsNoDetections) {
  resloc::acoustics::WaveformSpec spec;
  spec.tone_amplitude = 0.0;
  spec.noise_stddev = 400.0;
  Rng rng(20);
  const auto wave = resloc::acoustics::synthesize_waveform(spec, {}, 4000, rng);
  DftToneDetector detector(4);
  const auto metric = detector.run(wave);
  EXPECT_EQ(DftToneDetector::count_detections(metric), 0);
}

TEST(DftToneDetector, OffBandInterferenceRejected) {
  resloc::acoustics::WaveformSpec spec;
  spec.tone_amplitude = 0.0;
  spec.interference_frequency_hz = 1777.0;  // strong off-band interferer
  spec.interference_amplitude = 800.0;
  spec.noise_stddev = 50.0;
  Rng rng(21);
  const auto wave = resloc::acoustics::synthesize_waveform(spec, {}, 4000, rng);
  DftToneDetector detector(4);
  const auto metric = detector.run(wave);
  EXPECT_EQ(DftToneDetector::count_detections(metric), 0);
}

TEST(DftToneDetector, CountDetectionsMergesCloseRuns) {
  std::vector<double> metric(300, -1.0);
  // Two runs separated by a short gap (merged), one far later (separate).
  for (int i = 50; i < 70; ++i) metric[static_cast<std::size_t>(i)] = 1.0;
  for (int i = 75; i < 95; ++i) metric[static_cast<std::size_t>(i)] = 1.0;
  for (int i = 200; i < 220; ++i) metric[static_cast<std::size_t>(i)] = 1.0;
  EXPECT_EQ(DftToneDetector::count_detections(metric, 8, 16), 2);
  // With merge_gap 2 the first two runs count separately.
  EXPECT_EQ(DftToneDetector::count_detections(metric, 8, 2), 3);
  // min_run longer than every run: nothing counts.
  EXPECT_EQ(DftToneDetector::count_detections(metric, 25, 16), 0);
}

}  // namespace
