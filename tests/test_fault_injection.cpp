#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "math/gradient_descent.hpp"
#include "ranging/statistical_filter.hpp"
#include "sim/field_experiment.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/scenarios.hpp"

namespace {

using resloc::fault::FaultInjector;
using resloc::fault::FaultPlan;
using resloc::math::Rng;

TEST(FaultPlan, DefaultAndNoneAreInert) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_FALSE(resloc::fault::plan_from_kind("none", 1.0).enabled());
  // Zero intensity zeroes every rate, whatever the kind.
  EXPECT_FALSE(resloc::fault::plan_from_kind("all", 0.0).enabled());
}

TEST(FaultPlan, KindVocabularyIsSortedAndEnabled) {
  const std::vector<std::string> expected = {
      "all",        "corrupt_distance", "faulty_mic", "missed_chirp", "node_crash",
      "node_sleep", "none",             "packet_loss", "stuck_detector"};
  EXPECT_EQ(resloc::fault::fault_kind_names(), expected);
  for (const std::string& kind : expected) {
    const FaultPlan plan = resloc::fault::plan_from_kind(kind, 1.0);
    if (kind == "none") {
      EXPECT_FALSE(plan.enabled()) << kind;
    } else {
      EXPECT_TRUE(plan.enabled()) << kind;
    }
  }
}

TEST(FaultPlan, UnknownKindOrNegativeIntensityThrows) {
  EXPECT_THROW(resloc::fault::plan_from_kind("meteor_strike", 1.0), std::invalid_argument);
  EXPECT_THROW(resloc::fault::plan_from_kind("", 1.0), std::invalid_argument);
  EXPECT_THROW(resloc::fault::plan_from_kind("packet_loss", -0.5), std::invalid_argument);
}

TEST(FaultPlan, AppliesNetworkFaultsToRadio) {
  const FaultPlan plan = resloc::fault::plan_from_kind("packet_loss", 1.0);
  resloc::net::RadioParams radio;
  radio.loss_probability = 0.01;
  resloc::fault::apply_to_radio(plan, radio);
  // Loss probability is max(existing, plan); bursts are copied through.
  EXPECT_GE(radio.loss_probability, 0.01);
  EXPECT_EQ(radio.loss_burst_rate_hz, plan.loss_burst_rate_hz);
  EXPECT_EQ(radio.loss_burst_duration_s, plan.loss_burst_duration_s);
}

TEST(FaultInjector, DefaultConstructedIsInert) {
  const FaultInjector inert;
  EXPECT_FALSE(inert.active());
  EXPECT_TRUE(inert.node_available(0, 0));
  EXPECT_FALSE(inert.mic_faulty(3));
  EXPECT_FALSE(inert.detector_stuck(3));
  EXPECT_FALSE(inert.chirp_missed(1, 2, 3));
  EXPECT_EQ(inert.corrupt_distance(1, 2, 3, 7.5), 7.5);
}

TEST(FaultInjector, AnswersAreDeterministicAndOrderIndependent) {
  const FaultPlan plan = resloc::fault::plan_from_kind("all", 2.0);
  const Rng base = Rng(99).fork(0xFA17);
  const std::size_t n = 12;
  const int rounds = 4;
  const FaultInjector a(plan, base, n, rounds);
  const FaultInjector b(plan, base, n, rounds);
  EXPECT_TRUE(a.active());

  // Query `a` forward and `b` backward: every answer is a pure function of
  // (plan, base, key), so enumeration order cannot matter.
  std::vector<int> forward, backward;
  for (std::size_t node = 0; node < n; ++node) {
    for (int round = 0; round < rounds; ++round) {
      forward.push_back(a.node_available(static_cast<resloc::core::NodeId>(node), round));
      forward.push_back(a.mic_faulty(static_cast<resloc::core::NodeId>(node)));
      forward.push_back(a.detector_stuck(static_cast<resloc::core::NodeId>(node)));
      forward.push_back(a.chirp_missed(round, static_cast<resloc::core::NodeId>(node),
                                       static_cast<resloc::core::NodeId>((node + 1) % n)));
    }
  }
  for (std::size_t ni = n; ni-- > 0;) {
    const auto node = static_cast<resloc::core::NodeId>(ni);
    std::vector<int> per_node;
    for (int round = rounds; round-- > 0;) {
      per_node.push_back(b.chirp_missed(round, node,
                                        static_cast<resloc::core::NodeId>((ni + 1) % n)));
      per_node.push_back(b.detector_stuck(node));
      per_node.push_back(b.mic_faulty(node));
      per_node.push_back(b.node_available(node, round));
    }
    backward.insert(backward.begin(), per_node.rbegin(), per_node.rend());
  }
  EXPECT_EQ(forward, backward);

  // The stuck distance is drawn once per node: constant across queries and
  // within the documented near-zero band.
  for (std::size_t node = 0; node < n; ++node) {
    const auto id = static_cast<resloc::core::NodeId>(node);
    const double d = b.stuck_distance_m(id);
    EXPECT_EQ(d, a.stuck_distance_m(id));
    EXPECT_GE(d, 0.1);
    EXPECT_LE(d, 2.0);
  }
}

TEST(FaultInjector, CrashedNodesStayDownAndNeverCrashInRoundZero) {
  FaultPlan plan;
  plan.node_crash_rate = 1.0;  // every node crashes
  const int rounds = 5;
  const FaultInjector inj(plan, Rng(7).fork(1), 20, rounds);
  for (resloc::core::NodeId node = 0; node < 20; ++node) {
    // The crash round is always >= 1: every node participates in round 0.
    EXPECT_TRUE(inj.node_available(node, 0)) << node;
    // A crash is permanent, so the last round always falls after it.
    EXPECT_FALSE(inj.node_available(node, rounds - 1)) << node;
    // Monotone: once down, never back up.
    bool seen_down = false;
    for (int round = 0; round < rounds; ++round) {
      const bool up = inj.node_available(node, round);
      if (seen_down) {
        EXPECT_FALSE(up) << node << " round " << round;
      }
      seen_down = seen_down || !up;
    }
  }
}

TEST(FaultInjector, SleepWindowsAreContiguous) {
  FaultPlan plan;
  plan.node_sleep_rate = 1.0;
  const int rounds = 8;
  const FaultInjector inj(plan, Rng(8).fork(1), 16, rounds);
  for (resloc::core::NodeId node = 0; node < 16; ++node) {
    // Each node sleeps through exactly one contiguous window of rounds.
    int first_down = -1, last_down = -1, down_count = 0;
    for (int round = 0; round < rounds; ++round) {
      if (!inj.node_available(node, round)) {
        if (first_down < 0) first_down = round;
        last_down = round;
        ++down_count;
      }
    }
    ASSERT_GT(down_count, 0) << node;
    EXPECT_EQ(down_count, last_down - first_down + 1) << node;
  }
}

TEST(FaultInjector, CorruptionModesMatchTheNanFraction) {
  FaultPlan nan_plan;
  nan_plan.corrupt_distance_rate = 1.0;
  nan_plan.corrupt_nan_fraction = 1.0;
  const FaultInjector always_nan(nan_plan, Rng(3).fork(2), 8, 3);
  FaultPlan outlier_plan = nan_plan;
  outlier_plan.corrupt_nan_fraction = 0.0;
  const FaultInjector always_outlier(outlier_plan, Rng(3).fork(2), 8, 3);

  for (int round = 0; round < 3; ++round) {
    for (resloc::core::NodeId src = 0; src < 8; ++src) {
      const resloc::core::NodeId rcv = (src + 3) % 8;
      EXPECT_TRUE(std::isnan(always_nan.corrupt_distance(round, src, rcv, 10.0)));
      const double out = always_outlier.corrupt_distance(round, src, rcv, 10.0);
      // Outliers multiply by uniform(2, 1 + outlier_scale).
      EXPECT_GE(out, 10.0 * 2.0);
      EXPECT_LE(out, 10.0 * (1.0 + outlier_plan.outlier_scale));
    }
  }
}

TEST(StatisticalFilter, ScrubsNonFiniteBeforeEstimating) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  resloc::ranging::FilterPolicy policy;
  resloc::ranging::FilterStats stats;
  const auto result = resloc::ranging::filter_measurements(
      {10.0, nan, 10.2, inf, 9.8, -inf, 10.1}, policy, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(std::isfinite(*result));
  EXPECT_NEAR(*result, 10.1, 0.2);
  EXPECT_EQ(stats.non_finite_dropped, 3u);
  EXPECT_EQ(stats.input, 4u);

  // An all-corrupt list filters to nothing rather than NaN.
  resloc::ranging::FilterStats all_bad;
  EXPECT_FALSE(resloc::ranging::filter_measurements({nan, inf}, policy, &all_bad).has_value());
  EXPECT_EQ(all_bad.non_finite_dropped, 2u);
}

TEST(GradientDescent, NonFiniteSeedIsFlaggedNotDescended) {
  const auto poisoned = [](const std::vector<double>& x, std::vector<double>& grad) {
    grad.assign(x.size(), 1.0);
    return std::numeric_limits<double>::quiet_NaN();
  };
  resloc::math::GradientDescentOptions options;
  const auto result = resloc::math::minimize(poisoned, {1.0, 2.0}, options);
  EXPECT_TRUE(result.non_finite);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.x, (std::vector<double>{1.0, 2.0}));
}

TEST(GradientDescent, BacktrackingRejectsNanStepsAndStaysFinite) {
  // f(x) = x for x >= 0, NaN below: descent pushes toward the NaN region and
  // the !(candidate <= error) backtracking must refuse every poisoned step.
  const auto half_poisoned = [](const std::vector<double>& x, std::vector<double>& grad) {
    grad.assign(1, 1.0);
    return x[0] >= 0.0 ? x[0] : std::numeric_limits<double>::quiet_NaN();
  };
  resloc::math::GradientDescentOptions options;
  options.step_size = 1.0;
  options.max_iterations = 200;
  const auto result = resloc::math::minimize(half_poisoned, {1e-6}, options);
  EXPECT_GE(result.x[0], 0.0);
  EXPECT_TRUE(std::isfinite(result.error));
}

TEST(GradientDescent, RestartsPreferFiniteRoundsOverNan) {
  // First evaluation of each round is at the seed; a NaN round must never
  // displace a finite best, and a finite round must displace a NaN one.
  int calls = 0;
  const auto flaky = [&calls](const std::vector<double>& x, std::vector<double>& grad) {
    grad.assign(x.size(), 0.0);  // zero gradient: each round stops at its seed
    ++calls;
    return calls == 1 ? std::numeric_limits<double>::quiet_NaN() : 5.0;
  };
  resloc::math::GradientDescentOptions options;
  resloc::math::RestartOptions restarts{.rounds = 3, .perturbation_stddev = 0.1};
  Rng rng(5);
  const auto best =
      resloc::math::minimize_with_restarts(flaky, {0.0}, options, restarts, rng);
  EXPECT_TRUE(std::isfinite(best.error));
  EXPECT_EQ(best.error, 5.0);
}

// The tentpole's determinism bar at the measurement layer: a fully faulted
// acoustic campaign is byte-identical whether its (round, source) turns run
// sequentially or on a thread pool.
TEST(FaultInjection, FaultedCampaignIsThreadCountInvariant) {
  resloc::sim::ScenarioParams params;
  params.node_count = 16;
  Rng scenario_rng(21);
  const resloc::core::Deployment deployment =
      resloc::sim::build_scenario("offset_grid", params, scenario_rng);

  resloc::sim::FieldExperimentConfig config = resloc::sim::grass_campaign_config(2);
  config.faults = resloc::fault::plan_from_kind("all", 1.0);

  config.threads = 1;
  Rng rng_seq(77);
  const auto sequential = resloc::sim::run_field_experiment(deployment, config, rng_seq);

  config.threads = 8;
  Rng rng_par(77);
  const auto threaded = resloc::sim::run_field_experiment(deployment, config, rng_par);

  ASSERT_EQ(sequential.samples.size(), threaded.samples.size());
  for (std::size_t i = 0; i < sequential.samples.size(); ++i) {
    EXPECT_EQ(sequential.samples[i].source, threaded.samples[i].source) << i;
    EXPECT_EQ(sequential.samples[i].receiver, threaded.samples[i].receiver) << i;
    // Bitwise equality, NaN included: compare representations, not values.
    EXPECT_TRUE(sequential.samples[i].measured_m == threaded.samples[i].measured_m ||
                (std::isnan(sequential.samples[i].measured_m) &&
                 std::isnan(threaded.samples[i].measured_m)))
        << i;
  }
  const auto set_seq = sequential.to_measurement_set(deployment.size());
  const auto set_par = threaded.to_measurement_set(deployment.size());
  ASSERT_EQ(set_seq.edge_count(), set_par.edge_count());
  for (std::size_t e = 0; e < set_seq.edge_count(); ++e) {
    EXPECT_EQ(set_seq.edges()[e].i, set_par.edges()[e].i) << e;
    EXPECT_EQ(set_seq.edges()[e].j, set_par.edges()[e].j) << e;
    EXPECT_EQ(set_seq.edges()[e].distance_m, set_par.edges()[e].distance_m) << e;
    EXPECT_EQ(set_seq.edges()[e].weight, set_par.edges()[e].weight) << e;
  }

  // And faults genuinely fired: the "all" plan at full intensity must have
  // thinned or corrupted something relative to a fault-free campaign.
  config.threads = 1;
  config.faults = FaultPlan{};
  Rng rng_clean(77);
  const auto clean = resloc::sim::run_field_experiment(deployment, config, rng_clean);
  EXPECT_NE(clean.samples.size(), sequential.samples.size());
}

}  // namespace
