// End-to-end regression lock on the acoustic ranging campaign: a fixed-seed
// 3x3 grid ranged by the full Section 3 service and localized by both
// multilateration and centralized LSS, plus the numerical equivalence of the
// Goertzel fast path against the direct DFT and the determinism/diagnosis
// guarantees of the acoustic sweep axis. Labeled `slow` in ctest: these run
// whole campaigns, not single functions.
#include <gtest/gtest.h>

#include <cmath>

#include "acoustics/signal_synth.hpp"
#include "pipeline/localization_pipeline.hpp"
#include "ranging/dft_detector.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"
#include "sim/deployments.hpp"
#include "sim/field_experiment.hpp"
#include "sim/scenarios.hpp"

namespace {

using resloc::math::Rng;
using resloc::pipeline::LocalizationPipeline;
using resloc::pipeline::MeasurementSource;
using resloc::pipeline::PipelineConfig;
using resloc::pipeline::PipelineRun;
using resloc::pipeline::Solver;

// The shared fixture: a 3x3 offset grid (spacings 9 m, everything within the
// grass service's 22 m window except the far corners) with 6 anchors -- the
// anchor density multilateration needs on a 9-node graph whose edges the
// shadowing model thins (fewer anchors flips placement on single silenced
// links, which would make the regression bound flaky rather than sharp).
resloc::core::Deployment grid3x3() {
  resloc::core::Deployment d = resloc::sim::offset_grid(3, 3);
  resloc::math::Rng rng(11);
  resloc::sim::choose_random_anchors(d, 6, rng);
  return d;
}

PipelineRun run_acoustic(Solver solver, std::uint64_t seed) {
  PipelineConfig config;
  config.source = MeasurementSource::kAcousticRanging;
  config.solver = solver;
  const LocalizationPipeline pipe(config);
  Rng rng(seed);
  return pipe.run(grid3x3(), rng);
}

TEST(AcousticRegression, MultilaterationPlacesGridWithinBounds) {
  const PipelineRun run = run_acoustic(Solver::kMultilateration, 2024);
  // Regression bounds, not aspirations: the fixed seed currently places all
  // 5 non-anchor nodes at ~0.2 m mean error; the asserted envelope leaves
  // room for legitimate model tweaks but catches a broken campaign (placement
  // collapse) or a broken detector (meter-scale error).
  EXPECT_GE(run.report.localized_fraction(), 0.8);
  EXPECT_GT(run.measurements.edge_count(), 10u);
  EXPECT_LT(run.report.average_error_m, 1.0);
}

TEST(AcousticRegression, CentralizedLssPlacesGridWithinBounds) {
  const PipelineRun run = run_acoustic(Solver::kCentralizedLss, 2024);
  EXPECT_GE(run.report.localized_fraction(), 0.8);
  EXPECT_LT(run.report.average_error_m, 1.5);
  EXPECT_TRUE(std::isfinite(run.stress));
}

TEST(AcousticRegression, GoertzelMatchesDirectDftOnSharedTones) {
  // One noisy capture with in-band chirps, run through both filters at two
  // different bins; the sliding recurrence must track the direct sum to
  // better than 1e-9 in magnitude at every sample.
  resloc::acoustics::WaveformSpec spec;
  spec.tone_frequency_hz = 4300.0;
  spec.tone_amplitude = 1.0;
  spec.noise_stddev = 0.5;
  Rng rng(0xD1F7);
  resloc::acoustics::WaveformSynthesizer synth;
  std::vector<double> wave;
  synth.synthesize_into(wave, spec, resloc::acoustics::periodic_chirps(8, 50, 420, 128), 4096,
                        rng);

  for (const int bin : {9, 10, 6}) {
    resloc::ranging::DirectDftFilter direct(resloc::ranging::SlidingDftFilter::kWindow, bin);
    resloc::ranging::GoertzelSlidingFilter fast(resloc::ranging::SlidingDftFilter::kWindow, bin);
    double max_delta = 0.0;
    for (double s : wave) {
      const double d = std::abs(std::sqrt(direct.step(s)) - std::sqrt(fast.step(s)));
      if (d > max_delta) max_delta = d;
    }
    EXPECT_LT(max_delta, 1e-9) << "bin " << bin;
  }
}

TEST(AcousticRegression, GoertzelBinFourMatchesFigureNineBand) {
  // At bin 9 of 36 (= fs/4) the generic recurrence reproduces the
  // multiplication-free Figure 9 band power exactly (up to rounding).
  resloc::acoustics::WaveformSpec spec;
  spec.tone_frequency_hz = 4000.0;
  spec.tone_amplitude = 1.0;
  spec.noise_stddev = 0.3;
  Rng rng(0xF19);
  resloc::acoustics::WaveformSynthesizer synth;
  std::vector<double> wave;
  synth.synthesize_into(wave, spec, resloc::acoustics::periodic_chirps(4, 64, 400, 128), 2048,
                        rng);

  resloc::ranging::SlidingDftFilter fig9;
  resloc::ranging::GoertzelSlidingFilter fast(resloc::ranging::SlidingDftFilter::kWindow, 9);
  for (double s : wave) {
    const double band = fig9.filter(s).band_fs4;
    const double power = fast.step(s);
    EXPECT_NEAR(std::sqrt(band), std::sqrt(power), 1e-9);
  }
}

TEST(AcousticRegression, SoftwareDetectorRangesShortDistances) {
  // Section 3.7 mode: the mic is sampled raw and the Goertzel tone detector
  // produces the binary series. The refined pattern detection on top must
  // still range a 5 m grass link reliably and to sub-meter accuracy.
  resloc::ranging::RangingConfig config;
  config.software_detector = true;
  const resloc::ranging::RangingService service(config);
  const resloc::acoustics::SpeakerUnit speaker;
  const resloc::acoustics::MicUnit mic;
  Rng rng(0x507F);
  resloc::ranging::RangingScratch scratch;

  const double true_distance_m = 5.0;
  int detected = 0;
  double total_abs_error_m = 0.0;
  for (int i = 0; i < 12; ++i) {
    const auto estimate = service.measure(true_distance_m, speaker, mic, rng, scratch);
    if (!estimate) continue;
    ++detected;
    total_abs_error_m += std::abs(*estimate - true_distance_m);
  }
  ASSERT_GE(detected, 8);
  EXPECT_LT(total_abs_error_m / static_cast<double>(detected), 1.0);
}

TEST(AcousticRegression, SoftwareDetectorScratchMatchesAllocatingOverload) {
  // The buffer-reuse overload must stay draw-for-draw identical to the
  // allocating one in software-detector mode too.
  resloc::ranging::RangingConfig config;
  config.software_detector = true;
  const resloc::ranging::RangingService service(config);
  const resloc::acoustics::SpeakerUnit speaker;
  const resloc::acoustics::MicUnit mic;
  resloc::ranging::RangingScratch scratch;
  for (int i = 0; i < 4; ++i) {
    Rng rng_a(77 + i);
    Rng rng_b(77 + i);
    const auto fresh = service.measure(8.0, speaker, mic, rng_a);
    const auto reused = service.measure(8.0, speaker, mic, rng_b, scratch);
    EXPECT_EQ(fresh.has_value(), reused.has_value());
    if (fresh && reused) {
      EXPECT_DOUBLE_EQ(*fresh, *reused);
    }
  }
}

TEST(AcousticRegression, FieldExperimentSurfacesSkippedPairs) {
  // Two nodes 5 m apart plus one 200 m away: both far pairs must be counted
  // as skipped (once per unordered pair, not per round or direction), and the
  // count must ride through the pipeline into the run diagnostics.
  resloc::core::Deployment d;
  d.positions = {{0.0, 0.0}, {5.0, 0.0}, {200.0, 0.0}};
  resloc::sim::FieldExperimentConfig config = resloc::sim::grass_campaign_config(/*rounds=*/2);

  Rng rng(3);
  const resloc::sim::FieldExperimentData data =
      resloc::sim::run_field_experiment(d, config, rng);
  EXPECT_EQ(data.skipped_pairs, 2u);

  PipelineConfig pc;
  pc.source = MeasurementSource::kAcousticRanging;
  pc.campaign = config;
  pc.solver = Solver::kCentralizedLss;
  Rng rng2(3);
  const PipelineRun run = LocalizationPipeline(pc).run(d, rng2);
  EXPECT_EQ(run.skipped_pairs, 2u);

  // And it lands in the per-trial outcome / serialized aggregates.
  resloc::runner::SweepSpec spec;
  spec.name = "skip";
  spec.seed = 3;
  spec.trials_per_cell = 1;
  spec.base = pc;
  spec.axes.scenarios = {"wooded_patch"};  // 60 x 60 m field, 30 m cutoff
  spec.axes.solvers = {Solver::kCentralizedLss};
  spec.axes.anchor_counts = {0};
  const auto result = resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{1}).run(spec);
  ASSERT_EQ(result.trials.size(), 1u);
  ASSERT_TRUE(result.trials[0].ok);
  EXPECT_GT(result.trials[0].skipped_pairs, 0u);
  EXPECT_NE(result.to_json().find("\"mean_skipped_pairs\": "), std::string::npos);
  EXPECT_NE(result.to_csv().find("mean_skipped_pairs"), std::string::npos);
}

TEST(AcousticRegression, AcousticSweepDeterministicAcrossThreads) {
  // The PR-2 invariant extended to the acoustic axis: a sweep over terrain x
  // chirp count serializes byte-identically at any thread count.
  resloc::runner::SweepSpec spec;
  spec.name = "acoustic-det";
  spec.seed = 99;
  spec.trials_per_cell = 2;
  spec.base.source = MeasurementSource::kAcousticRanging;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.node_counts = {9};
  spec.axes.anchor_counts = {4};
  spec.axes.environments = {"grass", "pavement"};
  spec.axes.chirp_counts = {5, 10};

  const auto serial = resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{1}).run(spec);
  const auto parallel = resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{4}).run(spec);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  ASSERT_EQ(serial.cells.size(), 4u);
  for (const auto& cell : serial.cells) EXPECT_EQ(cell.aggregate.ok_trials, 2u);
}

TEST(AcousticRegression, EnvironmentAxisChangesOutcomes) {
  // The axis must actually reach the campaign: urban terrain (echo-rich,
  // noisy) and grass terrain may not produce identical aggregates.
  resloc::runner::SweepSpec spec;
  spec.name = "env-effect";
  spec.seed = 5;
  spec.trials_per_cell = 1;
  spec.base.source = MeasurementSource::kAcousticRanging;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.node_counts = {9};
  spec.axes.anchor_counts = {4};
  spec.axes.environments = {"grass", "urban"};
  const auto result = resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{2}).run(spec);
  ASSERT_EQ(result.trials.size(), 2u);
  ASSERT_TRUE(result.trials[0].ok);
  ASSERT_TRUE(result.trials[1].ok);
  EXPECT_NE(result.trials[0].measured_edges, result.trials[1].measured_edges);
}

TEST(AcousticRegression, OutOfRangeAxisValuesFailTrialNotCampaign) {
  // A chirp count past the 4-bit counter cap would be paid for but never
  // recorded, and the "scenario" environment value has nothing to resolve on
  // a scenario without a canonical site -- both must fail the trial loudly
  // instead of silently sweeping something other than the label claims.
  resloc::runner::SweepSpec chirp_spec;
  chirp_spec.name = "chirp-cap";
  chirp_spec.seed = 1;
  chirp_spec.trials_per_cell = 1;
  chirp_spec.base.source = MeasurementSource::kAcousticRanging;
  chirp_spec.axes.scenarios = {"offset_grid"};
  chirp_spec.axes.node_counts = {9};
  chirp_spec.axes.chirp_counts = {20};
  const auto chirp_result =
      resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{1}).run(chirp_spec);
  ASSERT_EQ(chirp_result.trials.size(), 1u);
  EXPECT_FALSE(chirp_result.trials[0].ok);
  EXPECT_NE(chirp_result.trials[0].error.find("counter cap"), std::string::npos);

  resloc::runner::SweepSpec env_spec;
  env_spec.name = "no-canonical-env";
  env_spec.seed = 1;
  env_spec.trials_per_cell = 1;
  env_spec.base.source = MeasurementSource::kAcousticRanging;
  env_spec.axes.scenarios = {"random_uniform"};  // no canonical site
  env_spec.axes.node_counts = {9};
  env_spec.axes.environments = {"scenario"};
  const auto env_result =
      resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{1}).run(env_spec);
  ASSERT_EQ(env_result.trials.size(), 1u);
  EXPECT_FALSE(env_result.trials[0].ok);
  EXPECT_NE(env_result.trials[0].error.find("canonical environment"), std::string::npos);
}

TEST(AcousticRegression, UnknownEnvironmentFailsTrialNotCampaign) {
  resloc::runner::SweepSpec spec;
  spec.name = "bad-env";
  spec.seed = 1;
  spec.trials_per_cell = 1;
  spec.base.source = MeasurementSource::kAcousticRanging;
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.node_counts = {9};
  spec.axes.environments = {"moon"};
  const auto result = resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{1}).run(spec);
  ASSERT_EQ(result.trials.size(), 1u);
  EXPECT_FALSE(result.trials[0].ok);
  EXPECT_NE(result.trials[0].error.find("moon"), std::string::npos);
}

}  // namespace
