// Golden-file lock on the eval/aggregate emitters: the JSON and CSV reports
// are byte-compared against checked-in fixtures, so any drift in key order,
// float formatting, null handling, or column layout fails loudly instead of
// silently invalidating archived campaign reports.
//
// Fixtures live in tests/golden/ (RESLOC_GOLDEN_DIR at compile time). To
// regenerate after an *intentional* format change, run this test once with
// RESLOC_REGEN_GOLDEN=1 in the environment and commit the rewritten files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "eval/aggregate.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/sweep_spec.hpp"

namespace {

using resloc::eval::CellAggregate;
using resloc::eval::CellResult;
using resloc::eval::TrialOutcome;

std::string golden_path(const std::string& name) {
  return std::string(RESLOC_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool regen_requested() { return std::getenv("RESLOC_REGEN_GOLDEN") != nullptr; }

void compare_against_golden(const std::string& fixture, const std::string& actual) {
  const std::string path = golden_path(fixture);
  if (regen_requested()) {
    ASSERT_TRUE(resloc::eval::write_text_file(path, actual)) << "cannot rewrite " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing fixture " << path
                                 << " (run with RESLOC_REGEN_GOLDEN=1 to create it)";
  // EXPECT_EQ on the full strings: gtest prints a readable first-difference.
  EXPECT_EQ(expected, actual) << "emitter drift against " << path
                              << "; if intentional, regenerate with RESLOC_REGEN_GOLDEN=1";
}

// A handcrafted two-cell campaign exercising the emitters' edge cases without
// running any pipeline: a healthy cell, and a cell whose trials all failed
// (every statistic absent -> JSON null / CSV nan), with axis values that need
// JSON escaping.
std::vector<CellResult> handcrafted_cells() {
  CellResult healthy;
  healthy.axes = {{"scenario", "grass_grid"}, {"label", "quote\"back\\slash"}};
  TrialOutcome a;
  a.ok = true;
  a.total_nodes = 10;
  a.localized = 9;
  a.placement_rate = 0.9;
  a.average_error_m = 0.25;
  a.median_error_m = 0.2;
  a.max_error_m = 1.0625;  // exact in binary: formatting must not wobble
  a.stress = std::numeric_limits<double>::quiet_NaN();
  a.measured_edges = 31;
  a.skipped_pairs = 4;
  TrialOutcome b = a;
  b.localized = 10;
  b.placement_rate = 1.0;
  b.average_error_m = 1.0 / 3.0;  // %.12g rendering pinned by the fixture
  b.stress = 2.5;
  healthy.aggregate = resloc::eval::aggregate_trials({a, b});

  CellResult failed;
  failed.axes = {{"scenario", "grass_grid"}, {"label", "all-failed"}};
  TrialOutcome c;
  c.ok = false;
  c.error = "unknown scenario";
  failed.aggregate = resloc::eval::aggregate_trials({c, c});

  return {healthy, failed};
}

TEST(GoldenAggregate, HandcraftedJsonMatchesFixture) {
  compare_against_golden("handcrafted.json",
                         resloc::eval::campaign_to_json("golden", 42, handcrafted_cells()));
}

TEST(GoldenAggregate, HandcraftedCsvMatchesFixture) {
  compare_against_golden("handcrafted.csv",
                         resloc::eval::campaign_to_csv(handcrafted_cells()));
}

// The fixed 2x2 sweep (the CI smoke configuration): node count x noise sigma,
// one multilateration trial per cell, seed 7. Runs the real pipeline, so this
// also pins the synthetic measurement chain's numbers end to end. The pin is
// byte-exact and therefore scoped to the CI platform's libm/FP contraction;
// a host with a different libm (musl, macOS) may differ in the last printed
// digit -- regenerate there with RESLOC_REGEN_GOLDEN=1 rather than loosening
// the emitters' format lock.
resloc::runner::CampaignResult smoke_2x2() {
  resloc::runner::SweepSpec spec;
  spec.name = "smoke";
  spec.seed = 7;
  spec.trials_per_cell = 1;
  spec.base.source = resloc::pipeline::MeasurementSource::kSyntheticGaussian;
  spec.axes.node_counts = {16, 25};
  spec.axes.noise_sigmas = {0.33, 1.0};
  spec.axes.anchor_counts = {6};
  return resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{2}).run(spec);
}

TEST(GoldenAggregate, Smoke2x2JsonMatchesFixture) {
  compare_against_golden("smoke_2x2.json", smoke_2x2().to_json());
}

TEST(GoldenAggregate, Smoke2x2CsvMatchesFixture) {
  compare_against_golden("smoke_2x2.csv", smoke_2x2().to_csv());
}

// A small end-to-end acoustic campaign (3x3 offset grid, grass service,
// multilateration and centralized LSS), pinning the measurement-acquisition
// byte-stream: the
// counter-based RNG substream scheme (per-link shadowing from fork(i*n+j),
// per-(round, source) measurement streams from fork(round*n+source)) was
// adopted once, this fixture was regenerated once for it, and any future
// drift -- a reordered draw, an enumeration-order dependency creeping back --
// fails here byte-exactly. Same platform scoping as the smoke fixture above.
resloc::runner::CampaignResult acoustic_3x3() {
  resloc::runner::SweepSpec spec;
  spec.name = "acoustic_3x3";
  spec.seed = 11;
  spec.trials_per_cell = 2;
  spec.base.source = resloc::pipeline::MeasurementSource::kAcousticRanging;
  spec.axes.solvers = {resloc::pipeline::Solver::kMultilateration,
                       resloc::pipeline::Solver::kCentralizedLss};
  spec.axes.scenarios = {"offset_grid"};
  spec.axes.node_counts = {9};
  spec.axes.anchor_counts = {4};
  return resloc::runner::CampaignRunner(resloc::runner::RunnerOptions{2}).run(spec);
}

TEST(GoldenAggregate, Acoustic3x3JsonMatchesFixture) {
  compare_against_golden("acoustic_3x3.json", acoustic_3x3().to_json());
}

TEST(GoldenAggregate, EmptyCampaignSerializesStably) {
  // No fixture needed: the empty shape is asserted inline (it is the one
  // report consumers special-case).
  const std::string json = resloc::eval::campaign_to_json("empty", 0, {});
  EXPECT_NE(json.find("\"cells\": []"), std::string::npos);
  EXPECT_NE(json.find("\"cell_count\": 0"), std::string::npos);
  const std::string csv = resloc::eval::campaign_to_csv({});
  EXPECT_EQ(csv.find("scenario"), std::string::npos);  // no axis columns
  EXPECT_EQ(csv,
            "trials,ok_trials,scored_trials,mean_error_m,median_error_m,p95_error_m,"
            "max_error_m,mean_placement_rate,mean_stress,mean_measured_edges,"
            "mean_augmented_edges,mean_skipped_pairs\n");
}

}  // namespace
