#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "acoustics/channel.hpp"
#include "acoustics/chirp_pattern.hpp"
#include "acoustics/environment.hpp"
#include "acoustics/propagation.hpp"
#include "acoustics/signal_synth.hpp"
#include "acoustics/tone_detector.hpp"
#include "acoustics/units.hpp"
#include "math/rng.hpp"

namespace {

using namespace resloc::acoustics;
using resloc::math::Rng;

TEST(Environment, ProfilesAreDistinct) {
  const auto grass = EnvironmentProfile::grass();
  const auto pavement = EnvironmentProfile::pavement();
  const auto urban = EnvironmentProfile::urban();
  const auto wooded = EnvironmentProfile::wooded();
  // Absorption ordering: pavement < urban < grass < wooded.
  EXPECT_LT(pavement.excess_attenuation_db_per_m, urban.excess_attenuation_db_per_m);
  EXPECT_LT(urban.excess_attenuation_db_per_m, grass.excess_attenuation_db_per_m);
  EXPECT_LT(grass.excess_attenuation_db_per_m, wooded.excess_attenuation_db_per_m);
  // Urban is the echo-rich environment.
  EXPECT_GT(urban.echo_rate, grass.echo_rate);
  EXPECT_GT(urban.echo_rate, pavement.echo_rate);
}

TEST(Propagation, ReceivedLevelDecreasesWithDistance) {
  const auto env = EnvironmentProfile::grass();
  double prev = received_level_db(105.0, 0.5, env);
  for (double d = 1.0; d <= 40.0; d += 1.0) {
    const double level = received_level_db(105.0, d, env);
    EXPECT_LT(level, prev);
    prev = level;
  }
}

TEST(Propagation, SphericalSpreadingSixDbPerDoubling) {
  EnvironmentProfile vacuum;
  vacuum.excess_attenuation_db_per_m = 0.0;
  const double l1 = received_level_db(100.0, 5.0, vacuum);
  const double l2 = received_level_db(100.0, 10.0, vacuum);
  EXPECT_NEAR(l1 - l2, 20.0 * std::log10(2.0), 1e-9);
}

TEST(Propagation, DetectionProbabilityMonotoneInSnr) {
  double prev = detection_probability(-20.0);
  for (double snr = -15.0; snr <= 40.0; snr += 5.0) {
    const double p = detection_probability(snr);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 1.0);  // saturates below 1: the detector misses even strong tones
    prev = p;
  }
  EXPECT_LT(detection_probability(-20.0), 0.001);
  EXPECT_GT(detection_probability(30.0), 0.9);
}

TEST(Propagation, PaperRangeShapes) {
  // Section 3.2 / 3.6.2 calibration targets (shape, not exact numbers):
  const auto grass = EnvironmentProfile::grass();
  const auto pavement = EnvironmentProfile::pavement();

  // Stock 88 dB buzzer dies within a few meters on grass...
  const double stock_grass = range_for_detection_probability(kStockBuzzerDb, 0.0, grass, 0.3);
  EXPECT_LT(stock_grass, 8.0);
  // ...while the 105 dB loudspeaker reaches 2-4x farther.
  const double loud_grass = range_for_detection_probability(kLoudspeakerDb, 0.0, grass, 0.3);
  EXPECT_GT(loud_grass, 2.0 * stock_grass);
  EXPECT_GT(loud_grass, 10.0);
  EXPECT_LT(loud_grass, 32.0);

  // Pavement carries much farther than grass.
  const double loud_pavement =
      range_for_detection_probability(kLoudspeakerDb, 0.0, pavement, 0.3);
  EXPECT_GT(loud_pavement, 1.5 * loud_grass);
}

TEST(Units, SpeakerSamplingVariesAroundNominal) {
  UnitVariationModel model;
  model.fault_probability = 0.0;
  Rng rng(42);
  double min_db = 1e9;
  double max_db = -1e9;
  for (int i = 0; i < 200; ++i) {
    const auto s = model.sample_speaker(kLoudspeakerDb, rng);
    EXPECT_FALSE(s.faulty);
    min_db = std::min(min_db, s.output_db);
    max_db = std::max(max_db, s.output_db);
  }
  EXPECT_LT(min_db, kLoudspeakerDb - 1.0);
  EXPECT_GT(max_db, kLoudspeakerDb + 1.0);
  EXPECT_GT(min_db, kLoudspeakerDb - 10.0);  // bounded spread
}

TEST(Units, FaultySpeakerLosesPower) {
  SpeakerUnit s;
  s.output_db = 105.0;
  EXPECT_DOUBLE_EQ(s.effective_db(), 105.0);
  s.faulty = true;
  EXPECT_LT(s.effective_db(), 85.0);
}

TEST(Units, FaultProbabilityRespected) {
  UnitVariationModel model;
  model.fault_probability = 0.5;
  Rng rng(7);
  int faults = 0;
  for (int i = 0; i < 2000; ++i) {
    if (model.sample_mic(rng).faulty) ++faults;
  }
  EXPECT_NEAR(faults / 2000.0, 0.5, 0.05);
}

TEST(ChirpPattern, StartTimesRespectStructure) {
  ChirpPattern pattern;
  pattern.num_chirps = 10;
  Rng rng(3);
  const auto starts = chirp_start_times(pattern, rng);
  ASSERT_EQ(starts.size(), 10u);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    const double gap = starts[i] - starts[i - 1];
    EXPECT_GE(gap, pattern.chirp_duration_s + pattern.inter_chirp_gap_s - 1e-12);
    EXPECT_LE(gap, pattern.chirp_duration_s + pattern.inter_chirp_gap_s +
                        pattern.random_delay_max_s + 1e-12);
  }
}

TEST(ChirpPattern, RandomDelaysDecorrelate) {
  ChirpPattern pattern;
  Rng rng1(1), rng2(2);
  const auto a = chirp_start_times(pattern, rng1);
  const auto b = chirp_start_times(pattern, rng2);
  bool differs = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-9) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Channel, DirectSignalArrivesAtTravelTime) {
  auto env = EnvironmentProfile::grass();
  env.echo_rate = 0.0;
  env.noise_burst_rate_hz = 0.0;
  ChannelJitter jitter;
  jitter.actuation_jitter_s = 0.0;
  Rng rng(5);
  const double d = 17.0;
  const auto window = receive({{0.0, 0.008}}, 0.0, 0.2, d, SpeakerUnit{}, MicUnit{}, env,
                              jitter, rng);
  // Ramp-up segment plus full-level segment.
  ASSERT_EQ(window.signals.size(), 2u);
  const double travel = d / env.speed_of_sound_mps;
  EXPECT_NEAR(window.signals[0].start_s, travel, 1e-9);
  EXPECT_NEAR(window.signals[0].end_s, travel + jitter.rampup_s, 1e-9);
  EXPECT_NEAR(window.signals[0].snr_db + jitter.rampup_penalty_db, window.signals[1].snr_db,
              1e-9);
  EXPECT_NEAR(window.signals[1].end_s, travel + 0.008, 1e-9);
}

TEST(Channel, SignalsOutsideWindowAreDropped) {
  auto env = EnvironmentProfile::grass();
  env.echo_rate = 0.0;
  env.noise_burst_rate_hz = 0.0;
  Rng rng(6);
  // Emission whose sound arrives after the window closes.
  const auto window = receive({{10.0, 0.008}}, 0.0, 0.05, 5.0, SpeakerUnit{}, MicUnit{}, env,
                              ChannelJitter{}, rng);
  EXPECT_TRUE(window.signals.empty());
}

TEST(Channel, UrbanProducesEchoes) {
  const auto env = EnvironmentProfile::urban();
  Rng rng(8);
  std::size_t echo_windows = 0;
  for (int i = 0; i < 100; ++i) {
    const auto window = receive({{0.0, 0.008}}, 0.0, 0.3, 10.0, SpeakerUnit{}, MicUnit{}, env,
                                ChannelJitter{}, rng);
    if (window.signals.size() > 1) ++echo_windows;
  }
  EXPECT_GT(echo_windows, 30u);  // echo_rate 0.9 -> most windows see an echo
}

TEST(Channel, EchoesAreWeakerAndLater) {
  auto env = EnvironmentProfile::urban();
  env.noise_burst_rate_hz = 0.0;
  Rng rng(9);
  const double d = 10.0;
  const double body_snr = snr_db(SpeakerUnit{}.effective_db(), d, 0.0, env);
  int echoes_seen = 0;
  for (int i = 0; i < 50; ++i) {
    ChannelJitter jitter;
    jitter.actuation_jitter_s = 0.0;
    const auto window =
        receive({{0.0, 0.008}}, 0.0, 0.5, d, SpeakerUnit{}, MicUnit{}, env, jitter, rng);
    // The strongest interval is the full-level direct body; anything clearly
    // below it is an echo and must start no earlier than the direct signal.
    const double direct_start = d / env.speed_of_sound_mps;
    for (const auto& s : window.signals) {
      EXPECT_LE(s.snr_db, body_snr + 3.0);
      if (s.snr_db < body_snr - jitter.rampup_penalty_db - 0.5) {
        ++echoes_seen;
        EXPECT_GT(s.start_s, direct_start - 1e-9);
      }
    }
  }
  EXPECT_GT(echoes_seen, 20);  // urban is echo-rich
}

TEST(ToneDetector, StrongSignalDetectedOften) {
  auto env = EnvironmentProfile::grass();
  env.false_positive_rate = 0.0;
  const ToneDetectorModel detector(env, 16000.0);
  ReceivedWindow window;
  window.start_s = 0.0;
  window.duration_s = 0.01;
  window.signals.push_back({0.0, 0.01, 30.0});  // very strong tone everywhere
  Rng rng(10);
  const auto out = detector.sample_window(window, 160, MicUnit{}, rng);
  const auto hits = static_cast<std::size_t>(std::count(out.begin(), out.end(), true));
  EXPECT_GT(hits, 130u);  // ~95% hit rate
}

TEST(ToneDetector, NoSignalRespectsFalsePositiveRate) {
  auto env = EnvironmentProfile::grass();
  env.false_positive_rate = 0.05;
  env.noise_burst_rate_hz = 0.0;
  const ToneDetectorModel detector(env, 16000.0);
  ReceivedWindow window;
  window.duration_s = 1.0;
  Rng rng(11);
  const auto out = detector.sample_window(window, 16000, MicUnit{}, rng);
  const auto hits = static_cast<double>(std::count(out.begin(), out.end(), true));
  EXPECT_NEAR(hits / 16000.0, 0.05, 0.01);
}

TEST(ToneDetector, NoiseBurstElevatesFalsePositives) {
  auto env = EnvironmentProfile::grass();
  env.false_positive_rate = 0.01;
  const ToneDetectorModel detector(env, 16000.0);
  ReceivedWindow window;
  window.duration_s = 0.1;
  window.bursts.push_back({0.0, 0.1});
  Rng rng(12);
  const auto out = detector.sample_window(window, 1600, MicUnit{}, rng);
  const auto hits = static_cast<double>(std::count(out.begin(), out.end(), true));
  EXPECT_GT(hits / 1600.0, 0.2);
}

TEST(ToneDetector, FaultyMicIsNoisy) {
  auto env = EnvironmentProfile::grass();
  env.false_positive_rate = 0.005;
  env.noise_burst_rate_hz = 0.0;
  const ToneDetectorModel detector(env, 16000.0);
  ReceivedWindow window;
  window.duration_s = 0.1;
  MicUnit faulty;
  faulty.faulty = true;
  Rng rng(13);
  const auto out = detector.sample_window(window, 1600, faulty, rng);
  const auto hits = static_cast<double>(std::count(out.begin(), out.end(), true));
  EXPECT_GT(hits / 1600.0, 0.08);
}

TEST(SignalSynth, CleanToneHasExpectedAmplitude) {
  WaveformSpec spec;
  spec.tone_amplitude = 1000.0;
  spec.noise_stddev = 0.0;
  Rng rng(14);
  const auto wave = synthesize_waveform(spec, {{0, 64}}, 128, rng);
  double peak = 0.0;
  for (std::size_t i = 0; i < 64; ++i) peak = std::max(peak, std::abs(wave[i]));
  EXPECT_NEAR(peak, 1000.0, 10.0);
  for (std::size_t i = 64; i < 128; ++i) EXPECT_DOUBLE_EQ(wave[i], 0.0);
}

TEST(SignalSynth, PeriodicChirpsPlacement) {
  const auto chirps = periodic_chirps(3, 100, 500, 128);
  ASSERT_EQ(chirps.size(), 3u);
  EXPECT_EQ(chirps[0].start_sample, 100u);
  EXPECT_EQ(chirps[1].start_sample, 600u);
  EXPECT_EQ(chirps[2].start_sample, 1100u);
}

TEST(SignalSynth, NoiseChangesWaveform) {
  WaveformSpec spec;
  spec.noise_stddev = 100.0;
  Rng rng(15);
  const auto wave = synthesize_waveform(spec, {}, 256, rng);
  double energy = 0.0;
  for (double s : wave) energy += s * s;
  EXPECT_GT(energy / 256.0, 100.0 * 100.0 * 0.5);
}

}  // namespace
