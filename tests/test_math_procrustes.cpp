#include <gtest/gtest.h>

#include <tuple>

#include "math/procrustes.hpp"
#include "math/rng.hpp"

namespace {

using resloc::math::fit_rigid;
using resloc::math::Rng;
using resloc::math::Transform2D;
using resloc::math::Vec2;

std::vector<Vec2> sample_points(Rng& rng, std::size_t n) {
  std::vector<Vec2> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)});
  }
  return points;
}

TEST(Procrustes, RecoversPureTranslation) {
  const std::vector<Vec2> src{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  std::vector<Vec2> dst;
  for (const Vec2& p : src) dst.push_back(p + Vec2{5.0, -2.0});
  const auto fit = fit_rigid(src, dst);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.sum_squared_error, 0.0, 1e-18);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(resloc::math::distance(fit.transform.apply(src[i]), dst[i]), 0.0, 1e-9);
  }
}

TEST(Procrustes, EmptyOrMismatchedInputsInvalid) {
  EXPECT_FALSE(fit_rigid({}, {}).valid);
  EXPECT_FALSE(fit_rigid({{1.0, 2.0}}, {}).valid);
  EXPECT_FALSE(fit_rigid({{1.0, 2.0}}, {{0.0, 0.0}, {1.0, 1.0}}).valid);
}

TEST(Procrustes, SinglePointIsTranslationOnly) {
  const auto fit = fit_rigid({{1.0, 1.0}}, {{4.0, 5.0}});
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.sum_squared_error, 0.0, 1e-18);
  const Vec2 mapped = fit.transform.apply({1.0, 1.0});
  EXPECT_NEAR(mapped.x, 4.0, 1e-12);
  EXPECT_NEAR(mapped.y, 5.0, 1e-12);
}

TEST(Procrustes, ReflectionDetectedWhenAllowed) {
  const std::vector<Vec2> src{{0.0, 0.0}, {2.0, 0.0}, {0.0, 3.0}};
  std::vector<Vec2> dst;
  for (const Vec2& p : src) dst.push_back({p.x, -p.y});  // mirror
  const auto with = fit_rigid(src, dst, /*allow_reflection=*/true);
  ASSERT_TRUE(with.valid);
  EXPECT_TRUE(with.transform.reflected());
  EXPECT_NEAR(with.sum_squared_error, 0.0, 1e-16);

  const auto without = fit_rigid(src, dst, /*allow_reflection=*/false);
  ASSERT_TRUE(without.valid);
  EXPECT_FALSE(without.transform.reflected());
  EXPECT_GT(without.sum_squared_error, 1.0);  // mirror cannot be matched
}

TEST(Procrustes, RmseHelper) {
  resloc::math::RigidFit fit;
  EXPECT_DOUBLE_EQ(resloc::math::fit_rmse(fit, 4), 0.0);  // invalid fit
  fit.valid = true;
  fit.sum_squared_error = 16.0;
  EXPECT_DOUBLE_EQ(resloc::math::fit_rmse(fit, 4), 2.0);
  EXPECT_DOUBLE_EQ(resloc::math::fit_rmse(fit, 0), 0.0);
}

/// Property sweep: a random rigid motion of a random point cloud must be
/// recovered exactly (zero residual), reflected or not.
class ProcrustesRecovery : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ProcrustesRecovery, RecoversRandomRigidMotion) {
  const auto [seed, reflect] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const auto src = sample_points(rng, 3 + static_cast<std::size_t>(seed) % 10);

  const Transform2D motion(rng.uniform(-3.14, 3.14), reflect,
                           {rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
  std::vector<Vec2> dst;
  for (const Vec2& p : src) dst.push_back(motion.apply(p));

  const auto fit = fit_rigid(src, dst, /*allow_reflection=*/true);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.sum_squared_error, 0.0, 1e-12);
  EXPECT_EQ(fit.transform.reflected(), reflect);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(resloc::math::distance(fit.transform.apply(src[i]), dst[i]), 0.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMotions, ProcrustesRecovery,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Bool()));

/// With noise, the fit residual must not exceed the noise magnitude by much,
/// and must beat the naive un-aligned residual.
TEST(Procrustes, NoisyFitBeatsNoAlignment) {
  Rng rng(555);
  const auto src = sample_points(rng, 20);
  const Transform2D motion(1.2, false, {30.0, -10.0});
  std::vector<Vec2> dst;
  for (const Vec2& p : src) {
    dst.push_back(motion.apply(p) + Vec2{rng.gaussian(0.0, 0.1), rng.gaussian(0.0, 0.1)});
  }
  const auto fit = fit_rigid(src, dst);
  ASSERT_TRUE(fit.valid);
  const double rmse = resloc::math::fit_rmse(fit, src.size());
  EXPECT_LT(rmse, 0.3);

  double unaligned = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) unaligned += resloc::math::distance_sq(src[i], dst[i]);
  EXPECT_LT(fit.sum_squared_error, unaligned);
}

}  // namespace
