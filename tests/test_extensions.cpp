// Tests for the deployment-constraint distance prior (Section 3.5.1) and the
// DV-hop baseline (Section 2 / APS).
#include <gtest/gtest.h>

#include "core/dv_hop.hpp"
#include "eval/metrics.hpp"
#include "ranging/deployment_constraints.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

namespace {

using namespace resloc;
using resloc::math::Rng;
using resloc::math::Vec2;

TEST(DistancePrior, NearestPlausibleWithinTolerance) {
  const ranging::DistancePrior prior({9.0, 10.0, 18.0}, 0.5);
  EXPECT_EQ(*prior.nearest_plausible(9.2), 9.0);
  EXPECT_EQ(*prior.nearest_plausible(9.8), 10.0);
  EXPECT_EQ(*prior.nearest_plausible(17.6), 18.0);
  EXPECT_FALSE(prior.nearest_plausible(14.0).has_value());
  EXPECT_FALSE(prior.nearest_plausible(30.0).has_value());
  EXPECT_TRUE(prior.is_consistent(10.49));
  EXPECT_FALSE(prior.is_consistent(10.51));
}

TEST(DistancePrior, EmptyPrior) {
  const ranging::DistancePrior prior({}, 1.0);
  EXPECT_FALSE(prior.nearest_plausible(5.0).has_value());
}

TEST(DistancePrior, FromDeploymentDeduplicates) {
  // 3x3 square grid at 10 m: distinct distances <= 25 m are
  // 10, 14.14, 20, 22.36 (and none other).
  core::Deployment d;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) d.positions.push_back(Vec2{x * 10.0, y * 10.0});
  }
  const auto prior = ranging::DistancePrior::from_deployment(d, 25.0, 0.4);
  ASSERT_EQ(prior.plausible_distances().size(), 4u);
  EXPECT_NEAR(prior.plausible_distances()[0], 10.0, 1e-9);
  EXPECT_NEAR(prior.plausible_distances()[1], 14.142, 1e-2);
  EXPECT_NEAR(prior.plausible_distances()[2], 20.0, 1e-9);
  EXPECT_NEAR(prior.plausible_distances()[3], 22.36, 1e-2);
}

TEST(DistancePrior, RejectAndSnapActions) {
  const ranging::DistancePrior prior({10.0}, 0.5);
  std::vector<ranging::PairEstimate> pairs{
      {0, 1, 10.2, true},   // consistent
      {1, 2, 12.0, true},   // inconsistent: echo-induced overestimate
      {2, 3, 9.8, false},   // consistent
  };
  const auto rejected = ranging::apply_distance_prior(pairs, prior, ranging::PriorAction::kReject);
  ASSERT_EQ(rejected.size(), 2u);
  EXPECT_DOUBLE_EQ(rejected[0].distance_m, 10.2);  // kept as measured

  const auto snapped = ranging::apply_distance_prior(pairs, prior, ranging::PriorAction::kSnap);
  ASSERT_EQ(snapped.size(), 2u);
  EXPECT_DOUBLE_EQ(snapped[0].distance_m, 10.0);  // snapped to the prior
  EXPECT_DOUBLE_EQ(snapped[1].distance_m, 10.0);
}

TEST(DistancePrior, SnappingImprovesGridMeasurements) {
  // Noisy grid measurements snapped to the known grid distances beat the raw
  // ones -- the payoff the paper anticipates from deployment knowledge.
  const auto grid = sim::offset_grid(4, 4);
  Rng rng(31);
  auto noisy = sim::gaussian_measurements(grid, {.sigma_m = 0.33, .max_range_m = 22.0}, rng);
  const auto prior = ranging::DistancePrior::from_deployment(grid, 22.0, 1.0);
  double raw_error = 0.0;
  double snapped_error = 0.0;
  for (const auto& e : noisy.edges()) {
    const double true_d = math::distance(grid.positions[e.i], grid.positions[e.j]);
    raw_error += std::abs(e.distance_m - true_d);
    const auto snap = prior.nearest_plausible(e.distance_m);
    ASSERT_TRUE(snap.has_value());
    snapped_error += std::abs(*snap - true_d);
  }
  EXPECT_LT(snapped_error, raw_error * 0.35);
}

// --- DV-hop ---

core::MeasurementSet connectivity(const core::Deployment& d, double range) {
  core::MeasurementSet meas(d.size());
  meas.set_node_count(d.size());
  for (core::NodeId i = 0; i < d.size(); ++i) {
    for (core::NodeId j = i + 1; j < d.size(); ++j) {
      const double dist = math::distance(d.positions[i], d.positions[j]);
      if (dist < range) meas.add(i, j, dist);
    }
  }
  return meas;
}

TEST(DvHop, HopCountsAreGraphDistances) {
  // A 1x5 line with 10 m spacing and 12 m range: hop count = index distance.
  core::Deployment d;
  for (int i = 0; i < 5; ++i) d.positions.push_back(Vec2{i * 10.0, 0.0});
  d.anchors = {0, 4};
  const auto meas = connectivity(d, 12.0);
  Rng rng(1);
  const auto run = core::localize_dv_hop(d, meas, {}, rng);
  EXPECT_EQ(run.hop_counts[2][0], 2u);  // node 2 <- anchor 0
  EXPECT_EQ(run.hop_counts[2][1], 2u);  // node 2 <- anchor 4
  EXPECT_EQ(run.hop_counts[3][0], 3u);
  // Anchor 0's correction: true distance 40 m over 4 hops = 10 m/hop.
  EXPECT_NEAR(run.anchor_hop_distance[0], 10.0, 1e-9);
}

TEST(DvHop, IsotropicGridLocalizesWell) {
  auto grid = sim::offset_grid(5, 5);
  Rng rng(2);
  sim::choose_random_anchors(grid, 6, rng);
  const auto meas = connectivity(grid, 14.0);
  const auto run = core::localize_dv_hop(grid, meas, {}, rng);
  const auto report = eval::evaluate_localization(run.result.positions, grid.positions,
                                                  false, grid.anchors);
  EXPECT_GT(report.localized, 12u);
  EXPECT_LT(report.average_error_m, 6.0);  // hop-resolution accuracy
}

TEST(DvHop, AnisotropicTopologyDegrades) {
  // The paper's critique: DV-hop works "only for isotropic networks". An
  // L-shaped (anisotropic) deployment bends shortest paths around the corner,
  // so hop-derived distances overestimate straight-line distances badly.
  core::Deployment l_shape;
  for (int i = 0; i < 8; ++i) l_shape.positions.push_back(Vec2{i * 10.0, 0.0});
  for (int i = 1; i < 8; ++i) l_shape.positions.push_back(Vec2{0.0, i * 10.0});
  l_shape.anchors = {0, 7, 14};  // corner + both arm tips
  const auto meas = connectivity(l_shape, 12.0);
  Rng rng(3);
  const auto run = core::localize_dv_hop(l_shape, meas, {}, rng);
  const auto report = eval::evaluate_localization(run.result.positions, l_shape.positions,
                                                  false, l_shape.anchors);
  // Mid-arm nodes are pulled toward the diagonal; error is large relative to
  // the 10 m spacing.
  EXPECT_GT(report.average_error_m, 5.0);
}

TEST(DvHop, DisconnectedNodesNotLocalized) {
  core::Deployment d;
  d.positions = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0}, {500.0, 500.0}};
  d.anchors = {0, 1, 2};
  const auto meas = connectivity(d, 20.0);
  Rng rng(4);
  const auto run = core::localize_dv_hop(d, meas, {}, rng);
  EXPECT_TRUE(run.result.positions[3].has_value());
  EXPECT_FALSE(run.result.positions[4].has_value());
}

TEST(DvHop, MaxHopsLimitsFlood) {
  core::Deployment d;
  for (int i = 0; i < 6; ++i) d.positions.push_back(Vec2{i * 10.0, 0.0});
  d.anchors = {0, 1, 2};
  const auto meas = connectivity(d, 12.0);
  core::DvHopOptions options;
  options.max_hops = 2;
  Rng rng(5);
  const auto run = core::localize_dv_hop(d, meas, options, rng);
  EXPECT_EQ(run.hop_counts[5][0], std::numeric_limits<std::size_t>::max());
}

}  // namespace
