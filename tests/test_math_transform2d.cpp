#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "math/transform2d.hpp"

namespace {

using resloc::math::Rng;
using resloc::math::Transform2D;
using resloc::math::Vec2;

constexpr double kTol = 1e-12;

void expect_vec_near(Vec2 a, Vec2 b, double tol = kTol) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
}

TEST(Transform2D, IdentityMapsPointsToThemselves) {
  const Transform2D id;
  expect_vec_near(id.apply({3.0, -2.0}), {3.0, -2.0});
  EXPECT_FALSE(id.reflected());
  EXPECT_DOUBLE_EQ(id.theta(), 0.0);
}

TEST(Transform2D, PureTranslation) {
  const auto t = Transform2D::translation({2.0, -1.0});
  expect_vec_near(t.apply({1.0, 1.0}), {3.0, 0.0});
  expect_vec_near(t.apply_linear({1.0, 1.0}), {1.0, 1.0});
}

TEST(Transform2D, RotationMatchesPaperMatrixConvention) {
  // [x y] = [u v] * [[c, -s], [f s, f c]] with f = +1:
  // u=(1,0) -> (c, -s).
  const double theta = 0.3;
  const auto r = Transform2D::rotation(theta);
  expect_vec_near(r.apply({1.0, 0.0}), {std::cos(theta), -std::sin(theta)});
  expect_vec_near(r.apply({0.0, 1.0}), {std::sin(theta), std::cos(theta)});
}

TEST(Transform2D, ReflectionFactor) {
  const Transform2D m(0.0, /*reflect=*/true, {0.0, 0.0});
  // f=-1, theta=0: x = u, y = -v (mirror across the x axis).
  expect_vec_near(m.apply({2.0, 3.0}), {2.0, -3.0});
  EXPECT_TRUE(m.reflected());
}

TEST(Transform2D, PreservesDistances) {
  const Transform2D t(1.1, true, {4.0, -7.0});
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 5.0};
  EXPECT_NEAR(resloc::math::distance(t.apply(a), t.apply(b)), resloc::math::distance(a, b),
              1e-12);
}

TEST(Transform2D, CompositionMatchesSequentialApplication) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const Transform2D a(rng.uniform(-3.0, 3.0), rng.bernoulli(0.5),
                        {rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    const Transform2D b(rng.uniform(-3.0, 3.0), rng.bernoulli(0.5),
                        {rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    const Transform2D ab = a.then(b);
    const Vec2 p{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    expect_vec_near(ab.apply(p), b.apply(a.apply(p)), 1e-10);
  }
}

TEST(Transform2D, CompositionReflectionParity) {
  const Transform2D r(0.4, true, {0.0, 0.0});
  EXPECT_FALSE(r.then(r).reflected());  // two reflections cancel
  const Transform2D plain(0.2, false, {1.0, 1.0});
  EXPECT_TRUE(r.then(plain).reflected());
  EXPECT_TRUE(plain.then(r).reflected());
}

TEST(Transform2D, InverseRoundTrip) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const Transform2D t(rng.uniform(-3.0, 3.0), rng.bernoulli(0.5),
                        {rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    const Vec2 p{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    expect_vec_near(t.inverse().apply(t.apply(p)), p, 1e-10);
    expect_vec_near(t.apply(t.inverse().apply(p)), p, 1e-10);
  }
}

TEST(Transform2D, InverseComposesToIdentity) {
  const Transform2D t(0.77, true, {3.0, 4.0});
  const Transform2D id = t.then(t.inverse());
  EXPECT_LT(id.max_param_diff(Transform2D{}), 1e-12);
}

TEST(Transform2D, ThetaAccessor) {
  const Transform2D t(0.6, false, {0.0, 0.0});
  EXPECT_NEAR(t.theta(), 0.6, 1e-15);
  const Transform2D neg(-2.5, true, {0.0, 0.0});
  EXPECT_NEAR(neg.theta(), -2.5, 1e-15);
}

}  // namespace
