#include <gtest/gtest.h>

#include <cmath>
#include "math/constants.hpp"

#include "math/vec2.hpp"

namespace {

using resloc::math::Vec2;

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
  v /= 4.0;
  EXPECT_EQ(v, Vec2(1.0, 1.5));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 4.0 - 6.0);
  EXPECT_DOUBLE_EQ(a.cross(a), 0.0);
}

TEST(Vec2, Norms) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(resloc::math::distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(resloc::math::distance_sq({1.0, 1.0}, {2.0, 2.0}), 2.0);
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.rotated(resloc::math::kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.5, -1.5};
  for (double theta : {0.1, 0.7, 2.0, -1.3}) {
    EXPECT_NEAR(v.rotated(theta).norm(), v.norm(), 1e-12);
  }
}

TEST(Vec2, PerpIsOrthogonal) {
  const Vec2 v{3.0, 7.0};
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
  EXPECT_DOUBLE_EQ(v.perp().norm_sq(), v.norm_sq());
  // perp is counter-clockwise: cross(v, perp(v)) > 0.
  EXPECT_GT(v.cross(v.perp()), 0.0);
}

}  // namespace
