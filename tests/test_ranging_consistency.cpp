#include <gtest/gtest.h>

#include "ranging/measurement_table.hpp"

namespace {

using namespace resloc::ranging;

FilterPolicy median_policy() {
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  return policy;
}

TEST(MeasurementTable, StoresDirectionalSamples) {
  MeasurementTable table;
  table.add(1, 2, 10.0);
  table.add(1, 2, 10.2);
  table.add(2, 1, 9.9);
  EXPECT_EQ(table.directional(1, 2).size(), 2u);
  EXPECT_EQ(table.directional(2, 1).size(), 1u);
  EXPECT_TRUE(table.directional(3, 1).empty());
  EXPECT_EQ(table.measurement_count(), 3u);
  EXPECT_EQ(table.directed_pair_count(), 2u);
}

TEST(MeasurementTable, FilteredAppliesPolicy) {
  MeasurementTable table;
  table.add(0, 1, 5.0);
  table.add(0, 1, 5.1);
  table.add(0, 1, 50.0);  // outlier
  const auto filtered = table.filtered(0, 1, median_policy());
  ASSERT_TRUE(filtered.has_value());
  EXPECT_DOUBLE_EQ(*filtered, 5.1);
  EXPECT_FALSE(table.filtered(1, 2, median_policy()).has_value());
}

TEST(MeasurementTable, NodesEnumeration) {
  MeasurementTable table;
  table.add(5, 9, 1.0);
  table.add(2, 5, 1.0);
  EXPECT_EQ(table.nodes(), (std::vector<NodeId>{2, 5, 9}));
}

TEST(SymmetricEstimates, ConsistentBidirectionalAveraged) {
  MeasurementTable table;
  table.add(0, 1, 10.0);
  table.add(1, 0, 10.4);
  const auto pairs = table.symmetric_estimates(median_policy(), 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].bidirectional);
  EXPECT_DOUBLE_EQ(pairs[0].distance_m, 10.2);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
}

TEST(SymmetricEstimates, InconsistentBidirectionalDiscarded) {
  // Section 3.5: "bidirectional range estimates between a pair of nodes are
  // discarded if they are inconsistent."
  MeasurementTable table;
  table.add(0, 1, 10.0);
  table.add(1, 0, 14.0);
  EXPECT_TRUE(table.symmetric_estimates(median_policy(), 1.0).empty());
}

TEST(SymmetricEstimates, UnidirectionalRetained) {
  // "Sometimes it may be beneficial to retain suspicious measurements due to
  // the scarcity of available data."
  MeasurementTable table;
  table.add(3, 7, 12.0);
  const auto pairs = table.symmetric_estimates(median_policy(), 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].bidirectional);
  EXPECT_DOUBLE_EQ(pairs[0].distance_m, 12.0);
}

TEST(SymmetricEstimates, BidirectionalOnlyFilters) {
  MeasurementTable table;
  table.add(0, 1, 10.0);
  table.add(1, 0, 10.1);
  table.add(0, 2, 8.0);  // unidirectional
  EXPECT_EQ(table.symmetric_estimates(median_policy(), 1.0).size(), 2u);
  const auto bidir = table.bidirectional_only(median_policy(), 1.0);
  ASSERT_EQ(bidir.size(), 1u);
  EXPECT_EQ(bidir[0].b, 1u);
}

std::vector<PairEstimate> triangle(double ab, double bc, double ca) {
  return {{0, 1, ab, false}, {1, 2, bc, false}, {0, 2, ca, false}};
}

TEST(TriangleViolations, DetectsViolation) {
  const auto violations = find_triangle_violations(triangle(10.0, 2.0, 2.0), 0.05);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].a, 0u);
  EXPECT_EQ(violations[0].c, 2u);
}

TEST(TriangleViolations, ConsistentTriplesPass) {
  EXPECT_TRUE(find_triangle_violations(triangle(3.0, 4.0, 5.0), 0.05).empty());
  // Slightly over but within tolerance.
  EXPECT_TRUE(find_triangle_violations(triangle(7.2, 3.0, 4.0), 0.05).empty());
}

TEST(TriangleViolations, IncompleteTriplesIgnored) {
  const std::vector<PairEstimate> pairs{{0, 1, 10.0, false}, {1, 2, 2.0, false}};
  EXPECT_TRUE(find_triangle_violations(pairs, 0.05).empty());
}

TEST(DropTriangleOffenders, RemovesRepeatOffender) {
  // Node layout: a clique of 4 where the (0,1) edge is wildly overestimated;
  // it violates triangles (0,1,2) and (0,1,3) as the longest side.
  std::vector<PairEstimate> pairs{
      {0, 1, 30.0, false},  // corrupted: true distance ~5
      {0, 2, 5.0, false},  {1, 2, 5.0, false},
      {0, 3, 5.0, false},  {1, 3, 5.0, false},
      {2, 3, 5.0, false},
  };
  const auto cleaned = drop_triangle_offenders(pairs, 0.05, 2);
  EXPECT_EQ(cleaned.size(), 5u);
  for (const auto& p : cleaned) {
    EXPECT_FALSE(p.a == 0 && p.b == 1);
  }
}

TEST(DropTriangleOffenders, KeepsAllWhenConsistent) {
  std::vector<PairEstimate> pairs{
      {0, 1, 5.0, false}, {0, 2, 5.0, false}, {1, 2, 5.0, false}};
  EXPECT_EQ(drop_triangle_offenders(pairs, 0.05, 1).size(), 3u);
}

TEST(DropTriangleOffenders, MinViolationsThresholdRespected) {
  // Single violating triangle: offender participates in exactly 1 violation.
  auto pairs = triangle(10.0, 2.0, 2.0);
  EXPECT_EQ(drop_triangle_offenders(pairs, 0.05, 2).size(), 3u);  // kept
  EXPECT_EQ(drop_triangle_offenders(pairs, 0.05, 1).size(), 2u);  // dropped
}

}  // namespace
