// Bit-equality tests for the block-DSP kernels of the measure path.
//
// Every block kernel has a retained per-sample reference (the pre-refactor
// loop); these tests drive both over the same inputs and the same RNG stream
// and require last-ulp identical outputs AND identical post-call generator
// state, at odd block sizes, partial tails, and window-boundary offsets. The
// capstone test diffs RangingService end to end with block_dsp on vs off for
// all three detector front ends.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "acoustics/channel.hpp"
#include "acoustics/environment.hpp"
#include "acoustics/propagation.hpp"
#include "acoustics/signal_synth.hpp"
#include "acoustics/tone_detector.hpp"
#include "acoustics/units.hpp"
#include "math/rng.hpp"
#include "ranging/dft_detector.hpp"
#include "ranging/matched_filter.hpp"
#include "ranging/ranging_service.hpp"
#include "ranging/signal_detection.hpp"
#include "sim/channel_cache.hpp"

namespace {

using resloc::math::Rng;
namespace acoustics = resloc::acoustics;
namespace ranging = resloc::ranging;

// Sizes chosen to cross the 4-draw quad stride of fill_uniform_bits_block and
// the Goertzel 256-step resync period, plus odd/partial-tail cases.
const std::size_t kBlockSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 36, 100, 255, 256, 257, 1163};

TEST(RngBlocks, UniformBitsBlockMatchesSequential) {
  for (std::size_t n : kBlockSizes) {
    Rng a(0x1234u + n, 7);
    Rng b(0x1234u + n, 7);
    std::vector<std::uint64_t> block(n, 0);
    a.fill_uniform_bits_block(block.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(block[i], b.uniform_bits()) << "n=" << n << " i=" << i;
    }
    // Post-call state: the next draws must agree too.
    for (int i = 0; i < 8; ++i) ASSERT_EQ(a.uniform_bits(), b.uniform_bits());
  }
}

TEST(RngBlocks, GaussianBlockMatchesSequentialIncludingCachedHalf) {
  for (std::size_t n : kBlockSizes) {
    for (int warmup = 0; warmup < 2; ++warmup) {
      Rng a(0x9e3779b9u, 3 + n);
      Rng b(0x9e3779b9u, 3 + n);
      if (warmup) {
        // Leave a Box-Muller cached second normal pending before the block.
        const double wa = a.gaussian();
        const double wb = b.gaussian();
        ASSERT_EQ(wa, wb);
      }
      std::vector<double> block(n, 0.0);
      a.fill_gaussian_block(block.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double expect = b.gaussian(0.0, 1.0);
        ASSERT_EQ(std::memcmp(&block[i], &expect, sizeof(double)), 0)
            << "n=" << n << " warmup=" << warmup << " i=" << i;
      }
      for (int i = 0; i < 4; ++i) ASSERT_EQ(a.gaussian(), b.gaussian());
    }
  }
}

TEST(RngBlocks, BernoulliThresholdSplitsExactlyLikeUniformCompare) {
  const double probs[] = {0.0, 1e-300, 1e-17, 0.003, 0.15, 0.5,
                          0.78342, 1.0 - 1e-16, 1.0, 1.5, -0.2};
  for (double p : probs) {
    const std::uint64_t t = Rng::bernoulli_threshold(p);
    Rng a(42, 9);
    Rng b(42, 9);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(b.uniform_bits() < t, a.bernoulli(p)) << "p=" << p;
    }
  }
}

TEST(IntervalSampleSpan, MatchesPerSamplePredicate) {
  Rng rng(7, 1);
  const double dt = 1.0 / 16000.0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 400));
    const double window_start = rng.uniform(-1.0, 1.0);
    // Mix of random intervals and intervals snapped near sample boundaries.
    double start = window_start + rng.uniform(-5.0, 400.0) * dt;
    double end = start + rng.uniform(-2.0, 300.0) * dt;
    if (trial % 3 == 0) {
      start = window_start + static_cast<double>(rng.uniform_int(-2, 400)) * dt;
      end = start + static_cast<double>(rng.uniform_int(0, 64)) * dt;
    }
    const acoustics::SampleSpan span =
        acoustics::interval_sample_span(window_start, dt, n, start, end);
    std::size_t expect_lo = n, expect_hi = n;
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = window_start + static_cast<double>(i) * dt;
      const bool inside = t >= start && t < end;
      if (inside && !any) {
        expect_lo = i;
        any = true;
      }
      if (inside) expect_hi = i + 1;
      if (any) {
        // The span must be contiguous: no gap then re-entry.
        ASSERT_TRUE(inside || i >= expect_hi);
      }
    }
    if (!any) {
      EXPECT_EQ(span.lo, span.hi) << "trial=" << trial;
    } else {
      EXPECT_EQ(span.lo, expect_lo) << "trial=" << trial;
      EXPECT_EQ(span.hi, expect_hi) << "trial=" << trial;
    }
  }
}

/// A synthetic received window with overlapping signals, bursts, and edges
/// crossing the window boundaries.
acoustics::ReceivedWindow synthetic_window(Rng& rng, double window_start_s, std::size_t n,
                                           double dt) {
  acoustics::ReceivedWindow w;
  w.start_s = window_start_s;
  w.duration_s = static_cast<double>(n) * dt;
  const int signals = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < signals; ++i) {
    const double s = window_start_s + rng.uniform(-30.0, static_cast<double>(n)) * dt;
    const double e = s + rng.uniform(0.0, 200.0) * dt;
    w.signals.push_back({s, e, rng.uniform(-10.0, 30.0)});
  }
  const int bursts = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < bursts; ++i) {
    const double s = window_start_s + rng.uniform(-10.0, static_cast<double>(n)) * dt;
    w.bursts.push_back({s, s + rng.uniform(0.0, 80.0) * dt});
  }
  return w;
}

TEST(HardwareBlock, ThresholdsPlusBernoulliMatchSampleWindow) {
  const acoustics::EnvironmentProfile env = acoustics::EnvironmentProfile::grass();
  const acoustics::ToneDetectorModel detector(env);
  const double dt = detector.sample_period_s();
  Rng gen(0xFEED, 5);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = static_cast<std::size_t>(gen.uniform_int(1, 700));
    acoustics::MicUnit mic;
    mic.sensitivity_db = gen.uniform(-3.0, 3.0);
    mic.faulty = trial % 5 == 0;
    const double window_start = gen.uniform(-0.05, 0.05);
    const acoustics::ReceivedWindow w = synthetic_window(gen, window_start, n, dt);

    // Reference: the per-sample detector loop.
    Rng ref_rng(1000 + trial, 11);
    acoustics::DetectorScratch ref_scratch;
    std::vector<bool> ref_out;
    detector.sample_window_into(w, n, mic, ref_rng, ref_scratch, ref_out);
    ranging::SignalAccumulator ref_acc(n);
    ref_acc.record_chirp(ref_out);

    // Block: thresholds + fused draw/accumulate.
    Rng blk_rng(1000 + trial, 11);
    acoustics::DetectorScratch blk_scratch;
    std::vector<std::uint64_t> thresholds(n), bits(n);
    detector.fire_thresholds_block(w, n, mic, blk_scratch, thresholds.data());
    ranging::SignalAccumulator blk_acc(n);
    blk_acc.record_chirp_bernoulli(blk_rng, thresholds.data(), bits.data());

    ASSERT_EQ(blk_acc.samples(), ref_acc.samples()) << "trial=" << trial;
    ASSERT_EQ(blk_rng.uniform_bits(), ref_rng.uniform_bits()) << "trial=" << trial;
  }
}

TEST(HardwareBlock, BernoulliDrawsEvenWhenCountersFull) {
  // The scalar path consumes RNG for every chirp past kMaxChirps; the fused
  // block accumulate must too, or streams desynchronize at chirp 16.
  const std::size_t n = 37;
  std::vector<std::uint64_t> thresholds(n, Rng::bernoulli_threshold(0.5));
  std::vector<std::uint64_t> bits(n);
  Rng a(5, 1), b(5, 1);
  ranging::SignalAccumulator acc(n);
  for (int chirp = 0; chirp < ranging::SignalAccumulator::kMaxChirps + 4; ++chirp) {
    acc.record_chirp_bernoulli(a, thresholds.data(), bits.data());
  }
  for (int chirp = 0; chirp < ranging::SignalAccumulator::kMaxChirps + 4; ++chirp) {
    for (std::size_t i = 0; i < n; ++i) b.uniform_bits();
  }
  EXPECT_EQ(acc.chirps_recorded(), ranging::SignalAccumulator::kMaxChirps);
  EXPECT_EQ(a.uniform_bits(), b.uniform_bits());
}

TEST(RecordChirpBlock, MatchesVectorBoolForm) {
  Rng rng(99, 2);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 300));
    ranging::SignalAccumulator a(n), b(n);
    for (int chirp = 0; chirp < 18; ++chirp) {
      std::vector<bool> bools(n);
      std::vector<std::uint8_t> bytes(n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool fired = rng.bernoulli(0.4);
        bools[i] = fired;
        bytes[i] = fired ? 1 : 0;
      }
      a.record_chirp(bools);
      b.record_chirp_block(bytes.data(), n);
    }
    ASSERT_EQ(a.samples(), b.samples());
    ASSERT_EQ(a.chirps_recorded(), b.chirps_recorded());
  }
}

TEST(GoertzelBlock, RunBlockMatchesStepAcrossResync) {
  // n > kResyncPeriod so the in-step exact resync happens mid-block.
  for (std::size_t n : {1u, 36u, 255u, 256u, 257u, 700u}) {
    Rng rng(3 + n, 4);
    std::vector<double> x(n);
    for (double& v : x) v = rng.gaussian(0.0, 1.0) + 0.5 * rng.uniform();
    ranging::GoertzelToneDetector blk(4300.0, 16000.0);
    ranging::GoertzelToneDetector ref(4300.0, 16000.0);
    std::vector<double> metric(n, 0.0);
    blk.run_block(x.data(), n, metric.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double expect = ref.step(x[i]);
      ASSERT_EQ(std::memcmp(&metric[i], &expect, sizeof(double)), 0)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MixKernel, MatchesFusedFormula) {
  Rng rng(17, 6);
  const std::size_t n = 513;
  std::vector<double> amplitude(n), tone(n), noise(n), out(n);
  std::vector<std::uint8_t> burst(n);
  for (std::size_t i = 0; i < n; ++i) {
    amplitude[i] = rng.uniform(0.0, 8.0);
    tone[i] = rng.uniform(-1.0, 1.0);
    noise[i] = rng.gaussian();
    burst[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  acoustics::mix_tone_noise_block(amplitude.data(), tone.data(), noise.data(), burst.data(),
                                  4.0, out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = burst[i] != 0 ? 4.0 : 1.0;
    const double expect = amplitude[i] * tone[i] + sigma * noise[i];
    ASSERT_EQ(std::memcmp(&out[i], &expect, sizeof(double)), 0) << i;
  }
}

TEST(MatchedFilterBlock, ByteMarksMatchBoolMarks) {
  Rng rng(23, 8);
  acoustics::WaveformSynthesizer synth;
  ranging::MatchedFilterNcc filt;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(64, 900));
    const std::size_t chirp = 128;
    const acoustics::ToneTemplateView tpl = synth.tone_template_view(16000.0, 4300.0, n);
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_chirp = i >= n / 3 && i < n / 3 + chirp;
      x[i] = (in_chirp ? 3.0 * tpl.sin_t[i] : 0.0) + rng.gaussian();
    }
    std::vector<bool> bool_marks;
    filt.detect_into(x.data(), n, chirp, tpl, bool_marks);
    std::vector<std::uint8_t> byte_marks(n, 0xCC);
    filt.detect_into(x.data(), n, chirp, tpl, byte_marks.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(byte_marks[i] != 0, static_cast<bool>(bool_marks[i]))
          << "trial=" << trial << " i=" << i;
    }
  }
}

TEST(SignalScanner, YieldsSameCandidatesAsRestartScan) {
  Rng rng(31, 12);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 300));
    std::vector<std::uint8_t> samples(n);
    for (auto& s : samples) s = static_cast<std::uint8_t>(rng.uniform_int(0, 4));
    ranging::DetectionParams params;
    params.threshold = static_cast<int>(rng.uniform_int(1, 3));
    params.window = static_cast<int>(rng.uniform_int(1, 40));
    params.min_detections = static_cast<int>(rng.uniform_int(1, params.window));
    ranging::SignalScanner scanner(samples, params);
    int expect = ranging::detect_signal(samples, params, 0);
    int guard = 0;
    for (;;) {
      const int got = scanner.next();
      ASSERT_EQ(got, expect) << "trial=" << trial;
      if (got < 0) break;
      expect = ranging::detect_signal(samples, params, got + 1);
      ASSERT_LT(++guard, 1000);
    }
    // Exhausted scanners stay exhausted.
    EXPECT_EQ(scanner.next(), -1);
  }
}

TEST(ChannelCache, ReturnsBitwiseIdenticalResponses) {
  const acoustics::EnvironmentProfile env = acoustics::EnvironmentProfile::grass();
  resloc::sim::ChannelResponseCache cache(env, 64);
  Rng rng(41, 3);
  std::vector<double> distances;
  for (int i = 0; i < 500; ++i) {
    // Revisit earlier distances to exercise hits; include sub-reference and
    // same-cell-different-value collisions.
    double d;
    if (!distances.empty() && rng.bernoulli(0.5)) {
      d = distances[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(distances.size()) - 1))];
    } else {
      d = rng.uniform(0.0, 40.0);
      if (rng.bernoulli(0.1)) d = rng.uniform(0.0, 0.2);
      distances.push_back(d);
    }
    const acoustics::LinkResponse got = cache.lookup(d);
    const acoustics::LinkResponse expect = acoustics::link_response(d, env);
    ASSERT_EQ(std::memcmp(&got, &expect, sizeof(acoustics::LinkResponse)), 0) << "d=" << d;
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(LinkResponse, RecomposesSnrBitExactly) {
  const acoustics::EnvironmentProfile env = acoustics::EnvironmentProfile::grass();
  Rng rng(53, 9);
  for (int i = 0; i < 2000; ++i) {
    const double d = i % 7 == 0 ? rng.uniform(0.0, 0.15) : rng.uniform(0.0, 60.0);
    const double source_db = rng.uniform(80.0, 110.0);
    const double sens_db = rng.uniform(-3.0, 3.0);
    const acoustics::LinkResponse link = acoustics::link_response(d, env);
    const double recomposed =
        (((source_db - link.spreading_db) - link.excess_db) + sens_db) - env.noise_floor_db;
    const double expect = acoustics::snr_db(source_db, d, sens_db, env);
    ASSERT_EQ(std::memcmp(&recomposed, &expect, sizeof(double)), 0) << "d=" << d;
  }
}

/// End-to-end: RangingService with block_dsp on vs off must agree on every
/// diagnostic field and leave the generator in the identical state, for all
/// three detector front ends.
void expect_service_equivalence(ranging::DetectorMode mode) {
  ranging::RangingConfig cfg;
  cfg.detector_mode = mode;
  cfg.max_window_range_m = 22.0;
  cfg.block_dsp = false;
  const ranging::RangingService reference(cfg);
  cfg.block_dsp = true;
  const ranging::RangingService block(cfg);

  Rng unit_rng(61, 2);
  const acoustics::UnitVariationModel units;
  for (int trial = 0; trial < 12; ++trial) {
    acoustics::SpeakerUnit speaker = units.sample_speaker(acoustics::kLoudspeakerDb, unit_rng);
    acoustics::MicUnit mic = units.sample_mic(unit_rng);
    if (trial == 5) mic.faulty = true;   // exercise the faulty-mic branches
    if (trial == 7) speaker.faulty = true;
    const double d = 0.5 + 1.7 * trial;

    Rng ref_rng(900 + trial, 21);
    Rng blk_rng(900 + trial, 21);
    const ranging::RangingAttempt a =
        reference.measure_with_diagnostics(d, speaker, mic, ref_rng);
    const ranging::RangingAttempt b = block.measure_with_diagnostics(d, speaker, mic, blk_rng);

    ASSERT_EQ(a.distance_m.has_value(), b.distance_m.has_value()) << "trial=" << trial;
    if (a.distance_m) {
      ASSERT_EQ(std::memcmp(&*a.distance_m, &*b.distance_m, sizeof(double)), 0)
          << "trial=" << trial;
    }
    ASSERT_EQ(a.detection_index, b.detection_index) << "trial=" << trial;
    ASSERT_EQ(a.rejected_detections, b.rejected_detections) << "trial=" << trial;
    ASSERT_EQ(a.accumulated, b.accumulated) << "trial=" << trial;
    ASSERT_EQ(ref_rng.uniform_bits(), blk_rng.uniform_bits()) << "trial=" << trial;
    ASSERT_EQ(ref_rng.gaussian(), blk_rng.gaussian()) << "trial=" << trial;
  }
}

TEST(RangingServiceBlockEquivalence, Hardware) {
  expect_service_equivalence(ranging::DetectorMode::kHardware);
}

TEST(RangingServiceBlockEquivalence, Goertzel) {
  expect_service_equivalence(ranging::DetectorMode::kGoertzel);
}

TEST(RangingServiceBlockEquivalence, MatchedFilter) {
  expect_service_equivalence(ranging::DetectorMode::kMatchedFilter);
}

TEST(RangingServiceBlockEquivalence, PrecomputedLinkMatchesInline) {
  ranging::RangingConfig cfg;
  cfg.max_window_range_m = 22.0;
  const ranging::RangingService service(cfg);
  const acoustics::SpeakerUnit speaker;
  const acoustics::MicUnit mic;
  for (int trial = 0; trial < 8; ++trial) {
    const double d = 0.3 + 2.3 * trial;
    Rng r1(70 + trial, 1), r2(70 + trial, 1);
    ranging::RangingScratch s1, s2;
    const auto inline_est = service.measure(d, speaker, mic, r1, s1);
    const acoustics::LinkResponse link = acoustics::link_response(d, cfg.environment);
    const auto cached_est = service.measure(d, speaker, mic, r2, s2, link);
    ASSERT_EQ(inline_est.has_value(), cached_est.has_value());
    if (inline_est) {
      ASSERT_EQ(std::memcmp(&*inline_est, &*cached_est, sizeof(double)), 0);
    }
    ASSERT_EQ(r1.uniform_bits(), r2.uniform_bits());
  }
}

}  // namespace
