#include <gtest/gtest.h>

#include <cmath>

#include "core/classical_mds.hpp"
#include "math/transform2d.hpp"
#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

namespace {

using namespace resloc::core;
using resloc::math::Rng;
using resloc::math::Vec2;

/// Small square with full noise-free measurements.
MeasurementSet unit_square_measurements() {
  MeasurementSet set(4);
  const std::vector<Vec2> pos{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) {
      set.add(i, j, resloc::math::distance(pos[i], pos[j]));
    }
  }
  return set;
}

TEST(LssStress, ZeroAtExactConfiguration) {
  const auto meas = unit_square_measurements();
  const std::vector<Vec2> exact{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  LssOptions opt;
  opt.min_spacing_m = 5.0;
  EXPECT_NEAR(lss_stress(meas, exact, opt), 0.0, 1e-12);
}

TEST(LssStress, RigidMotionInvariant) {
  const auto meas = unit_square_measurements();
  const std::vector<Vec2> exact{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  std::vector<Vec2> moved;
  const resloc::math::Transform2D motion(0.7, true, {33.0, -12.0});
  for (const Vec2& p : exact) moved.push_back(motion.apply(p));
  LssOptions opt;
  opt.min_spacing_m = 5.0;
  EXPECT_NEAR(lss_stress(meas, moved, opt), 0.0, 1e-9);
}

TEST(LssStress, PenalizesWrongDistances) {
  const auto meas = unit_square_measurements();
  const std::vector<Vec2> squashed{{0.0, 0.0}, {5.0, 0.0}, {5.0, 5.0}, {0.0, 5.0}};
  LssOptions opt;
  opt.min_spacing_m.reset();
  EXPECT_GT(lss_stress(meas, squashed, opt), 50.0);
}

TEST(LssStress, SoftConstraintOnlyHitsUnmeasuredClosePairs) {
  MeasurementSet meas(3);
  meas.add(0, 1, 2.0);  // measured pair closer than dmin: exempt
  LssOptions opt;
  opt.min_spacing_m = 9.0;
  opt.constraint_weight = 10.0;
  // Node 2 has no measurements; placing it close to node 0 violates dmin.
  const std::vector<Vec2> pos{{0.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const double with = lss_stress(meas, pos, opt);
  // Expected: pair (0,2) at 3.0 -> (3-9)^2*10 = 360; pair (1,2) at 1.0 ->
  // (1-9)^2*10 = 640; pair (0,1) measured, exempt. Total 1000.
  EXPECT_NEAR(with, 1000.0, 1e-9);
  opt.min_spacing_m.reset();
  EXPECT_NEAR(lss_stress(meas, pos, opt), 0.0, 1e-12);
}

TEST(LocalizeLss, RecoversSquareUpToRigidMotion) {
  const auto meas = unit_square_measurements();
  LssOptions opt;
  opt.min_spacing_m = 5.0;
  opt.init_box_m = 20.0;
  Rng rng(1);
  const auto result = localize_lss(meas, opt, rng);
  EXPECT_LT(result.stress, 1e-6);
  const std::vector<Vec2> actual{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  const auto report = resloc::eval::evaluate_localization(result.positions, actual, true);
  EXPECT_LT(report.average_error_m, 1e-3);
}

TEST(LocalizeLss, ToleratesMissingEdges) {
  // 3x3 grid with only nearest-neighbor measurements (no diagonals): LSS
  // works on a subset of D_full, unlike classical MDS.
  std::vector<Vec2> pos;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) pos.push_back(Vec2{x * 10.0, y * 10.0});
  }
  MeasurementSet meas(9);
  for (NodeId i = 0; i < 9; ++i) {
    for (NodeId j = i + 1; j < 9; ++j) {
      const double d = resloc::math::distance(pos[i], pos[j]);
      if (d < 15.0) meas.add(i, j, d);  // 4-neighborhood + center diagonals
    }
  }
  LssOptions opt;
  opt.min_spacing_m = 9.0;
  opt.init_box_m = 30.0;
  opt.target_stress_per_edge = 1e-6;
  Rng rng(2);
  const auto result = localize_lss(meas, opt, rng);
  const auto report = resloc::eval::evaluate_localization(result.positions, pos, true);
  EXPECT_LT(report.average_error_m, 0.5);
}

TEST(LocalizeLss, WeightsSuppressBadEdge) {
  // Square with one corrupted edge; downweighting it protects the fit.
  MeasurementSet corrupt = unit_square_measurements();
  corrupt.add(0, 2, 30.0, 1.0);  // true diagonal is 14.14
  MeasurementSet weighted = unit_square_measurements();
  weighted.add(0, 2, 30.0, 0.01);
  const std::vector<Vec2> actual{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  LssOptions opt;
  opt.min_spacing_m.reset();
  opt.init_box_m = 20.0;
  Rng rng1(3);
  Rng rng2(3);
  const auto bad = localize_lss(corrupt, opt, rng1);
  const auto good = localize_lss(weighted, opt, rng2);
  const auto bad_rep = resloc::eval::evaluate_localization(bad.positions, actual, true);
  const auto good_rep = resloc::eval::evaluate_localization(good.positions, actual, true);
  EXPECT_LT(good_rep.average_error_m, bad_rep.average_error_m);
  EXPECT_LT(good_rep.average_error_m, 0.2);
}

TEST(LocalizeLss, TraceRecordsDecreasingStress) {
  const auto meas = unit_square_measurements();
  LssOptions opt;
  opt.min_spacing_m = 5.0;
  opt.gd.record_trace = true;
  opt.independent_inits = 1;
  Rng rng(4);
  const auto result = localize_lss(meas, opt, rng);
  ASSERT_GE(result.error_trace.size(), 2u);
  EXPECT_GE(result.error_trace.front(), result.error_trace.back());
}

TEST(LocalizeLssAnchored, PinsAnchorsExactly) {
  const auto meas = unit_square_measurements();
  const std::vector<std::pair<NodeId, Vec2>> anchors{
      {0, {0.0, 0.0}}, {1, {10.0, 0.0}}, {3, {0.0, 10.0}}};
  LssOptions opt;
  opt.min_spacing_m = 5.0;
  opt.init_box_m = 20.0;
  Rng rng(5);
  const auto result = localize_lss_anchored(meas, anchors, opt, rng);
  for (const auto& [id, pos] : anchors) {
    EXPECT_NEAR(result.positions[id].x, pos.x, 1e-12);
    EXPECT_NEAR(result.positions[id].y, pos.y, 1e-12);
  }
  // The free node lands at the true corner, in the absolute frame.
  EXPECT_NEAR(result.positions[2].x, 10.0, 0.05);
  EXPECT_NEAR(result.positions[2].y, 10.0, 0.05);
}

TEST(LocalizeLss, ConstraintRescuesSparseFoldedGraph) {
  // The headline behaviour (Figures 18/19, 21/22): on a sparse measurement
  // graph the unconstrained stress surface has folded minima; the
  // min-spacing soft constraint penalizes them away.
  auto town = resloc::sim::town_blocks_59();
  Rng noise(7);
  const auto meas = resloc::sim::gaussian_measurements(town, {}, noise);
  LssOptions con;
  con.min_spacing_m = 9.0;
  con.gd.max_iterations = 5000;
  con.target_stress_per_edge = 0.5;
  LssOptions uncon = con;
  uncon.min_spacing_m.reset();
  int constrained_fail = 0;
  int unconstrained_fail = 0;
  for (int seed = 1; seed <= 3; ++seed) {
    Rng r1(static_cast<std::uint64_t>(seed));
    Rng r2(static_cast<std::uint64_t>(seed));
    const auto rc = localize_lss(meas, con, r1);
    const auto ru = localize_lss(meas, uncon, r2);
    const auto repc =
        resloc::eval::evaluate_localization(rc.positions, town.positions, true);
    const auto repu =
        resloc::eval::evaluate_localization(ru.positions, town.positions, true);
    if (repc.average_error_m > 1.0) ++constrained_fail;
    if (repu.average_error_m > 1.0) ++unconstrained_fail;
  }
  EXPECT_EQ(constrained_fail, 0);
  EXPECT_GE(unconstrained_fail, 1);
}

// --- Classical MDS baseline ---

TEST(ClassicalMds, ExactOnCompleteMatrix) {
  const std::vector<Vec2> pos{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}, {5.0, 5.0}};
  resloc::math::Matrix d(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      d(i, j) = resloc::math::distance(pos[i], pos[j]);
    }
  }
  const auto result = classical_mds(d);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->planarity, 0.999);  // genuinely planar data
  const auto report = resloc::eval::evaluate_localization(result->positions, pos, true);
  EXPECT_LT(report.average_error_m, 1e-6);
}

TEST(ClassicalMds, RejectsBadInput) {
  EXPECT_FALSE(classical_mds(resloc::math::Matrix{}).has_value());
  EXPECT_FALSE(classical_mds(resloc::math::Matrix(2, 3)).has_value());
}

TEST(ShortestPathCompletion, FillsMissingDistances) {
  MeasurementSet meas(3);
  meas.add(0, 1, 5.0);
  meas.add(1, 2, 7.0);
  const auto d = shortest_path_completion(meas);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 12.0);  // via node 1
  EXPECT_DOUBLE_EQ(d(2, 0), 12.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
}

TEST(ShortestPathCompletion, UnreachableMarked) {
  MeasurementSet meas(4);
  meas.add(0, 1, 5.0);
  meas.add(2, 3, 2.0);
  const auto d = shortest_path_completion(meas, 999.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 999.0);
}

TEST(MdsMap, SparseInputDistortsButLocalizesDenseInput) {
  // Dense graph: MDS-MAP is accurate. Sparse graph: shortest-path inflation
  // distorts geometry -- the motivation for LSS.
  std::vector<Vec2> pos;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) pos.push_back(Vec2{x * 10.0, y * 10.0});
  }
  MeasurementSet dense(16);
  MeasurementSet sparse(16);
  for (NodeId i = 0; i < 16; ++i) {
    for (NodeId j = i + 1; j < 16; ++j) {
      const double d = resloc::math::distance(pos[i], pos[j]);
      if (d < 45.0) dense.add(i, j, d);
      if (d < 11.0) sparse.add(i, j, d);
    }
  }
  const auto dense_result = mds_map(dense);
  const auto sparse_result = mds_map(sparse);
  ASSERT_TRUE(dense_result && sparse_result);
  const auto dense_rep =
      resloc::eval::evaluate_localization(dense_result->positions, pos, true);
  const auto sparse_rep =
      resloc::eval::evaluate_localization(sparse_result->positions, pos, true);
  EXPECT_LT(dense_rep.average_error_m, 0.5);
  EXPECT_GT(sparse_rep.average_error_m, dense_rep.average_error_m);
}

}  // namespace
