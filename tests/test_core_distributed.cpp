#include <gtest/gtest.h>

#include <cmath>

#include "core/alignment_protocol.hpp"
#include "core/distributed_lss.hpp"
#include "core/local_map.hpp"
#include "core/transform_estimation.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

namespace {

using namespace resloc::core;
using resloc::math::Rng;
using resloc::math::Transform2D;
using resloc::math::Vec2;

std::vector<Vec2> rigid_copy(const std::vector<Vec2>& src, const Transform2D& t) {
  std::vector<Vec2> out;
  out.reserve(src.size());
  for (const Vec2& p : src) out.push_back(t.apply(p));
  return out;
}

TEST(TransformEstimation, ClosedFormRecoversMotion) {
  const std::vector<Vec2> src{{0.0, 0.0}, {5.0, 1.0}, {2.0, 7.0}, {-3.0, 4.0}};
  const Transform2D motion(1.1, false, {12.0, -4.0});
  const auto estimate = estimate_transform_closed_form(src, rigid_copy(src, motion));
  ASSERT_TRUE(estimate.valid);
  EXPECT_NEAR(estimate.sum_squared_error, 0.0, 1e-12);
  EXPECT_LT(estimate.transform.max_param_diff(motion), 1e-9);
}

TEST(TransformEstimation, ExactRecoversMotion) {
  const std::vector<Vec2> src{{0.0, 0.0}, {5.0, 1.0}, {2.0, 7.0}, {-3.0, 4.0}};
  const Transform2D motion(-0.8, true, {3.0, 9.0});
  Rng rng(1);
  const auto estimate = estimate_transform_exact(src, rigid_copy(src, motion), rng);
  ASSERT_TRUE(estimate.valid);
  EXPECT_NEAR(estimate.sum_squared_error, 0.0, 1e-6);
  for (const Vec2& p : src) {
    EXPECT_LT(resloc::math::distance(estimate.transform.apply(p), motion.apply(p)), 1e-3);
  }
}

TEST(TransformEstimation, MethodsAgreeOnNoisyData) {
  Rng noise(2);
  const std::vector<Vec2> src{{0.0, 0.0}, {8.0, 1.0}, {3.0, 9.0}, {-4.0, 5.0}, {2.0, -6.0}};
  const Transform2D motion(2.2, false, {-7.0, 3.0});
  auto dst = rigid_copy(src, motion);
  for (Vec2& p : dst) p += Vec2{noise.gaussian(0.0, 0.05), noise.gaussian(0.0, 0.05)};
  Rng rng(3);
  const auto exact = estimate_transform_exact(src, dst, rng);
  const auto closed = estimate_transform_closed_form(src, dst);
  ASSERT_TRUE(exact.valid && closed.valid);
  // Closed form is optimal for this objective; exact GD should come close.
  EXPECT_NEAR(exact.sum_squared_error, closed.sum_squared_error,
              0.1 * closed.sum_squared_error + 1e-6);
  EXPECT_LT(exact.transform.max_param_diff(closed.transform), 0.05);
}

TEST(TransformEstimation, InvalidInputs) {
  Rng rng(4);
  EXPECT_FALSE(estimate_transform_closed_form({}, {}).valid);
  EXPECT_FALSE(estimate_transform_exact({}, {}, rng).valid);
  EXPECT_FALSE(estimate_transform({{1.0, 1.0}}, {{1.0, 1.0}, {2.0, 2.0}},
                                  TransformMethod::kClosedForm, rng)
                   .valid);
}

TEST(LocalMap, MembershipAndLookup) {
  MeasurementSet meas(4);
  meas.add(0, 1, 10.0);
  meas.add(0, 2, 10.0);
  meas.add(1, 2, 14.14);
  meas.add(1, 3, 50.0);  // node 3 is not a neighbor of 0
  LssOptions opt;
  opt.min_spacing_m = 5.0;
  Rng rng(5);
  const LocalMap map = build_local_map(0, meas, opt, rng);
  EXPECT_EQ(map.owner, 0u);
  EXPECT_EQ(map.members.size(), 3u);
  EXPECT_TRUE(map.coord_of(0).has_value());
  EXPECT_TRUE(map.coord_of(1).has_value());
  EXPECT_TRUE(map.coord_of(2).has_value());
  EXPECT_FALSE(map.coord_of(3).has_value());
  // Local geometry is correct up to rigid motion: check distances.
  EXPECT_NEAR(resloc::math::distance(*map.coord_of(0), *map.coord_of(1)), 10.0, 0.1);
  EXPECT_NEAR(resloc::math::distance(*map.coord_of(1), *map.coord_of(2)), 14.14, 0.2);
}

TEST(LocalMap, SharedMembers) {
  LocalMap a;
  a.owner = 0;
  a.members = {0, 1, 2, 3};
  a.coords = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  LocalMap b;
  b.owner = 5;
  b.members = {5, 2, 3, 9};
  b.coords = {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_EQ(a.shared_members(b), (std::vector<NodeId>{2, 3}));
}

/// Builds a dense noise-free measurement set over a grid deployment.
MeasurementSet grid_measurements(const Deployment& d, double range) {
  MeasurementSet meas(d.size());
  for (NodeId i = 0; i < d.size(); ++i) {
    for (NodeId j = i + 1; j < d.size(); ++j) {
      const double dist = resloc::math::distance(d.positions[i], d.positions[j]);
      if (dist < range) meas.add(i, j, dist);
    }
  }
  return meas;
}

DistributedLssOptions good_options() {
  DistributedLssOptions opt;
  opt.local_lss.min_spacing_m = 9.0;
  opt.local_lss.independent_inits = 8;
  opt.local_lss.gd.max_iterations = 2500;
  opt.local_lss.target_stress_per_edge = 1e-4;
  return opt;
}

TEST(DistributedLss, DenseGraphFullyLocalized) {
  const auto d = resloc::sim::offset_grid(4, 4);
  const auto meas = grid_measurements(d, 22.0);
  Rng rng(6);
  const auto result = localize_distributed(meas, 0, good_options(), rng);
  EXPECT_EQ(result.result.localized_count(), d.size());
  const auto report =
      resloc::eval::evaluate_localization(result.result.positions, d.positions, true);
  EXPECT_LT(report.average_error_m, 0.5);
  EXPECT_EQ(result.alignment_order.front(), 0u);
  EXPECT_EQ(result.alignment_order.size(), d.size());
}

TEST(DistributedLss, RootFrameIsItsLocalFrame) {
  const auto d = resloc::sim::offset_grid(3, 3);
  const auto meas = grid_measurements(d, 22.0);
  Rng rng(7);
  const auto result = localize_distributed(meas, 4, good_options(), rng);
  ASSERT_TRUE(result.to_root[4].has_value());
  EXPECT_LT(result.to_root[4]->max_param_diff(Transform2D{}), 1e-12);
  ASSERT_TRUE(result.result.positions[4].has_value());
  EXPECT_NEAR(resloc::math::distance(*result.result.positions[4],
                                     *result.maps[4].coord_of(4)),
              0.0, 1e-9);
}

TEST(DistributedLss, DisconnectedComponentUnlocalized) {
  // Two separated cliques; root in the first.
  Deployment d;
  d.positions = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0},
                 {500.0, 500.0}, {510.0, 500.0}, {500.0, 510.0}};
  const auto meas = grid_measurements(d, 30.0);
  Rng rng(8);
  const auto result = localize_distributed(meas, 0, good_options(), rng);
  EXPECT_TRUE(result.result.positions[0].has_value());
  EXPECT_FALSE(result.result.positions[4].has_value());
  EXPECT_FALSE(result.result.positions[5].has_value());
}

TEST(DistributedLss, TooFewSharedMembersBlocksAlignment) {
  // A 2-node chain: each local map has 2 members -> below min_shared_members.
  MeasurementSet meas(2);
  meas.add(0, 1, 10.0);
  Rng rng(9);
  const auto result = localize_distributed(meas, 0, good_options(), rng);
  EXPECT_TRUE(result.result.positions[0].has_value());
  EXPECT_FALSE(result.result.positions[1].has_value());
}

TEST(DistributedLss, InvalidRootYieldsNothing) {
  MeasurementSet meas(2);
  meas.add(0, 1, 10.0);
  Rng rng(10);
  const auto result = localize_distributed(meas, 99, good_options(), rng);
  EXPECT_EQ(result.result.localized_count(), 0u);
}

TEST(DistributedLss, TransformGuardRejectsCorruptMaps) {
  const auto d = resloc::sim::offset_grid(4, 4);
  const auto meas = grid_measurements(d, 22.0);
  Rng rng(11);
  auto opt = good_options();
  auto run = localize_distributed(meas, 0, opt, rng);
  // Corrupt one non-root map: scramble its coordinates.
  auto maps = run.maps;
  Rng scramble(12);
  for (auto& c : maps[5].coords) {
    c = Vec2{scramble.uniform(-100.0, 100.0), scramble.uniform(-100.0, 100.0)};
  }
  auto guarded = opt;
  guarded.max_transform_rmse_m = 1.0;
  Rng rng2(13);
  const auto result = align_local_maps(maps, 0, guarded, rng2);
  // Node 5's own frame is garbage; with the guard its transform is refused,
  // so it stays unlocalized rather than poisoning the alignment.
  EXPECT_FALSE(result.result.positions[5].has_value());
  // The rest of the network still aligns fine.
  const auto report = resloc::eval::evaluate_localization(
      result.result.positions, d.positions, true, {5});
  EXPECT_LT(report.average_error_m, 0.6);
  EXPECT_GE(report.localized, d.size() - 2);
}

TEST(AlignmentProtocol, MatchesGraphDrivenResult) {
  const auto d = resloc::sim::offset_grid(4, 4);
  const auto meas = grid_measurements(d, 22.0);
  Rng rng(14);
  const auto opt = good_options();
  const auto graph_result = localize_distributed(meas, 0, opt, rng);

  resloc::net::RadioParams radio;
  radio.range_m = 60.0;
  const auto proto_result =
      run_alignment_protocol(graph_result.maps, 0, d.positions, opt, radio, 99);
  EXPECT_EQ(proto_result.map_broadcasts, d.size());
  EXPECT_GE(proto_result.align_broadcasts, d.size() - 1);

  // Both express positions in the root's local frame; they may take
  // different flood paths, but on noise-free data the frames coincide.
  std::size_t compared = 0;
  for (NodeId i = 0; i < d.size(); ++i) {
    if (!graph_result.result.positions[i] || !proto_result.result.positions[i]) continue;
    ++compared;
    EXPECT_LT(resloc::math::distance(*graph_result.result.positions[i],
                                     *proto_result.result.positions[i]),
              0.3)
        << "node " << i;
  }
  EXPECT_GE(compared, d.size() - 2);
}

TEST(AlignmentProtocol, AccurateAgainstGroundTruth) {
  const auto d = resloc::sim::offset_grid(4, 4);
  const auto meas = grid_measurements(d, 22.0);
  Rng rng(15);
  const auto opt = good_options();
  const auto graph_result = localize_distributed(meas, 0, opt, rng);
  resloc::net::RadioParams radio;
  const auto proto_result =
      run_alignment_protocol(graph_result.maps, 0, d.positions, opt, radio, 7);
  const auto report = resloc::eval::evaluate_localization(proto_result.result.positions,
                                                          d.positions, true);
  EXPECT_GE(report.localized, d.size() - 1);
  EXPECT_LT(report.average_error_m, 0.5);
}

}  // namespace
