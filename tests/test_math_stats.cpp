#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/histogram.hpp"
#include "math/stats.hpp"

namespace {

using namespace resloc::math;

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
}

TEST(Stats, StddevIsSampleStddev) {
  // Bessel's correction: divide by N - 1, not N. {2, 4}: mean 3, squared
  // deviations sum 2 -> sample stddev sqrt(2) (population would be 1).
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), std::sqrt(2.0));
  // {1, -1, 1, -1}: sum of squared deviations 4, N - 1 = 3.
  EXPECT_NEAR(stddev({1.0, -1.0, 1.0, -1.0}), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(*median({3.0, 1.0, 2.0}), 2.0); }

TEST(Stats, MedianEven) { EXPECT_DOUBLE_EQ(*median({4.0, 1.0, 3.0, 2.0}), 2.5); }

TEST(Stats, MedianEmpty) { EXPECT_FALSE(median({}).has_value()); }

TEST(Stats, MedianRobustToOutlier) {
  EXPECT_DOUBLE_EQ(*median({10.0, 10.1, 9.9, 10.05, 55.0}), 10.05);
}

TEST(Stats, BinnedModePicksDominantCluster) {
  // Cluster around 10.0 (4 values), outliers elsewhere.
  const std::vector<double> v{10.0, 10.1, 9.95, 10.05, 3.0, 55.0, 54.9};
  const auto mode = binned_mode(v, 0.5);
  ASSERT_TRUE(mode.has_value());
  EXPECT_NEAR(*mode, 10.0, 0.5);
}

TEST(Stats, BinnedModeEdgeCases) {
  EXPECT_FALSE(binned_mode({}, 0.5).has_value());
  EXPECT_FALSE(binned_mode({1.0}, 0.0).has_value());
  EXPECT_FALSE(binned_mode({1.0}, -1.0).has_value());
  EXPECT_NEAR(*binned_mode({1.0}, 0.5), 1.25, 1e-12);  // center of bin [1.0, 1.5)
}

TEST(Stats, BinnedModeNegativeValues) {
  const auto mode = binned_mode({-2.1, -2.2, -2.05, 5.0}, 0.5);
  ASSERT_TRUE(mode.has_value());
  EXPECT_LT(*mode, -1.75);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(*percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(*percentile(v, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(*percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileEmpty) { EXPECT_FALSE(percentile({}, 50.0).has_value()); }

// --- 0/1/2-element pins. The statistical filter and the robust pre-filters
// --- call these on arbitrarily small per-pair measurement lists, so the
// --- degenerate conventions are load-bearing, not incidental.

TEST(Stats, MedianDegenerateConventions) {
  EXPECT_FALSE(median({}).has_value());            // {}     -> nullopt
  EXPECT_DOUBLE_EQ(*median({7.5}), 7.5);           // {a}    -> a
  EXPECT_DOUBLE_EQ(*median({4.0, 6.0}), 5.0);      // {a, b} -> (a + b) / 2
}

TEST(Stats, PercentileDegenerateConventions) {
  // {a} -> a for EVERY p: a single sample is every percentile.
  for (const double p : {0.0, 25.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(*percentile({3.25}, p), 3.25) << "p=" << p;
  }
  // {a, b} -> linear interpolation between the two order statistics; p=50
  // gives their average, matching median({a, b}).
  EXPECT_DOUBLE_EQ(*percentile({4.0, 6.0}, 50.0), *median({4.0, 6.0}));
  EXPECT_DOUBLE_EQ(*percentile({4.0, 6.0}, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(*percentile({4.0, 6.0}, 100.0), 6.0);
}

TEST(Stats, MadDegenerateConventions) {
  EXPECT_FALSE(mad({}).has_value());                    // {}     -> nullopt
  EXPECT_DOUBLE_EQ(*mad({9.0}), 0.0);                   // {a}    -> 0 (no spread)
  EXPECT_DOUBLE_EQ(*mad({4.0, 6.0}), 1.0);              // {a, b} -> |a - b| / 2
}

TEST(Stats, MadIsUnscaledAndRobust) {
  // Unscaled convention: mad({1, 2, 3}) = median({1, 0, 1}) = 1, not
  // 1.4826 -- callers apply the Gaussian consistency factor themselves.
  EXPECT_DOUBLE_EQ(*mad({1.0, 2.0, 3.0}), 1.0);
  // One wild outlier moves the MAD far less than it moves the stddev.
  EXPECT_NEAR(*mad({10.0, 10.1, 9.9, 10.05, 9.95, 500.0}), 0.075, 1e-12);
}

TEST(Stats, Rms) {
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({3.0, -4.0}), std::sqrt(12.5));
}

TEST(Stats, MinMax) {
  EXPECT_FALSE(min_value({}).has_value());
  EXPECT_FALSE(max_value({}).has_value());
  EXPECT_DOUBLE_EQ(*min_value({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(*max_value({3.0, -1.0, 2.0}), 3.0);
}

TEST(Stats, FractionWithin) {
  const std::vector<double> v{-0.2, 0.1, 0.5, -1.5, 2.0};
  EXPECT_DOUBLE_EQ(fraction_within(v, 0.3), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(fraction_within(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_within({}, 1.0), 0.0);
}

TEST(Histogram, RejectsMalformedRanges) {
  // Enforced in Release too (throw, not assert): hi <= lo or zero bins would
  // produce a zero-or-negative bin width and garbage binning.
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Histogram(nan, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, nan, 4), std::invalid_argument);
  EXPECT_NO_THROW(Histogram(-5.0, 5.0, 1));
}

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.7);
  h.add(5.5);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.peak_bin(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge counts as overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(-2.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), -2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 1.5);
}

TEST(Histogram, AsciiRenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add_all({0.5, 0.6, 1.5});
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

}  // namespace
