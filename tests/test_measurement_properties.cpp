// Edge-case and property coverage for the Section 3.5 measurement plumbing:
// MeasurementTable symmetrization and the statistical filter. These lock the
// behaviours the acoustic sweep axis leans on -- empty campaigns, lone
// estimates, outlier-dominated pairs, and asymmetric per-direction counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "math/rng.hpp"
#include "ranging/measurement_table.hpp"
#include "ranging/statistical_filter.hpp"

namespace {

using resloc::ranging::FilterKind;
using resloc::ranging::FilterPolicy;
using resloc::ranging::MeasurementTable;
using resloc::ranging::PairEstimate;

// --- statistical_filter edge cases ---

TEST(StatisticalFilter, EmptyInputYieldsNoEstimate) {
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kMode, FilterKind::kAuto}) {
    FilterPolicy policy;
    policy.kind = kind;
    EXPECT_FALSE(resloc::ranging::filter_measurements({}, policy).has_value());
  }
}

TEST(StatisticalFilter, SingleMeasurementPassesThroughUnchanged) {
  // Median (and kAuto below its mode threshold) return the lone value
  // exactly; the mode estimate quantizes to its bin center by construction,
  // so it may move the value by at most half a bin.
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kAuto}) {
    FilterPolicy policy;
    policy.kind = kind;
    const auto out = resloc::ranging::filter_measurements({7.25}, policy);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out, 7.25);
  }
  FilterPolicy mode;
  mode.kind = FilterKind::kMode;
  const auto out = resloc::ranging::filter_measurements({7.25}, mode);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 7.25, mode.mode_bin_width_m / 2.0 + 1e-12);
}

TEST(StatisticalFilter, MedianResistsMinorityOutliers) {
  // Five honest ~10 m readings and two wild echoes: the median must stay with
  // the majority (the Figure 4 mechanism).
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  const auto out =
      resloc::ranging::filter_measurements({10.1, 9.9, 10.0, 10.2, 9.8, 3.0, 31.0}, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 10.0, 0.25);
}

TEST(StatisticalFilter, AllOutlierInputStillReturnsAValueInRange) {
  // When every measurement is garbage there is no right answer, but the
  // filter must stay within the observed range rather than extrapolate.
  FilterPolicy policy;
  policy.kind = FilterKind::kAuto;
  std::vector<double> garbage = {2.0, 40.0, 11.0, 29.0, 5.5, 33.0, 18.0, 3.5};
  const auto out = resloc::ranging::filter_measurements(garbage, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_GE(*out, *std::min_element(garbage.begin(), garbage.end()));
  EXPECT_LE(*out, *std::max_element(garbage.begin(), garbage.end()));
}

TEST(StatisticalFilter, AutoSwitchesToModeOnceEnoughSamples) {
  // Below mode_min_samples kAuto behaves as median; at or above it, as mode.
  FilterPolicy policy;
  policy.kind = FilterKind::kAuto;
  policy.mode_min_samples = 5;
  // Four samples: median of {9, 10, 10, 30} = 10; mode would also be 10 --
  // use an input where the two disagree: {1, 10, 10.2, 30}: median 10.1.
  const auto few = resloc::ranging::filter_measurements({1.0, 10.0, 10.2, 30.0}, policy);
  ASSERT_TRUE(few.has_value());
  EXPECT_NEAR(*few, 10.1, 1e-9);
  // Seven samples, bimodal with the true-distance bin denser: the mode picks
  // the dense decimeter bin even though outliers drag the median upward.
  const auto many = resloc::ranging::filter_measurements(
      {10.0, 10.05, 10.1, 24.0, 24.1, 39.0, 10.02}, policy);
  ASSERT_TRUE(many.has_value());
  EXPECT_NEAR(*many, 10.0, 0.3);
}

TEST(StatisticalFilter, MaxSamplesUsesEarliestMeasurements) {
  // "median filtering of up to five measurements": later readings are cut.
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  policy.max_samples = 5;
  const auto out = resloc::ranging::filter_measurements(
      {10.0, 10.1, 9.9, 10.2, 9.8, 500.0, 500.0, 500.0, 500.0}, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 10.0, 0.25);
}

// --- MeasurementTable symmetrization ---

TEST(MeasurementTable, EmptyTableProducesNothing) {
  const MeasurementTable table;
  EXPECT_EQ(table.measurement_count(), 0u);
  EXPECT_EQ(table.directed_pair_count(), 0u);
  EXPECT_TRUE(table.nodes().empty());
  EXPECT_TRUE(table.symmetric_estimates(FilterPolicy{}, 1.0).empty());
  EXPECT_TRUE(table.bidirectional_only(FilterPolicy{}, 1.0).empty());
}

TEST(MeasurementTable, SingleDirectionalEstimatePassesThrough) {
  MeasurementTable table;
  table.add(3, 1, 12.5);
  const auto pairs = table.symmetric_estimates(FilterPolicy{}, 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 1u);  // canonical order a < b regardless of direction
  EXPECT_EQ(pairs[0].b, 3u);
  EXPECT_DOUBLE_EQ(pairs[0].distance_m, 12.5);
  EXPECT_FALSE(pairs[0].bidirectional);
  // The bidirectional-only view drops it.
  EXPECT_TRUE(table.bidirectional_only(FilterPolicy{}, 1.0).empty());
}

TEST(MeasurementTable, AsymmetricPairCountsFilterEachDirectionIndependently) {
  // Five forward readings (median 10.0) against one stray backward reading:
  // within tolerance the estimate is the average of the two per-direction
  // filtered values, and it is marked bidirectional.
  MeasurementTable table;
  for (const double m : {9.9, 10.0, 10.1, 10.05, 9.95}) table.add(0, 1, m);
  table.add(1, 0, 10.5);
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  const auto pairs = table.symmetric_estimates(policy, 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].bidirectional);
  EXPECT_NEAR(pairs[0].distance_m, 0.5 * (10.0 + 10.5), 1e-9);
}

TEST(MeasurementTable, InconsistentBidirectionalPairIsDiscarded) {
  // Section 3.5: "bidirectional range estimates ... are discarded if they are
  // inconsistent" -- disagreement beyond the tolerance removes the pair
  // entirely rather than averaging two irreconcilable readings.
  MeasurementTable table;
  table.add(0, 1, 10.0);
  table.add(1, 0, 14.0);
  EXPECT_TRUE(table.symmetric_estimates(FilterPolicy{}, 1.0).empty());
  // The same pair survives under a tolerance that covers the gap.
  const auto loose = table.symmetric_estimates(FilterPolicy{}, 5.0);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_NEAR(loose.front().distance_m, 12.0, 1e-9);
}

TEST(MeasurementTable, SymmetrizationOutputIsCanonicallyOrdered) {
  // Property over random tables: every output pair has a < b, appears at most
  // once, and its distance lies within the range of that pair's raw readings.
  resloc::math::Rng rng(0xABCD);
  for (int round = 0; round < 20; ++round) {
    MeasurementTable table;
    std::map<std::pair<unsigned, unsigned>, std::pair<double, double>> bounds;
    const int entries = 1 + static_cast<int>(rng.uniform_int(0, 30));
    for (int e = 0; e < entries; ++e) {
      const auto i = static_cast<unsigned>(rng.uniform_int(0, 6));
      auto j = static_cast<unsigned>(rng.uniform_int(0, 6));
      if (i == j) j = (j + 1) % 7;
      const double m = rng.uniform(5.0, 25.0);
      table.add(i, j, m);
      auto& b = bounds.try_emplace({std::min(i, j), std::max(i, j)},
                                   std::make_pair(m, m)).first->second;
      b.first = std::min(b.first, m);
      b.second = std::max(b.second, m);
    }
    std::set<std::pair<unsigned, unsigned>> seen;
    for (const PairEstimate& p : table.symmetric_estimates(FilterPolicy{}, 1e9)) {
      EXPECT_LT(p.a, p.b);
      EXPECT_TRUE(seen.insert({p.a, p.b}).second) << "duplicate pair";
      const auto& b = bounds.at({p.a, p.b});
      EXPECT_GE(p.distance_m, b.first - 1e-9);
      EXPECT_LE(p.distance_m, b.second + 1e-9);
    }
  }
}

}  // namespace
