// Edge-case and property coverage for the Section 3.5 measurement plumbing:
// MeasurementTable symmetrization and the statistical filter. These lock the
// behaviours the acoustic sweep axis leans on -- empty campaigns, lone
// estimates, outlier-dominated pairs, and asymmetric per-direction counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "math/rng.hpp"
#include "ranging/measurement_table.hpp"
#include "ranging/statistical_filter.hpp"

namespace {

using resloc::ranging::FilterKind;
using resloc::ranging::FilterPolicy;
using resloc::ranging::MeasurementTable;
using resloc::ranging::PairEstimate;

// --- statistical_filter edge cases ---

TEST(StatisticalFilter, EmptyInputYieldsNoEstimate) {
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kMode, FilterKind::kAuto}) {
    FilterPolicy policy;
    policy.kind = kind;
    EXPECT_FALSE(resloc::ranging::filter_measurements({}, policy).has_value());
  }
}

TEST(StatisticalFilter, SingleMeasurementPassesThroughUnchanged) {
  // Median (and kAuto below its mode threshold) return the lone value
  // exactly; the mode estimate quantizes to its bin center by construction,
  // so it may move the value by at most half a bin.
  for (const FilterKind kind : {FilterKind::kMedian, FilterKind::kAuto}) {
    FilterPolicy policy;
    policy.kind = kind;
    const auto out = resloc::ranging::filter_measurements({7.25}, policy);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out, 7.25);
  }
  FilterPolicy mode;
  mode.kind = FilterKind::kMode;
  const auto out = resloc::ranging::filter_measurements({7.25}, mode);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 7.25, mode.mode_bin_width_m / 2.0 + 1e-12);
}

TEST(StatisticalFilter, MedianResistsMinorityOutliers) {
  // Five honest ~10 m readings and two wild echoes: the median must stay with
  // the majority (the Figure 4 mechanism).
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  const auto out =
      resloc::ranging::filter_measurements({10.1, 9.9, 10.0, 10.2, 9.8, 3.0, 31.0}, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 10.0, 0.25);
}

TEST(StatisticalFilter, AllOutlierInputStillReturnsAValueInRange) {
  // When every measurement is garbage there is no right answer, but the
  // filter must stay within the observed range rather than extrapolate.
  FilterPolicy policy;
  policy.kind = FilterKind::kAuto;
  std::vector<double> garbage = {2.0, 40.0, 11.0, 29.0, 5.5, 33.0, 18.0, 3.5};
  const auto out = resloc::ranging::filter_measurements(garbage, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_GE(*out, *std::min_element(garbage.begin(), garbage.end()));
  EXPECT_LE(*out, *std::max_element(garbage.begin(), garbage.end()));
}

TEST(StatisticalFilter, AutoSwitchesToModeOnceEnoughSamples) {
  // Below mode_min_samples kAuto behaves as median; at or above it, as mode.
  FilterPolicy policy;
  policy.kind = FilterKind::kAuto;
  policy.mode_min_samples = 5;
  // Four samples: median of {9, 10, 10, 30} = 10; mode would also be 10 --
  // use an input where the two disagree: {1, 10, 10.2, 30}: median 10.1.
  const auto few = resloc::ranging::filter_measurements({1.0, 10.0, 10.2, 30.0}, policy);
  ASSERT_TRUE(few.has_value());
  EXPECT_NEAR(*few, 10.1, 1e-9);
  // Seven samples, bimodal with the true-distance bin denser: the mode picks
  // the dense decimeter bin even though outliers drag the median upward.
  const auto many = resloc::ranging::filter_measurements(
      {10.0, 10.05, 10.1, 24.0, 24.1, 39.0, 10.02}, policy);
  ASSERT_TRUE(many.has_value());
  EXPECT_NEAR(*many, 10.0, 0.3);
}

TEST(StatisticalFilter, MaxSamplesUsesEarliestMeasurements) {
  // "median filtering of up to five measurements": later readings are cut.
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  policy.max_samples = 5;
  const auto out = resloc::ranging::filter_measurements(
      {10.0, 10.1, 9.9, 10.2, 9.8, 500.0, 500.0, 500.0, 500.0}, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 10.0, 0.25);
}

// --- Robust pre-filters (consistency vote + MAD rejection) ---

TEST(RobustFilter, DefaultsLeaveClassicPathUntouched) {
  // Both robust stages default OFF: a default policy must reproduce the
  // plain median/mode result bit-for-bit (this is what keeps every existing
  // golden byte-stream valid).
  const FilterPolicy plain;
  EXPECT_FALSE(plain.consistency_vote);
  EXPECT_FALSE(plain.mad_reject);
  const std::vector<double> v{10.0, 10.1, 9.9, 30.0};
  EXPECT_DOUBLE_EQ(*resloc::ranging::filter_measurements(v, plain),
                   *resloc::ranging::filter_measurements(v, FilterPolicy{}));
}

TEST(RobustFilter, MadDoesNotFalselyRejectCleanGaussianNoise) {
  // Paper-default measurement noise is ~N(0, 0.33 m). At threshold 3.5 robust
  // sigmas, clean draws must very rarely be cut: rejecting honest
  // measurements is worse than keeping an outlier the median absorbs anyway.
  // (The 8-sample MAD is a noisy sigma estimate, so the small-sample rate
  // runs above the asymptotic ~5e-4; ~1.5% observed is the pinned ceiling.)
  resloc::math::Rng rng(0x51F7);
  FilterPolicy policy;
  policy.mad_reject = true;  // defaults: threshold 3.5, floor 0.05 m
  std::size_t rejected = 0;
  std::size_t total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> v;
    for (int i = 0; i < 8; ++i) v.push_back(10.0 + rng.gaussian(0.0, 0.33));
    resloc::ranging::FilterStats stats;
    ASSERT_TRUE(resloc::ranging::filter_measurements(v, policy, &stats).has_value());
    rejected += stats.input - stats.after_mad;
    total += stats.input;
  }
  EXPECT_LE(rejected, total / 40);  // <= 2.5% of 1600 clean draws (24 observed)
}

TEST(RobustFilter, MadCutsGrossOutlierTheMedianWouldSurvive) {
  // Even when the median already resists the outlier, MAD removes it so the
  // downstream mean/mode never sees it; stats records exactly one cut.
  FilterPolicy policy;
  policy.mad_reject = true;
  resloc::ranging::FilterStats stats;
  const auto out = resloc::ranging::filter_measurements(
      {10.0, 10.1, 9.9, 10.05, 9.95, 25.6}, policy, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 10.0, 0.1);
  EXPECT_EQ(stats.input, 6u);
  EXPECT_EQ(stats.after_mad, 5u);
}

TEST(RobustFilter, VoteIsOrderIndependent) {
  // The winning cluster (and therefore the estimate) must not depend on the
  // order measurements arrived in -- threaded campaigns insert in turn order,
  // and byte-identity across thread counts leans on this.
  resloc::math::Rng rng(0xD15C);
  FilterPolicy policy;
  policy.consistency_vote = true;
  policy.consistency_tolerance_m = 0.5;
  policy.consistency_min_votes = 2;
  std::vector<double> v = {10.0, 10.2, 10.4, 25.8, 25.9, 3.0, 10.1};
  const auto reference = resloc::ranging::filter_measurements(v, policy);
  ASSERT_TRUE(reference.has_value());
  for (int shuffle = 0; shuffle < 30; ++shuffle) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[static_cast<std::size_t>(rng.uniform_int(0, i - 1))]);
    }
    const auto out = resloc::ranging::filter_measurements(v, policy);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out, *reference);
  }
}

TEST(RobustFilter, VotePicksTheLargerClusterAndDropsTheRest) {
  // 4 echo readings ~25.8 m vs 3 true readings ~10 m: the echoes win the
  // vote (correctly -- the filter can only judge self-consistency), and the
  // minority is gone from the estimate entirely rather than dragging it.
  FilterPolicy policy;
  policy.consistency_vote = true;
  policy.consistency_tolerance_m = 0.5;
  resloc::ranging::FilterStats stats;
  const auto out = resloc::ranging::filter_measurements(
      {10.0, 25.8, 10.1, 25.9, 25.7, 10.2, 25.85}, policy, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 25.8, 0.2);
  EXPECT_EQ(stats.after_vote, 4u);
  EXPECT_FALSE(stats.vote_failed);
}

TEST(RobustFilter, VoteWithNoConsensusReturnsNullopt) {
  // Every reading in its own cluster: no candidate reaches min_votes = 2, so
  // the pair has no self-consistent distance and must be dropped -- the
  // mechanism that cuts echo-dominated long links out of a campaign.
  FilterPolicy policy;
  policy.consistency_vote = true;
  policy.consistency_tolerance_m = 0.5;
  policy.consistency_min_votes = 2;
  resloc::ranging::FilterStats stats;
  const auto out =
      resloc::ranging::filter_measurements({5.0, 12.0, 19.0, 26.0}, policy, &stats);
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(stats.vote_failed);
  EXPECT_EQ(stats.after_vote, 0u);
  // min_votes = 1 accepts lone clusters again (vote degrades to a no-op of
  // keeping the first singleton).
  policy.consistency_min_votes = 1;
  EXPECT_TRUE(
      resloc::ranging::filter_measurements({5.0, 12.0, 19.0, 26.0}, policy).has_value());
}

TEST(RobustFilter, VoteTieBreaksTowardSmallestValue) {
  // Two clusters of equal size: the smaller (earlier-arrival) cluster wins.
  // Deterministic tie-breaking is part of the order-independence contract,
  // and preferring the earlier cluster is physically right -- first arrival
  // is the direct path; later consistent clusters are echoes.
  FilterPolicy policy;
  policy.consistency_vote = true;
  policy.consistency_tolerance_m = 0.5;
  const auto out =
      resloc::ranging::filter_measurements({25.8, 10.0, 10.1, 25.9}, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(*out, 10.05, 1e-9);
}

TEST(RobustFilter, StatsTrackEveryStage) {
  // vote keeps the 4-strong cluster (plus nothing else), then MAD inside the
  // cluster cuts the straggler at 10.9: input 6 -> after_vote 5 -> after_mad 4.
  FilterPolicy policy;
  policy.consistency_vote = true;
  policy.consistency_tolerance_m = 1.0;
  policy.mad_reject = true;
  policy.mad_threshold = 3.5;
  policy.mad_floor_m = 0.02;
  resloc::ranging::FilterStats stats;
  const auto out = resloc::ranging::filter_measurements(
      {10.0, 10.05, 9.95, 10.02, 10.9, 30.0}, policy, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(stats.input, 6u);
  EXPECT_EQ(stats.after_vote, 5u);
  EXPECT_EQ(stats.after_mad, 4u);
  EXPECT_NEAR(*out, 10.0, 0.1);
}

TEST(RobustFilter, RobustReportAggregatesAcrossTable) {
  MeasurementTable table;
  // Pair (0,1): consensus cluster + one outlier the vote cuts.
  for (const double m : {10.0, 10.1, 9.9, 30.0}) table.add(0, 1, m);
  // Pair (2,3): no two readings agree -> vote nulls the pair.
  for (const double m : {5.0, 15.0, 25.0}) table.add(2, 3, m);
  FilterPolicy policy;
  policy.consistency_vote = true;
  policy.consistency_tolerance_m = 0.5;
  policy.consistency_min_votes = 2;
  const auto report = table.robust_report(policy);
  EXPECT_EQ(report.measurements, 7u);
  EXPECT_EQ(report.directed_pairs, 2u);
  EXPECT_EQ(report.vote_rejected, 4u);  // 1 from (0,1) + all 3 from (2,3)
  EXPECT_EQ(report.pairs_without_consensus, 1u);
}

// --- MeasurementTable symmetrization ---

TEST(MeasurementTable, EmptyTableProducesNothing) {
  const MeasurementTable table;
  EXPECT_EQ(table.measurement_count(), 0u);
  EXPECT_EQ(table.directed_pair_count(), 0u);
  EXPECT_TRUE(table.nodes().empty());
  EXPECT_TRUE(table.symmetric_estimates(FilterPolicy{}, 1.0).empty());
  EXPECT_TRUE(table.bidirectional_only(FilterPolicy{}, 1.0).empty());
}

TEST(MeasurementTable, SingleDirectionalEstimatePassesThrough) {
  MeasurementTable table;
  table.add(3, 1, 12.5);
  const auto pairs = table.symmetric_estimates(FilterPolicy{}, 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 1u);  // canonical order a < b regardless of direction
  EXPECT_EQ(pairs[0].b, 3u);
  EXPECT_DOUBLE_EQ(pairs[0].distance_m, 12.5);
  EXPECT_FALSE(pairs[0].bidirectional);
  // The bidirectional-only view drops it.
  EXPECT_TRUE(table.bidirectional_only(FilterPolicy{}, 1.0).empty());
}

TEST(MeasurementTable, AsymmetricPairCountsFilterEachDirectionIndependently) {
  // Five forward readings (median 10.0) against one stray backward reading:
  // within tolerance the estimate is the average of the two per-direction
  // filtered values, and it is marked bidirectional.
  MeasurementTable table;
  for (const double m : {9.9, 10.0, 10.1, 10.05, 9.95}) table.add(0, 1, m);
  table.add(1, 0, 10.5);
  FilterPolicy policy;
  policy.kind = FilterKind::kMedian;
  const auto pairs = table.symmetric_estimates(policy, 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].bidirectional);
  EXPECT_NEAR(pairs[0].distance_m, 0.5 * (10.0 + 10.5), 1e-9);
}

TEST(MeasurementTable, InconsistentBidirectionalPairIsDiscarded) {
  // Section 3.5: "bidirectional range estimates ... are discarded if they are
  // inconsistent" -- disagreement beyond the tolerance removes the pair
  // entirely rather than averaging two irreconcilable readings.
  MeasurementTable table;
  table.add(0, 1, 10.0);
  table.add(1, 0, 14.0);
  EXPECT_TRUE(table.symmetric_estimates(FilterPolicy{}, 1.0).empty());
  // The same pair survives under a tolerance that covers the gap.
  const auto loose = table.symmetric_estimates(FilterPolicy{}, 5.0);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_NEAR(loose.front().distance_m, 12.0, 1e-9);
}

TEST(MeasurementTable, SymmetrizationOutputIsCanonicallyOrdered) {
  // Property over random tables: every output pair has a < b, appears at most
  // once, and its distance lies within the range of that pair's raw readings.
  resloc::math::Rng rng(0xABCD);
  for (int round = 0; round < 20; ++round) {
    MeasurementTable table;
    std::map<std::pair<unsigned, unsigned>, std::pair<double, double>> bounds;
    const int entries = 1 + static_cast<int>(rng.uniform_int(0, 30));
    for (int e = 0; e < entries; ++e) {
      const auto i = static_cast<unsigned>(rng.uniform_int(0, 6));
      auto j = static_cast<unsigned>(rng.uniform_int(0, 6));
      if (i == j) j = (j + 1) % 7;
      const double m = rng.uniform(5.0, 25.0);
      table.add(i, j, m);
      auto& b = bounds.try_emplace({std::min(i, j), std::max(i, j)},
                                   std::make_pair(m, m)).first->second;
      b.first = std::min(b.first, m);
      b.second = std::max(b.second, m);
    }
    std::set<std::pair<unsigned, unsigned>> seen;
    for (const PairEstimate& p : table.symmetric_estimates(FilterPolicy{}, 1e9)) {
      EXPECT_LT(p.a, p.b);
      EXPECT_TRUE(seen.insert({p.a, p.b}).second) << "duplicate pair";
      const auto& b = bounds.at({p.a, p.b});
      EXPECT_GE(p.distance_m, b.first - 1e-9);
      EXPECT_LE(p.distance_m, b.second + 1e-9);
    }
  }
}

}  // namespace
