// Figures 20-22: the simulated town deployment (59 nodes along a few city
// blocks, synthetic N(0, 0.33 m) distances under a 22 m cutoff).
//
//   Fig 20 -- multilateration with 18 random anchors: paper localizes 35
//     nodes with 0.950 m average error.
//   Fig 21 -- centralized LSS, no anchors, 9 m min-spacing constraint:
//     everything localizes, 0.548 m.
//   Fig 22 -- LSS without the constraint: fails (13.606 m; "most of the nodes
//     in the lower half were not properly localized").
//
// Reproduction note (see EXPERIMENTS.md): our town generator guarantees the
// >= 9 m minimum spacing the constraint assumes, which caps the under-22 m
// pair count near 400 rather than the paper's quoted 945.
#include <cstdio>

#include "bench_util.hpp"
#include "core/lss.hpp"
#include "core/multilateration.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figures 20-22 -- simulated town: multilateration vs LSS");
  auto town = sim::town_blocks_59();
  math::Rng noise_rng(7);
  const auto measurements = sim::gaussian_measurements(town, {}, noise_rng);
  std::printf("nodes: %zu   pairs < 22 m: %zu (paper: 945; see note)\n\n", town.size(),
              measurements.edge_count());

  // --- Fig 20: multilateration, 18 anchors ---
  sim::choose_random_anchors(town, 18, noise_rng);
  core::MultilaterationOptions mopt;
  math::Rng mlat_rng(0xF16'20);
  const auto mlat = core::localize_by_multilateration(town, measurements, mopt, mlat_rng);
  const auto mlat_rep =
      eval::evaluate_localization(mlat.positions, town.positions, false, town.anchors);
  std::puts("Figure 20 -- multilateration (18 anchors):");
  std::printf("  localized %zu / %zu non-anchors (paper: 35 / 41)\n", mlat_rep.localized,
              mlat_rep.total_nodes);
  bench::print_compare("average error", 0.950, mlat_rep.average_error_m, "m");

  // --- Fig 21: centralized LSS with the constraint, zero anchors ---
  core::LssOptions constrained;
  constrained.min_spacing_m = 9.0;
  constrained.constraint_weight = 10.0;
  constrained.gd.max_iterations = 6000;
  constrained.independent_inits = 16;
  constrained.target_stress_per_edge = 0.5;
  math::Rng lss_rng(0xF16'21);
  const auto lss = core::localize_lss(measurements, constrained, lss_rng);
  const auto lss_rep = eval::evaluate_localization(lss.positions, town.positions, true);
  std::puts("\nFigure 21 -- centralized LSS with 9 m constraint (no anchors):");
  std::printf("  localized %zu / %zu\n", lss_rep.localized, lss_rep.total_nodes);
  bench::print_compare("average error", 0.548, lss_rep.average_error_m, "m");

  // --- Fig 22: LSS without the constraint ---
  core::LssOptions unconstrained = constrained;
  unconstrained.min_spacing_m.reset();
  std::puts("\nFigure 22 -- LSS without the constraint (5 seeds):");
  int failures = 0;
  double error_sum = 0.0;
  double worst = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    math::Rng r(0xF16'22 + seed);
    const auto run = core::localize_lss(measurements, unconstrained, r);
    const auto rep = eval::evaluate_localization(run.positions, town.positions, true);
    error_sum += rep.average_error_m;
    worst = std::max(worst, rep.average_error_m);
    if (rep.average_error_m > 1.0) ++failures;
  }
  std::printf("  convergence failures: %d / 5 seeds\n", failures);
  bench::print_compare("average error (mean of 5)", 13.606, error_sum / 5.0, "m");
  std::printf("  worst seed: %.2f m\n", worst);
  std::puts(
      "\npaper shape: LSS with the constraint beats multilateration without\n"
      "using a single anchor; dropping the constraint leaves folded layouts.");
  return 0;
}
