// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "eval/report.hpp"

namespace bench {

inline void print_banner(const std::string& title) {
  std::fputs(resloc::eval::banner(title).c_str(), stdout);
}

inline void print_compare(const std::string& label, double paper, double ours,
                          const std::string& unit) {
  std::puts(resloc::eval::compare_line(label, paper, ours, unit).c_str());
}

}  // namespace bench
