// Ablation A7: DV-hop (APS, Section 2 related work) vs this paper's methods.
//
// The paper dismisses DV-hop as working "well only for isotropic networks
// with uniform node density". This bench quantifies that: on the uniform
// offset grid DV-hop is serviceable (hop-resolution accuracy); on an
// anisotropic L-shaped deployment it collapses while LSS is unaffected.
#include <cstdio>

#include "bench_util.hpp"
#include "core/dv_hop.hpp"
#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

using namespace resloc;
using resloc::math::Vec2;

namespace {

core::MeasurementSet connectivity(const core::Deployment& d, double range, math::Rng& rng) {
  core::MeasurementSet meas(d.size());
  meas.set_node_count(d.size());
  for (core::NodeId i = 0; i < d.size(); ++i) {
    for (core::NodeId j = i + 1; j < d.size(); ++j) {
      const double dist = math::distance(d.positions[i], d.positions[j]);
      if (dist < range) meas.add(i, j, std::max(0.1, dist + rng.gaussian(0.0, 0.33)));
    }
  }
  return meas;
}

struct Row {
  double dv_hop_error;
  std::size_t dv_hop_localized;
  double lss_error;
};

Row run_case(core::Deployment deployment, double range, std::uint64_t seed) {
  math::Rng rng(seed);
  const auto meas = connectivity(deployment, range, rng);

  const auto dv = core::localize_dv_hop(deployment, meas, {}, rng);
  const auto dv_rep = eval::evaluate_localization(dv.result.positions, deployment.positions,
                                                  false, deployment.anchors);

  // Anchored LSS: both methods get the same anchor knowledge (a chain-like
  // corridor is rigid only with anchors pinning its arms).
  core::LssOptions options;
  options.min_spacing_m = 8.0;
  options.gd.max_iterations = 5000;
  options.independent_inits = 16;
  options.target_stress_per_edge = 0.75;
  std::vector<std::pair<core::NodeId, Vec2>> anchors;
  for (core::NodeId a : deployment.anchors) anchors.emplace_back(a, deployment.positions[a]);
  double best_stress = 1e300;
  core::LssResult lss;
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto candidate = core::localize_lss_anchored(meas, anchors, options, rng);
    if (candidate.stress < best_stress) {
      best_stress = candidate.stress;
      lss = std::move(candidate);
    }
  }
  const auto lss_rep = eval::evaluate_localization(lss.positions, deployment.positions, false,
                                                   deployment.anchors);
  return {dv_rep.average_error_m, dv_rep.localized, lss_rep.average_error_m};
}

}  // namespace

int main() {
  bench::print_banner("Ablation A7 -- DV-hop (APS) vs LSS: isotropy sensitivity");

  // Isotropic: the 7x7 offset grid, 6 anchors.
  auto grid = sim::offset_grid();
  math::Rng arng(0xAB'71);
  sim::choose_random_anchors(grid, 6, arng);
  const Row iso = run_case(grid, 14.0, 0xAB'72);

  // Anisotropic: an L-shaped corridor deployment, anchors at the extremes.
  core::Deployment l_shape;
  for (int i = 0; i < 10; ++i) l_shape.positions.push_back(Vec2{i * 9.0, 0.0});
  for (int i = 1; i < 10; ++i) l_shape.positions.push_back(Vec2{0.0, i * 9.0});
  for (int i = 1; i < 4; ++i) l_shape.positions.push_back(Vec2{i * 9.0, 9.0});
  l_shape.anchors = {0, 9, 18, 20};
  const Row aniso = run_case(l_shape, 19.0, 0xAB'73);

  eval::Table table({"topology", "DV-hop avg err", "DV-hop localized", "LSS avg err"});
  table.add_row({"offset grid (isotropic)", eval::fmt(iso.dv_hop_error, 2),
                 std::to_string(iso.dv_hop_localized), eval::fmt(iso.lss_error, 2)});
  table.add_row({"L-corridor (anisotropic)", eval::fmt(aniso.dv_hop_error, 2),
                 std::to_string(aniso.dv_hop_localized), eval::fmt(aniso.lss_error, 2)});
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper claim (Section 2): DV-hop assumes hop counts track straight-line\n"
      "distance, which holds on uniform isotropic layouts and fails around\n"
      "corners; LSS consumes actual range measurements and does not care.");
  return 0;
}
