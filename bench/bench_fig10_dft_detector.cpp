// Figure 10: the sliding-DFT software tone detector (Figure 9 algorithm) on
// a clean and a noisy capture containing periodic constant-frequency chirps.
//
// Paper-reported result: in the noisy case, three of the four chirps are
// correctly detected with no false positives.
#include <cstdio>

#include "acoustics/signal_synth.hpp"
#include "bench_util.hpp"
#include "eval/report.hpp"
#include "ranging/dft_detector.hpp"

using namespace resloc;

namespace {

void run_case(const char* name, double noise_stddev, double tone_amplitude,
              std::uint64_t seed) {
  acoustics::WaveformSpec spec;
  spec.tone_frequency_hz = 4000.0;  // fs/4 band of the Figure 9 filter
  spec.tone_amplitude = tone_amplitude;
  spec.noise_stddev = noise_stddev;
  math::Rng rng(seed);
  const auto chirps = acoustics::periodic_chirps(4, 100, 420, 128);
  const auto wave = acoustics::synthesize_waveform(spec, chirps, 1900, rng);

  ranging::DftToneDetector detector(4);
  const auto metric = detector.run(wave);
  const int found = ranging::DftToneDetector::count_detections(metric);

  double peak = 0.0;
  for (double m : metric) peak = std::max(peak, m);
  std::printf("%-18s chirps present: 4   detected: %d   peak metric: %.2e\n", name, found,
              peak);

  // Compact trace: is the metric positive anywhere inside / outside chirps?
  std::size_t inside_pos = 0, inside_total = 0, outside_pos = 0, outside_total = 0;
  for (std::size_t i = 0; i < metric.size(); ++i) {
    bool inside = false;
    for (const auto& c : chirps) {
      if (i >= c.start_sample + 36 && i < c.start_sample + c.length) inside = true;
    }
    if (inside) {
      ++inside_total;
      if (metric[i] > 0.0) ++inside_pos;
    } else {
      ++outside_total;
      if (metric[i] > 0.0) ++outside_pos;
    }
  }
  std::printf("%-18s positive metric: %.0f %% inside chirps, %.2f %% outside\n", "",
              100.0 * inside_pos / inside_total, 100.0 * outside_pos / outside_total);
}

}  // namespace

int main() {
  bench::print_banner("Figure 10 -- sliding-DFT software tone detection");
  run_case("clean signal:", /*noise=*/0.0, /*amplitude=*/1000.0, 0xF16'10);
  run_case("noisy signal:", /*noise=*/450.0, /*amplitude=*/1000.0, 0xF16'10);
  run_case("noise only:", /*noise=*/450.0, /*amplitude=*/0.0, 0xF16'11);
  std::puts(
      "\npaper (Fig 10): the filter isolates the chirps in the clean capture;\n"
      "in the noisy capture 3 of 4 chirps are detected with no false positives.");
  return 0;
}
