// Figure 23: evolution of the error function E during minimization, with and
// without the soft constraint.
//
// Paper-reported shape: the constrained error function has *more* (all
// positive) terms, so its floor is higher, yet it reaches its minimum far
// sooner; the unconstrained run crawls. We print both traces decimated to a
// common grid and write the full series to CSV.
#include <cstdio>

#include "bench_util.hpp"
#include "core/lss.hpp"
#include "eval/report.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figure 23 -- stress E vs iteration, with/without constraint");
  const auto town = sim::town_blocks_59();
  math::Rng noise_rng(7);
  const auto measurements = sim::gaussian_measurements(town, {}, noise_rng);

  core::LssOptions base;
  base.min_spacing_m = 9.0;
  base.constraint_weight = 10.0;
  base.gd.max_iterations = 20000;
  base.gd.record_trace = true;
  base.independent_inits = 1;  // single run: the trace is the story
  base.restarts.rounds = 1;

  core::LssOptions unconstrained = base;
  unconstrained.min_spacing_m.reset();

  math::Rng rng1(0xF16'23);
  const auto with = core::localize_lss(measurements, base, rng1);
  math::Rng rng2(0xF16'23);
  const auto without = core::localize_lss(measurements, unconstrained, rng2);

  eval::Table table({"iteration", "E (constrained)", "E (unconstrained)"});
  const std::size_t n = std::max(with.error_trace.size(), without.error_trace.size());
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(n / 20, 1)) {
    const double ew = i < with.error_trace.size() ? with.error_trace[i] : with.stress;
    const double eu = i < without.error_trace.size() ? without.error_trace[i] : without.stress;
    table.add_row({std::to_string(i), eval::fmt(ew, 1), eval::fmt(eu, 1)});
  }
  table.add_row({"final", eval::fmt(with.stress, 1), eval::fmt(without.stress, 1)});
  std::fputs(table.to_string().c_str(), stdout);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<double>(i),
                    i < with.error_trace.size() ? with.error_trace[i] : with.stress,
                    i < without.error_trace.size() ? without.error_trace[i] : without.stress});
  }
  if (eval::write_csv("fig23_error_vs_epoch.csv", {"iter", "constrained", "unconstrained"},
                      rows)) {
    std::puts("\nfull traces written to fig23_error_vs_epoch.csv");
  }
  std::puts(
      "paper shape: the constrained trace dives to its minimum quickly; the\n"
      "unconstrained one decays slowly and stalls above it (its theoretical\n"
      "floor is lower, since it has fewer positive terms -- yet it never gets\n"
      "there).");
  return 0;
}
