// Figure 12: multilateration localization with 15 nodes (5 anchors) in a
// 25 x 25 m parking lot, using acoustic ranging with median filtering.
//
// Paper-reported result: average localization error 0.868 m (one-way
// measurements from the 5 loudspeaker-fitted anchors; pre-pattern-encoding
// ranging with larger individual error magnitudes).
#include <cstdio>

#include "bench_util.hpp"
#include "core/multilateration.hpp"
#include "eval/metrics.hpp"
#include "ranging/measurement_table.hpp"
#include "ranging/ranging_service.hpp"
#include "sim/deployments.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figure 12 -- multilateration, 15 nodes / 5 anchors, parking lot");
  const auto deployment = sim::parking_lot_15();

  // One-way ranging: only the 5 anchor boards had loudspeakers. The
  // experiment predates the pattern encoding, so individual measurements
  // carried "larger error magnitudes": no pattern verification, fewer chirps,
  // echoes off the surrounding structures, uncalibrated sensing offset.
  auto config = sim::grass_refined_ranging();
  config.environment = acoustics::EnvironmentProfile::pavement();
  config.environment.echo_rate = 0.6;
  config.environment.noise_burst_rate_hz = 0.6;
  config.max_window_range_m = 36.0;
  config.pattern.num_chirps = 5;
  config.verify_pattern = false;
  config.tdoa.delta_const_true_s = config.tdoa.delta_const_calibrated_s + 0.0005;

  const ranging::RangingService service(config);
  math::Rng rng(0xF16'12);
  acoustics::UnitVariationModel units;
  units.speaker_stddev_db = 2.5;

  ranging::MeasurementTable table;
  for (core::NodeId anchor : deployment.anchors) {
    const auto speaker = units.sample_speaker(acoustics::kLoudspeakerDb, rng);
    for (core::NodeId node = 0; node < deployment.size(); ++node) {
      if (node == anchor || deployment.is_anchor(node)) continue;
      const double d =
          math::distance(deployment.positions[anchor], deployment.positions[node]);
      const auto mic = units.sample_mic(rng);
      for (int round = 0; round < 5; ++round) {
        const auto est = service.measure(d, speaker, mic, rng);
        if (est) table.add(anchor, node, *est);
      }
    }
  }

  ranging::FilterPolicy policy;
  policy.kind = ranging::FilterKind::kMedian;  // "the median operation was used"
  core::MeasurementSet measurements(deployment.size());
  for (const auto& pair : table.symmetric_estimates(policy, 1e9)) {
    measurements.add(pair.a, pair.b, pair.distance_m);
  }
  std::printf("measured anchor links: %zu\n", measurements.edge_count());

  core::MultilaterationOptions options;
  const auto result = core::localize_by_multilateration(deployment, measurements, options, rng);
  const auto report = eval::evaluate_localization(result.positions, deployment.positions,
                                                  /*align_first=*/false, deployment.anchors);
  std::printf("localized: %zu / %zu non-anchors\n", report.localized, report.total_nodes);
  bench::print_compare("average localization error", 0.868, report.average_error_m, "m");
  std::printf("max error: %.3f m\n", report.max_error_m);
  std::puts("\npaper (Fig 12): 0.868 m average error; all nodes localized.");
  return 0;
}
