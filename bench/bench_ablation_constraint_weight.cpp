// Ablation A1: sweep of the soft-constraint weight w_D (Section 4.2.1 fixes
// w_D = 10 without justification). Shows the plateau where the constraint is
// strong enough to unfold configurations but does not distort the fit.
#include <cstdio>

#include "bench_util.hpp"
#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Ablation A1 -- soft-constraint weight w_D sweep (sparse grass data)");
  const auto scenario = sim::grass_grid_scenario(0xAB'01, /*rounds=*/3);

  eval::Table table({"w_D", "avg error (m)", "stress", "failures/3"});
  for (double wd : {0.0, 0.1, 1.0, 3.0, 10.0, 30.0, 100.0}) {
    core::LssOptions options;
    if (wd == 0.0) {
      options.min_spacing_m.reset();
    } else {
      options.min_spacing_m = 9.14;
      options.constraint_weight = wd;
    }
    options.gd.max_iterations = 5000;
    options.independent_inits = 12;
    options.target_stress_per_edge = 0.75;

    double err_sum = 0.0;
    double stress_sum = 0.0;
    int failures = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      math::Rng rng(0xAB'02 + seed);
      const auto run = core::localize_lss(scenario.measurements, options, rng);
      const auto rep =
          eval::evaluate_localization(run.positions, scenario.deployment.positions, true);
      err_sum += rep.average_error_m;
      stress_sum += run.stress;
      if (rep.average_error_m > 3.0) ++failures;
    }
    table.add_row({eval::fmt(wd, 1), eval::fmt(err_sum / 3.0, 2), eval::fmt(stress_sum / 3.0, 0),
                   std::to_string(failures)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nreading: w_D = 0 (no constraint) folds; very small w_D under-penalizes;\n"
      "the paper's w_D = 10 sits on the stable plateau.");
  return 0;
}
