// Section 3.6.2 "Analysis: Maximum Range" -- detection rate versus distance
// per environment and speaker, plus the RAM budget model.
//
// Paper-reported values: on grass, virtually no detections beyond 20 m and
// reliable (~80-85%) detection to ~10 m; on pavement, detection to 35-50 m
// and reliable to ~25 m. RAM: < 500 bytes for 15 accumulated chirps at 20 m
// (4 bits/offset); ~2 kB for the software detector.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/report.hpp"
#include "ranging/memory_model.hpp"
#include "ranging/ranging_service.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

namespace {

double detection_rate(const ranging::RangingService& service, double distance_m,
                      double speaker_db, math::Rng& rng, int trials = 40) {
  acoustics::SpeakerUnit speaker;
  speaker.output_db = speaker_db;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    if (service.measure(distance_m, speaker, acoustics::MicUnit{}, rng)) ++hits;
  }
  return static_cast<double>(hits) / trials;
}

}  // namespace

int main() {
  bench::print_banner("Section 3.6.2 -- maximum range by environment (and RAM model)");
  math::Rng rng(0x3A62);

  auto grass_config = sim::grass_refined_ranging();
  grass_config.max_window_range_m = 55.0;  // wide window so range isn't clipped
  auto pavement_config = grass_config;
  pavement_config.environment = acoustics::EnvironmentProfile::pavement();
  const ranging::RangingService grass(grass_config);
  const ranging::RangingService pavement(pavement_config);

  eval::Table table({"distance", "grass 105dB", "grass 88dB", "pavement 105dB"});
  for (double d : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0}) {
    table.add_row({eval::fmt(d, 0) + " m",
                   eval::fmt(100.0 * detection_rate(grass, d, 105.0, rng), 0) + " %",
                   eval::fmt(100.0 * detection_rate(grass, d, 88.0, rng), 0) + " %",
                   eval::fmt(100.0 * detection_rate(pavement, d, 105.0, rng), 0) + " %"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper: grass ~20 m max / ~10 m reliable; pavement 35-50 m max /\n"
      "~25 m reliable; the stock 88 dB buzzer reaches only a fraction of the\n"
      "105 dB loudspeaker's range (the Section 3.2 hardware extension).");

  std::puts("\nRAM budget model (Sections 3.6.2 / 3.7):");
  std::printf("  hardware detector, 20 m window: %4zu bytes (paper: < 500 B)\n",
              ranging::hardware_detector_buffer_bytes(20.0));
  std::printf("  software detector, 20 m window: %4zu bytes (paper: ~2 kB)\n",
              ranging::software_detector_buffer_bytes(20.0));
  std::printf("  max range in 4 kB MICA2 RAM (hardware layout): %.0f m\n",
              ranging::hardware_detector_max_range_m(4096));
  return 0;
}
