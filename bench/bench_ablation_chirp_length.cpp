// Ablation A2: chirp length sweep (Section 3.6).
//
// The paper: 64 ms chirps caused many over-estimates ("a long chirp has more
// chances of its later part being detected when its early part is missed");
// 8 ms removed most of them; below 8 ms the speaker cannot power up fully
// (modeled as an output-level penalty for very short chirps).
#include <cstdio>

#include "bench_util.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "ranging/ranging_service.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Ablation A2 -- chirp length vs over-estimation (grass, 14 m)");
  eval::Table table({"chirp (ms)", "detect %", "mean err (m)", "over >1 m", "max over (m)"});

  for (double chirp_ms : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    auto config = sim::grass_refined_ranging();
    config.pattern.chirp_duration_s = chirp_ms / 1000.0;
    config.max_window_range_m = 45.0;  // don't let the buffer truncate long chirps
    // Single-chirp first-firing detection: the regime in which the paper
    // observed the 64 ms over-estimation problem -- the detector latches
    // onto whichever part of the chirp it first hears.
    config.baseline = true;
    const ranging::RangingService service(config);
    math::Rng rng(0xAB'21);

    int detections = 0;
    int over_1m = 0;
    double err_sum = 0.0;
    double max_over = 0.0;
    const int trials = 60;
    const double d = 14.0;
    for (int i = 0; i < trials; ++i) {
      acoustics::SpeakerUnit speaker;
      // Weak links are where late detection bites: shadow a little. (The
      // channel's ramp-up model makes chirps below ~4 ms mostly ramp, which
      // is the paper's "speaker did not have enough time to fully power up".)
      speaker.output_db -= 3.0;
      const auto est = service.measure(d, speaker, acoustics::MicUnit{}, rng);
      if (!est) continue;
      ++detections;
      const double e = *est - d;
      err_sum += e;
      if (e > 1.0) ++over_1m;
      max_over = std::max(max_over, e);
    }
    table.add_row({eval::fmt(chirp_ms, 0), eval::fmt(100.0 * detections / trials, 0),
                   detections ? eval::fmt(err_sum / detections, 3) : "-",
                   std::to_string(over_1m), eval::fmt(max_over, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper shape: long chirps inflate the over-estimation tail (up to the\n"
      "chirp's own acoustic length); very short chirps lose detections; 8 ms\n"
      "is the sweet spot, with max over-estimation ~3 m.");
  return 0;
}
