// Ablation A3: detection threshold calibration (Section 3.6).
//
// "A high threshold is advantageous in noisy environments to limit false
// positives. On the other hand, a low threshold is more appropriate in
// quieter settings as it reduces false negatives." Sweep (T, k) on grass
// (quiet) and urban (noisy) and report detection rate at range plus the
// false/large-error rate.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "eval/report.hpp"
#include "ranging/ranging_service.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

namespace {

struct SweepRow {
  double detect_rate;
  double large_error_rate;
};

SweepRow sweep(const ranging::RangingConfig& base, int threshold, int min_detections,
               double distance, std::uint64_t seed) {
  ranging::RangingConfig config = base;
  config.detection.threshold = threshold;
  config.detection.min_detections = min_detections;
  const ranging::RangingService service(config);
  math::Rng rng(seed);
  int detections = 0;
  int large = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const auto est =
        service.measure(distance, acoustics::SpeakerUnit{}, acoustics::MicUnit{}, rng);
    if (!est) continue;
    ++detections;
    if (std::abs(*est - distance) > 1.0) ++large;
  }
  return {static_cast<double>(detections) / trials,
          detections ? static_cast<double>(large) / detections : 0.0};
}

}  // namespace

int main() {
  bench::print_banner("Ablation A3 -- detection thresholds (T, k of 32) by environment");

  const auto grass = sim::grass_refined_ranging();
  auto urban = sim::urban_refined_ranging();

  eval::Table table(
      {"T", "k", "grass@16m det%", "grass err>1m%", "urban@16m det%", "urban err>1m%"});
  const std::vector<std::pair<int, int>> settings{{1, 4}, {2, 6}, {3, 8}, {4, 10}, {6, 14}};
  for (const auto& [t, k] : settings) {
    const auto g = sweep(grass, t, k, 16.0, 0xAB'31);
    const auto u = sweep(urban, t, k, 16.0, 0xAB'32);
    table.add_row({std::to_string(t), std::to_string(k), eval::fmt(100.0 * g.detect_rate, 0),
                   eval::fmt(100.0 * g.large_error_rate, 0), eval::fmt(100.0 * u.detect_rate, 0),
                   eval::fmt(100.0 * u.large_error_rate, 0)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\npaper shape: low thresholds maximize range in quiet environments but\n"
      "admit false detections in noisy ones; the urban site needs the higher\n"
      "(T, k) operating point, trading a little range for reliability.");
  return 0;
}
