// Figure 11: intersection consistency checking with near-collinear anchors.
//
// The paper's example: anchors nearly collinear with the node being localized
// amplify small ranging errors into large intersection displacement; the
// consistency check drops the anchor whose intersection points land nowhere
// near the dominant cluster (the paper's anchor at (-170, 700), units cm).
#include <cstdio>

#include "bench_util.hpp"
#include "core/intersection_check.hpp"
#include "core/multilateration.hpp"
#include "eval/report.hpp"

using namespace resloc;
using resloc::math::Vec2;

int main() {
  bench::print_banner("Figure 11 -- intersection consistency check, collinear anchors");

  // Scaled-down version of the Figure 11 geometry (meters): the node sits at
  // (10, 2); two anchors are nearly collinear with it; one anchor has a badly
  // overestimated distance.
  const Vec2 node{10.0, 2.0};
  std::vector<core::AnchorObservation> anchors;
  const std::vector<Vec2> anchor_pos{{-1.7, 7.0}, {9.5, 6.0}, {22.0, 5.0}, {3.0, -8.0},
                                     {18.0, -6.0}};
  for (const Vec2& a : anchor_pos) {
    anchors.push_back({a, math::distance(a, node), 1.0});
  }
  // Corrupt the first (near-collinear w.r.t. the third) anchor's distance.
  anchors[0].distance_m += 4.0;

  const auto check = core::check_intersection_consistency(anchors, {});
  std::printf("anchors: %zu   pairwise intersection points: %zu\n", anchors.size(),
              check.intersection_points.size());
  std::printf("dominant cluster size: %zu   centroid: (%.2f, %.2f)  [true node: (%.1f, %.1f)]\n",
              check.cluster.size(), check.cluster_centroid.x, check.cluster_centroid.y, node.x,
              node.y);
  std::printf("consistent anchors kept: ");
  for (std::size_t idx : check.consistent_anchors) std::printf("%zu ", idx);
  std::printf(" (anchor 0 carries the corrupted distance)\n");

  // Localization with vs without the check.
  math::Rng rng(0xF16'11);
  core::MultilaterationOptions plain;
  core::MultilaterationOptions checked;
  checked.use_intersection_check = true;
  const auto biased = core::multilaterate(anchors, plain, rng);
  const auto cleaned = core::multilaterate(anchors, checked, rng);
  bench::print_compare("error without check", 0.0, math::distance(*biased, node), "m");
  bench::print_compare("error with check   ", 0.0, math::distance(*cleaned, node), "m");
  std::puts(
      "\npaper (Fig 11): the anchor with no intersection points near the cluster\n"
      "is discarded; least squares then converges on the true position.");
  return 0;
}
