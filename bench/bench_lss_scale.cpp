// LSS at production scale: spatial-grid active set vs the dense O(n^2) scan.
//
// Two claims are measured and gated:
//   1. Speedup. The minimum-spacing soft constraint's active set is found by
//      spatial-grid sweep (~O(n) per evaluation) instead of scanning all
//      n(n-1)/2 pairs. Both the constraint stage alone and the full objective
//      evaluation (which adds the measured-edge term, identical in both
//      paths -- the Amdahl floor) are timed per n; the gates are a >= 10x
//      constraint-stage speedup at n = 500 and a >= 10x full-evaluation
//      speedup at n = 1000, or the bench exits nonzero.
//   2. Bit-equivalence. Both paths visit active pairs in identical order with
//      identical arithmetic, so error and every gradient component must match
//      to the last ulp (max |delta| must be exactly 0). Solution quality is
//      therefore inherited, not traded: the same seeds produce the same
//      configuration -- the end-to-end stage below records identical stress
//      and mean error from both paths, differing only in wall time.
//
// Results are printed and written as JSON (default BENCH_lss.json, or
// argv[1]) so CI can archive the perf trajectory alongside BENCH_ranging.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/dv_hop.hpp"
#include "core/lss.hpp"
#include "eval/aggregate.hpp"
#include "eval/metrics.hpp"
#include "sim/deployments.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenario_registry.hpp"

using namespace resloc;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of `fn` (seconds).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    const double dt = now_s() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

volatile double g_sink = 0.0;  // keeps the timed loops from being optimized away

struct EvalCase {
  std::size_t n = 0;
  bool folded = false;
  std::size_t edges = 0;
  std::size_t active_pairs = 0;
  double edge_term_us = 0.0;  ///< measured-edge term alone (constraint off)
  double dense_us = 0.0;
  double grid_us = 0.0;
  double speedup = 0.0;        ///< full objective evaluation
  double stage_speedup = 0.0;  ///< soft-constraint stage alone
};

/// One scale point: a uniform_n field, synthetic measurements, and one of two
/// configurations. `folded = false` is the late-descent steady state (truth +
/// 3 m jitter: nearly every sub-d_min pair is measured and exempt, so the
/// active set is close to empty -- the regime most evaluations run in).
/// `folded = true` compresses the truth to 35% (early descent / folded
/// minimum): unmeasured pairs pour under d_min and the active set is ~O(n),
/// exercising the grid path's ordering/replay stage under real load. Times
/// both constraint paths and checks bit-equivalence in both regimes.
EvalCase run_eval_case(std::size_t n, bool folded, double& max_error_delta,
                       double& max_grad_delta) {
  EvalCase c;
  c.n = n;
  c.folded = folded;
  math::Rng deploy_rng(0x5CA1E + n);
  sim::ScenarioParams params;
  params.node_count = n;
  const core::Deployment deployment = sim::build_scenario("uniform_n", params, deploy_rng);
  math::Rng meas_rng(0xED6E + n);
  const core::MeasurementSet measurements =
      sim::gaussian_measurements(deployment, {}, meas_rng);
  c.edges = measurements.edge_count();

  std::vector<math::Vec2> config(deployment.size());
  math::Rng jitter_rng(0x71 + n);
  const double scale = folded ? 0.35 : 1.0;
  for (std::size_t i = 0; i < deployment.size(); ++i) {
    config[i] = deployment.positions[i] * scale +
                math::Vec2{jitter_rng.gaussian(0.0, 3.0), jitter_rng.gaussian(0.0, 3.0)};
  }

  core::LssOptions grid_options;   // default: spatial-grid active set
  core::LssOptions dense_options;
  dense_options.dense_constraint_scan = true;

  // Equivalence first: same error, same gradient, down to the last bit.
  std::vector<double> grid_grad;
  std::vector<double> dense_grad;
  const double grid_e = core::lss_stress_with_gradient(measurements, config, grid_options, grid_grad);
  const double dense_e =
      core::lss_stress_with_gradient(measurements, config, dense_options, dense_grad);
  max_error_delta = std::max(max_error_delta, std::abs(grid_e - dense_e));
  for (std::size_t i = 0; i < grid_grad.size(); ++i) {
    max_grad_delta = std::max(max_grad_delta, std::abs(grid_grad[i] - dense_grad[i]));
  }

  // Count the active set so the record shows what the evaluation paid for.
  {
    const double dmin = *grid_options.min_spacing_m;
    for (std::size_t i = 0; i + 1 < config.size(); ++i) {
      for (std::size_t j = i + 1; j < config.size(); ++j) {
        const double d = math::distance(config[i], config[j]);
        if (d < dmin && !measurements.has(static_cast<core::NodeId>(i),
                                          static_cast<core::NodeId>(j))) {
          ++c.active_pairs;
        }
      }
    }
  }

  // Timed evaluations: enough iterations per rep to rise above timer noise.
  const int evals = n >= 1000 ? 20 : n >= 500 ? 40 : 100;
  std::vector<double> grad;
  const auto time_eval = [&](const core::LssOptions& options) {
    return best_of(5, [&] {
      double sum = 0.0;
      for (int e = 0; e < evals; ++e) {
        sum += core::lss_stress_with_gradient(measurements, config, options, grad);
      }
      g_sink = sum;
    });
  };
  core::LssOptions edge_only_options;  // the Amdahl floor both paths share
  edge_only_options.min_spacing_m.reset();
  const double edge_s = time_eval(edge_only_options);
  const double dense_s = time_eval(dense_options);
  const double grid_s = time_eval(grid_options);
  c.edge_term_us = edge_s / evals * 1e6;
  c.dense_us = dense_s / evals * 1e6;
  c.grid_us = grid_s / evals * 1e6;
  c.speedup = dense_s / grid_s;
  c.stage_speedup = (dense_s - edge_s) / (grid_s - edge_s);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_lss.json";
  bench::print_banner("LSS soft-constraint active set: spatial grid vs dense O(n^2) scan");

  double max_error_delta = 0.0;
  double max_grad_delta = 0.0;
  std::vector<EvalCase> cases;
  for (const std::size_t n : {100u, 250u, 500u, 1000u}) {
    cases.push_back(run_eval_case(n, false, max_error_delta, max_grad_delta));
  }
  // The folded regime (compressed configuration, ~O(n) active pairs) puts
  // the grid path's ordering/replay machinery under real load -- both for
  // timing honesty and so the bit-equivalence gate covers a busy active set.
  for (const std::size_t n : {500u, 1000u}) {
    cases.push_back(run_eval_case(n, true, max_error_delta, max_grad_delta));
  }

  std::puts("objective evaluation (measured edges + soft constraint)");
  std::puts(
      "      n  config      edges    active   edge us   dense us    grid us   eval-speedup   "
      "stage-speedup");
  double stage_speedup_at_500 = 0.0;
  double eval_speedup_at_1000 = 0.0;
  for (const EvalCase& c : cases) {
    std::printf("  %5zu  %-9s %8zu  %8zu  %8.1f  %9.1f  %9.1f  %11.1fx  %13.1fx\n", c.n,
                c.folded ? "folded" : "converged", c.edges, c.active_pairs, c.edge_term_us,
                c.dense_us, c.grid_us, c.speedup, c.stage_speedup);
    if (!c.folded && c.n == 500) stage_speedup_at_500 = c.stage_speedup;
    if (!c.folded && c.n == 1000) eval_speedup_at_1000 = c.speedup;
  }
  std::puts(
      "  (the measured-edge term is identical in both paths; it bounds the full-eval\n"
      "   speedup at any n -- the stage column isolates the rewritten constraint scan;\n"
      "   gates read the converged rows, the regime most evaluations run in)");
  std::printf("  bit-equivalence: max |delta error| = %g, max |delta grad| = %g (bound: 0)\n",
              max_error_delta, max_grad_delta);

  // --- End-to-end: the 'scale' sweep's solver stage (DV-hop seed + one LSS
  // descent) at n = 500, grid vs dense. Same seeds, bit-equal objective =>
  // identical solution; only the wall clock may differ. ---
  math::Rng deploy_rng(0xE2E);
  sim::ScenarioParams params;
  const core::Deployment deployment = [&] {
    core::Deployment d = sim::build_scenario("campus_500", params, deploy_rng);
    math::Rng anchor_rng(0xA2C);
    sim::choose_random_anchors(d, 40, anchor_rng);
    return d;
  }();
  math::Rng meas_rng(0x3EA);
  const core::MeasurementSet measurements =
      sim::gaussian_measurements(deployment, {}, meas_rng);

  core::LssOptions solve_options;
  solve_options.restarts.rounds = 3;
  solve_options.gd.max_iterations = 2500;

  const auto solve = [&](bool dense, double& out_stress, double& out_error) {
    core::LssOptions options = solve_options;
    options.dense_constraint_scan = dense;
    math::Rng dv_rng(0xD0);
    core::DvHopResult dv = core::localize_dv_hop(deployment, measurements, {}, dv_rng);
    std::vector<math::Vec2> initial(deployment.size());
    for (std::size_t i = 0; i < deployment.size(); ++i) {
      initial[i] = dv.result.positions[i].value_or(math::Vec2{0.0, 0.0});
    }
    math::Rng solve_rng(0x50E);
    const core::LssResult result =
        core::localize_lss_from(measurements, std::move(initial), options, solve_rng);
    out_stress = result.stress;
    out_error =
        eval::evaluate_localization(result.positions, deployment.positions, true).average_error_m;
  };

  double grid_stress = 0.0, grid_error = 0.0, dense_stress = 0.0, dense_error = 0.0;
  const double t_grid0 = now_s();
  solve(false, grid_stress, grid_error);
  const double solve_grid_s = now_s() - t_grid0;
  const double t_dense0 = now_s();
  solve(true, dense_stress, dense_error);
  const double solve_dense_s = now_s() - t_dense0;

  std::printf("\nend-to-end solve, campus_500 (DV-hop seed + LSS, 40 anchors)\n");
  std::printf("  dense scan        %8.2f s   stress %.3f   mean error %.3f m\n", solve_dense_s,
              dense_stress, dense_error);
  std::printf("  spatial grid      %8.2f s   stress %.3f   mean error %.3f m\n", solve_grid_s,
              grid_stress, grid_error);
  std::printf("  speedup           %8.2fx  (same seeds; solutions are identical)\n",
              solve_dense_s / solve_grid_s);

  const bool solutions_match = grid_stress == dense_stress && grid_error == dense_error;
  if (!solutions_match) {
    std::puts("  WARNING: grid and dense solves disagree -- equivalence broken");
  }

  // --- JSON record ---
  const auto v = [](double x) { return resloc::eval::format_value(x); };
  std::string json = "{\n";
  json += "  \"bench\": \"bench_lss_scale\",\n";
  json += "  \"eval_cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const EvalCase& c = cases[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"n\": " + std::to_string(c.n) +
            ", \"config\": \"" + (c.folded ? "folded" : "converged") +
            "\", \"edges\": " + std::to_string(c.edges) +
            ", \"active_pairs\": " + std::to_string(c.active_pairs) +
            ", \"edge_term_us_per_eval\": " + v(c.edge_term_us) +
            ", \"dense_us_per_eval\": " + v(c.dense_us) +
            ", \"grid_us_per_eval\": " + v(c.grid_us) + ", \"eval_speedup\": " + v(c.speedup) +
            ", \"constraint_stage_speedup\": " + v(c.stage_speedup) + "}";
  }
  json += "\n  ],\n";
  json += "  \"max_abs_error_delta\": " + v(max_error_delta) + ",\n";
  json += "  \"max_abs_gradient_delta\": " + v(max_grad_delta) + ",\n";
  json += "  \"solve_scenario\": \"campus_500\",\n";
  json += "  \"solve_dense_s\": " + v(solve_dense_s) + ",\n";
  json += "  \"solve_grid_s\": " + v(solve_grid_s) + ",\n";
  json += "  \"solve_speedup\": " + v(solve_dense_s / solve_grid_s) + ",\n";
  json += "  \"solve_stress\": " + v(grid_stress) + ",\n";
  json += "  \"solve_mean_error_m\": " + v(grid_error) + "\n";
  json += "}\n";
  if (!resloc::eval::write_text_file(json_path, json)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nbench record: %s\n", json_path.c_str());

  const bool ok = stage_speedup_at_500 >= 10.0 && eval_speedup_at_1000 >= 10.0 &&
                  max_error_delta == 0.0 && max_grad_delta == 0.0 && solutions_match;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: stage speedup@500 %.1fx / eval speedup@1000 %.1fx (both need >= 10x), "
                 "error delta %g, grad delta %g\n",
                 stage_speedup_at_500, eval_speedup_at_1000, max_error_delta, max_grad_delta);
  }
  return ok ? 0 : 1;
}
