// Figures 17-19: centralized LSS localization on the real (field) grass-grid
// measurements, with and without the minimum-spacing soft constraint.
//
// Paper-reported results: with the 9.14 m constraint (w_ij = 1, w_D = 10) the
// average error is 2.229 m (1.5 m without the worst five); without the
// constraint the minimization "failed to converge to the corresponding actual
// coordinates" even after a full day (16.609 m).
#include <cstdio>

#include "bench_util.hpp"
#include "core/lss.hpp"
#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figures 17-19 -- centralized LSS, sparse grass-grid field data");
  const auto scenario = sim::grass_grid_scenario(0xF16'17, /*rounds=*/3);
  std::printf("nodes: %zu   measured pairs: %zu (paper: 247)\n\n", scenario.deployment.size(),
              scenario.measurements.edge_count());

  core::LssOptions constrained;
  constrained.min_spacing_m = 9.14;  // the paper's grid min spacing
  constrained.constraint_weight = 10.0;
  constrained.gd.max_iterations = 6000;
  constrained.independent_inits = 16;
  constrained.target_stress_per_edge = 0.75;

  core::LssOptions unconstrained = constrained;
  unconstrained.min_spacing_m.reset();

  math::Rng rng1(0xF16'18);
  const auto with = core::localize_lss(scenario.measurements, constrained, rng1);
  const auto with_rep =
      eval::evaluate_localization(with.positions, scenario.deployment.positions, true);
  std::puts("Figure 18 -- with the minimum-spacing soft constraint:");
  bench::print_compare("average error", 2.229, with_rep.average_error_m, "m");
  bench::print_compare("average error w/o worst 5", 1.5, with_rep.average_without_worst(5), "m");
  std::printf("  final stress: %.1f after %d iterations\n\n", with.stress, with.iterations);

  math::Rng rng2(0xF16'18);
  const auto without = core::localize_lss(scenario.measurements, unconstrained, rng2);
  const auto without_rep =
      eval::evaluate_localization(without.positions, scenario.deployment.positions, true);
  std::puts("Figure 19 -- without the constraint:");
  bench::print_compare("average error", 16.609, without_rep.average_error_m, "m");
  std::printf("  final stress: %.1f\n", without.stress);

  std::puts(
      "\npaper shape: the constraint is what makes sparse field data usable --\n"
      "without it the configuration stays folded no matter how long it runs.");
  return 0;
}
