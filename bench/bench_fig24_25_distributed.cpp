// Figures 24 and 25: distributed LSS localization.
//
//   Fig 24 -- sparse field measurements (247 edges in the paper): a bad
//     pairwise transform gets "amplified and propagated"; paper reports
//     9.494 m average error with about half the nodes far off.
//   Fig 25 -- augmented with 370 synthetic distances: all nodes localize
//     with 0.534 m average error.
//
// Local maps use mote-grade optimization (few random inits, stress-target
// early stop) -- the regime where sparse local maps fold undetectably but
// dense ones are reliable. The event-driven alignment protocol (map exchange
// + o/x/y flood over the radio simulator) is run on the augmented data as a
// cross-check of the graph-driven implementation.
#include <cstdio>

#include "bench_util.hpp"
#include "core/alignment_protocol.hpp"
#include "core/distributed_lss.hpp"
#include "eval/metrics.hpp"
#include "sim/measurement_gen.hpp"
#include "sim/scenarios.hpp"

using namespace resloc;

int main() {
  bench::print_banner("Figures 24 & 25 -- distributed LSS (sparse vs augmented)");
  const auto scenario = sim::grass_grid_scenario(0xF16'24, /*rounds=*/3);
  std::printf("nodes: %zu   field pairs: %zu (paper: 247)\n\n", scenario.deployment.size(),
              scenario.measurements.edge_count());

  core::DistributedLssOptions options;
  options.local_lss.min_spacing_m = 9.0;
  options.local_lss.independent_inits = 6;
  options.local_lss.restarts.rounds = 2;
  options.local_lss.gd.max_iterations = 1500;
  options.local_lss.target_stress_per_edge = 0.3;

  const core::NodeId root = 22;  // near the grid center, like the paper's (27, 36)

  // --- Fig 24: sparse ---
  double sparse_sum = 0.0;
  double sparse_worst = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    math::Rng rng(0xF16'24 + seed);
    const auto run = core::localize_distributed(scenario.measurements, root, options, rng);
    const auto rep =
        eval::evaluate_localization(run.result.positions, scenario.deployment.positions, true);
    sparse_sum += rep.average_error_m;
    sparse_worst = std::max(sparse_worst, rep.average_error_m);
  }
  std::puts("Figure 24 -- sparse field data (3 seeds):");
  bench::print_compare("average error (mean)", 9.494, sparse_sum / 3.0, "m");
  std::printf("  worst seed: %.2f m\n\n", sparse_worst);

  // --- Fig 25: augmented (3 seeds; local-map folding is seed-sensitive at
  // mote-grade optimization budgets, so a single run is not representative) ---
  double dense_sum = 0.0;
  double dense_best = 1e9;
  std::size_t added = 0;
  core::DistributedLssResult best_dense_run;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto augmented = scenario.measurements;
    sim::GaussianNoiseModel wide;
    wide.max_range_m = 32.0;  // pool sized toward the paper's +370 edges
    math::Rng aug_rng(0xF16'25 + seed);
    added = sim::augment_with_gaussian(augmented, scenario.deployment, wide, aug_rng,
                                       /*max_added=*/370);
    math::Rng rng(0xF16'26 + seed);
    auto dense = core::localize_distributed(augmented, root, options, rng);
    const auto rep = eval::evaluate_localization(dense.result.positions,
                                                 scenario.deployment.positions, true);
    dense_sum += rep.average_error_m;
    if (rep.average_error_m < dense_best) {
      dense_best = rep.average_error_m;
      best_dense_run = std::move(dense);
    }
  }
  std::printf("Figure 25 -- augmented with %zu synthetic distances (paper: 370), 3 seeds:\n",
              added);
  bench::print_compare("average error (mean)", 0.534, dense_sum / 3.0, "m");
  std::printf("  best seed: %.2f m\n", dense_best);
  const auto& dense = best_dense_run;

  // --- Event-driven cross-check: the actual mote protocol over the radio ---
  net::RadioParams radio;
  radio.range_m = 60.0;
  const auto protocol = core::run_alignment_protocol(dense.maps, root,
                                                     scenario.deployment.positions, options,
                                                     radio, 0xF16'27);
  const auto protocol_rep = eval::evaluate_localization(
      protocol.result.positions, scenario.deployment.positions, true);
  std::printf(
      "\nevent-driven alignment protocol: %zu map broadcasts, %zu alignment\n"
      "broadcasts, %zu deliveries; localized %zu, avg error %.3f m\n",
      protocol.map_broadcasts, protocol.align_broadcasts, protocol.messages_delivered,
      protocol_rep.localized, protocol_rep.average_error_m);
  // --- Extension: transform-quality gating (the paper's Section 5 notes the
  // distributed algorithm "needs to be improved"; rejecting high-residual
  // pairwise transforms and re-routing alignment is one such improvement). ---
  auto guarded = options;
  guarded.max_transform_rmse_m = 1.2;
  double guarded_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    math::Rng grng(0xF16'24 + seed);
    const auto run = core::localize_distributed(scenario.measurements, root, guarded, grng);
    const auto rep =
        eval::evaluate_localization(run.result.positions, scenario.deployment.positions, true);
    guarded_sum += rep.average_error_m;
  }
  std::printf(
      "\nextension -- transform-RMSE gating on the sparse data: %.2f m average\n"
      "(vs %.2f m ungated): refusing to propagate high-residual transforms\n"
      "contains the Figure 24 corruption.\n",
      guarded_sum / 3.0, sparse_sum / 3.0);

  std::puts(
      "\npaper shape: sparse local maps fold -> transforms corrupt downstream\n"
      "nodes; denser measurements make the same pipeline accurate to ~0.5 m.");
  return 0;
}
